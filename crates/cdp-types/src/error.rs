//! The workspace-wide error type.
//!
//! The paper's central safety argument is that a content-directed
//! prefetcher *squashes* bad candidates — a mistranslated pointer costs a
//! dropped request, never a fault (§3.5). The simulator holds itself to
//! the same standard: conditions that genuinely cannot be recovered
//! (an invalid configuration, a demand access outside the mapped image,
//! a corrupt workload trace) surface as typed [`CdpError`] values instead
//! of panics, so the experiment harness can report them per sweep cell
//! and keep going.

use std::fmt;

use crate::addr::VirtAddr;
use crate::validate::ConfigError;

/// Everything that can go irrecoverably wrong in a simulation run.
///
/// Speculative failures (an unmapped prefetch candidate, a dropped
/// request) are *not* errors — they are squashed and counted, exactly as
/// the hardware would. `CdpError` covers only the demand path and the
/// harness around it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CdpError {
    /// The system configuration failed structural validation.
    Config(ConfigError),
    /// A demand access (load/store in the trace) touched an unmapped
    /// page. Demand traces only touch mapped memory by construction, so
    /// this indicates a corrupt image or an injected fault.
    UnmappedAccess {
        /// Program counter of the faulting uop.
        pc: u32,
        /// The unmapped virtual address.
        addr: VirtAddr,
    },
    /// A hardware page walk on the demand path failed even though the
    /// mapping may exist (e.g. an injected TLB-walk fault).
    TranslationFailure {
        /// The virtual address whose walk failed.
        addr: VirtAddr,
    },
    /// A workload image failed validation: a trace uop targets memory
    /// outside the mapped image.
    CorruptWorkload {
        /// Benchmark name (Table 2 spelling).
        benchmark: String,
        /// Index of the first offending uop.
        uop: usize,
        /// The unmapped address it targets.
        addr: VirtAddr,
    },
    /// A checkpoint snapshot could not be decoded or does not belong to
    /// this run (see [`SnapshotError`]). Resume refuses rather than
    /// continuing from a silently-wrong state.
    Snapshot(SnapshotError),
    /// The persistent result store failed (see [`StoreError`]). Store
    /// failures never abort a simulation — a cell recomputes instead —
    /// but maintenance tools (`store-fsck`, GC) surface them typed.
    Store(StoreError),
}

/// Everything that can go wrong decoding a checkpoint snapshot.
///
/// The snapshot codec (crate `cdp-snap`) is defensive by contract: a
/// truncated file, a flipped byte, a snapshot from a different
/// configuration, or a snapshot from a future format version must all
/// surface as one of these typed values — never a panic, and never a
/// resume that silently diverges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The snapshot was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version number found in the header.
        found: u32,
        /// Highest version this build can decode.
        supported: u32,
    },
    /// The snapshot's run fingerprint does not match the run being
    /// resumed (different config, workload, or fault plan).
    FingerprintMismatch {
        /// Fingerprint the resuming run expects.
        expected: u64,
        /// Fingerprint stored in the snapshot header.
        found: u64,
    },
    /// The byte stream ended before the decoder got what the length
    /// prefixes promised.
    Truncated {
        /// What the decoder was reading when the bytes ran out.
        context: &'static str,
    },
    /// A section's payload does not hash to its stored checksum.
    ChecksumMismatch {
        /// Tag of the damaged section.
        tag: u32,
    },
    /// A required section is absent from the snapshot.
    MissingSection {
        /// Tag of the absent section.
        tag: u32,
    },
    /// A decoded value is structurally impossible for the run being
    /// resumed (wrong table size, invalid enum tag, out-of-range index).
    Corrupt {
        /// What the decoder was validating when it rejected the value.
        context: &'static str,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a cdp snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot version {found} unsupported (this build reads <= {supported})")
            }
            SnapshotError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different run: fingerprint {found:#018x}, expected {expected:#018x}"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { tag } => {
                write!(f, "snapshot section {tag} failed its checksum")
            }
            SnapshotError::MissingSection { tag } => {
                write!(f, "snapshot is missing required section {tag}")
            }
            SnapshotError::Corrupt { context } => {
                write!(f, "snapshot is corrupt: invalid {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for CdpError {
    fn from(e: SnapshotError) -> Self {
        CdpError::Snapshot(e)
    }
}

/// Everything that can go wrong in the persistent result store
/// (crate `cdp-store`).
///
/// The store's failure contract mirrors the snapshot codec's: a damaged
/// entry surfaces as a typed value and is quarantined — never replayed,
/// never a panic. Filesystem failures (full disk, failed rename) degrade
/// a write to a counted no-op; the in-memory tier and recomputation keep
/// the run correct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed (short write, ENOSPC, failed
    /// rename, unreadable directory, ...).
    Io {
        /// The operation that failed (`write`, `rename`, `read`, ...).
        op: &'static str,
        /// The underlying error, rendered (std `io::Error` is neither
        /// `Clone` nor `Eq`, so the message is carried instead).
        detail: String,
    },
    /// An entry's framing or payload failed validation — the store
    /// reuses the snapshot codec, so the damage class is a
    /// [`SnapshotError`].
    Entry(SnapshotError),
    /// The store's maintenance lock is held by another process.
    Locked {
        /// Contents of the lock file (owner pid, when readable).
        owner: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, detail } => write!(f, "store {op} failed: {detail}"),
            StoreError::Entry(e) => write!(f, "store entry rejected: {e}"),
            StoreError::Locked { owner } => {
                write!(f, "store lock held by another process ({owner})")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Entry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Entry(e)
    }
}

impl From<StoreError> for CdpError {
    fn from(e: StoreError) -> Self {
        CdpError::Store(e)
    }
}

impl fmt::Display for CdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdpError::Config(e) => write!(f, "invalid system configuration: {e}"),
            CdpError::UnmappedAccess { pc, addr } => {
                write!(f, "demand access at pc {pc:#x} to unmapped page {addr}")
            }
            CdpError::TranslationFailure { addr } => {
                write!(f, "demand page walk failed for {addr}")
            }
            CdpError::CorruptWorkload {
                benchmark,
                uop,
                addr,
            } => {
                write!(f, "corrupt workload {benchmark}: uop {uop} targets unmapped {addr}")
            }
            CdpError::Snapshot(e) => write!(f, "checkpoint snapshot rejected: {e}"),
            CdpError::Store(e) => write!(f, "result store failed: {e}"),
        }
    }
}

impl std::error::Error for CdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdpError::Config(e) => Some(e),
            CdpError::Snapshot(e) => Some(e),
            CdpError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for CdpError {
    fn from(e: ConfigError) -> Self {
        CdpError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_fault_site() {
        let e = CdpError::UnmappedAccess {
            pc: 0x40,
            addr: VirtAddr(0x7777_0000),
        };
        let s = e.to_string();
        assert!(s.contains("0x40"), "{s}");
        assert!(s.contains("7777"), "{s}");
    }

    #[test]
    fn corrupt_workload_names_benchmark_and_uop() {
        let e = CdpError::CorruptWorkload {
            benchmark: "slsb".into(),
            uop: 42,
            addr: VirtAddr(0x1234_0000),
        };
        let s = e.to_string();
        assert!(s.contains("slsb") && s.contains("uop 42"), "{s}");
    }

    #[test]
    fn config_errors_convert_and_chain() {
        let c = ConfigError::AdaptiveWithoutContent;
        let e: CdpError = c.clone().into();
        assert_eq!(e, CdpError::Config(c));
        assert!(std::error::Error::source(&e).is_some());
        let u = CdpError::TranslationFailure {
            addr: VirtAddr(0x10),
        };
        assert!(std::error::Error::source(&u).is_none());
    }
}
