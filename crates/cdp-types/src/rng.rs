//! Small, deterministic, dependency-free PRNG for workload generation.
//!
//! The simulator needs reproducible pseudo-random streams (workload image
//! layout, probe sequences, branch noise) but nothing cryptographic, so a
//! xoshiro256++ generator seeded through SplitMix64 is plenty: it is the
//! standard non-crypto generator pairing (Blackman & Vigna), passes BigCrush,
//! and — unlike an external `rand` dependency — builds with no registry
//! access. Streams are stable across platforms and releases: a given seed
//! always produces the same sequence.
//!
//! Note: this generator replaced `rand::rngs::StdRng` (ChaCha12), so
//! workload images differ from pre-replacement builds even at identical
//! seeds. All cross-configuration comparisons remain valid because every
//! configuration sees the same regenerated stream.
//!
//! # Examples
//!
//! ```
//! use cdp_types::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range_u32(0..10);
//! assert!(a < 10);
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.gen_range_u32(0..10), a, "streams are reproducible");
//! ```

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ generator with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Seeds the generator from a single `u64` by expanding it through
    /// SplitMix64 (the seeding procedure recommended by the xoshiro
    /// authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The full generator state, for checkpointing a stream mid-sequence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`Rng::state`]; the restored generator
    /// continues the original sequence exactly.
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `u64` below `bound` (> 0) via the widening-multiply method.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire multiply-shift with rejection of the biased tail.
        let mut x = self.next_u64();
        let mut m = x as u128 * bound as u128;
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = x as u128 * bound as u128;
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_usize(&mut self, r: Range<usize>) -> usize {
        assert!(r.start < r.end, "empty range");
        r.start + self.below((r.end - r.start) as u64) as usize
    }

    /// Uniform `u32` in a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_u32(&mut self, r: Range<u32>) -> u32 {
        assert!(r.start < r.end, "empty range");
        r.start + self.below((r.end - r.start) as u64) as u32
    }

    /// Uniform `u8` in a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_u8(&mut self, r: Range<u8>) -> u8 {
        assert!(r.start < r.end, "empty range");
        r.start + self.below((r.end - r.start) as u64) as u8
    }

    /// Uniform `u32` in an inclusive range.
    #[inline]
    pub fn gen_range_u32_incl(&mut self, r: RangeInclusive<u32>) -> u32 {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty range");
        lo + self.below(hi as u64 - lo as u64 + 1) as u32
    }

    /// Uniform `usize` in an inclusive range.
    #[inline]
    pub fn gen_range_usize_incl(&mut self, r: RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty range");
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, s: &mut [T]) {
        for i in (1..s.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            s.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_xoshiro256pp() {
        // Reference values from the public-domain xoshiro256++ C source,
        // state seeded with SplitMix64(0).
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
    }

    #[test]
    fn seeds_give_reproducible_distinct_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(123);
        for _ in 0..2000 {
            assert!(rng.gen_range_usize(3..17) < 17);
            assert!(rng.gen_range_usize(3..17) >= 3);
            let v = rng.gen_range_u32_incl(5..=9);
            assert!((5..=9).contains(&v));
            let b = rng.gen_range_u8(0..4);
            assert!(b < 4);
        }
        // Single-value inclusive range is fine.
        assert_eq!(rng.gen_range_u32_incl(4..=4), 4);
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range_usize(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.next_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }
}
