//! Address newtypes.
//!
//! The simulator models a 32-bit virtual address space (the paper targets
//! IA-32) and a 32-bit physical address space. Using distinct newtypes keeps
//! virtually-indexed structures (L1, TLB, the content prefetcher's
//! virtual-address-matching heuristic) statically separated from physically
//! indexed ones (the unified L2, the bus, DRAM).

use core::fmt;

use crate::{LINE_SIZE, PAGE_SIZE};

/// A 32-bit virtual address.
///
/// # Examples
///
/// ```
/// use cdp_types::VirtAddr;
/// let a = VirtAddr(0xdead_beef);
/// assert_eq!(a.page().0, 0xdead_b);
/// assert_eq!(a.page_offset(), 0xeef);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u32);

/// A 32-bit physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u32);

/// A line-aligned address (virtual or physical depending on context is
/// avoided: `LineAddr` always wraps a *physical* line-aligned address, which
/// is what the L2, the MSHRs, the arbiters, and the bus operate on).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u32);

/// A virtual page number (address >> 12).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(pub u32);

const LINE_MASK: u32 = !(LINE_SIZE as u32 - 1);
const PAGE_SHIFT: u32 = PAGE_SIZE.trailing_zeros();

impl VirtAddr {
    /// The address of the cache line containing this address.
    #[inline]
    pub fn line(self) -> VirtAddr {
        VirtAddr(self.0 & LINE_MASK)
    }

    /// Byte offset of this address within its cache line.
    #[inline]
    pub fn line_offset(self) -> u32 {
        self.0 & (LINE_SIZE as u32 - 1)
    }

    /// The virtual page number containing this address.
    #[inline]
    pub fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset of this address within its page.
    #[inline]
    pub fn page_offset(self) -> u32 {
        self.0 & (PAGE_SIZE as u32 - 1)
    }

    /// Address `count` cache lines after this one (wrapping).
    #[inline]
    pub fn add_lines(self, count: i32) -> VirtAddr {
        VirtAddr(
            self.0
                .wrapping_add((count as i64 * LINE_SIZE as i64) as u32),
        )
    }

    /// Byte-offset addition (wrapping).
    #[inline]
    pub fn offset(self, bytes: i64) -> VirtAddr {
        VirtAddr(self.0.wrapping_add(bytes as u32))
    }

    /// Whether the low `bits` bits are zero (the content prefetcher's
    /// alignment test).
    #[inline]
    pub fn is_aligned_bits(self, bits: u32) -> bool {
        bits == 0 || self.0.trailing_zeros() >= bits
    }
}

impl PhysAddr {
    /// The physical line-aligned address containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 & LINE_MASK)
    }

    /// The physical frame number containing this address.
    #[inline]
    pub fn frame(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// Byte offset of this address within its page frame.
    #[inline]
    pub fn page_offset(self) -> u32 {
        self.0 & (PAGE_SIZE as u32 - 1)
    }
}

impl LineAddr {
    /// Reconstruct a full physical address (identical value; lines are
    /// already addresses).
    #[inline]
    pub fn addr(self) -> PhysAddr {
        PhysAddr(self.0)
    }

    /// The line `count` lines after this one (wrapping).
    #[inline]
    pub fn add_lines(self, count: i32) -> LineAddr {
        LineAddr(
            self.0
                .wrapping_add((count as i64 * LINE_SIZE as i64) as u32),
        )
    }
}

impl PageNum {
    /// The base virtual address of this page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

impl From<u32> for VirtAddr {
    fn from(v: u32) -> Self {
        VirtAddr(v)
    }
}

impl From<u32> for PhysAddr {
    fn from(v: u32) -> Self {
        PhysAddr(v)
    }
}

macro_rules! impl_fmt {
    ($t:ty, $tag:literal) => {
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "({:#010x})"), self.0)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#010x}", self.0)
            }
        }
        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
    };
}

impl_fmt!(VirtAddr, "VirtAddr");
impl_fmt!(PhysAddr, "PhysAddr");
impl_fmt!(LineAddr, "LineAddr");

impl fmt::Debug for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageNum({:#07x})", self.0)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#07x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_alignment() {
        let a = VirtAddr(0x1000_00ff);
        assert_eq!(a.line(), VirtAddr(0x1000_00c0));
        assert_eq!(a.line_offset(), 0x3f);
        assert_eq!(a.line().line_offset(), 0);
    }

    #[test]
    fn page_math() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.page(), PageNum(0x12345));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.page().base(), VirtAddr(0x1234_5000));
    }

    #[test]
    fn add_lines_forward_and_back() {
        let a = VirtAddr(0x1000_0000);
        assert_eq!(a.add_lines(1), VirtAddr(0x1000_0040));
        assert_eq!(a.add_lines(-1), VirtAddr(0x0fff_ffc0));
        let l = LineAddr(0x40);
        assert_eq!(l.add_lines(2), LineAddr(0xc0));
    }

    #[test]
    fn alignment_bits() {
        assert!(VirtAddr(0x1000).is_aligned_bits(2));
        assert!(VirtAddr(0x1002).is_aligned_bits(1));
        assert!(!VirtAddr(0x1002).is_aligned_bits(2));
        assert!(!VirtAddr(0x1001).is_aligned_bits(1));
        // Zero alignment bits accepts everything.
        assert!(VirtAddr(0x1001).is_aligned_bits(0));
    }

    #[test]
    fn phys_frame() {
        let p = PhysAddr(0x0042_3abc);
        assert_eq!(p.frame(), 0x423);
        assert_eq!(p.page_offset(), 0xabc);
        assert_eq!(p.line(), LineAddr(0x0042_3a80));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VirtAddr(0x10)), "0x00000010");
        assert_eq!(format!("{:?}", LineAddr(0x40)), "LineAddr(0x00000040)");
    }
}
