//! System configuration.
//!
//! [`SystemConfig::asplos2002`] reproduces Table 1 of the paper (the 4-GHz
//! configuration) plus the tuned prefetcher parameters established in §4:
//! 8 compare bits, 4 filter bits, 1 alignment bit, 2-byte scan step, depth
//! threshold 3, path reinforcement on, and 0 previous / 3 next lines.

use core::fmt;

/// Parameters of the out-of-order core (Table 1, "Processor" block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Uops fetched per cycle (Table 1: 3).
    pub fetch_width: usize,
    /// Uops issued to functional units per cycle (Table 1: 3).
    pub issue_width: usize,
    /// Uops retired per cycle (Table 1: 3).
    pub retire_width: usize,
    /// Branch misprediction penalty in cycles (Table 1: 28).
    pub mispredict_penalty: u64,
    /// Reorder buffer entries (Table 1: 128).
    pub rob_size: usize,
    /// Store buffer entries (Table 1: 32).
    pub store_buffer: usize,
    /// Load buffer entries (Table 1: 48).
    pub load_buffer: usize,
    /// Integer functional units (Table 1: 3).
    pub int_units: usize,
    /// Memory ports (Table 1: 2).
    pub mem_units: usize,
    /// Floating-point units (Table 1: 1).
    pub fp_units: usize,
    /// log2 of gshare pattern-history-table entries (Table 1: 16 K = 2^14).
    pub gshare_log2_entries: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 3,
            issue_width: 3,
            retire_width: 3,
            mispredict_penalty: 28,
            rob_size: 128,
            store_buffer: 32,
            load_buffer: 48,
            int_units: 3,
            mem_units: 2,
            fp_units: 1,
            gshare_log2_entries: 14,
        }
    }
}

/// Cache replacement policy.
///
/// The paper's caches are LRU (its Markov STAB explicitly so); the other
/// policies support sensitivity studies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// First-in first-out (insertion order, untouched by hits).
    Fifo,
    /// Pseudo-random (deterministic xorshift, seeded per cache).
    Random,
}

/// Parameters of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Set associativity.
    pub associativity: usize,
    /// Line size in bytes (64 throughout the paper).
    pub line_size: usize,
    /// Load-to-use latency of this level in cycles.
    pub latency: u64,
    /// Victim selection policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Number of sets implied by size / associativity / line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two (checked at cache construction).
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_size)
    }

    /// The paper's 32 KB, 8-way, 3-cycle L1 data cache.
    pub fn l1d_asplos2002() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            associativity: 8,
            line_size: crate::LINE_SIZE,
            latency: 3,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// The paper's 1 MB, 8-way, 16-cycle unified L2.
    pub fn ul2_asplos2002() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            associativity: 8,
            line_size: crate::LINE_SIZE,
            latency: 16,
            replacement: ReplacementPolicy::Lru,
        }
    }
}

/// TLB geometry (Table 1: DTLB 64-entry 4-way, ITLB 128-entry "128-way",
/// i.e. fully associative).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity (== `entries` for fully associative).
    pub associativity: usize,
}

impl TlbConfig {
    /// The paper's 64-entry, 4-way data TLB.
    pub fn dtlb_asplos2002() -> Self {
        TlbConfig {
            entries: 64,
            associativity: 4,
        }
    }

    /// The paper's 128-entry, fully-associative instruction TLB.
    pub fn itlb_asplos2002() -> Self {
        TlbConfig {
            entries: 128,
            associativity: 128,
        }
    }
}

/// Bus / DRAM parameters (Table 1, "Busses" block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BusConfig {
    /// Round-trip latency of an L2-miss to DRAM in processor cycles
    /// (Table 1: 460 = 240 chipset + 220 DRAM).
    pub latency: u64,
    /// Processor cycles of bus occupancy per 64-byte line transfer.
    /// Table 1: 4.26 GB/s at 4 GHz -> 64 B / 4.26 GB/s = 15 ns = 60 cycles.
    pub cycles_per_line: u64,
    /// Bus queue entries (Table 1: 32).
    pub queue_size: usize,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            latency: 460,
            cycles_per_line: 60,
            queue_size: 32,
        }
    }
}

/// Arbiter queue sizing (Table 1: L2 queue 128 entries; bus queue is in
/// [`BusConfig`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArbiterConfig {
    /// L2 request queue entries.
    pub l2_queue_size: usize,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig { l2_queue_size: 128 }
    }
}

/// The virtual-address-matching heuristic knobs (§3.3, Figures 2, 7, 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VamConfig {
    /// Upper bits of the candidate that must equal the trigger effective
    /// address ("compare bits", N). Paper's tuned value: 8.
    pub compare_bits: u32,
    /// Bits immediately below the compare bits that rescue candidates in the
    /// all-zeros / all-ones regions ("filter bits", M). Paper: 4.
    pub filter_bits: u32,
    /// Low-order bits of a candidate that must be zero ("align bits").
    /// Paper: 1 (2-byte alignment).
    pub align_bits: u32,
    /// Bytes stepped between successive scan positions. Paper: 2.
    pub scan_step: usize,
}

impl VamConfig {
    /// The paper's tuned configuration: 8 compare bits, 4 filter bits,
    /// 1 align bit, 2-byte scan step ("8.4.1.2" in Figure 8).
    pub fn tuned() -> Self {
        VamConfig {
            compare_bits: 8,
            filter_bits: 4,
            align_bits: 1,
            scan_step: 2,
        }
    }

    /// Short "N.M.A.S" label used in Figures 7 and 8 (e.g. `8.4.1.2`).
    pub fn label(&self) -> String {
        format!(
            "{}.{}.{}.{}",
            self.compare_bits, self.filter_bits, self.align_bits, self.scan_step
        )
    }
}

impl Default for VamConfig {
    fn default() -> Self {
        VamConfig::tuned()
    }
}

/// Content-directed prefetcher configuration (§3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContentConfig {
    /// Pointer-recognition heuristic.
    pub vam: VamConfig,
    /// Prefetch chains deeper than this are dropped (§3.4.1). Paper's best:
    /// 3 with reinforcement.
    pub depth_threshold: u8,
    /// Whether the feedback-directed path-reinforcement mechanism (§3.4.2)
    /// is enabled (stores depth bits per L2 line and rescans on demand hit).
    pub reinforcement: bool,
    /// Rescan only when the incoming depth is at least this much smaller
    /// than the stored depth (Figure 4(c) shows margin 2 halving rescans).
    /// The basic reinforcement of Figure 4(b) is margin 1.
    pub reinforcement_margin: u8,
    /// Cache lines *before* the candidate line also prefetched (Figure 9's
    /// "p" axis). Paper's best: 0.
    pub prev_lines: u32,
    /// Cache lines *after* the candidate line also prefetched (Figure 9's
    /// "n" axis, "next-line" width). Paper's best: 3.
    pub next_lines: u32,
}

impl ContentConfig {
    /// The paper's best configuration: depth threshold 3, reinforcement on,
    /// p0.n3 (§4.2.1: 12.6% speedup).
    pub fn tuned() -> Self {
        ContentConfig {
            vam: VamConfig::tuned(),
            depth_threshold: 3,
            reinforcement: true,
            reinforcement_margin: 1,
            prev_lines: 0,
            next_lines: 3,
        }
    }

    /// The stateless variant: no reinforcement bits in the cache
    /// (§1: 11.3% speedup "using no additional processor state").
    /// Uses a deeper threshold because, without reinforcement, longer chains
    /// perform better (Figure 9's "nr" curves).
    pub fn stateless() -> Self {
        ContentConfig {
            reinforcement: false,
            depth_threshold: 9,
            ..ContentConfig::tuned()
        }
    }
}

impl Default for ContentConfig {
    fn default() -> Self {
        ContentConfig::tuned()
    }
}

/// Stride prefetcher (reference prediction table) configuration.
///
/// The paper only states that the baseline includes a "hardware stride
/// prefetcher" that monitors L1 miss traffic (§3.5); we use a classic
/// PC-indexed reference-prediction table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StrideConfig {
    /// Number of table entries.
    pub entries: usize,
    /// How many strides ahead to prefetch once a steady stride is locked.
    pub degree: u32,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            entries: 256,
            degree: 6,
        }
    }
}

/// Stream-buffer prefetcher configuration (Jouppi, the paper's
/// reference \[11\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of concurrent streams (Jouppi used 4).
    pub streams: usize,
    /// Lines each stream runs ahead of its last-confirmed miss.
    pub depth: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            streams: 4,
            depth: 4,
        }
    }
}

/// Run-time adaptive-heuristic controller settings (§4.1 future work):
/// every `window` issued content prefetches, the controller evaluates the
/// window's accuracy and nudges one VAM/width knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Issued-prefetch window between adjustments.
    pub window: u64,
    /// Get conservative below this useful/issued ratio.
    pub low_water: f64,
    /// Get aggressive above this ratio.
    pub high_water: f64,
    /// Width never exceeds this.
    pub max_next_lines: u32,
    /// Compare bits stay within `[min_compare_bits, max_compare_bits]`.
    pub min_compare_bits: u32,
    /// Upper compare-bit bound.
    pub max_compare_bits: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 512,
            low_water: 0.20,
            high_water: 0.45,
            max_next_lines: 4,
            min_compare_bits: 8,
            max_compare_bits: 12,
        }
    }
}

/// Markov prefetcher configuration (§5, Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarkovConfig {
    /// State-transition-table capacity in bytes (Table 3: 512 KB or 128 KB;
    /// `usize::MAX` models the unbounded `markov_big` configuration).
    pub stab_bytes: usize,
    /// STAB associativity (Table 3: 16-way).
    pub associativity: usize,
    /// Successors stored (and prefetched) per miss address ("fan out of
    /// four").
    pub fanout: usize,
}

impl MarkovConfig {
    /// Approximate bytes consumed by one STAB entry: a 4-byte tag plus
    /// `fanout` 4-byte successor line addresses.
    pub fn entry_bytes(&self) -> usize {
        4 + 4 * self.fanout
    }

    /// Entries that fit in the byte budget (at least one set's worth).
    pub fn num_entries(&self) -> usize {
        if self.stab_bytes == usize::MAX {
            // markov_big: effectively unbounded.
            1 << 24
        } else {
            (self.stab_bytes / self.entry_bytes()).max(self.associativity)
        }
    }

    /// Table 3's 512 KB configuration (paired with a 512 KB UL2).
    pub fn half() -> Self {
        MarkovConfig {
            stab_bytes: 512 * 1024,
            associativity: 16,
            fanout: 4,
        }
    }

    /// Table 3's 128 KB configuration (paired with an 896 KB UL2).
    pub fn eighth() -> Self {
        MarkovConfig {
            stab_bytes: 128 * 1024,
            associativity: 16,
            fanout: 4,
        }
    }

    /// The unbounded `markov_big` configuration (full 1 MB UL2 retained).
    pub fn unbounded() -> Self {
        MarkovConfig {
            stab_bytes: usize::MAX,
            associativity: 16,
            fanout: 4,
        }
    }
}

/// Key space of the delta-Markov prefetcher's transition table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeltaKeySpace {
    /// Keys are absolute miss-line addresses. With `history == 1` this
    /// degenerates to the classic 1-history Markov STAB and must produce
    /// the exact same prediction stream (the differential-test anchor).
    Address,
    /// Keys are recent line *deltas* (Pangloss, arXiv 1906.00877): the
    /// table correlates delta history with the next delta, which compacts
    /// regular non-unit-stride and mixed patterns into far fewer entries
    /// than absolute addresses need.
    #[default]
    Delta,
}

/// Delta-space Markov prefetcher configuration (the Pangloss-style
/// tournament comparator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Transition-table capacity in bytes (the engine's silicon budget).
    pub table_bytes: usize,
    /// Table associativity.
    pub associativity: usize,
    /// Successor slots stored (and prefetched) per key.
    pub fanout: usize,
    /// Delta-history depth of the key (1 = first-order chain).
    pub history: usize,
    /// Whether keys are absolute addresses or delta history.
    pub key_space: DeltaKeySpace,
}

impl DeltaConfig {
    /// Bytes consumed by one table entry.
    ///
    /// Address keys cost a 4-byte line tag plus `fanout` 4-byte successor
    /// lines (identical to [`MarkovConfig::entry_bytes`], so equal byte
    /// budgets mean equal entry counts in the compat configuration).
    /// Delta keys are compact: 2 bytes per history slot plus 3 bytes
    /// (2-byte delta + 1-byte confidence) per successor.
    pub fn entry_bytes(&self) -> usize {
        match self.key_space {
            DeltaKeySpace::Address => 4 + 4 * self.fanout,
            DeltaKeySpace::Delta => 2 * self.history.max(1) + 3 * self.fanout,
        }
    }

    /// Entries that fit in the byte budget (at least one set's worth).
    pub fn num_entries(&self) -> usize {
        (self.table_bytes / self.entry_bytes()).max(self.associativity)
    }

    /// A Pangloss-style delta-space configuration at `table_bytes`.
    pub fn pangloss(table_bytes: usize) -> Self {
        DeltaConfig {
            table_bytes,
            associativity: 16,
            fanout: 4,
            history: 2,
            key_space: DeltaKeySpace::Delta,
        }
    }

    /// The address-keyed, history-1 compatibility configuration: must be
    /// prediction-equivalent to [`MarkovConfig`] at the same byte budget.
    pub fn markov_compat(table_bytes: usize) -> Self {
        DeltaConfig {
            table_bytes,
            associativity: 16,
            fanout: 4,
            history: 1,
            key_space: DeltaKeySpace::Address,
        }
    }
}

/// Number of hashed feature tables the perceptron filter combines
/// (line, page, and originating-engine features).
pub const PERCEPTRON_FEATURES: usize = 3;

/// Perceptron prefetch-confidence filter configuration (arXiv 1712.00905):
/// gates any engine's issue stream on a learned accuracy estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Weight rows per feature table ([`PERCEPTRON_FEATURES`] tables of
    /// signed-byte weights; not required to be a power of two, so byte
    /// budgets can be matched exactly).
    pub entries_per_feature: usize,
    /// Issue a prefetch when the summed weights reach this value.
    pub threshold: i32,
    /// Recently-rejected line tags kept to detect false negatives: a
    /// demand miss on a rejected line trains the filter back up.
    pub reject_entries: usize,
}

impl PerceptronConfig {
    /// Total table storage in bytes: one signed byte per weight plus a
    /// 4-byte tag per reject-buffer slot.
    pub fn table_bytes(&self) -> usize {
        PERCEPTRON_FEATURES * self.entries_per_feature + 4 * self.reject_entries
    }

    /// Smallest meaningful geometry (one weight row per feature, no
    /// reject buffer).
    pub const MIN_BYTES: usize = PERCEPTRON_FEATURES;

    /// Sizes the weight tables to land exactly on `budget` bytes
    /// (64-slot reject buffer, remainder split across the feature
    /// tables). Returns `None` when the budget cannot hold the minimum
    /// geometry.
    pub fn with_budget(budget: usize) -> Option<Self> {
        let reject_entries = if budget >= 512 { 64 } else { 0 };
        let weight_bytes = budget.checked_sub(4 * reject_entries)?;
        let entries_per_feature = weight_bytes / PERCEPTRON_FEATURES;
        if entries_per_feature == 0 {
            return None;
        }
        Some(PerceptronConfig {
            entries_per_feature,
            threshold: 0,
            reject_entries,
        })
    }
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            entries_per_feature: 1024,
            threshold: 0,
            reject_entries: 64,
        }
    }
}

/// Pointer-chase / jump-pointer prefetcher configuration: learns
/// node-to-node jump targets of linked traversals and chases them ahead
/// of the demand stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JumpConfig {
    /// Jump-table capacity in bytes (the engine's silicon budget).
    pub table_bytes: usize,
    /// Jump-table associativity.
    pub associativity: usize,
    /// Hops chased through the table per triggering miss.
    pub chase_depth: u32,
    /// Pointer-recognition heuristic used when harvesting jump targets
    /// from filled lines.
    pub vam: VamConfig,
}

impl JumpConfig {
    /// Bytes per jump-table entry: 4-byte node-line tag + 4-byte target.
    pub fn entry_bytes(&self) -> usize {
        8
    }

    /// Entries that fit in the byte budget (at least one set's worth).
    pub fn num_entries(&self) -> usize {
        (self.table_bytes / self.entry_bytes()).max(self.associativity)
    }

    /// A jump-pointer table at `table_bytes` with depth-2 chasing.
    pub fn sized(table_bytes: usize) -> Self {
        JumpConfig {
            table_bytes,
            associativity: 8,
            chase_depth: 2,
            vam: VamConfig::tuned(),
        }
    }
}

/// Which prefetchers are plugged into the memory system.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PrefetchersConfig {
    /// The baseline stride prefetcher. `None` disables it (used only for
    /// sanity experiments; every paper number keeps it on).
    pub stride: Option<StrideConfig>,
    /// The content-directed prefetcher.
    pub content: Option<ContentConfig>,
    /// The Markov prefetcher (§5 comparison only).
    pub markov: Option<MarkovConfig>,
    /// Jouppi stream buffers (optional second baseline; the paper's
    /// reference \[11\]).
    pub stream: Option<StreamConfig>,
    /// Run-time adaptation of the content prefetcher's knobs (requires
    /// `content`; §4.1 future work).
    pub adaptive: Option<AdaptiveConfig>,
    /// The delta-space Markov prefetcher (tournament comparator).
    pub delta: Option<DeltaConfig>,
    /// The pointer-chase/jump-pointer prefetcher (tournament comparator).
    pub jump: Option<JumpConfig>,
    /// Perceptron confidence filter gating every engine's issue stream.
    pub perceptron: Option<PerceptronConfig>,
}

/// Complete system configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub ul2: CacheConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Bus and DRAM.
    pub bus: BusConfig,
    /// Arbiter queue sizes.
    pub arbiters: ArbiterConfig,
    /// Plugged prefetchers.
    pub prefetchers: PrefetchersConfig,
    /// Uops to execute before statistics collection starts (§2.2: the paper
    /// warms up for ~7.5 M uops; runs here are smaller, so this scales).
    pub warmup_uops: u64,
    /// Model dirty-line writebacks: evicting a line a store touched costs
    /// one (low-priority) bus transfer. Off by default — the paper's
    /// evaluation does not isolate writeback traffic, and the headline
    /// calibration was done without it; turn it on for bandwidth studies.
    pub model_writebacks: bool,
}

impl SystemConfig {
    /// The paper's Table 1 baseline: stride prefetcher only.
    pub fn asplos2002() -> Self {
        SystemConfig {
            core: CoreConfig::default(),
            l1d: CacheConfig::l1d_asplos2002(),
            ul2: CacheConfig::ul2_asplos2002(),
            dtlb: TlbConfig::dtlb_asplos2002(),
            bus: BusConfig::default(),
            arbiters: ArbiterConfig::default(),
            prefetchers: PrefetchersConfig {
                stride: Some(StrideConfig::default()),
                ..PrefetchersConfig::default()
            },
            warmup_uops: 0,
            model_writebacks: false,
        }
    }

    /// The baseline plus the tuned content-directed prefetcher.
    pub fn with_content() -> Self {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig::tuned());
        cfg
    }

    /// The baseline with a Markov prefetcher and UL2 shrunk by the STAB's
    /// silicon budget (§5's equal-resource methodology). `ul2_bytes` is the
    /// remaining UL2 capacity (512 KB or 896 KB per Table 3); `assoc` its
    /// associativity (8 and 7 respectively).
    pub fn with_markov(markov: MarkovConfig, ul2_bytes: usize, assoc: usize) -> Self {
        let mut cfg = SystemConfig::asplos2002();
        cfg.ul2.size_bytes = ul2_bytes;
        cfg.ul2.associativity = assoc;
        cfg.prefetchers.markov = Some(markov);
        cfg
    }

    /// The baseline plus a delta-space Markov prefetcher (tournament
    /// comparator; the UL2 keeps its Table 1 geometry — equal-silicon
    /// comparisons hold the *table* budget constant across entrants).
    pub fn with_delta(delta: DeltaConfig) -> Self {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.delta = Some(delta);
        cfg
    }

    /// The baseline plus a pointer-chase/jump-pointer prefetcher.
    pub fn with_jump(jump: JumpConfig) -> Self {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.jump = Some(jump);
        cfg
    }

    /// Adds a perceptron confidence filter in front of every configured
    /// engine's issue stream (builder-style, for hybrid configurations).
    #[must_use]
    pub fn gated(mut self, perceptron: PerceptronConfig) -> Self {
        self.prefetchers.perceptron = Some(perceptron);
        self
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::asplos2002()
    }
}

impl fmt::Display for SystemConfig {
    /// Renders the configuration in the layout of the paper's Table 1.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Processor")?;
        writeln!(
            f,
            "  Width                  fetch {}, issue {}, retire {}",
            self.core.fetch_width, self.core.issue_width, self.core.retire_width
        )?;
        writeln!(
            f,
            "  Misprediction Penalty  {} cycles",
            self.core.mispredict_penalty
        )?;
        writeln!(
            f,
            "  Buffer Sizes           reorder {}, store {}, load {}",
            self.core.rob_size, self.core.store_buffer, self.core.load_buffer
        )?;
        writeln!(
            f,
            "  Functional Units       integer {}, memory {}, floating point {}",
            self.core.int_units, self.core.mem_units, self.core.fp_units
        )?;
        writeln!(
            f,
            "  Load-to-use Latencies  L1: {} cycles, L2: {} cycles",
            self.l1d.latency, self.ul2.latency
        )?;
        writeln!(
            f,
            "  Branch Predictor       {}K entry gshare",
            (1usize << self.core.gshare_log2_entries) / 1024
        )?;
        writeln!(f, "Busses")?;
        writeln!(f, "  L2 queue size          {} entries", self.arbiters.l2_queue_size)?;
        writeln!(f, "  Bus latency            {} processor cycles", self.bus.latency)?;
        writeln!(f, "  Bus queue size         {} entries", self.bus.queue_size)?;
        writeln!(
            f,
            "  Bus occupancy          {} cycles / 64B line",
            self.bus.cycles_per_line
        )?;
        writeln!(f, "Caches")?;
        writeln!(
            f,
            "  DTLB                   {} entry, {}-way associative",
            self.dtlb.entries, self.dtlb.associativity
        )?;
        writeln!(
            f,
            "  DL1 Cache              {} Kbytes, {}-way associative",
            self.l1d.size_bytes / 1024,
            self.l1d.associativity
        )?;
        writeln!(
            f,
            "  UL2 Cache              {} Kbytes, {}-way associative",
            self.ul2.size_bytes / 1024,
            self.ul2.associativity
        )?;
        writeln!(f, "  Line Size              {} bytes", self.l1d.line_size)?;
        write!(f, "  Page Size              {} Kbytes", crate::PAGE_SIZE / 1024)
    }
}

/// Bitmask selecting which trace-event categories the tracer records.
///
/// Categories map one-to-one onto the event taxonomy in `cdp-obs`:
/// VAM candidate classification, prefetch issue, prefetch drop, chain
/// depth transitions, reinforcement rescans, MSHR merges, and fault-latch
/// drains. The default selects everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceFilter {
    bits: u16,
}

impl TraceFilter {
    /// VAM candidate accept/reject events.
    pub const VAM: TraceFilter = TraceFilter { bits: 1 };
    /// Prefetch issue events.
    pub const ISSUE: TraceFilter = TraceFilter { bits: 1 << 1 };
    /// Prefetch drop events (resident, in-flight, unmapped, queue-full,
    /// too-deep).
    pub const DROP: TraceFilter = TraceFilter { bits: 1 << 2 };
    /// Chain depth transitions (reinforcement promotions).
    pub const DEPTH: TraceFilter = TraceFilter { bits: 1 << 3 };
    /// Reinforcement rescans.
    pub const RESCAN: TraceFilter = TraceFilter { bits: 1 << 4 };
    /// MSHR merges (demand or prefetch hitting an in-flight line).
    pub const MSHR: TraceFilter = TraceFilter { bits: 1 << 5 };
    /// Fault-latch drains (injected or detected memory faults).
    pub const FAULT: TraceFilter = TraceFilter { bits: 1 << 6 };

    /// Every category enabled.
    #[must_use]
    pub const fn all() -> Self {
        TraceFilter { bits: 0x7f }
    }

    /// No category enabled.
    #[must_use]
    pub const fn none() -> Self {
        TraceFilter { bits: 0 }
    }

    /// Union of two filters.
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        TraceFilter {
            bits: self.bits | other.bits,
        }
    }

    /// True when every category in `other` is enabled in `self`.
    #[must_use]
    pub const fn contains(self, other: Self) -> bool {
        self.bits & other.bits == other.bits
    }

    /// True when no category is enabled.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Parses a comma-separated category list, e.g. `"vam,drop,mshr"`.
    /// `"all"` selects every category.
    ///
    /// # Errors
    ///
    /// Returns the offending token when a category name is unknown.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut filter = TraceFilter::none();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let cat = match tok {
                "all" => TraceFilter::all(),
                "vam" => TraceFilter::VAM,
                "issue" => TraceFilter::ISSUE,
                "drop" => TraceFilter::DROP,
                "depth" => TraceFilter::DEPTH,
                "rescan" => TraceFilter::RESCAN,
                "mshr" => TraceFilter::MSHR,
                "fault" => TraceFilter::FAULT,
                other => {
                    return Err(format!(
                        "unknown trace category {other:?} (expected one of: \
                         all vam issue drop depth rescan mshr fault)"
                    ))
                }
            };
            filter = filter.union(cat);
        }
        if filter.is_empty() {
            return Err("trace filter selects no categories".to_string());
        }
        Ok(filter)
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::all()
    }
}

impl fmt::Display for TraceFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TraceFilter::all() {
            return write!(f, "all");
        }
        let names = [
            (TraceFilter::VAM, "vam"),
            (TraceFilter::ISSUE, "issue"),
            (TraceFilter::DROP, "drop"),
            (TraceFilter::DEPTH, "depth"),
            (TraceFilter::RESCAN, "rescan"),
            (TraceFilter::MSHR, "mshr"),
            (TraceFilter::FAULT, "fault"),
        ];
        let mut first = true;
        for (cat, name) in names {
            if self.contains(cat) {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Configuration for the ring-buffered event tracer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events; the oldest events are overwritten once the
    /// ring is full.
    pub capacity: usize,
    /// Record every `sample`-th eligible event (1 = record all).
    pub sample: u64,
    /// Which event categories to record.
    pub filter: TraceFilter,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 4096,
            sample: 1,
            filter: TraceFilter::all(),
        }
    }
}

/// Observability settings for a simulation run.
///
/// The default (`trace: None`, `metrics_window: None`) keeps the simulator
/// on its unobserved path: no tracer is installed, no per-window snapshots
/// are taken, and results are byte-identical to a plain run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsConfig {
    /// Event-tracing configuration; `None` disables tracing entirely.
    pub trace: Option<TraceConfig>,
    /// Metrics snapshot window in retired µops; `None` disables the
    /// time-series.
    pub metrics_window: Option<u64>,
    /// Collect latency-attribution histograms (load-to-use latency,
    /// prefetch issue-to-use distance, MSHR occupancy, ROB stall
    /// run-lengths) for the manifest's per-cell `profile` object.
    pub profile_hist: bool,
}

impl ObsConfig {
    /// True when any observability feature is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some() || self.metrics_window.is_some() || self.profile_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_filter_parse_and_display() {
        assert_eq!(TraceFilter::parse("all").unwrap(), TraceFilter::all());
        let f = TraceFilter::parse("vam, drop").unwrap();
        assert!(f.contains(TraceFilter::VAM));
        assert!(f.contains(TraceFilter::DROP));
        assert!(!f.contains(TraceFilter::ISSUE));
        assert_eq!(f.to_string(), "vam,drop");
        assert_eq!(TraceFilter::all().to_string(), "all");
        assert!(TraceFilter::parse("bogus").is_err());
        assert!(TraceFilter::parse("").is_err());
    }

    #[test]
    fn obs_config_default_is_off() {
        let obs = ObsConfig::default();
        assert!(!obs.is_enabled());
        assert!(ObsConfig {
            trace: Some(TraceConfig::default()),
            ..ObsConfig::default()
        }
        .is_enabled());
        assert!(ObsConfig {
            metrics_window: Some(65_536),
            ..ObsConfig::default()
        }
        .is_enabled());
        assert!(ObsConfig {
            profile_hist: true,
            ..ObsConfig::default()
        }
        .is_enabled());
        assert_eq!(TraceConfig::default().capacity, 4096);
        assert_eq!(TraceConfig::default().sample, 1);
    }

    #[test]
    fn table1_values() {
        let cfg = SystemConfig::asplos2002();
        assert_eq!(cfg.core.fetch_width, 3);
        assert_eq!(cfg.core.mispredict_penalty, 28);
        assert_eq!(cfg.core.rob_size, 128);
        assert_eq!(cfg.core.store_buffer, 32);
        assert_eq!(cfg.core.load_buffer, 48);
        assert_eq!(cfg.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1d.latency, 3);
        assert_eq!(cfg.ul2.size_bytes, 1024 * 1024);
        assert_eq!(cfg.ul2.latency, 16);
        assert_eq!(cfg.dtlb.entries, 64);
        assert_eq!(cfg.bus.latency, 460);
        assert_eq!(cfg.bus.queue_size, 32);
        assert_eq!(cfg.arbiters.l2_queue_size, 128);
        assert!(cfg.prefetchers.stride.is_some());
        assert!(cfg.prefetchers.content.is_none());
    }

    #[test]
    fn cache_geometry() {
        let l1 = CacheConfig::l1d_asplos2002();
        assert_eq!(l1.num_sets(), 64);
        let l2 = CacheConfig::ul2_asplos2002();
        assert_eq!(l2.num_sets(), 2048);
    }

    #[test]
    fn vam_tuned_label() {
        assert_eq!(VamConfig::tuned().label(), "8.4.1.2");
    }

    #[test]
    fn content_tuned_matches_paper() {
        let c = ContentConfig::tuned();
        assert_eq!(c.depth_threshold, 3);
        assert!(c.reinforcement);
        assert_eq!(c.prev_lines, 0);
        assert_eq!(c.next_lines, 3);
        let s = ContentConfig::stateless();
        assert!(!s.reinforcement);
        assert_eq!(s.depth_threshold, 9);
    }

    #[test]
    fn markov_budgets() {
        let half = MarkovConfig::half();
        assert_eq!(half.entry_bytes(), 20);
        assert_eq!(half.num_entries(), 512 * 1024 / 20);
        assert!(MarkovConfig::unbounded().num_entries() >= 1 << 24);
    }

    #[test]
    fn delta_budgets() {
        let compat = DeltaConfig::markov_compat(512 * 1024);
        assert_eq!(compat.entry_bytes(), MarkovConfig::half().entry_bytes());
        assert_eq!(compat.num_entries(), MarkovConfig::half().num_entries());
        let pangloss = DeltaConfig::pangloss(64 * 1024);
        // 2B/history-slot * 2 + 3B/successor * 4 = 16 bytes.
        assert_eq!(pangloss.entry_bytes(), 16);
        assert_eq!(pangloss.num_entries(), 64 * 1024 / 16);
    }

    #[test]
    fn perceptron_budget_is_exact() {
        for budget in [PERCEPTRON_FEATURES, 333, 512, 16 * 1024, 64 * 1024] {
            let p = PerceptronConfig::with_budget(budget).unwrap();
            assert!(p.table_bytes() <= budget, "{budget}");
            // Exact up to integer division across the feature tables.
            assert!(budget - p.table_bytes() < PERCEPTRON_FEATURES, "{budget}");
        }
        assert!(PerceptronConfig::with_budget(0).is_none());
        assert!(PerceptronConfig::with_budget(PERCEPTRON_FEATURES - 1).is_none());
    }

    #[test]
    fn jump_budgets() {
        let j = JumpConfig::sized(32 * 1024);
        assert_eq!(j.entry_bytes(), 8);
        assert_eq!(j.num_entries(), 4096);
    }

    #[test]
    fn zoo_system_constructors() {
        let d = SystemConfig::with_delta(DeltaConfig::pangloss(64 * 1024));
        assert!(d.prefetchers.delta.is_some());
        assert_eq!(d.ul2.size_bytes, 1024 * 1024);
        let j = SystemConfig::with_jump(JumpConfig::sized(64 * 1024));
        assert!(j.prefetchers.jump.is_some());
        let g = SystemConfig::with_content().gated(PerceptronConfig::default());
        assert!(g.prefetchers.perceptron.is_some());
        assert!(g.prefetchers.content.is_some());
    }

    #[test]
    fn markov_system_shrinks_ul2() {
        let cfg = SystemConfig::with_markov(MarkovConfig::eighth(), 896 * 1024, 7);
        assert_eq!(cfg.ul2.size_bytes, 896 * 1024);
        assert_eq!(cfg.ul2.associativity, 7);
        assert!(cfg.prefetchers.markov.is_some());
    }

    #[test]
    fn display_contains_table1_rows() {
        let s = SystemConfig::asplos2002().to_string();
        assert!(s.contains("fetch 3, issue 3, retire 3"));
        assert!(s.contains("28 cycles"));
        assert!(s.contains("460 processor cycles"));
        assert!(s.contains("1024 Kbytes, 8-way"));
    }
}
