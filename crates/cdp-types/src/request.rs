//! Memory-request descriptors and the priority lattice used by the L2 and
//! bus arbiters.
//!
//! The paper's arbiters "maintain a strict, priority-based ordering of
//! requests. Demand requests are given the highest priority, while stride
//! prefetcher requests are favored over content prefetcher requests because
//! of their higher accuracy" (§3.5). Content prefetches are further ordered
//! by their *request depth*: a depth-1 prefetch (triggered directly by a
//! demand fill) outranks a depth-3 chained prefetch.

use core::fmt;

/// Maximum representable request depth.
///
/// The paper stores the depth in the L2 line metadata using two bits
/// ("less than ½% space overhead when using two bits per cache line"),
/// which bounds the encodable depth at 3. Configurations with larger depth
/// thresholds (Figure 9 sweeps up to 9) use more bits; we allow up to 15.
pub const MAX_REQUEST_DEPTH: u8 = 15;

/// What kind of agent generated a memory request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RequestKind {
    /// A demand fetch from the core (load or store miss). Depth 0.
    Demand,
    /// A hardware page-table walk triggered by a TLB miss. Treated with
    /// demand priority; its fill data *bypasses* the content prefetcher
    /// (page tables are full of pointers and would explode the scanner).
    PageWalk,
    /// A request issued by the stride prefetcher.
    Stride,
    /// A request issued by the content-directed prefetcher, carrying its
    /// request depth (1 = triggered by a demand fill, 2+ = chained).
    Content {
        /// Links since a non-speculative request (§3.4.1).
        depth: u8,
    },
    /// A request issued by the Markov prefetcher (used only in the §5
    /// comparison configurations).
    Markov,
    /// A request issued by the delta-space Markov prefetcher (the
    /// Pangloss-style tournament comparator): predictions come from a
    /// compact delta-transition table rather than absolute miss addresses.
    Delta,
    /// A request issued by the pointer-chase/jump-pointer engine: the
    /// predicted next node of a linked traversal.
    Jump,
}

impl RequestKind {
    /// The request depth: 0 for non-speculative traffic, the chain depth for
    /// content prefetches, 1 for other prefetchers.
    #[inline]
    pub fn depth(self) -> u8 {
        match self {
            RequestKind::Demand | RequestKind::PageWalk => 0,
            RequestKind::Content { depth } => depth,
            RequestKind::Stride | RequestKind::Markov | RequestKind::Delta | RequestKind::Jump => 1,
        }
    }

    /// Whether this is speculative prefetch traffic (droppable by arbiters).
    #[inline]
    pub fn is_prefetch(self) -> bool {
        !matches!(self, RequestKind::Demand | RequestKind::PageWalk)
    }

    /// Arbiter priority for this request. Higher compares greater.
    #[inline]
    pub fn priority(self) -> Priority {
        match self {
            RequestKind::Demand | RequestKind::PageWalk => Priority(u8::MAX),
            RequestKind::Stride => Priority(200),
            RequestKind::Markov => Priority(190),
            // Tournament comparators slot between Markov and content:
            // delta-Markov carries history context (more accurate than
            // raw pointer guesses), so it outranks jump-pointer chases.
            RequestKind::Delta => Priority(185),
            RequestKind::Jump => Priority(180),
            // Content prefetches: shallower chains are less speculative and
            // therefore outrank deeper ones.
            RequestKind::Content { depth } => {
                Priority(100u8.saturating_sub(depth.min(MAX_REQUEST_DEPTH)))
            }
        }
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestKind::Demand => write!(f, "demand"),
            RequestKind::PageWalk => write!(f, "pagewalk"),
            RequestKind::Stride => write!(f, "stride"),
            RequestKind::Content { depth } => write!(f, "content(d{depth})"),
            RequestKind::Markov => write!(f, "markov"),
            RequestKind::Delta => write!(f, "delta"),
            RequestKind::Jump => write!(f, "jump"),
        }
    }
}

/// An arbiter priority. Bigger is more important. Demand traffic is always
/// `Priority::DEMAND`, which outranks every prefetch priority.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// The priority of demand (non-speculative) traffic.
    pub const DEMAND: Priority = Priority(u8::MAX);
    /// The lowest possible priority.
    pub const MIN: Priority = Priority(0);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Whether a data access reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Load,
    /// A data store (write-allocate: misses fetch the line like loads).
    Store,
}

impl AccessKind {
    /// True for stores.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_outranks_everything() {
        let demand = RequestKind::Demand.priority();
        for k in [
            RequestKind::Stride,
            RequestKind::Markov,
            RequestKind::Delta,
            RequestKind::Jump,
            RequestKind::Content { depth: 1 },
            RequestKind::Content { depth: 9 },
        ] {
            assert!(demand > k.priority(), "{k} must rank below demand");
        }
        assert_eq!(demand, Priority::DEMAND);
    }

    #[test]
    fn stride_outranks_content() {
        assert!(RequestKind::Stride.priority() > RequestKind::Content { depth: 1 }.priority());
    }

    #[test]
    fn comparator_engines_sit_between_markov_and_content() {
        assert!(RequestKind::Markov.priority() > RequestKind::Delta.priority());
        assert!(RequestKind::Delta.priority() > RequestKind::Jump.priority());
        assert!(RequestKind::Jump.priority() > RequestKind::Content { depth: 1 }.priority());
    }

    #[test]
    fn shallower_content_outranks_deeper() {
        for d in 1..MAX_REQUEST_DEPTH {
            assert!(
                RequestKind::Content { depth: d }.priority()
                    > RequestKind::Content { depth: d + 1 }.priority()
            );
        }
    }

    #[test]
    fn depth_accessor() {
        assert_eq!(RequestKind::Demand.depth(), 0);
        assert_eq!(RequestKind::PageWalk.depth(), 0);
        assert_eq!(RequestKind::Content { depth: 3 }.depth(), 3);
        assert_eq!(RequestKind::Stride.depth(), 1);
        assert_eq!(RequestKind::Delta.depth(), 1);
        assert_eq!(RequestKind::Jump.depth(), 1);
    }

    #[test]
    fn prefetch_classification() {
        assert!(!RequestKind::Demand.is_prefetch());
        assert!(!RequestKind::PageWalk.is_prefetch());
        assert!(RequestKind::Stride.is_prefetch());
        assert!(RequestKind::Markov.is_prefetch());
        assert!(RequestKind::Delta.is_prefetch());
        assert!(RequestKind::Jump.is_prefetch());
        assert!(RequestKind::Content { depth: 1 }.is_prefetch());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RequestKind::Content { depth: 2 }.to_string(), "content(d2)");
        assert_eq!(RequestKind::Delta.to_string(), "delta");
        assert_eq!(RequestKind::Jump.to_string(), "jump");
        assert_eq!(Priority(3).to_string(), "p3");
    }
}
