//! Shared vocabulary types for the content-directed data prefetching (CDP)
//! simulator.
//!
//! This crate defines the address newtypes, memory-request descriptors, and
//! configuration structures used by every other crate in the workspace. It
//! deliberately contains *no* behavior beyond address arithmetic so that the
//! memory system, the core model, and the prefetchers can all depend on it
//! without cycles.
//!
//! The simulated machine follows Table 1 of Cooksey, Jourdan & Grunwald,
//! *A Stateless, Content-Directed Data Prefetching Mechanism* (ASPLOS 2002):
//! a 4-GHz, 3-wide out-of-order IA-32-like core with a 32 KB L1 data cache,
//! a 1 MB unified L2, 64-byte lines, 4 KB pages, and a 460-cycle memory bus.
//!
//! # Examples
//!
//! ```
//! use cdp_types::{VirtAddr, LINE_SIZE};
//!
//! let a = VirtAddr(0x1000_1234);
//! assert_eq!(a.line().0, 0x1000_1200);
//! assert_eq!(a.line_offset(), 0x34 % LINE_SIZE as u32);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod error;
pub mod request;
pub mod rng;
pub mod validate;

pub use addr::{LineAddr, PageNum, PhysAddr, VirtAddr};
pub use error::{CdpError, SnapshotError, StoreError};
pub use config::{
    AdaptiveConfig, ArbiterConfig, BusConfig, CacheConfig, ContentConfig, CoreConfig, DeltaConfig,
    DeltaKeySpace, JumpConfig, MarkovConfig, ObsConfig, PerceptronConfig, PrefetchersConfig,
    ReplacementPolicy, StreamConfig, StrideConfig, SystemConfig, TlbConfig, TraceConfig,
    TraceFilter, VamConfig, PERCEPTRON_FEATURES,
};
pub use request::{AccessKind, Priority, RequestKind, MAX_REQUEST_DEPTH};
pub use validate::ConfigError;

/// Cache line size in bytes (Table 1: 64 bytes).
pub const LINE_SIZE: usize = 64;

/// Page size in bytes (Table 1: 4 KB).
pub const PAGE_SIZE: usize = 4096;

/// Size in bytes of an address-sized word scanned by the content prefetcher
/// (IA-32: 4 bytes).
pub const WORD_SIZE: usize = 4;

/// Number of address-sized words in one cache line.
pub const WORDS_PER_LINE: usize = LINE_SIZE / WORD_SIZE;
