//! Configuration validation.
//!
//! [`SystemConfig::validate`] checks every structural invariant the
//! simulator's components assert at construction time, returning a typed
//! [`ConfigError`] instead of panicking — the entry point for callers
//! that assemble configurations from user input.

use core::fmt;

use crate::{CacheConfig, SystemConfig};

/// A structural problem in a [`SystemConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A cache's size / associativity / line size do not divide evenly.
    CacheGeometry {
        /// Which cache ("L1D" or "UL2").
        cache: &'static str,
        /// The offending configuration.
        size_bytes: usize,
        /// Its associativity.
        associativity: usize,
        /// Its line size.
        line_size: usize,
    },
    /// A line size is not a power of two.
    LineSizeNotPowerOfTwo {
        /// Which cache.
        cache: &'static str,
        /// The offending line size.
        line_size: usize,
    },
    /// The L1 and L2 line sizes differ (fills copy whole lines between
    /// levels).
    MismatchedLineSizes {
        /// L1 line size.
        l1: usize,
        /// L2 line size.
        l2: usize,
    },
    /// TLB entries do not divide evenly into sets.
    TlbGeometry {
        /// Total entries.
        entries: usize,
        /// Associativity.
        associativity: usize,
    },
    /// A core width (fetch/issue/retire) or unit pool is zero.
    ZeroCoreResource {
        /// Which resource.
        what: &'static str,
    },
    /// A queue capacity is zero.
    ZeroQueue {
        /// Which queue.
        what: &'static str,
    },
    /// The stride prefetcher's table size is not a power of two.
    StrideEntriesNotPowerOfTwo {
        /// The offending entry count.
        entries: usize,
    },
    /// The adaptive controller is configured without a content prefetcher
    /// to steer.
    AdaptiveWithoutContent,
    /// A zoo engine's table geometry is degenerate (zero associativity,
    /// fanout, history, or perceptron rows).
    ZeroEngineResource {
        /// Which engine resource.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CacheGeometry {
                cache,
                size_bytes,
                associativity,
                line_size,
            } => write!(
                f,
                "{cache} geometry does not divide evenly: {size_bytes} B / ({associativity} ways x {line_size} B lines)"
            ),
            ConfigError::LineSizeNotPowerOfTwo { cache, line_size } => {
                write!(f, "{cache} line size {line_size} is not a power of two")
            }
            ConfigError::MismatchedLineSizes { l1, l2 } => {
                write!(f, "L1 line size {l1} differs from L2 line size {l2}")
            }
            ConfigError::TlbGeometry {
                entries,
                associativity,
            } => write!(
                f,
                "TLB entries {entries} do not divide into {associativity}-way sets"
            ),
            ConfigError::ZeroCoreResource { what } => {
                write!(f, "core resource '{what}' must be nonzero")
            }
            ConfigError::ZeroQueue { what } => write!(f, "queue '{what}' must hold at least one entry"),
            ConfigError::StrideEntriesNotPowerOfTwo { entries } => {
                write!(f, "stride table entries {entries} must be a power of two")
            }
            ConfigError::AdaptiveWithoutContent => {
                write!(f, "adaptive controller configured without a content prefetcher")
            }
            ConfigError::ZeroEngineResource { what } => {
                write!(f, "engine resource '{what}' must be nonzero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

fn check_cache(cache: &'static str, cfg: &CacheConfig) -> Result<(), ConfigError> {
    if !cfg.line_size.is_power_of_two() {
        return Err(ConfigError::LineSizeNotPowerOfTwo {
            cache,
            line_size: cfg.line_size,
        });
    }
    let way_bytes = cfg.associativity * cfg.line_size;
    if cfg.associativity == 0 || way_bytes == 0 || !cfg.size_bytes.is_multiple_of(way_bytes) || cfg.size_bytes == 0
    {
        return Err(ConfigError::CacheGeometry {
            cache,
            size_bytes: cfg.size_bytes,
            associativity: cfg.associativity,
            line_size: cfg.line_size,
        });
    }
    Ok(())
}

impl SystemConfig {
    /// Checks every structural invariant the simulator relies on.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; a configuration that
    /// passes never panics inside the simulator's constructors.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_cache("L1D", &self.l1d)?;
        check_cache("UL2", &self.ul2)?;
        if self.l1d.line_size != self.ul2.line_size {
            return Err(ConfigError::MismatchedLineSizes {
                l1: self.l1d.line_size,
                l2: self.ul2.line_size,
            });
        }
        if self.dtlb.associativity == 0 || !self.dtlb.entries.is_multiple_of(self.dtlb.associativity) {
            return Err(ConfigError::TlbGeometry {
                entries: self.dtlb.entries,
                associativity: self.dtlb.associativity,
            });
        }
        for (what, v) in [
            ("fetch_width", self.core.fetch_width),
            ("issue_width", self.core.issue_width),
            ("retire_width", self.core.retire_width),
            ("rob_size", self.core.rob_size),
            ("load_buffer", self.core.load_buffer),
            ("store_buffer", self.core.store_buffer),
            ("int_units", self.core.int_units),
            ("mem_units", self.core.mem_units),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroCoreResource { what });
            }
        }
        if self.bus.queue_size == 0 {
            return Err(ConfigError::ZeroQueue { what: "bus" });
        }
        if self.arbiters.l2_queue_size == 0 {
            return Err(ConfigError::ZeroQueue { what: "L2" });
        }
        if let Some(stride) = &self.prefetchers.stride {
            if !stride.entries.is_power_of_two() {
                return Err(ConfigError::StrideEntriesNotPowerOfTwo {
                    entries: stride.entries,
                });
            }
        }
        if self.prefetchers.adaptive.is_some() && self.prefetchers.content.is_none() {
            return Err(ConfigError::AdaptiveWithoutContent);
        }
        if let Some(delta) = &self.prefetchers.delta {
            for (what, v) in [
                ("delta associativity", delta.associativity),
                ("delta fanout", delta.fanout),
                ("delta history", delta.history),
            ] {
                if v == 0 {
                    return Err(ConfigError::ZeroEngineResource { what });
                }
            }
        }
        if let Some(jump) = &self.prefetchers.jump {
            if jump.associativity == 0 {
                return Err(ConfigError::ZeroEngineResource {
                    what: "jump associativity",
                });
            }
        }
        if let Some(p) = &self.prefetchers.perceptron {
            if p.entries_per_feature == 0 {
                return Err(ConfigError::ZeroEngineResource {
                    what: "perceptron entries_per_feature",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveConfig, StrideConfig};

    #[test]
    fn shipped_configurations_validate() {
        SystemConfig::asplos2002().validate().expect("baseline");
        SystemConfig::with_content().validate().expect("content");
        SystemConfig::with_markov(crate::MarkovConfig::eighth(), 896 * 1024, 7)
            .validate()
            .expect("markov 1/8");
    }

    #[test]
    fn bad_cache_geometry_is_caught() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.ul2.size_bytes = 1000; // not divisible by 8 x 64
        let e = cfg.validate().unwrap_err();
        assert!(matches!(e, ConfigError::CacheGeometry { cache: "UL2", .. }));
        assert!(e.to_string().contains("UL2"));
    }

    #[test]
    fn non_power_of_two_line_size() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.l1d.line_size = 48;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LineSizeNotPowerOfTwo { cache: "L1D", .. })
        ));
    }

    #[test]
    fn mismatched_line_sizes() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.ul2.line_size = 128;
        cfg.ul2.size_bytes = 1024 * 1024;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::MismatchedLineSizes { l1: 64, l2: 128 })
        ));
    }

    #[test]
    fn tlb_geometry() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.dtlb.entries = 65;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TlbGeometry { entries: 65, .. })
        ));
    }

    #[test]
    fn zero_width() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.core.issue_width = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroCoreResource {
                what: "issue_width"
            })
        ));
    }

    #[test]
    fn stride_entries_power_of_two() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.stride = Some(StrideConfig {
            entries: 100,
            degree: 2,
        });
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::StrideEntriesNotPowerOfTwo { entries: 100 })
        ));
    }

    #[test]
    fn adaptive_requires_content() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.adaptive = Some(AdaptiveConfig::default());
        assert_eq!(cfg.validate(), Err(ConfigError::AdaptiveWithoutContent));
        cfg.prefetchers.content = Some(crate::ContentConfig::tuned());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zoo_engine_geometry_is_checked() {
        let mut cfg = SystemConfig::with_delta(crate::DeltaConfig::pangloss(64 * 1024));
        assert!(cfg.validate().is_ok());
        cfg.prefetchers.delta.as_mut().unwrap().fanout = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroEngineResource {
                what: "delta fanout"
            })
        ));
        let mut cfg = SystemConfig::with_jump(crate::JumpConfig::sized(64 * 1024));
        assert!(cfg.validate().is_ok());
        cfg.prefetchers.jump.as_mut().unwrap().associativity = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::with_content().gated(crate::PerceptronConfig::default());
        assert!(cfg.validate().is_ok());
        cfg.prefetchers.perceptron.as_mut().unwrap().entries_per_feature = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = ConfigError::ZeroQueue { what: "bus" };
        let msg = e.to_string();
        assert!(msg.starts_with("queue"));
        assert!(!msg.ends_with('.'));
    }
}
