//! Dependency-free JSON value, serializer, and parser.
//!
//! The workspace must build offline with zero registry dependencies, so
//! manifest and JSONL emission cannot use serde. [`Json`] keeps object keys
//! in insertion order (a `Vec` of pairs, not a map) so serialized artifacts
//! are deterministic, and it distinguishes `u64`/`i64` from `f64` so large
//! counters survive a round trip without losing precision.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, sequence numbers).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key: value` in an object — replacing in place if the key
    /// already exists (so re-setting never emits duplicate JSON keys),
    /// appending otherwise. Panics on non-objects (a programming error
    /// in artifact-building code, not a data error).
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => match pairs.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => pairs.push((key.to_string(), value)),
            },
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Looks up a key in an object; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (accepts `I64`/`F64`
    /// holding an exact non-negative integer).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value round-trips as F64.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut doc = Json::obj();
        doc.set("name", Json::Str("slsb \"quoted\"\n".into()));
        doc.set("count", Json::U64(u64::MAX));
        doc.set("delta", Json::I64(-3));
        doc.set("ipc", Json::F64(1.25));
        doc.set("ok", Json::Bool(true));
        doc.set("gap", Json::Null);
        doc.set("arr", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        let text = doc.to_string();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn large_counters_keep_precision() {
        let v = Json::U64(9_007_199_254_740_993); // 2^53 + 1: not representable as f64
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn float_roundtrips_as_float() {
        let back = Json::parse(&Json::F64(2.0).to_string()).unwrap();
        assert_eq!(back, Json::F64(2.0));
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_nested_and_escapes() {
        let doc = Json::parse(
            r#"{ "a": [1, -2, 3.5, "xA\n"], "b": { "c": null, "d": false } }"#,
        )
        .unwrap();
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Json::I64(-2));
        assert_eq!(arr[2], Json::F64(3.5));
        assert_eq!(arr[3].as_str(), Some("xA\n"));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn getters() {
        assert_eq!(Json::U64(5).as_f64(), Some(5.0));
        assert_eq!(Json::F64(5.0).as_u64(), Some(5));
        assert_eq!(Json::F64(5.5).as_u64(), None);
        assert_eq!(Json::Str("s".into()).as_u64(), None);
        assert_eq!(Json::Null.get("k"), None);
    }
}
