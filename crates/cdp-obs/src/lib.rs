//! Observability layer for the CDP simulator.
//!
//! Three pieces, all std-only:
//!
//! * [`trace`] — a ring-buffered structured event tracer. Hook sites in the
//!   memory hierarchy record [`trace::TraceEvent`]s (VAM accept/reject with
//!   cause, prefetch issue/drop with reason, chain depth transitions,
//!   reinforcement rescans, MSHR merges, fault-latch drains) subject to a
//!   category filter and a sampling stride. When no tracer is installed the
//!   simulator's hot path is untouched: no allocation, no branch beyond a
//!   single `Option` check, byte-identical output.
//! * [`json`] — a minimal JSON value type with a serializer and a
//!   recursive-descent parser. The workspace is offline and registry-free,
//!   so this replaces serde for manifest and JSONL emission *and* for
//!   validating artifacts in CI.
//! * [`manifest`] — run-manifest schema helpers: a FNV-1a config
//!   fingerprint, the required-key list, and a validator used by the
//!   `validate-manifest` binary and the integration tests.
//! * [`hist`] — HDR-style log-bucketed histograms ([`Hist`], bundled per
//!   run as a [`Profile`]) for latency attribution: mergeable,
//!   snapshot-able through `cdp-snap`, with p50/p90/p99/p999 extraction.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod manifest;
pub mod trace;

pub use hist::{Hist, Profile, HIST_BUCKETS};
pub use json::Json;
pub use manifest::{
    fingerprint, fingerprint_hex, validate, validate_bench, BENCH_SCHEMA_VERSION,
    MIN_SCHEMA_VERSION, PROFILE_HIST_KEYS, PROFILE_STAT_KEYS, REQUIRED_KEYS, SCHEMA_VERSION,
};
pub use trace::{DropReason, EngineTag, FaultTag, TraceData, TraceEvent, TraceRing, VamCause};
