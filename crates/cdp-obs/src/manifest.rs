//! Run-manifest schema helpers.
//!
//! A manifest is a single JSON object describing one `experiments`
//! invocation: what ran, with which configs (fingerprinted), how long each
//! cell took, how retries/timeouts played out, and suite-level aggregates.
//! The schema is deliberately flat and additive — consumers must tolerate
//! unknown keys — but the keys in [`REQUIRED_KEYS`] are guaranteed, and
//! [`validate`] enforces them plus basic shape checks.

use crate::json::Json;

/// Manifest schema version; bump when a required key changes meaning.
/// v1: initial flat schema. v2: cells may additionally carry a
/// `profile` object (latency histograms, `--profile-hist`) — purely
/// additive, so v1 documents stay valid. v3: cells and aggregates may
/// additionally carry uop-throughput accounting (`retired`, `muops`,
/// `uops_retired_total`) — also additive, as are the per-cell prefetch
/// counters (`pf_issued`, `pf_useful`, `pf_wasted`) the tournament and
/// its CI assertions read back.
pub const SCHEMA_VERSION: u64 = 3;

/// Oldest schema version [`validate`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Histograms every per-cell `profile` object must carry.
pub const PROFILE_HIST_KEYS: &[&str] =
    &["load_to_use", "prefetch_to_use", "mshr_occupancy", "rob_stall"];

/// Numeric fields every profile histogram must carry.
pub const PROFILE_STAT_KEYS: &[&str] =
    &["count", "sum", "min", "max", "p50", "p90", "p99", "p999"];

/// BENCH snapshot schema version. A `BENCH_*.json` is a copied manifest
/// plus benchmark-layer keys; v2 adds `bench_schema_version` itself and
/// the sampled `suite_wall_stats` object (v1 snapshots predate both and
/// carry only the point `suite_wall_ms` — some not even that).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Keys every `suite_wall_stats` (and micro `*_stats`) object must
/// carry, all numeric.
pub const BENCH_STATS_KEYS: &[&str] = &["mean_ms", "median_ms", "ci95_lo", "ci95_hi", "samples"];

/// Keys every valid manifest must carry at the top level.
pub const REQUIRED_KEYS: &[&str] = &[
    "schema_version",
    "tool",
    "scale",
    "jobs",
    "seed",
    "experiments",
    "cells",
    "aggregates",
];

/// Keys every cell record must carry.
pub const CELL_KEYS: &[&str] = &[
    "experiment",
    "label",
    "status",
    "attempts",
    "wall_ms",
    "config_fingerprint",
    "checkpoint",
];

/// FNV-1a 64-bit hash, used to fingerprint a config's `Debug` rendering.
/// Stable across runs (no randomized state), cheap, and dependency-free.
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fingerprint`] rendered as a fixed-width hex string.
#[must_use]
pub fn fingerprint_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fingerprint(bytes))
}

/// Validates a parsed manifest document.
///
/// # Errors
///
/// Returns a message naming the first violated constraint: a missing
/// required key, a non-object document, a wrong schema version, or a
/// malformed `experiments` / `cells` entry.
pub fn validate(doc: &Json) -> Result<(), String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("manifest must be a JSON object".to_string());
    }
    for key in REQUIRED_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("manifest missing required key {key:?}"));
        }
    }
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&v) => {}
        Some(v) => return Err(format!("unsupported schema_version {v}")),
        None => return Err("schema_version must be an unsigned integer".to_string()),
    }
    let experiments = doc
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or_else(|| "experiments must be an array".to_string())?;
    for (i, e) in experiments.iter().enumerate() {
        if e.get("id").and_then(Json::as_str).is_none() {
            return Err(format!("experiments[{i}] missing string key \"id\""));
        }
        if e.get("wall_ms").and_then(Json::as_f64).is_none() {
            return Err(format!("experiments[{i}] missing numeric key \"wall_ms\""));
        }
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| "cells must be an array".to_string())?;
    for (i, cell) in cells.iter().enumerate() {
        for key in CELL_KEYS {
            if cell.get(key).is_none() {
                return Err(format!("cells[{i}] missing required key {key:?}"));
            }
        }
        let status = cell.get("status").and_then(Json::as_str).unwrap_or("");
        if !matches!(status, "ok" | "failed" | "timeout") {
            return Err(format!("cells[{i}] has invalid status {status:?}"));
        }
        let checkpoint = cell.get("checkpoint").and_then(Json::as_str).unwrap_or("");
        if !matches!(checkpoint, "off" | "fresh" | "resumed" | "corrupt-fallback") {
            return Err(format!(
                "cells[{i}] has invalid checkpoint provenance {checkpoint:?}"
            ));
        }
        if let Some(profile) = cell.get("profile") {
            validate_profile(i, profile)?;
        }
        // Throughput accounting and prefetch counters (schema v3) are
        // optional but typed.
        for key in ["retired", "muops", "pf_issued", "pf_useful", "pf_wasted"] {
            if let Some(v) = cell.get(key) {
                if v.as_f64().is_none() {
                    return Err(format!("cells[{i}].{key} must be numeric"));
                }
            }
        }
    }
    if !matches!(doc.get("aggregates"), Some(Json::Obj(_))) {
        return Err("aggregates must be an object".to_string());
    }
    Ok(())
}

/// Validates one cell's optional `profile` object (schema v2): each of
/// the four latency histograms must be present with every numeric stat
/// field, and within each the percentiles must be ordered.
fn validate_profile(cell: usize, profile: &Json) -> Result<(), String> {
    if !matches!(profile, Json::Obj(_)) {
        return Err(format!("cells[{cell}].profile must be an object"));
    }
    for hist in PROFILE_HIST_KEYS {
        let h = profile
            .get(hist)
            .ok_or_else(|| format!("cells[{cell}].profile missing histogram {hist:?}"))?;
        for key in PROFILE_STAT_KEYS {
            if h.get(key).and_then(Json::as_f64).is_none() {
                return Err(format!(
                    "cells[{cell}].profile.{hist} missing numeric key {key:?}"
                ));
            }
        }
        let at = |key: &str| h.get(key).and_then(Json::as_f64).expect("checked");
        let ordered = [at("min"), at("p50"), at("p90"), at("p99"), at("p999"), at("max")];
        if at("count") > 0.0 && ordered.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!(
                "cells[{cell}].profile.{hist} percentiles are not monotone"
            ));
        }
    }
    Ok(())
}

/// Validates one sampled-statistics object (`suite_wall_stats` or a
/// micro kernel's `*_stats`).
fn validate_stats(name: &str, j: &Json) -> Result<(), String> {
    if !matches!(j, Json::Obj(_)) {
        return Err(format!("{name} must be an object"));
    }
    for key in BENCH_STATS_KEYS {
        if j.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("{name} missing numeric key {key:?}"));
        }
    }
    let lo = j.get("ci95_lo").and_then(Json::as_f64).expect("checked");
    let hi = j.get("ci95_hi").and_then(Json::as_f64).expect("checked");
    if lo > hi {
        return Err(format!("{name} has inverted interval [{lo}, {hi}]"));
    }
    match j.get("samples").and_then(Json::as_u64) {
        Some(n) if n >= 1 => Ok(()),
        _ => Err(format!("{name}.samples must be a positive integer")),
    }
}

/// Validates a parsed BENCH snapshot (`BENCH_*.json`).
///
/// A BENCH snapshot is a manifest superset, so [`validate`] runs first.
/// On top of that, a v2 snapshot must carry `bench_schema_version: 2`
/// and a well-formed `suite_wall_stats`; any `micro` entry ending in
/// `_stats` must be well-formed too. Snapshots without
/// `bench_schema_version` are rejected as legacy v1 — `bench-compare`
/// still reads them, but freshly emitted files must be v2.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    validate(doc)?;
    match doc.get("bench_schema_version").and_then(Json::as_u64) {
        Some(BENCH_SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("unsupported bench_schema_version {v}")),
        None => {
            return Err(
                "missing bench_schema_version (legacy v1 BENCH snapshot — \
                 regenerate with scripts/bench.sh)"
                    .to_string(),
            )
        }
    }
    let stats = doc
        .get("suite_wall_stats")
        .ok_or_else(|| "BENCH v2 requires suite_wall_stats".to_string())?;
    validate_stats("suite_wall_stats", stats)?;
    if let Some(Json::Obj(pairs)) = doc.get("micro") {
        for (k, v) in pairs {
            if k.ends_with("_stats") {
                validate_stats(&format!("micro.{k}"), v)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_manifest() -> Json {
        let mut cell = Json::obj();
        cell.set("experiment", Json::Str("table2".into()));
        cell.set("label", Json::Str("slsb".into()));
        cell.set("status", Json::Str("ok".into()));
        cell.set("attempts", Json::U64(1));
        cell.set("wall_ms", Json::F64(12.5));
        cell.set("config_fingerprint", Json::Str(fingerprint_hex(b"cfg")));
        cell.set("checkpoint", Json::Str("off".into()));
        let mut exp = Json::obj();
        exp.set("id", Json::Str("table2".into()));
        exp.set("wall_ms", Json::F64(30.0));
        let mut doc = Json::obj();
        doc.set("schema_version", Json::U64(SCHEMA_VERSION));
        doc.set("tool", Json::Str("cdp-experiments".into()));
        doc.set("scale", Json::Str("smoke".into()));
        doc.set("jobs", Json::U64(2));
        doc.set("seed", Json::U64(0x5eed_2002));
        doc.set("experiments", Json::Arr(vec![exp]));
        doc.set("cells", Json::Arr(vec![cell]));
        doc.set("aggregates", Json::obj());
        doc
    }

    #[test]
    fn fingerprint_is_stable_fnv1a() {
        // FNV-1a test vectors.
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint_hex(b"a").len(), 16);
        assert_ne!(fingerprint(b"cfg1"), fingerprint(b"cfg2"));
    }

    #[test]
    fn validate_accepts_minimal() {
        let doc = minimal_manifest();
        validate(&doc).expect("valid manifest");
        // And survives a serialize/parse round trip.
        let back = Json::parse(&doc.to_string()).unwrap();
        validate(&back).expect("valid after roundtrip");
    }

    #[test]
    fn validate_rejects_missing_key() {
        for key in REQUIRED_KEYS {
            let doc = minimal_manifest();
            let Json::Obj(pairs) = doc else { unreachable!() };
            let stripped =
                Json::Obj(pairs.into_iter().filter(|(k, _)| k != key).collect());
            let err = validate(&stripped).unwrap_err();
            assert!(err.contains(key), "error {err:?} should name {key:?}");
        }
    }

    fn sample_profile() -> Json {
        let mut hist = Json::obj();
        hist.set("count", Json::U64(10));
        hist.set("sum", Json::U64(500));
        hist.set("min", Json::U64(3));
        hist.set("p50", Json::U64(40));
        hist.set("p90", Json::U64(90));
        hist.set("p99", Json::U64(120));
        hist.set("p999", Json::U64(121));
        hist.set("max", Json::U64(121));
        let mut p = Json::obj();
        for key in PROFILE_HIST_KEYS {
            p.set(key, hist.clone());
        }
        p
    }

    #[test]
    fn validate_accepts_legacy_v1_documents() {
        let mut doc = minimal_manifest();
        doc.set("schema_version", Json::U64(1));
        validate(&doc).expect("v1 manifests stay valid under the v2 schema");
        doc.set("schema_version", Json::U64(SCHEMA_VERSION + 1));
        assert!(validate(&doc).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn validate_types_throughput_keys() {
        // v3 throughput keys are optional but must be numeric when present.
        let mut doc = minimal_manifest();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        let cells = &mut pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1;
        let Json::Arr(cells) = cells else { unreachable!() };
        cells[0].set("retired", Json::U64(5_000_000));
        cells[0].set("muops", Json::F64(12.5));
        validate(&doc).expect("numeric throughput keys are valid");
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        let cells = &mut pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1;
        let Json::Arr(cells) = cells else { unreachable!() };
        cells[0].set("muops", Json::Str("fast".into()));
        assert!(validate(&doc).unwrap_err().contains("muops"));
    }

    #[test]
    fn validate_accepts_profile_cells() {
        let mut doc = minimal_manifest();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        let cells = &mut pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1;
        let Json::Arr(cells) = cells else { unreachable!() };
        cells[0].set("profile", sample_profile());
        validate(&doc).expect("profile-bearing cell is valid");
    }

    #[test]
    fn validate_rejects_malformed_profiles() {
        let with_profile = |p: Json| {
            let mut doc = minimal_manifest();
            let Json::Obj(ref mut pairs) = doc else { unreachable!() };
            let cells = &mut pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1;
            let Json::Arr(cells) = cells else { unreachable!() };
            cells[0].set("profile", p);
            doc
        };
        // Not an object.
        assert!(validate(&with_profile(Json::U64(1))).unwrap_err().contains("profile"));
        // Missing one histogram.
        let mut p = sample_profile();
        let Json::Obj(ref mut pairs) = p else { unreachable!() };
        pairs.retain(|(k, _)| k != "rob_stall");
        assert!(validate(&with_profile(p)).unwrap_err().contains("rob_stall"));
        // Missing one stat field inside a histogram.
        let mut p = sample_profile();
        let mut bare = Json::obj();
        bare.set("count", Json::U64(1));
        p.set("load_to_use", bare);
        assert!(validate(&with_profile(p)).unwrap_err().contains("load_to_use"));
        // Non-monotone percentiles on a populated histogram.
        let mut p = sample_profile();
        let mut h = p.get("load_to_use").unwrap().clone();
        h.set("p90", Json::U64(1));
        p.set("load_to_use", h);
        assert!(validate(&with_profile(p)).unwrap_err().contains("monotone"));
    }

    fn minimal_bench() -> Json {
        let mut doc = minimal_manifest();
        doc.set("bench_schema_version", Json::U64(BENCH_SCHEMA_VERSION));
        let mut stats = Json::obj();
        stats.set("mean_ms", Json::F64(974.0));
        stats.set("median_ms", Json::F64(973.0));
        stats.set("ci95_lo", Json::F64(960.0));
        stats.set("ci95_hi", Json::F64(988.0));
        stats.set("samples", Json::U64(5));
        stats.set("rejected", Json::U64(0));
        doc.set("suite_wall_stats", stats);
        doc
    }

    #[test]
    fn validate_bench_accepts_v2() {
        validate_bench(&minimal_bench()).expect("valid BENCH v2");
    }

    #[test]
    fn validate_bench_rejects_legacy_and_malformed() {
        // Legacy v1 (a plain manifest) is named as such.
        let err = validate_bench(&minimal_manifest()).unwrap_err();
        assert!(err.contains("legacy v1"), "got {err:?}");

        let mut doc = minimal_bench();
        doc.set("bench_schema_version", Json::U64(3));
        assert!(validate_bench(&doc).unwrap_err().contains("bench_schema_version"));

        let mut doc = minimal_bench();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        pairs.retain(|(k, _)| k != "suite_wall_stats");
        assert!(validate_bench(&doc).unwrap_err().contains("suite_wall_stats"));

        let mut doc = minimal_bench();
        let mut bad = Json::obj();
        bad.set("mean_ms", Json::F64(1.0));
        doc.set("suite_wall_stats", bad);
        assert!(validate_bench(&doc).unwrap_err().contains("median_ms"));

        // An inverted interval is structurally impossible output.
        let mut doc = minimal_bench();
        let stats = doc.get("suite_wall_stats").unwrap().clone();
        let Json::Obj(mut pairs) = stats else { unreachable!() };
        pairs.iter_mut().find(|(k, _)| k == "ci95_lo").unwrap().1 = Json::F64(1000.0);
        doc.set("suite_wall_stats", Json::Obj(pairs));
        assert!(validate_bench(&doc).unwrap_err().contains("inverted"));

        // Malformed micro stats objects are caught too.
        let mut doc = minimal_bench();
        let mut micro = Json::obj();
        let mut bad = Json::obj();
        bad.set("mean_ms", Json::F64(1.0));
        micro.set("vam_scan_line_stats", bad);
        doc.set("micro", micro);
        assert!(validate_bench(&doc).unwrap_err().contains("vam_scan_line_stats"));
    }

    #[test]
    fn validate_bench_still_requires_manifest_shape() {
        let mut doc = minimal_bench();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        pairs.retain(|(k, _)| k != "cells");
        assert!(validate_bench(&doc).unwrap_err().contains("cells"));
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(validate(&Json::Arr(vec![])).is_err());

        let mut doc = minimal_manifest();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        pairs.iter_mut().find(|(k, _)| k == "schema_version").unwrap().1 = Json::U64(99);
        assert!(validate(&doc).unwrap_err().contains("schema_version"));

        let mut doc = minimal_manifest();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        let bad_cell = {
            let mut c = Json::obj();
            c.set("experiment", Json::Str("x".into()));
            c.set("label", Json::Str("y".into()));
            c.set("status", Json::Str("exploded".into()));
            c.set("attempts", Json::U64(1));
            c.set("wall_ms", Json::F64(1.0));
            c.set("config_fingerprint", Json::Str("0".into()));
            c.set("checkpoint", Json::Str("off".into()));
            c
        };
        pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1 = Json::Arr(vec![bad_cell]);
        assert!(validate(&doc).unwrap_err().contains("status"));

        let mut doc = minimal_manifest();
        let Json::Obj(ref mut pairs) = doc else { unreachable!() };
        let bad_ckpt = {
            let mut c = Json::obj();
            c.set("experiment", Json::Str("x".into()));
            c.set("label", Json::Str("y".into()));
            c.set("status", Json::Str("ok".into()));
            c.set("attempts", Json::U64(1));
            c.set("wall_ms", Json::F64(1.0));
            c.set("config_fingerprint", Json::Str("0".into()));
            c.set("checkpoint", Json::Str("sideways".into()));
            c
        };
        pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1 = Json::Arr(vec![bad_ckpt]);
        assert!(validate(&doc).unwrap_err().contains("checkpoint"));
    }
}
