//! Explains the difference between two experiment runs.
//!
//! ```text
//! run-explain <A> <B>
//! ```
//!
//! `A` and `B` are each a `manifest.json` path or a directory holding
//! one (as written by `experiments --emit-manifest`). A sibling
//! `metrics.jsonl` is read automatically when present.
//!
//! The tool diffs the two runs' *behavioral* content — run identity
//! (tool, scale, seed), cell outcomes, config fingerprints, latency
//! profiles, and per-window metrics — while ignoring volatile keys that
//! legitimately vary between invocations (wall times, attempt counts,
//! job counts, cache/store hit counters, checkpoint provenance). Stat
//! deltas are attributed to the component or prefetch engine whose
//! counters moved (stride / content / markov engines, L1, UL2,
//! TLB/walker, core retire), and the first divergent metrics window is
//! named so a bisection knows where the executions split.
//!
//! Exit codes: 0 no divergence, 1 divergence found, 2 usage or I/O
//! error.

use std::collections::BTreeMap;
use std::path::Path;

use cdp_obs::Json;

/// Per-cell keys that vary run to run without a behavioral difference.
const VOLATILE_CELL_KEYS: &[&str] = &["wall_ms", "attempts", "checkpoint", "muops"];

/// One behavioral difference between the two runs.
#[derive(Debug)]
struct Divergence {
    /// The component the difference is attributed to.
    component: &'static str,
    /// Human-readable description, including both values.
    detail: String,
    /// Absolute numeric delta when the difference is a counter.
    delta: f64,
}

/// Everything `explain` found.
#[derive(Debug, Default)]
struct Report {
    divergences: Vec<Divergence>,
    /// First divergent metrics window in `(experiment, label, window)`
    /// order, with the field that split.
    first_window: Option<String>,
}

impl Report {
    fn push(&mut self, component: &'static str, detail: String, delta: f64) {
        self.divergences.push(Divergence {
            component,
            detail,
            delta,
        });
    }

    /// Total absolute delta per component, largest first.
    fn attribution(&self) -> Vec<(&'static str, f64, usize)> {
        let mut per: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
        for d in &self.divergences {
            let e = per.entry(d.component).or_default();
            e.0 += d.delta;
            e.1 += 1;
        }
        let mut out: Vec<_> = per.into_iter().map(|(k, (d, n))| (k, d, n)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }
}

/// Maps a metrics/profile field name to the component whose behavior it
/// reflects.
fn component_of(field: &str) -> &'static str {
    match field {
        f if f.starts_with("stride_") => "stride engine",
        f if f.starts_with("content_") => "content engine",
        f if f.starts_with("markov_") => "markov engine",
        f if f.starts_with("l1_") => "L1 cache",
        f if f.starts_with("l2_") => "UL2 cache",
        f if f.starts_with("dtlb_") || f.starts_with("prefetch_walks") => "TLB/walker",
        f if f.starts_with("drops") || f.starts_with("rescans") => "prefetch queue/VAM",
        f if f.starts_with("profile.load_to_use") => "load latency",
        f if f.starts_with("profile.prefetch_to_use") => "prefetch timeliness",
        f if f.starts_with("profile.mshr_occupancy") => "MSHR pressure",
        f if f.starts_with("profile.rob_stall") => "core stalls",
        _ => "core retire",
    }
}

/// Numeric rendering for a diff message (integers stay integral).
fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Compares one field across two JSON objects, pushing a divergence if
/// it differs. `ctx` names the owning record in messages.
fn diff_field(report: &mut Report, ctx: &str, field: &str, a: Option<&Json>, b: Option<&Json>) {
    match (a, b) {
        (None, None) => {}
        (Some(va), Some(vb)) => {
            if let (Some(fa), Some(fb)) = (va.as_f64(), vb.as_f64()) {
                if fa != fb {
                    report.push(
                        component_of(field),
                        format!("{ctx}: {field} {} vs {}", num(fa), num(fb)),
                        (fa - fb).abs(),
                    );
                }
            } else if va.to_string() != vb.to_string() {
                report.push(
                    component_of(field),
                    format!("{ctx}: {field} {va} vs {vb}"),
                    0.0,
                );
            }
        }
        (Some(_), None) => report.push(
            component_of(field),
            format!("{ctx}: {field} only in A"),
            0.0,
        ),
        (None, Some(_)) => report.push(
            component_of(field),
            format!("{ctx}: {field} only in B"),
            0.0,
        ),
    }
}

/// Groups a manifest's cells by `(experiment, label)`, preserving order
/// within each key (repeated cells compare positionally).
fn cell_groups(doc: &Json) -> BTreeMap<(String, String), Vec<&Json>> {
    let mut groups: BTreeMap<(String, String), Vec<&Json>> = BTreeMap::new();
    for cell in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
        let exp = cell.get("experiment").and_then(Json::as_str).unwrap_or("");
        let label = cell.get("label").and_then(Json::as_str).unwrap_or("");
        groups
            .entry((exp.to_string(), label.to_string()))
            .or_default()
            .push(cell);
    }
    groups
}

/// Compares two cells' non-volatile content.
fn diff_cell(report: &mut Report, ctx: &str, a: &Json, b: &Json) {
    let sa = a.get("status").and_then(Json::as_str).unwrap_or("");
    let sb = b.get("status").and_then(Json::as_str).unwrap_or("");
    if sa != sb {
        report.push("cell outcome", format!("{ctx}: status {sa:?} vs {sb:?}"), 0.0);
    }
    let fa = a.get("config_fingerprint").and_then(Json::as_str).unwrap_or("");
    let fb = b.get("config_fingerprint").and_then(Json::as_str).unwrap_or("");
    if fa != fb {
        report.push(
            "configuration",
            format!("{ctx}: config_fingerprint {fa} vs {fb}"),
            0.0,
        );
    }
    match (a.get("profile"), b.get("profile")) {
        // Profile presence is instrumentation, not behavior: comparing
        // an instrumented run against a plain one stays clean.
        (None, _) | (_, None) => {}
        (Some(pa), Some(pb)) => {
            for hist in cdp_obs::manifest::PROFILE_HIST_KEYS {
                for stat in cdp_obs::manifest::PROFILE_STAT_KEYS {
                    diff_field(
                        report,
                        ctx,
                        &format!("profile.{hist}.{stat}"),
                        pa.get(hist).and_then(|h| h.get(stat)),
                        pb.get(hist).and_then(|h| h.get(stat)),
                    );
                }
            }
        }
    }
}

/// Parses a metrics.jsonl text into `(experiment, label, window)`-keyed
/// records. A duplicate key keeps the first record (the stream is
/// submission-ordered and deterministic, so duplicates are identical).
fn metrics_records(text: &str) -> BTreeMap<(String, String, u64), Json> {
    let mut records = BTreeMap::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(j) = Json::parse(line) else { continue };
        let exp = j.get("experiment").and_then(Json::as_str).unwrap_or("").to_string();
        let label = j.get("label").and_then(Json::as_str).unwrap_or("").to_string();
        let window = j.get("window").and_then(Json::as_u64).unwrap_or(0);
        records.entry((exp, label, window)).or_insert(j);
    }
    records
}

/// The field names carried by a JSON object, in insertion order.
fn field_names(j: &Json) -> Vec<String> {
    match j {
        Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.clone()).collect(),
        _ => Vec::new(),
    }
}

/// Diffs two runs: manifests plus optional metrics.jsonl streams.
fn explain(a: &Json, b: &Json, metrics_a: Option<&str>, metrics_b: Option<&str>) -> Report {
    let mut report = Report::default();
    for key in ["tool", "scale", "seed"] {
        diff_field(&mut report, "run", key, a.get(key), b.get(key));
    }
    let ga = cell_groups(a);
    let gb = cell_groups(b);
    for (key, cells_a) in &ga {
        let ctx = format!("cell {}/{}", key.0, key.1);
        match gb.get(key) {
            None => report.push("cell set", format!("{ctx}: only in A"), 0.0),
            Some(cells_b) => {
                if cells_a.len() != cells_b.len() {
                    report.push(
                        "cell set",
                        format!("{ctx}: {} occurrence(s) vs {}", cells_a.len(), cells_b.len()),
                        0.0,
                    );
                }
                for (ca, cb) in cells_a.iter().zip(cells_b) {
                    diff_cell(&mut report, &ctx, ca, cb);
                }
            }
        }
    }
    for key in gb.keys().filter(|k| !ga.contains_key(*k)) {
        report.push("cell set", format!("cell {}/{}: only in B", key.0, key.1), 0.0);
    }
    let (ma, mb) = (
        metrics_records(metrics_a.unwrap_or("")),
        metrics_records(metrics_b.unwrap_or("")),
    );
    for (key, ra) in &ma {
        let ctx = format!("window {}/{}#{}", key.0, key.1, key.2);
        let Some(rb) = mb.get(key) else {
            report.push("metrics coverage", format!("{ctx}: only in A"), 0.0);
            continue;
        };
        let before = report.divergences.len();
        let mut fields = field_names(ra);
        for f in field_names(rb) {
            if !fields.contains(&f) {
                fields.push(f);
            }
        }
        for field in fields {
            if matches!(field.as_str(), "experiment" | "label" | "window") {
                continue;
            }
            diff_field(&mut report, &ctx, &field, ra.get(&field), rb.get(&field));
        }
        // BTreeMap iteration is (experiment, label, window)-sorted, so
        // the first key that splits is the earliest divergent window.
        if report.divergences.len() > before && report.first_window.is_none() {
            let field = &report.divergences[before].detail;
            report.first_window = Some(field.clone());
        }
    }
    for key in mb.keys().filter(|k| !ma.contains_key(*k)) {
        report.push(
            "metrics coverage",
            format!("window {}/{}#{}: only in B", key.0, key.1, key.2),
            0.0,
        );
    }
    report
}

fn fail(msg: &str) -> ! {
    eprintln!("run-explain: {msg}");
    std::process::exit(2);
}

/// Resolves one CLI argument to `(manifest, metrics.jsonl text)`.
fn load_run(arg: &str) -> (Json, Option<String>) {
    let path = Path::new(arg);
    let manifest_path = if path.is_dir() {
        path.join("manifest.json")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", manifest_path.display())));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{}: JSON parse error: {e}", manifest_path.display())));
    if let Err(e) = cdp_obs::validate(&doc) {
        fail(&format!("{}: {e}", manifest_path.display()));
    }
    let metrics_path = manifest_path
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join("metrics.jsonl");
    let metrics = std::fs::read_to_string(metrics_path).ok();
    (doc, metrics)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 {
        eprintln!("usage: run-explain <A> <B>");
        eprintln!("  A/B: manifest.json path, or a directory containing one");
        eprintln!("  exit codes: 0 no divergence, 1 divergence, 2 usage/IO");
        std::process::exit(2);
    }
    let (doc_a, metrics_a) = load_run(&args[0]);
    let (doc_b, metrics_b) = load_run(&args[1]);
    let report = explain(&doc_a, &doc_b, metrics_a.as_deref(), metrics_b.as_deref());
    println!("run-explain: {} vs {}", args[0], args[1]);
    println!(
        "  volatile keys ignored: {} (per cell), jobs/wall/cache counters (top level)",
        VOLATILE_CELL_KEYS.join("/")
    );
    if report.divergences.is_empty() {
        println!("  divergence: none");
        return;
    }
    println!("  divergence: {} difference(s)", report.divergences.len());
    println!("  attribution (total |delta|, differences):");
    for (component, delta, n) in report.attribution() {
        println!("    {component}: {} across {n} difference(s)", num(delta));
    }
    if let Some(w) = &report.first_window {
        println!("  first divergent window: {w}");
    }
    for d in report.divergences.iter().take(20) {
        println!("    [{}] {}", d.component, d.detail);
    }
    if report.divergences.len() > 20 {
        println!("    ... {} more", report.divergences.len() - 20);
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(fingerprint: &str, status: &str, p99: u64) -> Json {
        let mut cell = Json::obj();
        cell.set("experiment", Json::Str("tlb".into()));
        cell.set("label", Json::Str("64/slsb".into()));
        cell.set("status", Json::Str(status.into()));
        cell.set("attempts", Json::U64(1));
        cell.set("wall_ms", Json::U64(12));
        cell.set("config_fingerprint", Json::Str(fingerprint.into()));
        cell.set("checkpoint", Json::Str("off".into()));
        let mut hist = Json::obj();
        for key in cdp_obs::manifest::PROFILE_STAT_KEYS {
            hist.set(key, Json::U64(if *key == "p99" { p99 } else { 1 }));
        }
        let mut profile = Json::obj();
        for key in cdp_obs::manifest::PROFILE_HIST_KEYS {
            profile.set(key, hist.clone());
        }
        cell.set("profile", profile);
        let mut doc = Json::obj();
        doc.set("schema_version", Json::U64(cdp_obs::SCHEMA_VERSION));
        doc.set("tool", Json::Str("cdp-experiments".into()));
        doc.set("scale", Json::Str("smoke".into()));
        doc.set("jobs", Json::U64(4));
        doc.set("seed", Json::U64(7));
        doc.set("experiments", Json::Arr(vec![]));
        doc.set("cells", Json::Arr(vec![cell]));
        doc.set("aggregates", Json::obj());
        doc
    }

    fn metrics_line(window: u64, stride_issued: u64) -> String {
        let mut j = Json::obj();
        j.set("experiment", Json::Str("tlb".into()));
        j.set("label", Json::Str("64/slsb".into()));
        j.set("window", Json::U64(window));
        j.set("retired", Json::U64(4096));
        j.set("stride_issued", Json::U64(stride_issued));
        format!("{j}\n")
    }

    #[test]
    fn identical_runs_report_zero_divergence() {
        let a = manifest("aaaa", "ok", 90);
        let m = metrics_line(0, 5) + &metrics_line(1, 7);
        let report = explain(&a, &a.clone(), Some(&m), Some(&m));
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert!(report.first_window.is_none());
    }

    #[test]
    fn volatile_keys_are_ignored() {
        let a = manifest("aaaa", "ok", 90);
        let mut b = manifest("aaaa", "ok", 90);
        b.set("jobs", Json::U64(1));
        b.set("suite_wall_ms", Json::U64(999));
        let Json::Obj(ref mut pairs) = b else { unreachable!() };
        let Json::Arr(cells) = &mut pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1
        else {
            unreachable!()
        };
        cells[0].set("wall_ms", Json::U64(9999));
        cells[0].set("attempts", Json::U64(3));
        cells[0].set("checkpoint", Json::Str("resumed".into()));
        let report = explain(&a, &b, None, None);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    }

    #[test]
    fn engine_delta_is_attributed_and_first_window_named() {
        let a = manifest("aaaa", "ok", 90);
        let b = manifest("bbbb", "ok", 120);
        let ma = metrics_line(0, 5) + &metrics_line(1, 10);
        let mb = metrics_line(0, 5) + &metrics_line(1, 40);
        let report = explain(&a, &b, Some(&ma), Some(&mb));
        assert!(!report.divergences.is_empty());
        let attribution = report.attribution();
        assert!(attribution.iter().any(|(c, ..)| *c == "stride engine"));
        assert!(attribution.iter().any(|(c, ..)| *c == "configuration"));
        // p99 differs in every profile histogram → latency components.
        assert!(attribution.iter().any(|(c, ..)| *c == "load latency"));
        let w = report.first_window.expect("window 1 diverged");
        assert!(w.contains("#1") && w.contains("stride_issued"), "{w}");
    }

    #[test]
    fn profile_presence_mismatch_is_not_divergence() {
        let a = manifest("aaaa", "ok", 90);
        let mut b = manifest("aaaa", "ok", 90);
        let Json::Obj(ref mut pairs) = b else { unreachable!() };
        let Json::Arr(cells) = &mut pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1
        else {
            unreachable!()
        };
        let Json::Obj(cell) = &mut cells[0] else { unreachable!() };
        cell.retain(|(k, _)| k != "profile");
        let report = explain(&a, &b, None, None);
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    }

    #[test]
    fn missing_cells_and_windows_are_reported() {
        let a = manifest("aaaa", "ok", 90);
        let mut b = manifest("aaaa", "ok", 90);
        let Json::Obj(ref mut pairs) = b else { unreachable!() };
        pairs.iter_mut().find(|(k, _)| k == "cells").unwrap().1 = Json::Arr(vec![]);
        let ma = metrics_line(0, 5);
        let report = explain(&a, &b, Some(&ma), None);
        assert!(report
            .divergences
            .iter()
            .any(|d| d.component == "cell set" && d.detail.contains("only in A")));
        assert!(report
            .divergences
            .iter()
            .any(|d| d.component == "metrics coverage"));
    }
}
