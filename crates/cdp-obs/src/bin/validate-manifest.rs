//! Validates a run manifest produced by `experiments --emit-manifest`.
//!
//! ```text
//! validate-manifest <manifest.json> [<metrics.jsonl>...]
//! ```
//!
//! Exit codes: 0 valid, 1 invalid or unreadable, 2 usage.
//!
//! Extra arguments are treated as JSONL files: every non-empty line must
//! parse as a JSON object. Used by `scripts/ci.sh` to gate artifacts.

use cdp_obs::{validate, Json};

fn fail(msg: &str) -> ! {
    eprintln!("validate-manifest: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: validate-manifest <manifest.json> [<metrics.jsonl>...]");
        std::process::exit(2);
    }
    let path = &args[0];
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("{path}: JSON parse error: {e}")));
    validate(&doc).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let cells = doc.get("cells").and_then(Json::as_arr).map_or(0, <[Json]>::len);

    for jsonl in &args[1..] {
        let text = std::fs::read_to_string(jsonl)
            .unwrap_or_else(|e| fail(&format!("cannot read {jsonl}: {e}")));
        let mut lines = 0usize;
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line)
                .unwrap_or_else(|e| fail(&format!("{jsonl}:{}: {e}", n + 1)));
            if !matches!(v, Json::Obj(_)) {
                fail(&format!("{jsonl}:{}: line is not a JSON object", n + 1));
            }
            lines += 1;
        }
        println!("{jsonl}: {lines} JSONL record(s) OK");
    }
    println!("{path}: manifest OK ({cells} cell(s))");
}
