//! Validates a run manifest produced by `experiments --emit-manifest`,
//! or (with `--bench`) a `BENCH_*.json` snapshot.
//!
//! ```text
//! validate-manifest <manifest.json> [<metrics.jsonl>...]
//! validate-manifest --bench <BENCH.json>
//! ```
//!
//! Exit codes: 0 valid, 1 invalid or unreadable, 2 usage.
//!
//! In manifest mode, extra arguments are treated as JSONL files: every
//! non-empty line must parse as a JSON object. In `--bench` mode the
//! file must satisfy the BENCH v2 schema (manifest keys plus
//! `bench_schema_version` and a well-formed `suite_wall_stats`; legacy
//! v1 snapshots are rejected with a message naming them as such). Used
//! by `scripts/ci.sh` and `scripts/bench.sh` to gate artifacts.

use cdp_obs::{validate, validate_bench, Json};

fn fail(msg: &str) -> ! {
    eprintln!("validate-manifest: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: JSON parse error: {e}")))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = if args.first().is_some_and(|a| a == "--bench") {
        args.remove(0);
        true
    } else {
        false
    };
    if args.is_empty() || (bench_mode && args.len() != 1) {
        eprintln!("usage: validate-manifest <manifest.json> [<metrics.jsonl>...]");
        eprintln!("       validate-manifest --bench <BENCH.json>");
        std::process::exit(2);
    }
    let path = &args[0];
    let doc = load(path);
    if bench_mode {
        validate_bench(&doc).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        let n = doc
            .get("suite_wall_stats")
            .and_then(|s| s.get("samples"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        println!("{path}: BENCH v2 OK (suite_wall_stats over {n} sample(s))");
        return;
    }
    validate(&doc).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
    let cells = doc.get("cells").and_then(Json::as_arr).map_or(0, <[Json]>::len);

    for jsonl in &args[1..] {
        let text = std::fs::read_to_string(jsonl)
            .unwrap_or_else(|e| fail(&format!("cannot read {jsonl}: {e}")));
        let mut lines = 0usize;
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line)
                .unwrap_or_else(|e| fail(&format!("{jsonl}:{}: {e}", n + 1)));
            if !matches!(v, Json::Obj(_)) {
                fail(&format!("{jsonl}:{}: line is not a JSON object", n + 1));
            }
            lines += 1;
        }
        println!("{jsonl}: {lines} JSONL record(s) OK");
    }
    println!("{path}: manifest OK ({cells} cell(s))");
}
