//! Ring-buffered structured event tracing.
//!
//! The simulator's hook sites call [`TraceRing::push`] with a cycle stamp
//! and a [`TraceData`] payload. The ring applies the category filter and
//! sampling stride from [`TraceConfig`], overwrites the oldest events once
//! full, and keeps bookkeeping counters (recorded / overwritten /
//! sampled-out) so a drained trace can report how much it elided.
//!
//! The hook sites are only reached when a tracer is installed, so the
//! unobserved simulation path stays allocation-free and byte-identical.

use std::collections::VecDeque;

use cdp_types::{TraceConfig, TraceFilter};

use crate::json::Json;

/// Why the VAM heuristic rejected a candidate word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VamCause {
    /// Failed the alignment test (low bits not clear).
    Align,
    /// Upper compare bits did not match the trigger address.
    Compare,
    /// Compare bits matched an all-zeros/all-ones region but the filter
    /// bits did not discriminate.
    Filter,
}

impl VamCause {
    fn name(self) -> &'static str {
        match self {
            VamCause::Align => "align",
            VamCause::Compare => "compare",
            VamCause::Filter => "filter",
        }
    }
}

/// Why a prefetch request was dropped (mirrors `DropCounters`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Target line already resident in the L2.
    Resident,
    /// Target line already in flight (merged into the MSHR entry).
    InFlight,
    /// Target address had no translation.
    Unmapped,
    /// MSHR file or bus queue full.
    QueueFull,
    /// Chain depth exceeded the threshold.
    TooDeep,
}

impl DropReason {
    fn name(self) -> &'static str {
        match self {
            DropReason::Resident => "resident",
            DropReason::InFlight => "in_flight",
            DropReason::Unmapped => "unmapped",
            DropReason::QueueFull => "queue_full",
            DropReason::TooDeep => "too_deep",
        }
    }
}

/// Which engine a traced request belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineTag {
    /// Demand load/store or page walk.
    Demand,
    /// Stride prefetcher.
    Stride,
    /// Content-directed prefetcher.
    Content,
    /// Markov prefetcher.
    Markov,
    /// Delta-space Markov prefetcher.
    Delta,
    /// Pointer-chase/jump-pointer prefetcher.
    Jump,
}

impl EngineTag {
    fn name(self) -> &'static str {
        match self {
            EngineTag::Demand => "demand",
            EngineTag::Stride => "stride",
            EngineTag::Content => "content",
            EngineTag::Markov => "markov",
            EngineTag::Delta => "delta",
            EngineTag::Jump => "jump",
        }
    }
}

/// Coarse classification of a drained fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTag {
    /// Unmapped demand access.
    Unmapped,
    /// Page-walk failure.
    Walk,
    /// Any other latched error.
    Other,
}

impl FaultTag {
    fn name(self) -> &'static str {
        match self {
            FaultTag::Unmapped => "unmapped",
            FaultTag::Walk => "walk",
            FaultTag::Other => "other",
        }
    }
}

/// The payload of one trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceData {
    /// The VAM heuristic accepted `word` as a candidate pointer.
    VamAccept {
        /// The accepted word (a likely virtual address).
        word: u32,
    },
    /// The VAM heuristic rejected `word`.
    VamReject {
        /// The rejected word.
        word: u32,
        /// Which test rejected it.
        cause: VamCause,
    },
    /// A prefetch request was issued to the bus.
    PrefetchIssue {
        /// Target line address.
        line: u32,
        /// Issuing engine.
        engine: EngineTag,
        /// Chain depth (0 for non-content engines).
        depth: u8,
    },
    /// A prefetch request was dropped.
    PrefetchDrop {
        /// Target line address.
        line: u32,
        /// Drop reason (mirrors `DropCounters`).
        reason: DropReason,
        /// Chain depth of the dropped request.
        depth: u8,
    },
    /// A resident line's chain depth changed (reinforcement promotion).
    DepthTransition {
        /// The line whose depth changed.
        line: u32,
        /// Previous stored depth.
        from: u8,
        /// New depth.
        to: u8,
    },
    /// A reinforcement rescan of a resident line's contents.
    Rescan {
        /// The rescanned line.
        line: u32,
        /// Depth the rescan was issued at.
        depth: u8,
    },
    /// A request merged into an in-flight MSHR entry.
    MshrMerge {
        /// The in-flight line.
        line: u32,
        /// Engine of the merging request.
        engine: EngineTag,
    },
    /// The hierarchy's fault latch was drained.
    Fault {
        /// Coarse fault classification.
        kind: FaultTag,
    },
}

impl TraceData {
    /// The filter category this event belongs to.
    #[must_use]
    pub fn category(&self) -> TraceFilter {
        match self {
            TraceData::VamAccept { .. } | TraceData::VamReject { .. } => TraceFilter::VAM,
            TraceData::PrefetchIssue { .. } => TraceFilter::ISSUE,
            TraceData::PrefetchDrop { .. } => TraceFilter::DROP,
            TraceData::DepthTransition { .. } => TraceFilter::DEPTH,
            TraceData::Rescan { .. } => TraceFilter::RESCAN,
            TraceData::MshrMerge { .. } => TraceFilter::MSHR,
            TraceData::Fault { .. } => TraceFilter::FAULT,
        }
    }

    /// Short event-kind name used in JSONL output.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceData::VamAccept { .. } => "vam_accept",
            TraceData::VamReject { .. } => "vam_reject",
            TraceData::PrefetchIssue { .. } => "prefetch_issue",
            TraceData::PrefetchDrop { .. } => "prefetch_drop",
            TraceData::DepthTransition { .. } => "depth_transition",
            TraceData::Rescan { .. } => "rescan",
            TraceData::MshrMerge { .. } => "mshr_merge",
            TraceData::Fault { .. } => "fault",
        }
    }
}

/// One recorded event: a sequence number, a cycle stamp, and the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number over all recorded events.
    pub seq: u64,
    /// Simulated cycle the event occurred at.
    pub at: u64,
    /// Event payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// Renders the event as a flat JSON object (one JSONL line's payload).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("seq", Json::U64(self.seq));
        o.set("at", Json::U64(self.at));
        o.set("event", Json::Str(self.data.kind_name().to_string()));
        match self.data {
            TraceData::VamAccept { word } => {
                o.set("word", Json::Str(format!("{word:#010x}")));
            }
            TraceData::VamReject { word, cause } => {
                o.set("word", Json::Str(format!("{word:#010x}")));
                o.set("cause", Json::Str(cause.name().to_string()));
            }
            TraceData::PrefetchIssue {
                line,
                engine,
                depth,
            } => {
                o.set("line", Json::Str(format!("{line:#010x}")));
                o.set("engine", Json::Str(engine.name().to_string()));
                o.set("depth", Json::U64(u64::from(depth)));
            }
            TraceData::PrefetchDrop {
                line,
                reason,
                depth,
            } => {
                o.set("line", Json::Str(format!("{line:#010x}")));
                o.set("reason", Json::Str(reason.name().to_string()));
                o.set("depth", Json::U64(u64::from(depth)));
            }
            TraceData::DepthTransition { line, from, to } => {
                o.set("line", Json::Str(format!("{line:#010x}")));
                o.set("from", Json::U64(u64::from(from)));
                o.set("to", Json::U64(u64::from(to)));
            }
            TraceData::Rescan { line, depth } => {
                o.set("line", Json::Str(format!("{line:#010x}")));
                o.set("depth", Json::U64(u64::from(depth)));
            }
            TraceData::MshrMerge { line, engine } => {
                o.set("line", Json::Str(format!("{line:#010x}")));
                o.set("engine", Json::Str(engine.name().to_string()));
            }
            TraceData::Fault { kind } => {
                o.set("kind", Json::Str(kind.name().to_string()));
            }
        }
        o
    }
}

/// A bounded ring of trace events with filtering and sampling.
#[derive(Clone, Debug)]
pub struct TraceRing {
    cfg: TraceConfig,
    buf: VecDeque<TraceEvent>,
    seq: u64,
    seen: u64,
    recorded: u64,
    overwritten: u64,
    sampled_out: u64,
}

impl TraceRing {
    /// Builds an empty ring for `cfg` (capacity is clamped to at least 1).
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        TraceRing {
            cfg: TraceConfig { capacity, ..cfg },
            buf: VecDeque::with_capacity(capacity),
            seq: 0,
            seen: 0,
            recorded: 0,
            overwritten: 0,
            sampled_out: 0,
        }
    }

    /// Cheap pre-check for hook sites: does the filter want `category`?
    /// Lets callers skip computing event payloads that would be discarded.
    #[inline]
    #[must_use]
    pub fn wants(&self, category: TraceFilter) -> bool {
        self.cfg.filter.contains(category)
    }

    /// Records one event, subject to the filter and sampling stride.
    pub fn push(&mut self, at: u64, data: TraceData) {
        if !self.cfg.filter.contains(data.category()) {
            return;
        }
        self.seen += 1;
        if self.cfg.sample > 1 && !(self.seen - 1).is_multiple_of(self.cfg.sample) {
            self.sampled_out += 1;
            return;
        }
        if self.buf.len() == self.cfg.capacity {
            self.buf.pop_front();
            self.overwritten += 1;
        }
        self.buf.push_back(TraceEvent {
            seq: self.seq,
            at,
            data,
        });
        self.seq += 1;
        self.recorded += 1;
    }

    /// Discards buffered events and resets all counters (used at the
    /// warmup boundary so the trace covers the measurement window only).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.seq = 0;
        self.seen = 0;
        self.recorded = 0;
        self.overwritten = 0;
        self.sampled_out = 0;
    }

    /// The buffered events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.iter().copied().collect()
    }

    /// Number of events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events recorded (including ones later overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring overwrite.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Eligible events skipped by the sampling stride.
    #[must_use]
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// The ring's configuration.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Serializes the buffered events and bookkeeping counters. The
    /// configuration is *not* written — a restored ring keeps the config
    /// it was constructed with, which the caller derives from the run
    /// configuration exactly as the original did.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.seq);
        enc.u64(self.seen);
        enc.u64(self.recorded);
        enc.u64(self.overwritten);
        enc.u64(self.sampled_out);
        enc.seq_len(self.buf.len());
        for e in &self.buf {
            enc.u64(e.seq);
            enc.u64(e.at);
            save_trace_data(&e.data, enc);
        }
    }

    /// Restores state written by [`TraceRing::save_state`] into a ring of
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, an
    /// unknown event tag, or more buffered events than the ring capacity.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.seq = dec.u64("trace seq")?;
        self.seen = dec.u64("trace seen")?;
        self.recorded = dec.u64("trace recorded")?;
        self.overwritten = dec.u64("trace overwritten")?;
        self.sampled_out = dec.u64("trace sampled_out")?;
        let n = dec.seq_len(8 + 8 + 1, "trace buffer length")?;
        if n > self.cfg.capacity {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "trace buffer length",
            });
        }
        self.buf.clear();
        for _ in 0..n {
            let seq = dec.u64("trace event seq")?;
            let at = dec.u64("trace event at")?;
            let data = load_trace_data(dec)?;
            self.buf.push_back(TraceEvent { seq, at, data });
        }
        Ok(())
    }
}

fn engine_tag_code(e: EngineTag) -> u8 {
    match e {
        EngineTag::Demand => 0,
        EngineTag::Stride => 1,
        EngineTag::Content => 2,
        EngineTag::Markov => 3,
        EngineTag::Delta => 4,
        EngineTag::Jump => 5,
    }
}

fn engine_tag_from(code: u8) -> Result<EngineTag, cdp_types::SnapshotError> {
    Ok(match code {
        0 => EngineTag::Demand,
        1 => EngineTag::Stride,
        2 => EngineTag::Content,
        3 => EngineTag::Markov,
        4 => EngineTag::Delta,
        5 => EngineTag::Jump,
        _ => {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "trace engine tag",
            })
        }
    })
}

/// Encodes one [`TraceData`] payload (variant tag byte + fields).
pub fn save_trace_data(data: &TraceData, enc: &mut cdp_snap::Enc) {
    match *data {
        TraceData::VamAccept { word } => {
            enc.u8(0);
            enc.u32(word);
        }
        TraceData::VamReject { word, cause } => {
            enc.u8(1);
            enc.u32(word);
            enc.u8(match cause {
                VamCause::Align => 0,
                VamCause::Compare => 1,
                VamCause::Filter => 2,
            });
        }
        TraceData::PrefetchIssue {
            line,
            engine,
            depth,
        } => {
            enc.u8(2);
            enc.u32(line);
            enc.u8(engine_tag_code(engine));
            enc.u8(depth);
        }
        TraceData::PrefetchDrop {
            line,
            reason,
            depth,
        } => {
            enc.u8(3);
            enc.u32(line);
            enc.u8(match reason {
                DropReason::Resident => 0,
                DropReason::InFlight => 1,
                DropReason::Unmapped => 2,
                DropReason::QueueFull => 3,
                DropReason::TooDeep => 4,
            });
            enc.u8(depth);
        }
        TraceData::DepthTransition { line, from, to } => {
            enc.u8(4);
            enc.u32(line);
            enc.u8(from);
            enc.u8(to);
        }
        TraceData::Rescan { line, depth } => {
            enc.u8(5);
            enc.u32(line);
            enc.u8(depth);
        }
        TraceData::MshrMerge { line, engine } => {
            enc.u8(6);
            enc.u32(line);
            enc.u8(engine_tag_code(engine));
        }
        TraceData::Fault { kind } => {
            enc.u8(7);
            enc.u8(match kind {
                FaultTag::Unmapped => 0,
                FaultTag::Walk => 1,
                FaultTag::Other => 2,
            });
        }
    }
}

/// Decodes one payload written by [`save_trace_data`].
///
/// # Errors
///
/// Returns a typed [`cdp_types::SnapshotError`] on truncation or an
/// unknown variant/enum tag.
pub fn load_trace_data(
    dec: &mut cdp_snap::Dec<'_>,
) -> Result<TraceData, cdp_types::SnapshotError> {
    use cdp_types::SnapshotError;
    Ok(match dec.u8("trace data tag")? {
        0 => TraceData::VamAccept {
            word: dec.u32("trace vam word")?,
        },
        1 => TraceData::VamReject {
            word: dec.u32("trace vam word")?,
            cause: match dec.u8("trace vam cause")? {
                0 => VamCause::Align,
                1 => VamCause::Compare,
                2 => VamCause::Filter,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        context: "trace vam cause",
                    })
                }
            },
        },
        2 => TraceData::PrefetchIssue {
            line: dec.u32("trace issue line")?,
            engine: engine_tag_from(dec.u8("trace issue engine")?)?,
            depth: dec.u8("trace issue depth")?,
        },
        3 => TraceData::PrefetchDrop {
            line: dec.u32("trace drop line")?,
            reason: match dec.u8("trace drop reason")? {
                0 => DropReason::Resident,
                1 => DropReason::InFlight,
                2 => DropReason::Unmapped,
                3 => DropReason::QueueFull,
                4 => DropReason::TooDeep,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        context: "trace drop reason",
                    })
                }
            },
            depth: dec.u8("trace drop depth")?,
        },
        4 => TraceData::DepthTransition {
            line: dec.u32("trace depth line")?,
            from: dec.u8("trace depth from")?,
            to: dec.u8("trace depth to")?,
        },
        5 => TraceData::Rescan {
            line: dec.u32("trace rescan line")?,
            depth: dec.u8("trace rescan depth")?,
        },
        6 => TraceData::MshrMerge {
            line: dec.u32("trace merge line")?,
            engine: engine_tag_from(dec.u8("trace merge engine")?)?,
        },
        7 => TraceData::Fault {
            kind: match dec.u8("trace fault kind")? {
                0 => FaultTag::Unmapped,
                1 => FaultTag::Walk,
                2 => FaultTag::Other,
                _ => {
                    return Err(SnapshotError::Corrupt {
                        context: "trace fault kind",
                    })
                }
            },
        },
        _ => {
            return Err(SnapshotError::Corrupt {
                context: "trace data tag",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(line: u32) -> TraceData {
        TraceData::PrefetchIssue {
            line,
            engine: EngineTag::Content,
            depth: 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = TraceRing::new(TraceConfig {
            capacity: 2,
            ..TraceConfig::default()
        });
        for i in 0..5u32 {
            r.push(u64::from(i) * 10, issue(i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.overwritten(), 3);
        let evs = r.events();
        assert_eq!(evs[0].seq, 3);
        assert_eq!(evs[1].seq, 4);
        assert_eq!(evs[1].at, 40);
    }

    #[test]
    fn filter_drops_unwanted_categories() {
        let mut r = TraceRing::new(TraceConfig {
            filter: TraceFilter::DROP,
            ..TraceConfig::default()
        });
        assert!(!r.wants(TraceFilter::ISSUE));
        assert!(r.wants(TraceFilter::DROP));
        r.push(1, issue(0));
        r.push(
            2,
            TraceData::PrefetchDrop {
                line: 0,
                reason: DropReason::Resident,
                depth: 0,
            },
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].data.kind_name(), "prefetch_drop");
    }

    #[test]
    fn sampling_records_every_nth() {
        let mut r = TraceRing::new(TraceConfig {
            sample: 3,
            ..TraceConfig::default()
        });
        for i in 0..9u32 {
            r.push(u64::from(i), issue(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.sampled_out(), 6);
        // The 1st, 4th, and 7th eligible events are kept.
        let lines: Vec<u32> = r
            .events()
            .iter()
            .map(|e| match e.data {
                TraceData::PrefetchIssue { line, .. } => line,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lines, vec![0, 3, 6]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = TraceRing::new(TraceConfig::default());
        r.push(1, issue(7));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 0);
        r.push(2, issue(8));
        assert_eq!(r.events()[0].seq, 0);
    }

    #[test]
    fn ring_state_roundtrips_through_codec() {
        let mut r = TraceRing::new(TraceConfig {
            capacity: 4,
            sample: 2,
            ..TraceConfig::default()
        });
        let payloads = [
            TraceData::VamAccept { word: 0x1000_0000 },
            TraceData::VamReject {
                word: 0x7,
                cause: VamCause::Align,
            },
            issue(0x40),
            TraceData::PrefetchDrop {
                line: 0x80,
                reason: DropReason::QueueFull,
                depth: 2,
            },
            TraceData::DepthTransition {
                line: 0xc0,
                from: 3,
                to: 1,
            },
            TraceData::Rescan {
                line: 0x100,
                depth: 1,
            },
            TraceData::MshrMerge {
                line: 0x140,
                engine: EngineTag::Markov,
            },
            TraceData::Fault {
                kind: FaultTag::Walk,
            },
        ];
        for (i, p) in payloads.iter().enumerate() {
            r.push(i as u64 * 7, *p);
        }
        let mut enc = cdp_snap::Enc::new();
        r.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = TraceRing::new(r.config().clone());
        let mut dec = cdp_snap::Dec::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        assert!(dec.is_exhausted());
        assert_eq!(restored.events(), r.events());
        assert_eq!(restored.recorded(), r.recorded());
        assert_eq!(restored.overwritten(), r.overwritten());
        assert_eq!(restored.sampled_out(), r.sampled_out());
        // Future pushes continue the same sampling phase and seq stream.
        r.push(1000, issue(0x999));
        restored.push(1000, issue(0x999));
        assert_eq!(restored.events(), r.events());
        // Truncated payloads are typed errors, never panics.
        for n in 0..bytes.len() {
            let mut fresh = TraceRing::new(r.config().clone());
            let mut d = cdp_snap::Dec::new(&bytes[..n]);
            assert!(fresh.restore_state(&mut d).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn event_json_shape() {
        let e = TraceEvent {
            seq: 3,
            at: 99,
            data: TraceData::VamReject {
                word: 0x1000_1200,
                cause: VamCause::Filter,
            },
        };
        let j = e.to_json();
        assert_eq!(j.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("event").unwrap().as_str(), Some("vam_reject"));
        assert_eq!(j.get("cause").unwrap().as_str(), Some("filter"));
        assert_eq!(j.get("word").unwrap().as_str(), Some("0x10001200"));
        // Round-trips through the parser.
        assert!(crate::json::Json::parse(&j.to_string()).is_ok());
    }
}
