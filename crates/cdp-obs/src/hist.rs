//! HDR-style log-bucketed histograms for latency attribution.
//!
//! A [`Hist`] records unsigned samples (cycles, queue depths) into a
//! fixed set of log-linear buckets: values below 8 get exact buckets,
//! and every power-of-two octave above that is split into 8 sub-buckets
//! (3 significant bits), giving a worst-case relative error of 12.5%
//! across the full `u64` range with a flat 496-slot table. That is the
//! same trade HdrHistogram makes, shrunk to the simulator's needs:
//! recording is two shifts and an add on a fixed array — no allocation,
//! no branching beyond the sub-8 fast path — so the hot paths can carry
//! one behind the existing zero-overhead-when-off observability hooks.
//!
//! Histograms are *mergeable* (elementwise add, so per-shard histograms
//! combine without bias) and *snapshot-able*: [`Hist::save_state`] /
//! [`Hist::restore_state`] round-trip through the `cdp-snap` codec with
//! a sparse nonzero-bucket encoding, preserving state bit-identically
//! across checkpoint/resume.

use cdp_snap::{Dec, Enc};
use cdp_types::SnapshotError;

/// Sub-bucket resolution bits: each octave above 2^3 splits into
/// `1 << SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;

/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;

/// Total bucket count: 8 exact low buckets plus 8 sub-buckets for each
/// of the 61 octaves `2^3 ..= 2^63`.
pub const HIST_BUCKETS: usize = SUBS * 62;

/// Index of the bucket holding `v`.
#[inline]
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        (((exp - SUB_BITS + 1) as usize) << SUB_BITS) + ((v >> (exp - SUB_BITS)) & 7) as usize
    }
}

/// Smallest value mapping to bucket `idx` (the bucket's reported value).
#[inline]
#[must_use]
fn bucket_lo(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let exp = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
        let sub = (idx & (SUBS - 1)) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use cdp_obs::Hist;
///
/// let mut h = Hist::new();
/// for v in [3, 5, 5, 900, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 3);
/// assert_eq!(h.percentile(50.0), 5);
/// assert!(h.percentile(99.0) >= 900);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket sample counts.
    counts: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Exact sum of all samples (u128: 2^64 samples of 2^64 cannot
    /// overflow it).
    sum: u128,
    /// Smallest sample seen (`u64::MAX` while empty).
    min: u64,
    /// Largest sample seen (0 while empty).
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

impl Hist {
    /// An empty histogram (the merge identity).
    #[must_use]
    pub fn new() -> Hist {
        Hist {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets the histogram to empty without reallocating.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Folds `other` into `self` (elementwise). Merging is commutative
    /// and associative, with [`Hist::new`] as identity, so per-shard
    /// histograms combine in any order.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (0–100): the lower bound of the
    /// bucket containing the `ceil(p/100 * count)`-th sample, clamped
    /// into `[min, max]` so extremes are exact. Deterministic, and
    /// monotone in `p`. Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lo(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Serializes the histogram (sparse nonzero-bucket encoding).
    pub fn save_state(&self, enc: &mut Enc) {
        enc.u64(self.count);
        enc.u128(self.sum);
        enc.u64(self.min);
        enc.u64(self.max);
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        enc.seq_len(nonzero);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                enc.u32(idx as u32);
                enc.u64(c);
            }
        }
    }

    /// Restores a histogram written by [`Hist::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`SnapshotError`] on truncation or a structurally
    /// impossible encoding (out-of-range or non-ascending bucket
    /// indices, bucket counts that do not sum to the total).
    pub fn restore_state(dec: &mut Dec<'_>) -> Result<Hist, SnapshotError> {
        let mut h = Hist::new();
        h.count = dec.u64("hist count")?;
        h.sum = dec.u128("hist sum")?;
        h.min = dec.u64("hist min")?;
        h.max = dec.u64("hist max")?;
        let n = dec.seq_len(12, "hist nonzero buckets")?;
        let mut total = 0u64;
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let idx = dec.u32("hist bucket index")?;
            let c = dec.u64("hist bucket count")?;
            if idx as usize >= HIST_BUCKETS || prev.is_some_and(|p| idx <= p) || c == 0 {
                return Err(SnapshotError::Corrupt {
                    context: "hist bucket encoding",
                });
            }
            prev = Some(idx);
            h.counts[idx as usize] = c;
            total = total.checked_add(c).ok_or(SnapshotError::Corrupt {
                context: "hist bucket count overflow",
            })?;
        }
        if total != h.count {
            return Err(SnapshotError::Corrupt {
                context: "hist count mismatch",
            });
        }
        Ok(h)
    }

    /// Summary as a JSON object: count, sum, min/max, and the p50 /
    /// p90 / p99 / p999 percentiles.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        let mut o = crate::Json::obj();
        o.set("count", crate::Json::U64(self.count));
        o.set(
            "sum",
            crate::Json::U64(u64::try_from(self.sum).unwrap_or(u64::MAX)),
        );
        o.set("min", crate::Json::U64(self.min()));
        o.set("max", crate::Json::U64(self.max));
        o.set("p50", crate::Json::U64(self.percentile(50.0)));
        o.set("p90", crate::Json::U64(self.percentile(90.0)));
        o.set("p99", crate::Json::U64(self.percentile(99.0)));
        o.set("p999", crate::Json::U64(self.percentile(99.9)));
        o
    }
}

/// The four latency-attribution histograms one simulation run collects
/// (`--profile-hist`). Lives here so the memory hierarchy, the core,
/// and the result-store payload codec all share one layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// Demand-load latency: cycles from issue to data availability
    /// (includes L1 hits, so the distribution shows the full load
    /// picture, not just misses).
    pub load_to_use: Hist,
    /// Prefetch timeliness: cycles from a prefetch entering the memory
    /// system to its first demand use (full hits via the line's install
    /// metadata, partial hits via the in-flight MSHR entry).
    pub prefetch_to_use: Hist,
    /// MSHR file occupancy sampled at every fill insertion (demand and
    /// prefetch), including the new entry.
    pub mshr_occupancy: Hist,
    /// ROB stall run-lengths: consecutive cycles the core made no
    /// fetch/issue/retire progress, recorded when progress resumes.
    pub rob_stall: Hist,
}

impl Profile {
    /// A fresh all-empty profile.
    #[must_use]
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Resets every histogram to empty (the warm-up boundary: measured
    /// distributions cover the measurement phase only).
    pub fn clear(&mut self) {
        self.load_to_use.clear();
        self.prefetch_to_use.clear();
        self.mshr_occupancy.clear();
        self.rob_stall.clear();
    }

    /// Folds `other` into `self`, histogram by histogram.
    pub fn merge(&mut self, other: &Profile) {
        self.load_to_use.merge(&other.load_to_use);
        self.prefetch_to_use.merge(&other.prefetch_to_use);
        self.mshr_occupancy.merge(&other.mshr_occupancy);
        self.rob_stall.merge(&other.rob_stall);
    }

    /// Serializes all four histograms in declaration order.
    pub fn save_state(&self, enc: &mut Enc) {
        self.load_to_use.save_state(enc);
        self.prefetch_to_use.save_state(enc);
        self.mshr_occupancy.save_state(enc);
        self.rob_stall.save_state(enc);
    }

    /// Restores a profile written by [`Profile::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates the first histogram decode failure.
    pub fn restore_state(dec: &mut Dec<'_>) -> Result<Profile, SnapshotError> {
        Ok(Profile {
            load_to_use: Hist::restore_state(dec)?,
            prefetch_to_use: Hist::restore_state(dec)?,
            mshr_occupancy: Hist::restore_state(dec)?,
            rob_stall: Hist::restore_state(dec)?,
        })
    }

    /// The manifest rendering: one summary object per histogram.
    #[must_use]
    pub fn to_json(&self) -> crate::Json {
        let mut o = crate::Json::obj();
        o.set("load_to_use", self.load_to_use.to_json());
        o.set("prefetch_to_use", self.prefetch_to_use.to_json());
        o.set("mshr_occupancy", self.mshr_occupancy.to_json());
        o.set("rob_stall", self.rob_stall.to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic sample stream (xorshift64*): no registry RNG in
    /// tier-1.
    fn samples(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x >> (x % 48) // spread across magnitudes
            })
            .collect()
    }

    #[test]
    fn bucket_scheme_is_total_and_ordered() {
        // Every value maps in range; bucket lower bounds are the
        // canonical representative (lo maps to its own bucket) and
        // strictly increase.
        for v in [0, 1, 7, 8, 9, 15, 16, 100, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < HIST_BUCKETS, "{v} -> {idx}");
            assert!(bucket_lo(idx) <= v);
        }
        for idx in 1..HIST_BUCKETS {
            assert!(bucket_lo(idx) > bucket_lo(idx - 1), "bucket {idx}");
            assert_eq!(bucket_index(bucket_lo(idx)), idx, "bucket {idx}");
        }
        // Relative error never exceeds one sub-bucket width (12.5%).
        for &v in &samples(7, 1000) {
            let lo = bucket_lo(bucket_index(v));
            assert!(lo <= v);
            assert!((v - lo) as f64 <= (v as f64) / 8.0 + 1.0, "{v} vs {lo}");
        }
    }

    #[test]
    fn merge_identity_and_associativity() {
        let mk = |seed| {
            let mut h = Hist::new();
            for v in samples(seed, 500) {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));

        // Identity: empty ⊕ a == a ⊕ empty == a.
        let mut left = Hist::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Hist::new());
        assert_eq!(left, a);
        assert_eq!(right, a);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // Commutativity falls out of elementwise addition.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
        assert_eq!(ab.sum(), a.sum() + b.sum());
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Hist::new();
        for v in samples(42, 2000) {
            h.record(v);
        }
        let ps = [0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        let mut prev = 0;
        for &p in &ps {
            let v = h.percentile(p);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            assert!(v >= h.min() && v <= h.max());
            prev = v;
        }
        assert_eq!(h.percentile(100.0), h.max());
        assert_eq!(Hist::new().percentile(50.0), 0);
    }

    #[test]
    fn percentile_matches_exact_on_small_values() {
        // Values below 8 bucket exactly, so percentiles are exact.
        let mut h = Hist::new();
        for v in [1, 2, 2, 3, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(100.0), 7);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let mut h = Hist::new();
        for v in samples(9, 1500) {
            h.record(v);
        }
        let mut e = Enc::new();
        h.save_state(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = Hist::restore_state(&mut d).expect("round trip");
        assert!(d.is_exhausted());
        assert_eq!(back, h);
        // Re-encoding the restored histogram is byte-identical.
        let mut e2 = Enc::new();
        back.save_state(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);

        // Empty histograms round-trip too.
        let mut e3 = Enc::new();
        Hist::new().save_state(&mut e3);
        let b3 = e3.into_bytes();
        let back = Hist::restore_state(&mut Dec::new(&b3)).expect("empty");
        assert_eq!(back, Hist::new());
    }

    #[test]
    fn snapshot_rejects_corrupt_encodings() {
        let mut h = Hist::new();
        h.record(5);
        h.record(500);
        let mut e = Enc::new();
        h.save_state(&mut e);
        let bytes = e.into_bytes();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Hist::restore_state(&mut Dec::new(&bytes[..cut])).is_err(),
                "truncation at {cut}"
            );
        }
        // A count that disagrees with the bucket sum is refused.
        let mut bad = Enc::new();
        let mut h2 = h.clone();
        h2.count += 1;
        h2.save_state(&mut bad);
        let b = bad.into_bytes();
        match Hist::restore_state(&mut Dec::new(&b)) {
            Err(SnapshotError::Corrupt { context }) => {
                assert!(context.contains("count"), "{context}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn profile_round_trips_and_renders() {
        let mut p = Profile::new();
        p.load_to_use.record(3);
        p.load_to_use.record(460);
        p.mshr_occupancy.record(4);
        p.rob_stall.record(28);
        let mut e = Enc::new();
        p.save_state(&mut e);
        let bytes = e.into_bytes();
        let back = Profile::restore_state(&mut Dec::new(&bytes)).expect("profile");
        assert_eq!(back, p);
        let j = p.to_json();
        assert_eq!(j.get("load_to_use").unwrap().get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("rob_stall").unwrap().get("p50").unwrap().as_u64(), Some(28));
        assert_eq!(j.get("prefetch_to_use").unwrap().get("count").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn clear_restores_identity() {
        let mut h = Hist::new();
        for v in samples(11, 100) {
            h.record(v);
        }
        h.clear();
        assert_eq!(h, Hist::new());
        assert!(h.is_empty());
    }
}
