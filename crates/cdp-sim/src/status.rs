//! Live JSONL status heartbeats for pooled sweeps (`--status-jsonl`).
//!
//! A [`StatusSink`] wraps any `Write` destination (a sidecar file, or
//! stderr via `-`) and emits one JSON object per line as jobs move
//! through the pool: `queued` at submission, `running` when a worker
//! claims the job, `retrying` before each backed-off re-attempt, and
//! `done` with the outcome, wall time, result provenance, batch
//! progress, and a sweep ETA. Events never touch stdout — the sweep's
//! rendered tables stay byte-identical with the stream on or off — and
//! the sink is installed process-globally (like
//! [`crate::system::set_fast_forward`]) so every experiment's pool
//! picks it up without threading a handle through each call site.
//!
//! Provenance travels through a per-job [`SourceSlot`]: the executing
//! attempt may run on a detached watchdog thread (see
//! `run_one_with_policy`), so the worker that emits `done` reads the
//! slot's atomic rather than anything thread-local.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use cdp_obs::Json;

/// How a finished cell's result was obtained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResultSource {
    /// Simulated from cycle zero this run.
    #[default]
    Fresh,
    /// Replayed from the in-memory result cache.
    ResultCache,
    /// Replayed from the persistent result store.
    ResultStore,
    /// Resumed mid-run from an on-disk checkpoint.
    CheckpointResumed,
    /// A checkpoint existed but failed to decode; the cell restarted.
    CorruptFallback,
}

impl ResultSource {
    /// Stable JSONL spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ResultSource::Fresh => "fresh",
            ResultSource::ResultCache => "result-cache",
            ResultSource::ResultStore => "result-store",
            ResultSource::CheckpointResumed => "checkpoint-resumed",
            ResultSource::CorruptFallback => "corrupt-fallback",
        }
    }
}

/// A thread-safe provenance slot one job's executing attempt writes and
/// the pool worker reads when emitting the job's `done` event.
#[derive(Debug, Default)]
pub struct SourceSlot(AtomicU8);

impl SourceSlot {
    /// A fresh slot behind an [`Arc`], ready to capture into a task.
    #[must_use]
    pub fn shared() -> Arc<SourceSlot> {
        Arc::new(SourceSlot::default())
    }

    /// Records how the result was obtained.
    pub fn set(&self, s: ResultSource) {
        let code = match s {
            ResultSource::Fresh => 0,
            ResultSource::ResultCache => 1,
            ResultSource::ResultStore => 2,
            ResultSource::CheckpointResumed => 3,
            ResultSource::CorruptFallback => 4,
        };
        self.0.store(code, Ordering::Relaxed);
    }

    /// The provenance last recorded (defaults to [`ResultSource::Fresh`]).
    #[must_use]
    pub fn get(&self) -> ResultSource {
        match self.0.load(Ordering::Relaxed) {
            1 => ResultSource::ResultCache,
            2 => ResultSource::ResultStore,
            3 => ResultSource::CheckpointResumed,
            4 => ResultSource::CorruptFallback,
            _ => ResultSource::Fresh,
        }
    }
}

/// A line-buffered JSONL event stream shared by every pool batch in the
/// process. One `write` call per event (a single line), so interleaving
/// from concurrent workers is line-atomic in practice and each line is
/// a complete JSON object regardless.
pub struct StatusSink {
    out: Mutex<Box<dyn Write + Send>>,
    start: Instant,
    total: AtomicU64,
    done: AtomicU64,
}

impl std::fmt::Debug for StatusSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatusSink")
            .field("total", &self.total)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl StatusSink {
    /// Creates a sink writing to `out`.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> StatusSink {
        StatusSink {
            out: Mutex::new(out),
            start: Instant::now(),
            total: AtomicU64::new(0),
            done: AtomicU64::new(0),
        }
    }

    /// Writes one event line. I/O errors are swallowed: the heartbeat is
    /// diagnostic, and a full disk must never fail the sweep itself.
    fn emit(&self, event: Json) {
        let mut line = event.to_string();
        line.push('\n');
        let mut out = self.out.lock().expect("status sink poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }

    fn base(&self, event: &str, label: &str, index: usize) -> Json {
        let mut o = Json::obj();
        o.set("event", Json::Str(event.to_string()));
        o.set("label", Json::Str(label.to_string()));
        o.set("index", Json::U64(index as u64));
        o
    }

    /// Announces a submission wave: `jobs` new jobs join the queue.
    pub fn batch(&self, jobs: usize) {
        let total = self.total.fetch_add(jobs as u64, Ordering::Relaxed) + jobs as u64;
        let mut o = Json::obj();
        o.set("event", Json::Str("batch".to_string()));
        o.set("jobs", Json::U64(jobs as u64));
        o.set("total", Json::U64(total));
        self.emit(o);
    }

    /// One job entered the queue.
    pub fn queued(&self, label: &str, index: usize) {
        self.emit(self.base("queued", label, index));
    }

    /// A worker claimed the job.
    pub fn running(&self, label: &str, index: usize) {
        self.emit(self.base("running", label, index));
    }

    /// The job is about to be re-attempted (attempt `attempt`, 1-based)
    /// after `wall_ms` of cell wall time so far.
    pub fn retrying(&self, label: &str, index: usize, attempt: u32, wall_ms: u64) {
        let mut o = self.base("retrying", label, index);
        o.set("attempt", Json::U64(u64::from(attempt)));
        o.set("wall_ms", Json::U64(wall_ms));
        self.emit(o);
    }

    /// Mid-cell progress: `uops_done` of `uops_total` measurement uops
    /// retired so far. Long cells (large/huge tiers) emit these between
    /// stepping windows so a `--status-jsonl` consumer sees intra-cell
    /// progress, not just job-level transitions.
    pub fn heartbeat(&self, label: &str, index: usize, uops_done: u64, uops_total: u64) {
        let mut o = self.base("heartbeat", label, index);
        o.set("uops_done", Json::U64(uops_done));
        o.set("uops_total", Json::U64(uops_total));
        o.set("uops_remaining", Json::U64(uops_total.saturating_sub(uops_done)));
        self.emit(o);
    }

    /// The job finished with `status` (`ok` / `failed` / `timeout`),
    /// provenance `source`, after `wall_ms`. Also reports sweep progress
    /// and a naive ETA extrapolated from throughput so far.
    pub fn done(&self, label: &str, index: usize, status: &str, wall_ms: u64, source: ResultSource) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed).max(done);
        let mut o = self.base("done", label, index);
        o.set("status", Json::Str(status.to_string()));
        o.set("wall_ms", Json::U64(wall_ms));
        o.set("source", Json::Str(source.as_str().to_string()));
        o.set("done", Json::U64(done));
        o.set("total", Json::U64(total));
        let elapsed = self.start.elapsed().as_millis() as u64;
        o.set("eta_ms", Json::U64(elapsed / done * (total - done)));
        self.emit(o);
    }
}

/// A throttled in-cell progress reporter: the stepping loop calls
/// [`CellHeartbeat::tick`] after every window and the helper emits at
/// most one `heartbeat` event per period (default 1 s). Costs one
/// `Instant::now` per window when a sink is installed and nothing at
/// all otherwise, so it is safe to leave in every driving loop.
#[derive(Debug)]
pub struct CellHeartbeat {
    sink: Option<Arc<StatusSink>>,
    label: String,
    index: usize,
    total_uops: u64,
    last: Instant,
    period: std::time::Duration,
}

impl CellHeartbeat {
    /// A reporter bound to the process-global sink (no-op when none is
    /// installed). `total_uops` is the cell's post-warm-up measurement
    /// budget; progress is reported against it.
    #[must_use]
    pub fn new(label: &str, index: usize, total_uops: u64) -> CellHeartbeat {
        CellHeartbeat::with_sink(status_sink(), label, index, total_uops)
    }

    /// A reporter bound to an explicit sink (tests; `None` disables).
    #[must_use]
    pub fn with_sink(
        sink: Option<Arc<StatusSink>>,
        label: &str,
        index: usize,
        total_uops: u64,
    ) -> CellHeartbeat {
        CellHeartbeat {
            sink,
            label: label.to_string(),
            index,
            total_uops,
            last: Instant::now(),
            period: std::time::Duration::from_secs(1),
        }
    }

    /// Overrides the emission period (tests use zero to force emission).
    #[must_use]
    pub fn with_period(mut self, period: std::time::Duration) -> CellHeartbeat {
        self.period = period;
        self
    }

    /// Reports `uops_done` retired so far; emits if the period elapsed.
    pub fn tick(&mut self, uops_done: u64) {
        let Some(sink) = &self.sink else { return };
        if self.last.elapsed() < self.period {
            return;
        }
        self.last = Instant::now();
        sink.heartbeat(&self.label, self.index, uops_done, self.total_uops);
    }
}

/// The process-global sink slot. Write-once: experiment drivers install
/// it during CLI parsing, before any pool runs.
static STATUS: OnceLock<Arc<StatusSink>> = OnceLock::new();

/// Installs the process-global status sink. Later calls are ignored
/// (first writer wins), matching the one-shot CLI flag that sets it.
pub fn install_status_sink(sink: StatusSink) {
    let _ = STATUS.set(Arc::new(sink));
}

/// The installed sink, if any. Cheap (one atomic load) — pool hot paths
/// call this per batch, not per event.
#[must_use]
pub fn status_sink() -> Option<Arc<StatusSink>> {
    STATUS.get().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Write capturing into a shared buffer for assertions.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn source_slot_round_trips_all_codes() {
        let slot = SourceSlot::shared();
        assert_eq!(slot.get(), ResultSource::Fresh);
        for s in [
            ResultSource::Fresh,
            ResultSource::ResultCache,
            ResultSource::ResultStore,
            ResultSource::CheckpointResumed,
            ResultSource::CorruptFallback,
        ] {
            slot.set(s);
            assert_eq!(slot.get(), s);
            assert!(!s.as_str().is_empty());
        }
    }

    #[test]
    fn cell_heartbeat_throttles_and_reports_progress() {
        let cap = Capture::default();
        let sink = Arc::new(StatusSink::new(Box::new(cap.clone())));
        let mut hb = CellHeartbeat::with_sink(Some(sink), "cell/a", 3, 1_000)
            .with_period(std::time::Duration::ZERO);
        hb.tick(250);
        hb.tick(600);
        // A long period suppresses the third tick.
        hb = hb.with_period(std::time::Duration::from_secs(3600));
        hb.tick(900);
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let j = Json::parse(lines[1]).unwrap();
        assert_eq!(j.get("event").unwrap().to_string(), "\"heartbeat\"");
        assert_eq!(j.get("index").unwrap().to_string(), "3");
        assert_eq!(j.get("uops_done").unwrap().to_string(), "600");
        assert_eq!(j.get("uops_total").unwrap().to_string(), "1000");
        assert_eq!(j.get("uops_remaining").unwrap().to_string(), "400");
        // No sink installed: tick is a no-op, not a panic.
        let mut silent = CellHeartbeat::with_sink(None, "x", 0, 1)
            .with_period(std::time::Duration::ZERO);
        silent.tick(1);
    }

    #[test]
    fn events_are_one_parsable_json_object_per_line() {
        let cap = Capture::default();
        let sink = StatusSink::new(Box::new(cap.clone()));
        sink.batch(2);
        sink.queued("cell/a", 0);
        sink.running("cell/a", 0);
        sink.retrying("cell/a", 0, 2, 17);
        sink.done("cell/a", 0, "ok", 42, ResultSource::ResultCache);
        sink.done("cell/b", 1, "timeout", 9000, ResultSource::Fresh);
        let bytes = cap.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in &lines {
            let j = Json::parse(line).expect("every event line parses");
            assert!(j.get("event").is_some());
        }
        let done = Json::parse(lines[4]).unwrap();
        assert_eq!(done.get("source").unwrap().to_string(), "\"result-cache\"");
        assert_eq!(done.get("done").unwrap().to_string(), "1");
        assert_eq!(done.get("total").unwrap().to_string(), "2");
        assert!(done.get("eta_ms").is_some());
        let last = Json::parse(lines[5]).unwrap();
        assert_eq!(last.get("status").unwrap().to_string(), "\"timeout\"");
        assert_eq!(last.get("done").unwrap().to_string(), "2");
    }
}
