//! Windowed metrics time-series and per-run observation bundles.
//!
//! [`Simulator::try_run_observed`](crate::Simulator::try_run_observed)
//! drives the core in windows (exactly like the fault-check loop — window
//! boundaries change no simulated state) and snapshots a
//! [`MetricsWindow`] delta at each boundary. Together with the drained
//! trace ring this forms an [`Observation`]; parallel runs push theirs
//! into a shared [`ObsSink`] tagged with `(batch, index)` so drain order
//! is deterministic regardless of thread scheduling.

use std::sync::{Arc, Mutex};

use cdp_obs::{Json, TraceEvent, TraceRing};

use crate::stats::MemStats;

/// Per-window deltas of the headline metrics (one JSONL record).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricsWindow {
    /// Window index (0-based, measurement phase only).
    pub window: usize,
    /// µops retired in this window.
    pub retired: u64,
    /// Cycles elapsed in this window.
    pub cycles: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// Demand accesses reaching the L2.
    pub l2_demand_accesses: u64,
    /// Demand L2 misses that went to memory.
    pub l2_demand_misses: u64,
    /// DTLB misses (demand page walks).
    pub dtlb_misses: u64,
    /// Page walks triggered by prefetch translation.
    pub prefetch_walks: u64,
    /// Stride prefetches issued.
    pub stride_issued: u64,
    /// Stride useful (full + partial).
    pub stride_useful: u64,
    /// Content prefetches issued.
    pub content_issued: u64,
    /// Content useful (full + partial).
    pub content_useful: u64,
    /// Markov prefetches issued.
    pub markov_issued: u64,
    /// Markov useful (full + partial).
    pub markov_useful: u64,
    /// Prefetches dropped (all reasons).
    pub drops: u64,
    /// Reinforcement rescans.
    pub rescans: u64,
}

impl MetricsWindow {
    /// Builds the delta between two cumulative snapshots.
    #[must_use]
    pub fn delta(
        window: usize,
        retired: u64,
        cycles: u64,
        mem: &MemStats,
        prev: &MemStats,
    ) -> Self {
        MetricsWindow {
            window,
            retired,
            cycles,
            l1_misses: mem.l1_misses - prev.l1_misses,
            l2_demand_accesses: mem.l2_demand_accesses - prev.l2_demand_accesses,
            l2_demand_misses: mem.l2_demand_misses - prev.l2_demand_misses,
            dtlb_misses: mem.dtlb_misses - prev.dtlb_misses,
            prefetch_walks: mem.prefetch_walks - prev.prefetch_walks,
            stride_issued: mem.stride.issued - prev.stride.issued,
            stride_useful: mem.stride.useful() - prev.stride.useful(),
            content_issued: mem.content.issued - prev.content.issued,
            content_useful: mem.content.useful() - prev.content.useful(),
            markov_issued: mem.markov.issued - prev.markov.issued,
            markov_useful: mem.markov.useful() - prev.markov.useful(),
            drops: mem.drops.total() - prev.drops.total(),
            rescans: mem.rescans - prev.rescans,
        }
    }

    /// Misses per 1000 µops within the window.
    #[must_use]
    pub fn mptu(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 * 1000.0 / self.retired as f64
        }
    }

    /// Instructions per cycle within the window.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Demand L2 miss rate within the window (misses / L2 demand accesses).
    #[must_use]
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_demand_accesses == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 / self.l2_demand_accesses as f64
        }
    }

    /// Serializes the window (declaration order).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.usize(self.window);
        enc.u64(self.retired);
        enc.u64(self.cycles);
        enc.u64(self.l1_misses);
        enc.u64(self.l2_demand_accesses);
        enc.u64(self.l2_demand_misses);
        enc.u64(self.dtlb_misses);
        enc.u64(self.prefetch_walks);
        enc.u64(self.stride_issued);
        enc.u64(self.stride_useful);
        enc.u64(self.content_issued);
        enc.u64(self.content_useful);
        enc.u64(self.markov_issued);
        enc.u64(self.markov_useful);
        enc.u64(self.drops);
        enc.u64(self.rescans);
    }

    /// Restores a window written by [`MetricsWindow::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<Self, cdp_types::SnapshotError> {
        Ok(MetricsWindow {
            window: dec.usize("window index")?,
            retired: dec.u64("window retired")?,
            cycles: dec.u64("window cycles")?,
            l1_misses: dec.u64("window l1_misses")?,
            l2_demand_accesses: dec.u64("window l2_demand_accesses")?,
            l2_demand_misses: dec.u64("window l2_demand_misses")?,
            dtlb_misses: dec.u64("window dtlb_misses")?,
            prefetch_walks: dec.u64("window prefetch_walks")?,
            stride_issued: dec.u64("window stride_issued")?,
            stride_useful: dec.u64("window stride_useful")?,
            content_issued: dec.u64("window content_issued")?,
            content_useful: dec.u64("window content_useful")?,
            markov_issued: dec.u64("window markov_issued")?,
            markov_useful: dec.u64("window markov_useful")?,
            drops: dec.u64("window drops")?,
            rescans: dec.u64("window rescans")?,
        })
    }

    /// Renders the window as a flat JSON object (one JSONL line's payload).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("window", Json::U64(self.window as u64));
        o.set("retired", Json::U64(self.retired));
        o.set("cycles", Json::U64(self.cycles));
        o.set("ipc", Json::F64(self.ipc()));
        o.set("mptu", Json::F64(self.mptu()));
        o.set("l1_misses", Json::U64(self.l1_misses));
        o.set("l2_demand_accesses", Json::U64(self.l2_demand_accesses));
        o.set("l2_demand_misses", Json::U64(self.l2_demand_misses));
        o.set("l2_miss_rate", Json::F64(self.l2_miss_rate()));
        o.set("dtlb_misses", Json::U64(self.dtlb_misses));
        o.set("prefetch_walks", Json::U64(self.prefetch_walks));
        o.set("stride_issued", Json::U64(self.stride_issued));
        o.set("stride_useful", Json::U64(self.stride_useful));
        o.set("content_issued", Json::U64(self.content_issued));
        o.set("content_useful", Json::U64(self.content_useful));
        o.set("markov_issued", Json::U64(self.markov_issued));
        o.set("markov_useful", Json::U64(self.markov_useful));
        o.set("drops", Json::U64(self.drops));
        o.set("rescans", Json::U64(self.rescans));
        o
    }
}

/// Everything one observed run produced beyond its `RunStats`.
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// Per-window metrics deltas (empty when no metrics window was set).
    pub windows: Vec<MetricsWindow>,
    /// Trace events drained from the ring (empty when tracing was off).
    pub events: Vec<TraceEvent>,
    /// Total events the ring recorded (including overwritten ones).
    pub trace_recorded: u64,
    /// Events lost to ring overwrite.
    pub trace_overwritten: u64,
    /// Eligible events elided by the sampling stride.
    pub trace_sampled_out: u64,
    /// Latency-attribution histograms (`None` unless `--profile-hist`).
    pub profile: Option<cdp_obs::Profile>,
}

impl Observation {
    /// Builds an observation from the per-run pieces.
    #[must_use]
    pub fn new(
        windows: Vec<MetricsWindow>,
        tracer: Option<TraceRing>,
        profile: Option<cdp_obs::Profile>,
    ) -> Self {
        match tracer {
            Some(ring) => Observation {
                windows,
                events: ring.events(),
                trace_recorded: ring.recorded(),
                trace_overwritten: ring.overwritten(),
                trace_sampled_out: ring.sampled_out(),
                profile,
            },
            None => Observation {
                windows,
                profile,
                ..Observation::default()
            },
        }
    }
}

/// One sink entry: which submission slot produced which observation.
#[derive(Clone, Debug)]
pub struct ObsEntry {
    /// Batch id — one per `Pool` submission wave, monotonically assigned
    /// by the caller.
    pub batch: u64,
    /// Submission index within the batch.
    pub index: usize,
    /// The job's label (benchmark / cell name).
    pub label: String,
    /// The run's observation.
    pub observation: Observation,
}

/// A thread-safe collector of [`ObsEntry`]s from parallel runs.
///
/// Worker threads push in completion order; [`ObsSink::drain_sorted`]
/// re-establishes `(batch, index)` submission order so emitted artifacts
/// are byte-identical at any `--jobs` count. Duplicate `(batch, index)`
/// entries (an abandoned timed-out attempt finishing late) keep only the
/// first pushed.
#[derive(Debug, Default)]
pub struct ObsSink {
    entries: Mutex<Vec<ObsEntry>>,
}

impl ObsSink {
    /// An empty sink behind an [`Arc`], ready to share with jobs.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(ObsSink::default())
    }

    /// Pushes one entry (called from worker threads).
    pub fn push(&self, entry: ObsEntry) {
        self.entries.lock().expect("obs sink poisoned").push(entry);
    }

    /// Number of entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("obs sink poisoned").len()
    }

    /// True when no entries are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all entries in `(batch, index)` order,
    /// dropping duplicate slots.
    #[must_use]
    pub fn drain_sorted(&self) -> Vec<ObsEntry> {
        let mut entries = std::mem::take(&mut *self.entries.lock().expect("obs sink poisoned"));
        entries.sort_by_key(|e| (e.batch, e.index));
        entries.dedup_by_key(|e| (e.batch, e.index));
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_cumulative_counters() {
        let prev = MemStats {
            l2_demand_misses: 10,
            content: crate::stats::EngineCounters {
                issued: 5,
                useful_full: 2,
                ..Default::default()
            },
            drops: crate::stats::DropCounters {
                resident: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut now = prev;
        now.l2_demand_misses = 25;
        now.l2_demand_accesses = 100;
        now.content.issued = 12;
        now.content.useful_partial = 3;
        now.drops.too_deep = 4;
        let w = MetricsWindow::delta(2, 1000, 4000, &now, &prev);
        assert_eq!(w.window, 2);
        assert_eq!(w.l2_demand_misses, 15);
        assert_eq!(w.content_issued, 7);
        assert_eq!(w.content_useful, 3);
        assert_eq!(w.drops, 4);
        assert!((w.mptu() - 15.0).abs() < 1e-12);
        assert!((w.ipc() - 0.25).abs() < 1e-12);
        assert!((w.l2_miss_rate() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn window_json_is_parsable_and_complete() {
        let w = MetricsWindow {
            window: 1,
            retired: 65_536,
            cycles: 100_000,
            l2_demand_misses: 42,
            ..MetricsWindow::default()
        };
        let j = w.to_json();
        for key in ["window", "retired", "cycles", "ipc", "mptu", "l2_miss_rate", "drops"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert!(Json::parse(&j.to_string()).is_ok());
    }

    #[test]
    fn sink_sorts_and_dedups_by_slot() {
        let sink = ObsSink::shared();
        let entry = |batch, index| ObsEntry {
            batch,
            index,
            label: format!("b{batch}i{index}"),
            observation: Observation::default(),
        };
        sink.push(entry(1, 1));
        sink.push(entry(0, 2));
        sink.push(entry(0, 0));
        sink.push(entry(0, 2)); // late duplicate: dropped
        let drained = sink.drain_sorted();
        let slots: Vec<(u64, usize)> = drained.iter().map(|e| (e.batch, e.index)).collect();
        assert_eq!(slots, vec![(0, 0), (0, 2), (1, 1)]);
        assert!(sink.is_empty());
    }
}
