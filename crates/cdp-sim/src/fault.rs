//! Deterministic, seeded fault injection for robustness studies.
//!
//! The paper's safety story is that the content prefetcher treats memory
//! as untrusted input: anything that merely *looks* like a pointer may be
//! scanned, and a candidate that fails translation is squashed, never
//! faulted (§3.5). This module turns that property into something the
//! test suite can exercise on purpose:
//!
//! * **corrupt** — overwrite live pointer words in a workload image with
//!   wild (untranslatable) values. Demand traffic is untouched (trace
//!   addresses are precomputed), so a correct prefetcher completes the
//!   run and accounts the garbage as unmapped drops.
//! * **unmap** — clear the present bit of pages the trace actually
//!   touches. The *demand* path now faults, which must surface as a typed
//!   [`CdpError::UnmappedAccess`], not a panic.
//! * **walk** — force every Nth hardware page walk to fail (a TLB-walk
//!   fault). Prefetch walks are squashed; demand walks (opt-in) surface
//!   [`CdpError::TranslationFailure`].
//!
//! All injection is seeded and deterministic: the same [`FaultSpec`]
//! applied to the same image perturbs the same words/pages, so faulted
//! experiment runs stay byte-identical at any job count.

use cdp_types::rng::Rng;
use cdp_types::{PageNum, VirtAddr, WORD_SIZE};
use cdp_workloads::Workload;

#[cfg(doc)]
use cdp_types::CdpError;

/// Injected page-walk failure policy (consumed by the hierarchy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkFault {
    /// Every `period`-th eligible walk fails (0 disables injection).
    pub period: u64,
    /// Whether demand walks are eligible too. When false only
    /// prefetch-candidate walks fail — the squash-only regime.
    pub demand: bool,
}

/// What one fault specification does to its matching benchmarks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite `words` live pointer words with untranslatable values.
    CorruptPointers {
        /// How many words to corrupt.
        words: u32,
    },
    /// Unmap `pages` distinct pages touched by the demand trace.
    UnmapPages {
        /// How many pages to unmap.
        pages: u32,
    },
    /// Force every `period`-th hardware page walk to fail.
    WalkFailures {
        /// The injection period.
        period: u64,
        /// Whether demand walks fail too (otherwise prefetch-only).
        demand: bool,
    },
}

/// One parsed fault directive: what to do, to which benchmark, and with
/// which seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Benchmark name the fault applies to (`None` = every benchmark).
    pub bench: Option<String>,
    /// Seed for the injection RNG (site selection).
    pub seed: u64,
    /// The fault itself.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Parses a CLI fault directive:
    ///
    /// * `corrupt:<bench>:<seed>[:<words>]` — corrupt pointer words
    ///   (default 16);
    /// * `unmap:<bench>:<seed>[:<pages>]` — unmap trace pages
    ///   (default 1);
    /// * `walk:<bench>:<period>[:demand]` — periodic walk failures,
    ///   prefetch-only unless `demand` is given.
    ///
    /// `<bench>` is a Table 2 benchmark name or `*` for all.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed directive.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 3 {
            return Err(format!("fault spec '{s}' needs at least kind:bench:value"));
        }
        let bench = match parts[1] {
            "*" => None,
            name => Some(name.to_string()),
        };
        let num = |p: &str, what: &str| -> Result<u64, String> {
            p.parse::<u64>()
                .map_err(|_| format!("fault spec '{s}': bad {what} '{p}'"))
        };
        let kind = match parts[0] {
            "corrupt" | "unmap" => {
                if parts.len() > 4 {
                    return Err(format!("fault spec '{s}' has too many fields"));
                }
                let count = match parts.get(3) {
                    Some(p) => num(p, "count")? as u32,
                    None => 0,
                };
                if parts[0] == "corrupt" {
                    FaultKind::CorruptPointers {
                        words: if count == 0 { 16 } else { count },
                    }
                } else {
                    FaultKind::UnmapPages {
                        pages: if count == 0 { 1 } else { count },
                    }
                }
            }
            "walk" => {
                let demand = match parts.get(3) {
                    None => false,
                    Some(&"demand") => true,
                    Some(other) => {
                        return Err(format!(
                            "fault spec '{s}': expected 'demand', got '{other}'"
                        ))
                    }
                };
                FaultKind::WalkFailures {
                    period: num(parts[2], "period")?.max(1),
                    demand,
                }
            }
            other => return Err(format!("unknown fault kind '{other}' in '{s}'")),
        };
        let seed = match kind {
            // Walk faults carry no RNG; the period field replaces the seed.
            FaultKind::WalkFailures { .. } => 0,
            _ => num(parts[2], "seed")?,
        };
        Ok(FaultSpec { bench, seed, kind })
    }

    /// Whether this spec targets `bench`.
    pub fn matches(&self, bench: &str) -> bool {
        self.bench.as_deref().is_none_or(|b| b == bench)
    }
}

/// A set of fault directives applied together.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The directives, in CLI order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Applies every matching image fault (corrupt / unmap) to `w`,
    /// returning how many sites were perturbed. Walk faults are not
    /// image faults; fetch them with [`FaultPlan::walk_fault`].
    pub fn apply(&self, bench: &str, w: &mut Workload) -> u32 {
        let mut applied = 0;
        for spec in self.specs.iter().filter(|s| s.matches(bench)) {
            applied += match spec.kind {
                FaultKind::CorruptPointers { words } => {
                    corrupt_pointer_words(w, spec.seed, words)
                }
                FaultKind::UnmapPages { pages } => unmap_trace_pages(w, spec.seed, pages),
                FaultKind::WalkFailures { .. } => 0,
            };
        }
        applied
    }

    /// The walk-fault policy for `bench`, if any directive sets one
    /// (first match wins).
    pub fn walk_fault(&self, bench: &str) -> Option<WalkFault> {
        self.specs.iter().find_map(|s| match s.kind {
            FaultKind::WalkFailures { period, demand } if s.matches(bench) => {
                Some(WalkFault { period, demand })
            }
            _ => None,
        })
    }
}

/// Overwrites up to `words` live pointer words in `w`'s image with wild,
/// untranslatable values (seeded site selection). Returns how many words
/// were actually corrupted; an image with no live pointers yields 0.
pub fn corrupt_pointer_words(w: &mut Workload, seed: u64, words: u32) -> u32 {
    let pages = w.space.mapped_page_numbers();
    if pages.is_empty() {
        return 0;
    }
    // Domain-separate the corrupt stream from the unmap stream so one
    // seed drives independent site selections.
    let mut rng = Rng::seed_from_u64(seed ^ 0xfa17_0000_0000_0001);
    let mut corrupted = 0;
    // Bounded search: most workload words are not pointers, so allow a
    // generous number of probes per requested corruption.
    for _ in 0..words.saturating_mul(64) {
        if corrupted >= words {
            break;
        }
        let page = pages[rng.gen_range_usize(0..pages.len())];
        let offset = rng.gen_range_u32(0..(cdp_types::PAGE_SIZE / WORD_SIZE) as u32)
            * WORD_SIZE as u32;
        let va = VirtAddr(page.base().0 + offset);
        let value = w.space.read_u32(va);
        if value == 0 || w.space.translate(VirtAddr(value)).is_none() {
            continue; // not a live pointer
        }
        // A wild value in an unmapped region; keep low bits so it still
        // looks plausibly pointer-like to the VAM compare heuristic.
        let wild = 0x6bad_0000 | (value & 0xfffc);
        if w.space.translate(VirtAddr(wild)).is_some() {
            continue; // the wild region is mapped in this image; skip
        }
        w.space.write_u32(va, wild);
        corrupted += 1;
    }
    corrupted
}

/// Unmaps up to `pages` distinct pages that `w`'s demand trace actually
/// touches (seeded selection), guaranteeing the demand path will fault.
/// Returns how many pages were unmapped.
pub fn unmap_trace_pages(w: &mut Workload, seed: u64, pages: u32) -> u32 {
    let mut touched: Vec<PageNum> = Vec::new();
    let note = |u: &cdp_core::Uop, touched: &mut Vec<PageNum>| {
        if let Some(a) = u.vaddr() {
            if !touched.contains(&a.page()) {
                touched.push(a.page());
            }
        }
    };
    match &w.stream {
        // A streamed workload has no materialized trace to scan; walk a
        // bounded prefix of a fresh generator cursor instead. The prefix
        // is O(window) resident and the pages it touches are guaranteed
        // demand traffic, which is all the unmap fault needs.
        Some(spec) => {
            const FAULT_SCAN_UOPS: usize = 262_144;
            let mut src = spec.make_source();
            let mut buf = std::collections::VecDeque::new();
            let mut scanned = 0usize;
            while scanned < FAULT_SCAN_UOPS {
                let n = src.fill(&mut buf);
                if n == 0 {
                    break;
                }
                scanned += n;
                for u in buf.drain(..) {
                    note(&u, &mut touched);
                }
            }
        }
        None => {
            for u in &w.program.uops {
                note(u, &mut touched);
            }
        }
    }
    if touched.is_empty() {
        return 0;
    }
    let mut rng = Rng::seed_from_u64(seed ^ 0xfa17_0000_0000_0002);
    let mut unmapped = 0;
    for _ in 0..pages {
        if touched.is_empty() {
            break;
        }
        let idx = rng.gen_range_usize(0..touched.len());
        let page = touched.swap_remove(idx);
        if w.space.unmap(page) {
            unmapped += 1;
        }
    }
    unmapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_workload;
    use crate::system::Simulator;
    use cdp_types::{CdpError, SystemConfig};
    use cdp_workloads::suite::{Benchmark, Scale};

    fn slsb() -> Workload {
        build_workload(Benchmark::Slsb, Scale::smoke())
    }

    #[test]
    fn parse_all_kinds() {
        assert_eq!(
            FaultSpec::parse("corrupt:slsb:7").unwrap(),
            FaultSpec {
                bench: Some("slsb".into()),
                seed: 7,
                kind: FaultKind::CorruptPointers { words: 16 },
            }
        );
        assert_eq!(
            FaultSpec::parse("unmap:*:9:3").unwrap().kind,
            FaultKind::UnmapPages { pages: 3 }
        );
        let w = FaultSpec::parse("walk:tpcc-2:500:demand").unwrap();
        assert_eq!(
            w.kind,
            FaultKind::WalkFailures {
                period: 500,
                demand: true
            }
        );
        assert!(w.matches("tpcc-2") && !w.matches("slsb"));
        assert!(FaultSpec::parse("corrupt:slsb").is_err());
        assert!(FaultSpec::parse("melt:slsb:1").is_err());
        assert!(FaultSpec::parse("walk:slsb:1:always").is_err());
        assert!(FaultSpec::parse("corrupt:slsb:x").is_err());
    }

    #[test]
    fn corruption_is_deterministic_and_hits_live_pointers() {
        let mut a = slsb();
        let mut b = slsb();
        let na = corrupt_pointer_words(&mut a, 11, 24);
        let nb = corrupt_pointer_words(&mut b, 11, 24);
        assert!(na > 0, "a pointer-chasing image has live pointers");
        assert_eq!(na, nb);
        // Same seed, same image -> identical corrupted bytes everywhere.
        for page in a.space.mapped_page_numbers() {
            let base = page.base();
            for w in 0..(cdp_types::PAGE_SIZE / WORD_SIZE) as u32 {
                let va = VirtAddr(base.0 + w * WORD_SIZE as u32);
                assert_eq!(a.space.read_u32(va), b.space.read_u32(va));
            }
        }
    }

    #[test]
    fn vam_scanning_squashes_corrupted_pointers_instead_of_crashing() {
        let mut w = slsb();
        let clean = Simulator::new(SystemConfig::with_content()).run(&w);
        let n = corrupt_pointer_words(&mut w, 3, 64);
        assert!(n > 0);
        // The demand trace is untouched, so the run must complete with
        // the same retired count; the garbage pointers are squashed.
        let dirty = Simulator::new(SystemConfig::with_content())
            .try_run(&w)
            .expect("corruption only perturbs speculation");
        assert_eq!(dirty.retired, clean.retired);
        assert!(dirty.mem.content.issued > 0, "prefetcher still ran");
    }

    #[test]
    fn unmap_faults_streamed_workloads_too() {
        // The streamed variant has no materialized trace; the injector
        // must still find demand pages (via a generator prefix) and the
        // streaming run must surface the same typed error.
        let mut w = Benchmark::Slsb.build_with_engine(Scale::smoke(), 5, true);
        assert!(w.is_streamed());
        assert_eq!(unmap_trace_pages(&mut w, 5, 2), 2);
        let err = Simulator::new(SystemConfig::with_content())
            .try_run(&w)
            .unwrap_err();
        assert!(
            matches!(err, CdpError::UnmappedAccess { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn unmapping_a_trace_page_surfaces_a_typed_error() {
        let mut w = slsb();
        assert_eq!(unmap_trace_pages(&mut w, 5, 2), 2);
        let err = Simulator::new(SystemConfig::with_content())
            .try_run(&w)
            .unwrap_err();
        assert!(
            matches!(err, CdpError::UnmappedAccess { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn prefetch_walk_faults_are_squashed_not_fatal() {
        let w = slsb();
        let sim = Simulator::new(SystemConfig::with_content())
            .with_walk_fault(WalkFault {
                period: 3,
                demand: false,
            });
        let stats = sim.try_run(&w).expect("prefetch-only walk faults squash");
        assert!(stats.retired > 0);
        assert!(
            stats.mem.drops.unmapped > 0,
            "forced walk failures show up as unmapped drops"
        );
    }

    #[test]
    fn demand_walk_faults_surface_translation_failure() {
        let w = slsb();
        let sim = Simulator::new(SystemConfig::with_content())
            .with_walk_fault(WalkFault {
                period: 2,
                demand: true,
            });
        let err = sim.try_run(&w).unwrap_err();
        assert!(
            matches!(err, CdpError::TranslationFailure { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn plan_applies_only_matching_specs() {
        let plan = FaultPlan {
            specs: vec![
                FaultSpec::parse("corrupt:slsb:7:8").unwrap(),
                FaultSpec::parse("unmap:tpcc-2:7").unwrap(),
                FaultSpec::parse("walk:*:100").unwrap(),
            ],
        };
        let mut w = slsb();
        let before = w.space.mapped_pages();
        assert!(plan.apply("slsb", &mut w) > 0);
        assert_eq!(w.space.mapped_pages(), before, "unmap spec was for tpcc-2");
        assert!(w.check().is_ok(), "corruption never breaks the demand path");
        assert_eq!(
            plan.walk_fault("quake"),
            Some(WalkFault {
                period: 100,
                demand: false
            })
        );
        let nothing = FaultPlan::default();
        assert_eq!(nothing.apply("slsb", &mut w), 0);
        assert!(nothing.walk_fault("slsb").is_none());
    }
}
