//! The assembled system: core + hierarchy, with run-level statistics.

use cdp_core::{Core, CoreStats};
use cdp_mem::BusStats;
use cdp_obs::TraceRing;
use cdp_prefetch::adaptive::AdaptiveStats;
use cdp_prefetch::{
    ContentStats, DeltaStats, JumpStats, MarkovStats, PerceptronStats, StreamStats, StrideStats,
};
use cdp_types::{ObsConfig, SystemConfig};
use cdp_workloads::suite::Scale;
use cdp_workloads::Workload;

use cdp_types::CdpError;

use crate::fault::WalkFault;
use crate::hierarchy::{Hierarchy, PollutionConfig};
use crate::observe::{MetricsWindow, Observation};
use crate::stats::MemStats;

/// Process-global idle-cycle fast-forward switch (on by default); see
/// [`set_fast_forward`].
static FAST_FORWARD: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enables or disables the core's idle-cycle fast-forwarding for every
/// simulation constructed afterwards (on by default).
///
/// Fast-forwarding is behavior-neutral — skipped cycles are provably
/// barren, so statistics, snapshots, and emitted artifacts are
/// bit-identical either way (DESIGN.md §"Event fast-forward") — which is
/// exactly why this switch exists: running with it off produces the
/// cycle-by-cycle reference schedule that CI diffs against. Because it
/// cannot change results, it is deliberately **not** part of config
/// fingerprints, result-cache keys, or snapshot headers.
pub fn set_fast_forward(on: bool) {
    FAST_FORWARD.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Builds a core with the process-global fast-forward setting applied.
///
/// Streamed workloads (large/huge tiers) get a [`Core::new_streaming`]
/// fed by a fresh cursor over the workload's generator, so only a sliding
/// uop window is ever resident; materialized workloads borrow the program
/// as before. The two engines retire bit-identical streams (asserted by
/// the differential tests below), so everything downstream — stats,
/// snapshots, caches — is engine-agnostic.
fn build_core<'w>(cfg: &SystemConfig, workload: &'w Workload) -> Core<'w> {
    let mut core = match &workload.stream {
        Some(spec) => Core::new_streaming(cfg.core.clone(), spec.make_source()),
        None => Core::new(cfg.core.clone(), &workload.program),
    };
    core.set_fast_forward(FAST_FORWARD.load(std::sync::atomic::Ordering::Relaxed));
    core
}

/// Canonical run sizes used across examples, tests, and experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunLength {
    /// Tiny: unit tests and doc examples.
    Smoke,
    /// Fast experiment runs.
    Quick,
    /// Full experiment runs (the EXPERIMENTS.md numbers).
    Full,
    /// ~100 M uops; streamed (O(window) resident memory).
    Large,
    /// ~1 B uops; streamed. Overnight-scale runs.
    Huge,
}

impl RunLength {
    /// The workload scale for this run length.
    pub fn scale(self) -> Scale {
        match self {
            RunLength::Smoke => Scale::smoke(),
            RunLength::Quick => Scale::quick(),
            RunLength::Full => Scale::full(),
            RunLength::Large => Scale::large(),
            RunLength::Huge => Scale::huge(),
        }
    }

    /// Warm-up uops before statistics collection (§2.2 methodology,
    /// proportional to the run budget: the paper warms 7.5 M of ~45 M).
    pub fn warmup_uops(self) -> u64 {
        (self.scale().target_uops / 6) as u64
    }
}

/// Everything measured in one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Cycles elapsed in the measurement window.
    pub cycles: u64,
    /// Uops retired in the measurement window.
    pub retired: u64,
    /// Core-side counters.
    pub core: CoreStats,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Content-prefetcher internals, if one was configured.
    pub content: Option<ContentStats>,
    /// Stride-prefetcher internals, if configured.
    pub stride: Option<StrideStats>,
    /// Markov-prefetcher internals, if configured.
    pub markov: Option<MarkovStats>,
    /// Stream-buffer internals, if configured.
    pub stream: Option<StreamStats>,
    /// Adaptive-controller stats and final steering, if configured.
    pub adaptive: Option<(AdaptiveStats, cdp_types::ContentConfig)>,
    /// Delta-prefetcher internals, if configured.
    pub delta: Option<DeltaStats>,
    /// Jump-prefetcher internals, if configured.
    pub jump: Option<JumpStats>,
    /// Perceptron-filter internals, if configured.
    pub perceptron: Option<PerceptronStats>,
    /// Bus counters.
    pub bus: BusStats,
}

impl RunStats {
    /// Retired uops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// L2 demand misses per 1000 uops (§2.2).
    pub fn mptu(&self) -> f64 {
        self.mem.mptu(self.retired)
    }
}

/// One window of a [`Simulator::run_timeline`] trace (all counters are
/// per-window, not cumulative).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowSample {
    /// Window index.
    pub window: usize,
    /// Uops retired in this window.
    pub retired: u64,
    /// Cycles elapsed in this window.
    pub cycles: u64,
    /// L2 demand misses in this window.
    pub l2_misses: u64,
    /// L1 misses in this window.
    pub l1_misses: u64,
    /// Content prefetches issued in this window.
    pub content_issued: u64,
    /// Content prefetches that became useful in this window.
    pub content_useful: u64,
}

impl WindowSample {
    /// The window's MPTU.
    pub fn mptu(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.retired as f64
        }
    }

    /// The window's IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// Speedup of `variant` over `baseline` on the same workload
/// (`baseline_cycles / variant_cycles`, the paper's convention: 1.126 =
/// "12.6% speedup").
pub fn speedup(baseline: &RunStats, variant: &RunStats) -> f64 {
    if variant.cycles == 0 {
        1.0
    } else {
        baseline.cycles as f64 / variant.cycles as f64
    }
}

/// A configured simulator, reusable across workloads.
///
/// # Examples
///
/// ```
/// use cdp_sim::{Simulator, RunLength};
/// use cdp_types::SystemConfig;
/// use cdp_workloads::suite::Benchmark;
///
/// let w = Benchmark::B2e.build(RunLength::Smoke.scale(), 7);
/// let stats = Simulator::new(SystemConfig::asplos2002()).run(&w);
/// assert!(stats.retired > 0);
/// assert!(stats.ipc() > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: SystemConfig,
    pollution: Option<PollutionConfig>,
    walk_fault: Option<WalkFault>,
}

/// How many retired uops `try_run` advances between fault-latch checks.
/// Purely a responsiveness knob: window boundaries change no simulated
/// state, so any value yields identical statistics.
const FAULT_CHECK_WINDOW: u64 = 65_536;

impl Simulator {
    /// Creates a simulator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`]; use
    /// [`Simulator::try_new`] to handle invalid configurations gracefully.
    pub fn new(cfg: SystemConfig) -> Self {
        match Simulator::try_new(cfg) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a simulator, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns [`CdpError::Config`] wrapping the first structural problem
    /// found in `cfg`.
    pub fn try_new(cfg: SystemConfig) -> Result<Self, CdpError> {
        cfg.validate()?;
        Ok(Simulator {
            cfg,
            pollution: None,
            walk_fault: None,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Enables the §3.5 pollution limit study.
    pub fn with_pollution(mut self, p: PollutionConfig) -> Self {
        self.pollution = Some(p);
        self
    }

    /// Enables deterministic page-walk fault injection (see
    /// [`Hierarchy::with_walk_fault`]).
    pub fn with_walk_fault(mut self, f: WalkFault) -> Self {
        self.walk_fault = Some(f);
        self
    }

    fn build_hierarchy<'w>(&self, workload: &'w Workload) -> Hierarchy<'w> {
        let mut hierarchy = Hierarchy::new(self.cfg.clone(), &workload.space);
        if let Some(p) = self.pollution {
            hierarchy = hierarchy.with_pollution(p);
        }
        if let Some(f) = self.walk_fault {
            hierarchy = hierarchy.with_walk_fault(f);
        }
        hierarchy
    }

    /// Runs `workload` to completion, honoring `cfg.warmup_uops` (counters
    /// reset after warm-up; cache/TLB/predictor state carries over).
    ///
    /// # Panics
    ///
    /// Panics on an unrecoverable demand-path fault (unmapped demand
    /// access, failed demand walk) — conditions a well-formed workload
    /// never produces. Use [`Simulator::try_run`] to handle them.
    pub fn run(&self, workload: &Workload) -> RunStats {
        match self.try_run(workload) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`Simulator::run`], but surfaces unrecoverable demand-path
    /// faults as typed errors instead of panicking. The core is driven in
    /// windows of retired uops; the hierarchy's fault latch is checked at
    /// every boundary, so a fault aborts the run promptly with the
    /// *first* fault encountered. Windowing changes no simulated state:
    /// fault-free runs are bit-identical to the unwindowed driver.
    ///
    /// # Errors
    ///
    /// The first [`CdpError`] latched by the memory hierarchy.
    pub fn try_run(&self, workload: &Workload) -> Result<RunStats, CdpError> {
        let mut session = self.session(workload, None);
        while !session.step()? {}
        Ok(session.finish().0)
    }

    /// As [`Simulator::try_run`], with observability: installs a tracer
    /// when `obs.trace` is set, and snapshots a [`MetricsWindow`] delta
    /// every `obs.metrics_window` retired uops. The driving loop has the
    /// same shape as `try_run` (window boundaries change no simulated
    /// state), so the returned `RunStats` are identical to an unobserved
    /// run — asserted by `tests/observability.rs`. Warmup is excluded:
    /// the tracer is cleared and window 0 starts at the warmup boundary.
    ///
    /// # Errors
    ///
    /// The first [`CdpError`] latched by the memory hierarchy.
    pub fn try_run_observed(
        &self,
        workload: &Workload,
        obs: &ObsConfig,
    ) -> Result<(RunStats, Observation), CdpError> {
        let mut session = self.session(workload, Some(obs));
        while !session.step()? {}
        Ok(session.finish())
    }

    /// The fingerprint a snapshot of this simulator over `workload` (with
    /// observability `obs`) carries in its header. It folds in everything
    /// that determines simulated behavior — full system configuration,
    /// pollution and fault attachments, observability settings, and the
    /// workload's content fingerprint — so a snapshot can only be resumed
    /// against a bit-identical setup.
    pub fn snapshot_fingerprint(&self, workload: &Workload, obs: Option<&ObsConfig>) -> u64 {
        let mut h = cdp_snap::Fnv1a::new();
        h.write(format!("{:?}", self.cfg).as_bytes());
        h.write(format!("{:?}", self.pollution).as_bytes());
        h.write(format!("{:?}", self.walk_fault).as_bytes());
        h.write(format!("{:?}", obs).as_bytes());
        h.write_u64(workload.fingerprint());
        h.finish()
    }

    /// Starts a pausable run: the same windowed driving loop as
    /// [`Simulator::try_run`] / [`Simulator::try_run_observed`] (which are
    /// implemented on top of it), but surfaced as an object that can be
    /// stepped window by window and snapshotted between steps.
    pub fn session<'w>(&self, workload: &'w Workload, obs: Option<&ObsConfig>) -> SimSession<'w> {
        let mut hierarchy = self.build_hierarchy(workload);
        if let Some(tc) = obs.and_then(|o| o.trace.as_ref()) {
            hierarchy.set_tracer(TraceRing::new(tc.clone()));
        }
        let profile_hist = obs.is_some_and(|o| o.profile_hist);
        if profile_hist {
            hierarchy.set_profile(Box::new(cdp_obs::Profile::new()));
        }
        let metrics_window = obs.and_then(|o| o.metrics_window);
        let window = match obs {
            None => FAULT_CHECK_WINDOW,
            Some(_) => metrics_window.unwrap_or(FAULT_CHECK_WINDOW).max(1),
        };
        let mut core = build_core(&self.cfg, workload);
        if profile_hist {
            core.set_stall_hist(Box::new(cdp_obs::Hist::new()));
        }
        SimSession {
            core,
            hierarchy,
            warmup_uops: self.cfg.warmup_uops,
            window,
            record_windows: metrics_window.is_some(),
            fingerprint: self.snapshot_fingerprint(workload, obs),
            target: 0,
            warmed: false,
            done: false,
            windows: Vec::new(),
            prev_retired: 0,
            prev_cycles: 0,
            prev_mem: MemStats::default(),
        }
    }

    /// Rebuilds a [`SimSession`] from a [`SimSession::snapshot`] taken
    /// with the same configuration over the same workload, continuing the
    /// run bit-identically: every subsequent window, statistic, trace
    /// event, and the final [`RunStats`] match the uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`CdpError::Snapshot`] when `bytes` is truncated, corrupted,
    /// version-incompatible, or was taken under a different
    /// configuration/workload (fingerprint mismatch).
    pub fn resume<'w>(
        &self,
        workload: &'w Workload,
        obs: Option<&ObsConfig>,
        bytes: &[u8],
    ) -> Result<SimSession<'w>, CdpError> {
        let mut session = self.session(workload, obs);
        session.restore(bytes).map_err(CdpError::Snapshot)?;
        Ok(session)
    }

    /// Runs `workload` in windows of `window_uops` retired uops, sampling
    /// the full per-window statistics timeline (non-cumulative). The last
    /// window may be shorter than `window_uops`.
    /// # Panics
    ///
    /// Panics on an unrecoverable demand-path fault (see
    /// [`Simulator::try_run`]).
    pub fn run_timeline(&self, workload: &Workload, window_uops: u64) -> Vec<WindowSample> {
        let mut hierarchy = self.build_hierarchy(workload);
        let mut core = build_core(&self.cfg, workload);
        let mut samples = Vec::new();
        let mut target = window_uops;
        let mut prev_retired = 0u64;
        let mut prev_cycles = 0u64;
        let mut prev_mem = MemStats::default();
        loop {
            let done = core.run_until_retired(&mut hierarchy, target);
            if let Some(e) = hierarchy.take_fault() {
                panic!("{e}");
            }
            let cs = core.stats();
            let mem = *hierarchy.stats();
            let retired = cs.retired - prev_retired;
            let cycles = cs.cycles - prev_cycles;
            samples.push(WindowSample {
                window: samples.len(),
                retired,
                cycles,
                l2_misses: mem.l2_demand_misses - prev_mem.l2_demand_misses,
                l1_misses: mem.l1_misses - prev_mem.l1_misses,
                content_issued: mem.content.issued - prev_mem.content.issued,
                content_useful: mem.content.useful() - prev_mem.content.useful(),
            });
            prev_retired = cs.retired;
            prev_cycles = cs.cycles;
            prev_mem = mem;
            if done {
                return samples;
            }
            target += window_uops;
        }
    }

    /// Runs `workload` in windows of `window_uops` retired uops, sampling
    /// the **non-cumulative** L2 MPTU of each window (the Figure 1
    /// methodology). Returns one MPTU value per completed window.
    /// # Panics
    ///
    /// Panics on an unrecoverable demand-path fault (see
    /// [`Simulator::try_run`]).
    pub fn run_mptu_trace(&self, workload: &Workload, window_uops: u64) -> Vec<f64> {
        let mut hierarchy = self.build_hierarchy(workload);
        let mut core = build_core(&self.cfg, workload);
        let mut samples = Vec::new();
        let mut target = window_uops;
        let mut prev_misses = 0u64;
        loop {
            let done = core.run_until_retired(&mut hierarchy, target);
            if let Some(e) = hierarchy.take_fault() {
                panic!("{e}");
            }
            let misses = hierarchy.stats().l2_demand_misses;
            samples.push((misses - prev_misses) as f64 * 1000.0 / window_uops as f64);
            prev_misses = misses;
            if done {
                return samples;
            }
            target += window_uops;
        }
    }
}

/// Snapshot section holding the driver-loop scalars.
const SEC_RUN: u32 = 1;
/// Snapshot section holding the out-of-order core.
const SEC_CORE: u32 = 2;
/// Snapshot section holding the memory hierarchy.
const SEC_HIER: u32 = 3;
/// Snapshot section holding the metrics-window accumulator (present only
/// when the session records windows).
const SEC_OBS: u32 = 4;

/// A pausable simulation: core + hierarchy plus the windowed driver-loop
/// state, steppable one window at a time.
///
/// Between [`SimSession::step`] calls the simulation sits at a window
/// boundary — the only points where the transient buffers are empty and
/// the fault latch has been checked — so [`SimSession::snapshot`] is
/// valid whenever the borrow checker lets you call it. The contract,
/// enforced by `tests/snapshot_roundtrip.rs`: `resume(snapshot(S))`
/// continues bit-identically — same windows, same trace events, same
/// final [`RunStats`] — as the session that was never interrupted.
#[derive(Debug)]
pub struct SimSession<'w> {
    core: Core<'w>,
    hierarchy: Hierarchy<'w>,
    warmup_uops: u64,
    window: u64,
    record_windows: bool,
    fingerprint: u64,
    target: u64,
    warmed: bool,
    done: bool,
    windows: Vec<MetricsWindow>,
    prev_retired: u64,
    prev_cycles: u64,
    prev_mem: MemStats,
}

impl<'w> SimSession<'w> {
    /// Advances the run by one window (the first call runs the warm-up
    /// phase instead, when one is configured). Returns `true` once the
    /// program has fully retired.
    ///
    /// # Errors
    ///
    /// The first [`CdpError`] latched by the memory hierarchy in this
    /// window.
    pub fn step(&mut self) -> Result<bool, CdpError> {
        if self.done {
            return Ok(true);
        }
        if !self.warmed {
            self.warmed = true;
            if self.warmup_uops > 0 {
                self.target = self.warmup_uops;
                self.core.run_until_retired(&mut self.hierarchy, self.target);
                if let Some(e) = self.hierarchy.take_fault() {
                    return Err(e);
                }
                self.core.reset_stats();
                self.core.reset_stall_hist();
                self.hierarchy.reset_stats();
                if let Some(t) = self.hierarchy.tracer_mut() {
                    t.clear();
                }
                return Ok(false);
            }
        }
        self.target += self.window;
        let done = self.core.run_until_retired(&mut self.hierarchy, self.target);
        if let Some(e) = self.hierarchy.take_fault() {
            return Err(e);
        }
        if self.record_windows {
            let cs = self.core.stats();
            let mem = *self.hierarchy.stats();
            self.windows.push(MetricsWindow::delta(
                self.windows.len(),
                cs.retired - self.prev_retired,
                cs.cycles - self.prev_cycles,
                &mem,
                &self.prev_mem,
            ));
            self.prev_retired = cs.retired;
            self.prev_cycles = cs.cycles;
            self.prev_mem = mem;
        }
        self.done = done;
        Ok(done)
    }

    /// Whether the program has fully retired.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Cycles simulated so far (post-warm-up measurement clock).
    pub fn cycles(&self) -> u64 {
        self.core.stats().cycles
    }

    /// Uops retired so far (post-warm-up).
    pub fn retired(&self) -> u64 {
        self.core.stats().retired
    }

    /// Serializes the complete session — core, hierarchy, driver-loop
    /// scalars, and the metrics accumulator — into a self-describing
    /// snapshot (magic, version, fingerprint, per-section checksums).
    pub fn snapshot(&self) -> Vec<u8> {
        self.snapshot_into(Vec::new())
    }

    /// [`SimSession::snapshot`] into a caller-owned buffer: `buf` is
    /// cleared, refilled, and returned, so a periodic checkpointer can
    /// recycle one allocation across every snapshot it writes. Output
    /// bytes are identical to [`SimSession::snapshot`].
    pub fn snapshot_into(&self, buf: Vec<u8>) -> Vec<u8> {
        let mut w = cdp_snap::SnapWriter::new_in(self.fingerprint, buf);
        w.section(SEC_RUN, |e| {
            e.u64(self.target);
            e.bool(self.warmed);
            e.bool(self.done);
        });
        w.section(SEC_CORE, |e| self.core.save_state(e));
        w.section(SEC_HIER, |e| self.hierarchy.save_state(e));
        if self.record_windows {
            w.section(SEC_OBS, |e| {
                e.u64(self.prev_retired);
                e.u64(self.prev_cycles);
                self.prev_mem.save_state(e);
                e.seq_len(self.windows.len());
                for win in &self.windows {
                    win.save_state(e);
                }
            });
        }
        w.finish()
    }

    /// Restores a snapshot into this freshly constructed session.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        let reader = cdp_snap::SnapReader::parse(bytes, Some(self.fingerprint))?;
        let mut dec = reader.section(SEC_RUN)?;
        self.target = dec.u64("run target")?;
        self.warmed = dec.bool("run warmed")?;
        self.done = dec.bool("run done")?;
        if !dec.is_exhausted() {
            return Err(SnapshotError::Corrupt {
                context: "run section trailing bytes",
            });
        }
        let mut dec = reader.section(SEC_CORE)?;
        self.core.restore_state(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(SnapshotError::Corrupt {
                context: "core section trailing bytes",
            });
        }
        let mut dec = reader.section(SEC_HIER)?;
        self.hierarchy.restore_state(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(SnapshotError::Corrupt {
                context: "hierarchy section trailing bytes",
            });
        }
        if self.record_windows {
            let mut dec = reader.section(SEC_OBS)?;
            self.prev_retired = dec.u64("obs prev_retired")?;
            self.prev_cycles = dec.u64("obs prev_cycles")?;
            self.prev_mem.restore_state(&mut dec)?;
            let n = dec.seq_len(16 * 8, "obs window count")?;
            self.windows.clear();
            for _ in 0..n {
                self.windows.push(MetricsWindow::restore_state(&mut dec)?);
            }
            if !dec.is_exhausted() {
                return Err(SnapshotError::Corrupt {
                    context: "obs section trailing bytes",
                });
            }
        }
        Ok(())
    }

    /// Consumes the session, producing the final [`RunStats`] and the
    /// [`Observation`] accumulated so far (empty for unobserved runs).
    pub fn finish(mut self) -> (RunStats, Observation) {
        let cs = self.core.stats();
        let stats = RunStats {
            cycles: cs.cycles,
            retired: cs.retired,
            core: cs,
            mem: *self.hierarchy.stats(),
            content: self.hierarchy.content_stats(),
            stride: self.hierarchy.stride_stats(),
            markov: self.hierarchy.markov_stats(),
            stream: self.hierarchy.stream_stats(),
            adaptive: self.hierarchy.adaptive_state(),
            delta: self.hierarchy.delta_stats(),
            jump: self.hierarchy.jump_stats(),
            perceptron: self.hierarchy.perceptron_stats(),
            bus: self.hierarchy.bus_stats(),
        };
        let profile = self.hierarchy.take_profile().map(|mut p| {
            // The core's stall histogram is the fourth leg of the profile;
            // fold it in so callers see one bundle.
            if let Some(stall) = self.core.take_stall_hist() {
                p.rob_stall.merge(&stall);
            }
            *p
        });
        let observation = Observation::new(
            std::mem::take(&mut self.windows),
            self.hierarchy.take_tracer(),
            profile,
        );
        (stats, observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_workloads::suite::Benchmark;

    fn workload() -> Workload {
        Benchmark::SpecjbbVsnet.build(Scale::smoke(), 3)
    }

    #[test]
    fn baseline_run_completes() {
        let w = workload();
        let s = Simulator::new(SystemConfig::asplos2002()).run(&w);
        assert_eq!(s.retired as usize, w.program.len());
        assert!(s.cycles > 0);
        assert!(s.mem.accesses > 0);
        assert!(s.stride.is_some());
        assert!(s.content.is_none());
    }

    #[test]
    fn warmup_reduces_counted_work() {
        let w = workload();
        let mut cfg = SystemConfig::asplos2002();
        let full = Simulator::new(cfg.clone()).run(&w);
        cfg.warmup_uops = (w.program.len() / 2) as u64;
        let warmed = Simulator::new(cfg).run(&w);
        assert!(warmed.retired < full.retired);
        assert!(warmed.cycles < full.cycles);
    }

    #[test]
    fn content_system_not_slower_on_pointer_workload() {
        let w = Benchmark::Slsb.build(Scale::smoke(), 5);
        let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
        let cdp = Simulator::new(SystemConfig::with_content()).run(&w);
        let sp = speedup(&base, &cdp);
        assert!(
            sp > 0.97,
            "CDP must not tank a pointer workload: speedup {sp:.3}"
        );
        assert!(cdp.mem.content.issued > 0, "CDP actually ran");
    }

    #[test]
    fn timeline_windows_sum_to_totals() {
        let w = Benchmark::Tpcc1.build(Scale::smoke(), 6);
        let sim = Simulator::new(SystemConfig::with_content());
        let timeline = sim.run_timeline(&w, 4_000);
        let full = sim.run(&w);
        assert!(timeline.len() >= 2);
        let retired: u64 = timeline.iter().map(|s| s.retired).sum();
        let misses: u64 = timeline.iter().map(|s| s.l2_misses).sum();
        let issued: u64 = timeline.iter().map(|s| s.content_issued).sum();
        assert_eq!(retired, full.retired);
        assert_eq!(misses, full.mem.l2_demand_misses);
        assert_eq!(issued, full.mem.content.issued);
        // Window indices are consecutive.
        for (i, s) in timeline.iter().enumerate() {
            assert_eq!(s.window, i);
        }
        // Derived metrics are finite.
        assert!(timeline[0].mptu().is_finite());
        assert!(timeline[0].ipc() > 0.0);
    }

    #[test]
    fn mptu_trace_has_warmup_transient() {
        let w = Benchmark::Tpcc2.build(Scale::smoke(), 9);
        let trace =
            Simulator::new(SystemConfig::asplos2002()).run_mptu_trace(&w, 2_000);
        assert!(trace.len() >= 5);
        // First window (cold caches) has more misses than the average of
        // the later half (steady state).
        let late: f64 =
            trace[trace.len() / 2..].iter().sum::<f64>() / (trace.len() - trace.len() / 2) as f64;
        assert!(
            trace[0] > late,
            "cold-start window {} should exceed steady state {late}",
            trace[0]
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = SystemConfig::asplos2002();
        cfg.dtlb.entries = 63;
        assert!(Simulator::try_new(cfg).is_err());
    }

    #[test]
    fn speedup_orientation() {
        let base = RunStats {
            cycles: 1126,
            ..RunStats::default()
        };
        let variant = RunStats {
            cycles: 1000,
            ..RunStats::default()
        };
        assert!((speedup(&base, &variant) - 1.126).abs() < 1e-9);
    }

    #[test]
    fn run_lengths_are_ordered() {
        assert!(RunLength::Smoke.scale().target_uops < RunLength::Quick.scale().target_uops);
        assert!(RunLength::Quick.scale().target_uops < RunLength::Full.scale().target_uops);
        assert!(RunLength::Full.scale().target_uops < RunLength::Large.scale().target_uops);
        assert!(RunLength::Large.scale().target_uops < RunLength::Huge.scale().target_uops);
        assert!(RunLength::Full.warmup_uops() > 0);
        // The new tiers stream unconditionally (above the threshold).
        assert!(RunLength::Large.scale().streamed());
        assert!(RunLength::Huge.scale().streamed());
    }

    #[test]
    fn streaming_engine_matches_materialized_stats() {
        // The tentpole differential: the same benchmark/seed/scale run
        // through the streaming feed must produce byte-identical RunStats
        // (every counter, every prefetcher internal) to the materialized
        // engine.
        let sim = Simulator::new(SystemConfig::with_content());
        for (bench, seed) in [(Benchmark::Slsb, 11), (Benchmark::Tpcc2, 7)] {
            let eager = bench.build_with_engine(Scale::smoke(), seed, false);
            let streamed = bench.build_with_engine(Scale::smoke(), seed, true);
            assert!(streamed.is_streamed() && !eager.is_streamed());
            assert_eq!(streamed.program.len(), 0, "no materialized trace");
            let a = sim.run(&eager);
            let b = sim.run(&streamed);
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{} diverged between engines",
                bench.name()
            );
        }
    }

    #[test]
    fn streamed_session_snapshot_resumes_bit_identically() {
        // Snapshot taken mid-stream (generator cursor + in-flight window
        // serialized) must resume to the exact same final stats.
        let w = Benchmark::Tpcc1.build_with_engine(Scale::smoke(), 17, true);
        let mut cfg = SystemConfig::with_content();
        cfg.warmup_uops = 5_000;
        let sim = Simulator::new(cfg.clone());
        let reference = sim.try_run(&w).unwrap();

        let mut session = sim.session(&w, None);
        assert!(!session.step().unwrap(), "smoke run ended during warm-up");
        let bytes = session.snapshot();
        drop(session);

        let mut resumed = Simulator::new(cfg).resume(&w, None, &bytes).unwrap();
        while !resumed.step().unwrap() {}
        let (stats, _) = resumed.finish();
        assert_eq!(format!("{reference:?}"), format!("{stats:?}"));
    }

    #[test]
    fn streamed_timeline_matches_materialized() {
        let eager = Benchmark::Tpcc1.build_with_engine(Scale::smoke(), 6, false);
        let streamed = Benchmark::Tpcc1.build_with_engine(Scale::smoke(), 6, true);
        let sim = Simulator::new(SystemConfig::with_content());
        assert_eq!(
            sim.run_timeline(&eager, 4_000),
            sim.run_timeline(&streamed, 4_000)
        );
        let a = sim.run_mptu_trace(&eager, 2_000);
        let b = sim.run_mptu_trace(&streamed, 2_000);
        assert_eq!(a, b);
    }

    fn observed_cfg() -> ObsConfig {
        ObsConfig {
            trace: Some(cdp_types::TraceConfig::default()),
            metrics_window: Some(4_000),
            profile_hist: true,
        }
    }

    #[test]
    fn session_loop_matches_run() {
        let w = Benchmark::Slsb.build(Scale::smoke(), 11);
        let sim = Simulator::new(SystemConfig::with_content());
        let direct = sim.run(&w);
        let mut session = sim.session(&w, None);
        while !session.step().unwrap() {}
        let (stepped, _) = session.finish();
        assert_eq!(format!("{direct:?}"), format!("{stepped:?}"));
    }

    #[test]
    fn snapshot_resume_is_bit_identical_plain() {
        let w = Benchmark::Tpcc1.build(Scale::smoke(), 17);
        let mut cfg = SystemConfig::with_content();
        cfg.warmup_uops = 5_000;
        let sim = Simulator::new(cfg.clone());
        let reference = sim.try_run(&w).unwrap();

        // Step past warm-up, snapshot, and throw the session away — as
        // if the process had been killed. (A plain session steps in
        // fault-check windows larger than a smoke run, so the warm-up
        // boundary is its one mid-run snapshot point.)
        let mut session = sim.session(&w, None);
        assert!(!session.step().unwrap(), "smoke run ended during warm-up");
        let bytes = session.snapshot();
        drop(session);

        // A brand-new simulator resumes and must finish identically.
        let sim2 = Simulator::new(cfg);
        let mut resumed = sim2.resume(&w, None, &bytes).unwrap();
        while !resumed.step().unwrap() {}
        let (stats, _) = resumed.finish();
        assert_eq!(format!("{reference:?}"), format!("{stats:?}"));
    }

    #[test]
    fn snapshot_resume_is_bit_identical_observed() {
        let w = Benchmark::SpecjbbVsnet.build(Scale::smoke(), 23);
        let cfg = SystemConfig::with_content();
        let obs = observed_cfg();
        let sim = Simulator::new(cfg.clone());
        let (ref_stats, ref_obs) = sim.try_run_observed(&w, &obs).unwrap();

        let mut session = sim.session(&w, Some(&obs));
        for _ in 0..2 {
            assert!(!session.step().unwrap(), "smoke run ended before step 2");
        }
        let bytes = session.snapshot();
        drop(session);

        let mut resumed = Simulator::new(cfg).resume(&w, Some(&obs), &bytes).unwrap();
        while !resumed.step().unwrap() {}
        let (stats, observation) = resumed.finish();
        assert_eq!(format!("{ref_stats:?}"), format!("{stats:?}"));
        assert_eq!(ref_obs.windows, observation.windows);
        assert_eq!(ref_obs.events, observation.events);
        assert_eq!(ref_obs.trace_recorded, observation.trace_recorded);
        assert_eq!(ref_obs.trace_overwritten, observation.trace_overwritten);
        assert_eq!(ref_obs.trace_sampled_out, observation.trace_sampled_out);
        assert!(
            ref_obs.profile.as_ref().is_some_and(|p| {
                !p.load_to_use.is_empty() && !p.rob_stall.is_empty()
            }),
            "profile histograms collected samples"
        );
        assert_eq!(ref_obs.profile, observation.profile);
    }

    #[test]
    fn resume_rejects_wrong_workload_or_config() {
        let w = Benchmark::Slsb.build(Scale::smoke(), 31);
        let sim = Simulator::new(SystemConfig::with_content());
        let mut session = sim.session(&w, None);
        session.step().unwrap();
        let bytes = session.snapshot();

        // Different workload seed → different fingerprint.
        let other = Benchmark::Slsb.build(Scale::smoke(), 32);
        match sim.resume(&other, None, &bytes) {
            Err(CdpError::Snapshot(cdp_types::SnapshotError::FingerprintMismatch {
                ..
            })) => {}
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }

        // Different system config → different fingerprint.
        let sim2 = Simulator::new(SystemConfig::asplos2002());
        assert!(matches!(
            sim2.resume(&w, None, &bytes),
            Err(CdpError::Snapshot(
                cdp_types::SnapshotError::FingerprintMismatch { .. }
            ))
        ));

        // Observability config is part of the fingerprint too.
        let obs = observed_cfg();
        assert!(matches!(
            sim.resume(&w, Some(&obs), &bytes),
            Err(CdpError::Snapshot(
                cdp_types::SnapshotError::FingerprintMismatch { .. }
            ))
        ));
    }

    #[test]
    fn resume_rejects_corruption_without_panicking() {
        let w = Benchmark::Tpcc1.build(Scale::smoke(), 41);
        let sim = Simulator::new(SystemConfig::with_content());
        let mut session = sim.session(&w, None);
        session.step().unwrap();
        let bytes = session.snapshot();

        // Every truncation prefix must yield a typed error, never a panic.
        for len in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    sim.resume(&w, None, &bytes[..len]),
                    Err(CdpError::Snapshot(_))
                ),
                "truncation to {len} bytes must fail with a typed error"
            );
        }

        // A flipped payload byte breaks a section checksum.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        assert!(matches!(
            sim.resume(&w, None, &flipped),
            Err(CdpError::Snapshot(_))
        ));
    }
}
