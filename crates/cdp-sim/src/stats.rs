//! Memory-system statistics.
//!
//! Everything the paper's evaluation reads out of the memory system:
//! MPTU inputs (§2.2), prefetch coverage/accuracy inputs (§4.1), the
//! timeliness classification of Figure 10 (full vs partial latency
//! masking per engine), and drop accounting for the arbiters.

/// Which engine owns a line / request, for classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Demand traffic (no prefetcher).
    Demand,
    /// The stride prefetcher.
    Stride,
    /// The content-directed prefetcher.
    Content,
    /// The Markov prefetcher.
    Markov,
    /// The delta-space Markov prefetcher.
    Delta,
    /// The pointer-chase/jump-pointer prefetcher.
    Jump,
}

/// Per-engine prefetch counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Prefetches issued to the memory system (post-drop-checks).
    pub issued: u64,
    /// Demand hits on this engine's resident prefetched lines
    /// (full latency mask; counted once per line).
    pub useful_full: u64,
    /// Demands that joined this engine's in-flight prefetch
    /// (partial latency mask).
    pub useful_partial: u64,
    /// Prefetched lines evicted without ever being demanded.
    pub wasted_evictions: u64,
}

impl EngineCounters {
    /// Total useful prefetches (full + partial).
    pub fn useful(&self) -> u64 {
        self.useful_full + self.useful_partial
    }

    /// accuracy = useful / issued (Equation 2 of the paper).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful() as f64 / self.issued as f64
        }
    }

    /// wasted = evicted-unused / issued — the pollution-pressure ratio
    /// complementing [`EngineCounters::accuracy`].
    pub fn wasted(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.wasted_evictions as f64 / self.issued as f64
        }
    }
}

/// Why a prefetch request was dropped before issue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropCounters {
    /// Target line already resident in the L2.
    pub resident: u64,
    /// Matching transaction already in flight (request merged/promoted).
    pub in_flight: u64,
    /// Candidate page had no virtual-to-physical mapping.
    pub unmapped: u64,
    /// L2 request queue full (§3.5: "the prefetch request is squashed").
    pub queue_full: u64,
    /// Chain depth exceeded the threshold.
    pub too_deep: u64,
}

impl DropCounters {
    /// Total dropped.
    pub fn total(&self) -> u64 {
        self.resident + self.in_flight + self.unmapped + self.queue_full + self.too_deep
    }
}

/// The Figure 10 classification of demand L2 load requests.
///
/// Denominator: demand accesses that *would have missed* the L2 without
/// prefetching — i.e. raw misses plus demands served (fully or partially)
/// by a prefetched line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestDistribution {
    /// Demand hits on stride-prefetched resident lines.
    pub stride_full: u64,
    /// Demands that joined in-flight stride prefetches.
    pub stride_partial: u64,
    /// Demand hits on content-prefetched resident lines.
    pub cpf_full: u64,
    /// Demands that joined in-flight content prefetches.
    pub cpf_partial: u64,
    /// Demand hits on Markov-prefetched resident lines.
    pub markov_full: u64,
    /// Demands that joined in-flight Markov prefetches.
    pub markov_partial: u64,
    /// Unmasked demand misses.
    pub unmasked_misses: u64,
}

impl RequestDistribution {
    /// Total classified requests.
    pub fn total(&self) -> u64 {
        self.stride_full
            + self.stride_partial
            + self.cpf_full
            + self.cpf_partial
            + self.markov_full
            + self.markov_partial
            + self.unmasked_misses
    }

    /// Fractions in Figure 10 order:
    /// `[str-full, str-part, cpf-full, cpf-part, ul2-miss]`
    /// (Markov folded into the miss column when present; the paper's
    /// Figure 10 has no Markov configuration).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total().max(1) as f64;
        [
            self.stride_full as f64 / t,
            self.stride_partial as f64 / t,
            self.cpf_full as f64 / t,
            self.cpf_partial as f64 / t,
            (self.unmasked_misses + self.markov_full + self.markov_partial) as f64 / t,
        ]
    }

    /// Of the non-stride-covered requests, the fraction fully eliminated
    /// by the content prefetcher (§4.2.3 reports 43%).
    pub fn cpf_full_share_of_nonstride(&self) -> f64 {
        let nonstride = self.cpf_full + self.cpf_partial + self.unmasked_misses;
        if nonstride == 0 {
            0.0
        } else {
            self.cpf_full as f64 / nonstride as f64
        }
    }

    /// Of content prefetches that masked any latency, the fraction that
    /// masked it fully (§4.2.3 reports 72%).
    pub fn cpf_fully_masked_share(&self) -> f64 {
        let masked = self.cpf_full + self.cpf_partial;
        if masked == 0 {
            0.0
        } else {
            self.cpf_full as f64 / masked as f64
        }
    }
}

/// Aggregate memory-system statistics for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand data accesses (loads + stores reaching the hierarchy).
    pub accesses: u64,
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// Demand accesses reaching the L2.
    pub l2_demand_accesses: u64,
    /// Demand hits in the L2 (including hits on prefetched lines).
    pub l2_demand_hits: u64,
    /// Demand L2 misses that found a matching fill in flight.
    pub l2_miss_merged: u64,
    /// Demand L2 misses that went to memory (the MPTU numerator).
    pub l2_demand_misses: u64,
    /// DTLB hits.
    pub dtlb_hits: u64,
    /// DTLB misses (page walks performed).
    pub dtlb_misses: u64,
    /// Page walks triggered by prefetch-candidate translation (§4.2.2:
    /// "over a third of the prefetch requests issued required an address
    /// translation not present in the data TLB").
    pub prefetch_walks: u64,
    /// Prefetch translations served by the DTLB.
    pub prefetch_tlb_hits: u64,
    /// Reinforcement rescans performed (§3.4.2).
    pub rescans: u64,
    /// Lines whose stored depth was promoted by a hit.
    pub depth_promotions: u64,
    /// Stride-engine counters.
    pub stride: EngineCounters,
    /// Content-engine counters.
    pub content: EngineCounters,
    /// Markov-engine counters.
    pub markov: EngineCounters,
    /// Delta-engine counters.
    pub delta: EngineCounters,
    /// Jump-engine counters.
    pub jump: EngineCounters,
    /// Prefetch drop accounting.
    pub drops: DropCounters,
    /// Figure 10 classification.
    pub distribution: RequestDistribution,
    /// Pollution-study injections (bad prefetches forced into the L2).
    pub injected_pollution: u64,
    /// Dirty lines written back on eviction (0 unless
    /// `SystemConfig::model_writebacks` is on).
    pub writebacks: u64,
}

impl MemStats {
    /// Misses per 1000 uops, given the retired-uop count of the same
    /// measurement window (the paper's MPTU metric, §2.2).
    pub fn mptu(&self, retired_uops: u64) -> f64 {
        if retired_uops == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 * 1000.0 / retired_uops as f64
        }
    }

    /// Counters for one engine; `None` for [`Engine::Demand`], which has
    /// no prefetch counters.
    pub fn engine(&self, e: Engine) -> Option<&EngineCounters> {
        match e {
            Engine::Stride => Some(&self.stride),
            Engine::Content => Some(&self.content),
            Engine::Markov => Some(&self.markov),
            Engine::Delta => Some(&self.delta),
            Engine::Jump => Some(&self.jump),
            Engine::Demand => None,
        }
    }
}

impl EngineCounters {
    /// Serializes the counters (declaration order).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.issued);
        enc.u64(self.useful_full);
        enc.u64(self.useful_partial);
        enc.u64(self.wasted_evictions);
    }

    /// Restores counters written by [`EngineCounters::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.issued = dec.u64("engine issued")?;
        self.useful_full = dec.u64("engine useful_full")?;
        self.useful_partial = dec.u64("engine useful_partial")?;
        self.wasted_evictions = dec.u64("engine wasted_evictions")?;
        Ok(())
    }
}

impl DropCounters {
    /// Serializes the counters (declaration order).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.resident);
        enc.u64(self.in_flight);
        enc.u64(self.unmapped);
        enc.u64(self.queue_full);
        enc.u64(self.too_deep);
    }

    /// Restores counters written by [`DropCounters::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.resident = dec.u64("drops resident")?;
        self.in_flight = dec.u64("drops in_flight")?;
        self.unmapped = dec.u64("drops unmapped")?;
        self.queue_full = dec.u64("drops queue_full")?;
        self.too_deep = dec.u64("drops too_deep")?;
        Ok(())
    }
}

impl RequestDistribution {
    /// Serializes the counters (declaration order).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.stride_full);
        enc.u64(self.stride_partial);
        enc.u64(self.cpf_full);
        enc.u64(self.cpf_partial);
        enc.u64(self.markov_full);
        enc.u64(self.markov_partial);
        enc.u64(self.unmasked_misses);
    }

    /// Restores counters written by [`RequestDistribution::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.stride_full = dec.u64("dist stride_full")?;
        self.stride_partial = dec.u64("dist stride_partial")?;
        self.cpf_full = dec.u64("dist cpf_full")?;
        self.cpf_partial = dec.u64("dist cpf_partial")?;
        self.markov_full = dec.u64("dist markov_full")?;
        self.markov_partial = dec.u64("dist markov_partial")?;
        self.unmasked_misses = dec.u64("dist unmasked_misses")?;
        Ok(())
    }
}

impl MemStats {
    /// Serializes the full statistics block (declaration order).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.accesses);
        enc.u64(self.l1_hits);
        enc.u64(self.l1_misses);
        enc.u64(self.l2_demand_accesses);
        enc.u64(self.l2_demand_hits);
        enc.u64(self.l2_miss_merged);
        enc.u64(self.l2_demand_misses);
        enc.u64(self.dtlb_hits);
        enc.u64(self.dtlb_misses);
        enc.u64(self.prefetch_walks);
        enc.u64(self.prefetch_tlb_hits);
        enc.u64(self.rescans);
        enc.u64(self.depth_promotions);
        self.stride.save_state(enc);
        self.content.save_state(enc);
        self.markov.save_state(enc);
        self.delta.save_state(enc);
        self.jump.save_state(enc);
        self.drops.save_state(enc);
        self.distribution.save_state(enc);
        enc.u64(self.injected_pollution);
        enc.u64(self.writebacks);
    }

    /// Restores statistics written by [`MemStats::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.accesses = dec.u64("mem accesses")?;
        self.l1_hits = dec.u64("mem l1_hits")?;
        self.l1_misses = dec.u64("mem l1_misses")?;
        self.l2_demand_accesses = dec.u64("mem l2_demand_accesses")?;
        self.l2_demand_hits = dec.u64("mem l2_demand_hits")?;
        self.l2_miss_merged = dec.u64("mem l2_miss_merged")?;
        self.l2_demand_misses = dec.u64("mem l2_demand_misses")?;
        self.dtlb_hits = dec.u64("mem dtlb_hits")?;
        self.dtlb_misses = dec.u64("mem dtlb_misses")?;
        self.prefetch_walks = dec.u64("mem prefetch_walks")?;
        self.prefetch_tlb_hits = dec.u64("mem prefetch_tlb_hits")?;
        self.rescans = dec.u64("mem rescans")?;
        self.depth_promotions = dec.u64("mem depth_promotions")?;
        self.stride.restore_state(dec)?;
        self.content.restore_state(dec)?;
        self.markov.restore_state(dec)?;
        self.delta.restore_state(dec)?;
        self.jump.restore_state(dec)?;
        self.drops.restore_state(dec)?;
        self.distribution.restore_state(dec)?;
        self.injected_pollution = dec.u64("mem injected_pollution")?;
        self.writebacks = dec.u64("mem writebacks")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_accuracy() {
        let e = EngineCounters {
            issued: 100,
            useful_full: 30,
            useful_partial: 10,
            wasted_evictions: 5,
        };
        assert_eq!(e.useful(), 40);
        assert!((e.accuracy() - 0.4).abs() < 1e-12);
        assert!((e.wasted() - 0.05).abs() < 1e-12);
        assert_eq!(EngineCounters::default().accuracy(), 0.0);
        assert_eq!(EngineCounters::default().wasted(), 0.0);
    }

    #[test]
    fn distribution_fractions_sum_to_one() {
        let d = RequestDistribution {
            stride_full: 30,
            stride_partial: 10,
            cpf_full: 20,
            cpf_partial: 10,
            markov_full: 0,
            markov_partial: 0,
            unmasked_misses: 30,
        };
        let f = d.fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((d.cpf_full_share_of_nonstride() - 20.0 / 60.0).abs() < 1e-12);
        assert!((d.cpf_fully_masked_share() - 20.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn mptu_math() {
        let s = MemStats {
            l2_demand_misses: 50,
            ..MemStats::default()
        };
        assert!((s.mptu(100_000) - 0.5).abs() < 1e-12);
        assert_eq!(s.mptu(0), 0.0);
    }

    #[test]
    fn drops_total() {
        let d = DropCounters {
            resident: 1,
            in_flight: 2,
            unmapped: 3,
            queue_full: 4,
            too_deep: 5,
        };
        assert_eq!(d.total(), 15);
    }

    #[test]
    fn engine_lookup_rejects_demand() {
        let s = MemStats::default();
        assert!(s.engine(Engine::Demand).is_none());
        assert!(s.engine(Engine::Stride).is_some());
        assert!(s.engine(Engine::Content).is_some());
        assert!(s.engine(Engine::Markov).is_some());
        assert!(s.engine(Engine::Delta).is_some());
        assert!(s.engine(Engine::Jump).is_some());
    }
}
