//! Parallel experiment execution engine.
//!
//! Experiments are embarrassingly parallel: every sweep point is an
//! independent `Simulator::run` over an immutable [`Workload`]. This
//! module provides the std-only plumbing to exploit that:
//!
//! * [`Pool`] — a scoped-thread work pool (no external crates) that runs
//!   a batch of closures across cores and returns results **in
//!   submission order**, so rendered tables are byte-identical at any
//!   job count;
//! * [`SimJob`] / [`Pool::run_sims`] — the labelled
//!   `(SystemConfig, Arc<Workload>)` batch unit every sweep submits;
//! * [`WorkloadCache`] — a shared `(Benchmark, Scale)`-keyed cache of
//!   immutable `Arc<Workload>`s, so concurrent jobs reuse one build.
//!
//! The simulator core itself stays single-threaded (see DESIGN.md §5);
//! parallelism lives entirely above it, one simulation per task.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cdp_types::{CdpError, ObsConfig, SystemConfig};
use cdp_workloads::suite::{Benchmark, Scale};
use cdp_workloads::Workload;

use crate::fault::WalkFault;
use crate::hierarchy::PollutionConfig;
use crate::observe::{ObsEntry, ObsSink, Observation};
use crate::runner::build_workload;
use crate::status::{status_sink, CellHeartbeat, ResultSource, SourceSlot, StatusSink};
use crate::system::{RunStats, Simulator};

/// How a [`Pool::run_with_status`] job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job completed.
    Ok(T),
    /// The job errored or panicked on every allowed attempt.
    Failed {
        /// The last attempt's error (or panic message).
        error: String,
        /// How many attempts were made.
        attempts: u32,
    },
    /// The job exceeded the wall-clock watchdog. Timeouts are terminal:
    /// a job that hangs once is not retried.
    TimedOut {
        /// How many attempts were made (the last one timed out).
        attempts: u32,
        /// The watchdog budget it exceeded.
        timeout: Duration,
    },
}

impl<T> JobOutcome<T> {
    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// A one-line human-readable failure description (`None` on success).
    pub fn failure(&self) -> Option<String> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed { error, attempts } => {
                Some(format!("failed after {attempts} attempt(s): {error}"))
            }
            JobOutcome::TimedOut { attempts, timeout } => Some(format!(
                "timed out after {attempts} attempt(s) ({timeout:?} watchdog)"
            )),
        }
    }

    /// How many attempts the job consumed (1 for a first-try success).
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Ok(_) => 1,
            JobOutcome::Failed { attempts, .. } | JobOutcome::TimedOut { attempts, .. } => {
                *attempts
            }
        }
    }
}

/// One labelled, timed [`JobOutcome`] from [`Pool::run_sims_profiled`].
///
/// `wall` is the job's total wall-clock time across every attempt,
/// including retry backoff — the per-cell cost a manifest reports.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's label, unchanged.
    pub label: String,
    /// How the job ended.
    pub outcome: JobOutcome<RunStats>,
    /// Wall-clock time the job consumed (all attempts + backoff).
    pub wall: Duration,
}

/// Retry / watchdog policy for [`Pool::run_with_status`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunPolicy {
    /// Per-attempt wall-clock watchdog; `None` disables the watchdog
    /// (jobs then run on the pool's own workers with no extra thread).
    pub timeout: Option<Duration>,
    /// Maximum attempts per job (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `min(backoff_base * 2^(n-1),
    /// backoff_cap)`.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Seed for deterministic retry jitter (see
    /// [`RunPolicy::backoff_jittered`]). The same seed always produces
    /// the same jitter schedule, so runs stay reproducible.
    pub jitter_seed: u64,
}

impl Default for RunPolicy {
    /// One attempt, no watchdog: identical behavior to [`Pool::run`]
    /// modulo the [`JobOutcome`] wrapper.
    fn default() -> RunPolicy {
        RunPolicy {
            timeout: None,
            max_attempts: 1,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

impl RunPolicy {
    /// The capped exponential backoff before retry attempt `retry`
    /// (1-based: the wait before the second attempt is `backoff(1)`).
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }

    /// [`RunPolicy::backoff`] with deterministic subtractive jitter.
    ///
    /// Tasks that fail together retry together: with the lockstep
    /// schedule, every colliding retry at high `--jobs` re-lands on the
    /// same instant, attempt after attempt. Jitter de-synchronizes them
    /// by shortening each wait by up to 25%, mixed from `(jitter_seed,
    /// salt, retry)` — no clock, no global RNG — so a given task index
    /// always waits the same amount and results stay byte-identical
    /// (backoff timing never affects submission-order output). Jitter
    /// only ever *subtracts*, so `backoff()` remains the worst case and
    /// the cap still holds.
    pub fn backoff_jittered(&self, retry: u32, salt: u64) -> Duration {
        let base = self.backoff(retry);
        // splitmix64 finalizer over the three identity inputs.
        let mut z = self
            .jitter_seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(retry));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Shave off [0, 25%) of the wait.
        let shave = base.mul_f64((z % 1000) as f64 / 1000.0 * 0.25);
        base - shave
    }
}

/// Renders a panic payload as a message string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// One result slot of [`Pool::run_with_status_timed`]'s scoped batch.
type TimedSlot<T> = Mutex<Option<(JobOutcome<T>, Duration)>>;

/// Drives one task through the retry/watchdog policy. `salt` is the
/// task's identity (its submission index) for retry-jitter derivation.
/// `status` (sink, label, index) receives a `retrying` heartbeat before
/// each backed-off re-attempt.
fn run_one_with_policy<T, F>(
    task: Arc<F>,
    policy: RunPolicy,
    salt: u64,
    status: Option<(&StatusSink, &str, usize)>,
) -> JobOutcome<T>
where
    T: Send + 'static,
    F: Fn() -> Result<T, String> + Send + Sync + 'static,
{
    let started = Instant::now();
    let max_attempts = policy.max_attempts.max(1);
    let mut last_error = String::new();
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            if let Some((sink, label, index)) = status {
                sink.retrying(label, index, attempt, started.elapsed().as_millis() as u64);
            }
            thread::sleep(policy.backoff_jittered(attempt - 1, salt));
        }
        match policy.timeout {
            None => match catch_unwind(AssertUnwindSafe(|| task())) {
                Ok(Ok(v)) => return JobOutcome::Ok(v),
                Ok(Err(e)) => last_error = e,
                Err(p) => last_error = panic_message(p),
            },
            Some(timeout) => {
                // The attempt runs on a detached thread so a hung job can
                // be abandoned (a scoped worker could never time out: the
                // scope would wait for it). An abandoned attempt may
                // outlive this call; it holds only its own task Arc.
                let (tx, rx) = mpsc::channel();
                let t = Arc::clone(&task);
                thread::Builder::new()
                    .name("cdp-pool-attempt".into())
                    .spawn(move || {
                        let result = match catch_unwind(AssertUnwindSafe(|| t())) {
                            Ok(Ok(v)) => Ok(v),
                            Ok(Err(e)) => Err(e),
                            Err(p) => Err(panic_message(p)),
                        };
                        let _ = tx.send(result);
                    })
                    .expect("spawn watchdog attempt thread");
                match rx.recv_timeout(timeout) {
                    Ok(Ok(v)) => return JobOutcome::Ok(v),
                    Ok(Err(e)) => last_error = e,
                    Err(_) => {
                        return JobOutcome::TimedOut {
                            attempts: attempt,
                            timeout,
                        }
                    }
                }
            }
        }
    }
    JobOutcome::Failed {
        error: last_error,
        attempts: max_attempts,
    }
}

/// The number of worker threads to use when the caller does not say:
/// every available core.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A fixed-width scoped-thread work pool.
///
/// `Pool` owns no threads between calls: each batch spins up at most
/// `jobs` scoped workers, drains a shared queue of tasks, and joins.
/// Results always come back in submission order regardless of which
/// worker ran which task, which keeps experiment output deterministic.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    /// A pool sized to [`default_jobs`].
    fn default() -> Pool {
        Pool::new(default_jobs())
    }
}

impl Pool {
    /// A pool running at most `jobs` tasks concurrently (clamped to at
    /// least one). `Pool::new(1)` degrades to strictly serial execution.
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// The concurrency limit.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns the results in submission order.
    ///
    /// A panicking task poisons nothing: the panic propagates from here
    /// (first panicking task wins) after all workers have drained.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let mut out = Vec::with_capacity(tasks.len());
        for r in self.run_caught(tasks) {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Panic-tolerant variant of [`Pool::run`]: a panicking task yields
    /// `None` in its slot while every other task still completes.
    pub fn try_run<T, F>(&self, tasks: Vec<F>) -> Vec<Option<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_caught(tasks).into_iter().map(Result::ok).collect()
    }

    /// Shared batch driver: scoped workers pull task indices from an
    /// atomic counter and park each (caught) result in its slot.
    fn run_caught<T, F>(&self, tasks: Vec<F>) -> Vec<thread::Result<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(n);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = tasks[i]
                        .lock()
                        .expect("task cell never poisoned: each index is claimed once")
                        .take()
                        .expect("each index is claimed exactly once");
                    let result = catch_unwind(AssertUnwindSafe(task));
                    *slots[i].lock().expect("slot never poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot never poisoned")
                    .expect("every index was claimed and stored")
            })
            .collect()
    }

    /// Runs every fallible task under `policy` (watchdog timeout, bounded
    /// retry with capped backoff) and reports a [`JobOutcome`] per task,
    /// in submission order.
    ///
    /// One failing, panicking, or hanging job never aborts the batch;
    /// every other job still runs to its own outcome. Workers are scoped
    /// and always joined; only a *timed-out attempt's* detached thread
    /// can outlive the call (it owns nothing but its task).
    pub fn run_with_status<T, F>(&self, tasks: Vec<F>, policy: RunPolicy) -> Vec<JobOutcome<T>>
    where
        T: Send + 'static,
        F: Fn() -> Result<T, String> + Send + Sync + 'static,
    {
        self.run_with_status_timed(tasks, policy)
            .into_iter()
            .map(|(outcome, _)| outcome)
            .collect()
    }

    /// As [`Pool::run_with_status`], additionally reporting each job's
    /// wall-clock time (all attempts plus retry backoff) for profiling
    /// and manifest emission.
    pub fn run_with_status_timed<T, F>(
        &self,
        tasks: Vec<F>,
        policy: RunPolicy,
    ) -> Vec<(JobOutcome<T>, Duration)>
    where
        T: Send + 'static,
        F: Fn() -> Result<T, String> + Send + Sync + 'static,
    {
        self.run_with_status_observed(tasks, policy, None)
    }

    /// Core of [`Pool::run_with_status_timed`], optionally narrating the
    /// batch's lifecycle into a [`StatusSink`] (`queued` / `running` /
    /// `retrying` / `done` JSONL heartbeats). With `meta` `None` the
    /// path is identical to before the stream existed.
    fn run_with_status_observed<T, F>(
        &self,
        tasks: Vec<F>,
        policy: RunPolicy,
        meta: Option<BatchStatus>,
    ) -> Vec<(JobOutcome<T>, Duration)>
    where
        T: Send + 'static,
        F: Fn() -> Result<T, String> + Send + Sync + 'static,
    {
        let n = tasks.len();
        let tasks: Vec<Arc<F>> = tasks.into_iter().map(Arc::new).collect();
        let slots: Vec<TimedSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(n);
        if let Some(m) = &meta {
            m.sink.batch(n);
            for (i, label) in m.labels.iter().enumerate() {
                m.sink.queued(label, i);
            }
        }
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if let Some(m) = &meta {
                        m.sink.running(&m.labels[i], i);
                    }
                    let start = Instant::now();
                    let status = meta
                        .as_ref()
                        .map(|m| (m.sink.as_ref(), m.labels[i].as_str(), i));
                    let outcome =
                        run_one_with_policy(Arc::clone(&tasks[i]), policy, i as u64, status);
                    let wall = start.elapsed();
                    if let Some(m) = &meta {
                        let status = match &outcome {
                            JobOutcome::Ok(_) => "ok",
                            JobOutcome::Failed { .. } => "failed",
                            JobOutcome::TimedOut { .. } => "timeout",
                        };
                        m.sink.done(
                            &m.labels[i],
                            i,
                            status,
                            wall.as_millis() as u64,
                            m.sources[i].get(),
                        );
                    }
                    *slots[i].lock().expect("slot never poisoned") = Some((outcome, wall));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot never poisoned")
                    .expect("every index was claimed and stored")
            })
            .collect()
    }

    /// Runs a batch of simulations, returning per-job results in
    /// submission order.
    pub fn run_sims(&self, jobs: Vec<SimJob>) -> Vec<SimResult> {
        self.run(jobs.into_iter().map(|j| move || j.execute_labelled()).collect())
    }

    /// Fault-tolerant variant of [`Pool::run_sims`]: every job reports a
    /// labelled [`JobOutcome`] under `policy` instead of panicking the
    /// batch on the first bad cell.
    pub fn run_sims_with_status(
        &self,
        jobs: Vec<SimJob>,
        policy: RunPolicy,
    ) -> Vec<(String, JobOutcome<RunStats>)> {
        self.run_sims_profiled(jobs, policy)
            .into_iter()
            .map(|r| (r.label, r.outcome))
            .collect()
    }

    /// As [`Pool::run_sims_with_status`], additionally timing each job
    /// ([`JobReport::wall`]) and routing any attached [`JobObs`]
    /// observation into its sink. When a process-global
    /// [`StatusSink`](crate::status::StatusSink) is installed, the batch
    /// also streams JSONL heartbeats with per-job result provenance.
    pub fn run_sims_profiled(&self, jobs: Vec<SimJob>, policy: RunPolicy) -> Vec<JobReport> {
        let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
        let sources: Vec<Arc<SourceSlot>> = jobs.iter().map(|_| SourceSlot::shared()).collect();
        let tasks: Vec<_> = jobs
            .into_iter()
            .zip(sources.iter().map(Arc::clone))
            .enumerate()
            .map(|(i, (j, slot))| {
                let j = j.with_status_index(i);
                move || {
                    j.try_execute_sourced(Some(&slot))
                        .map_err(|e| e.to_string())
                }
            })
            .collect();
        let meta = status_sink().map(|sink| BatchStatus {
            sink,
            labels: labels.clone(),
            sources,
        });
        labels
            .into_iter()
            .zip(self.run_with_status_observed(tasks, policy, meta))
            .map(|(label, (outcome, wall))| JobReport {
                label,
                outcome,
                wall,
            })
            .collect()
    }
}

/// Per-batch status-stream context for
/// [`Pool::run_with_status_observed`]: the installed sink plus each
/// job's label and provenance slot, indexed by submission order.
struct BatchStatus {
    sink: Arc<StatusSink>,
    labels: Vec<String>,
    sources: Vec<Arc<SourceSlot>>,
}

/// Observability attachment for a [`SimJob`]: which signals to collect
/// and where the resulting [`Observation`](crate::observe::Observation)
/// goes.
///
/// The `(batch, index)` pair tags the sink entry so artifacts drain in
/// submission order at any job count (see [`ObsSink::drain_sorted`]).
#[derive(Clone, Debug)]
pub struct JobObs {
    /// What to observe (trace ring and/or metrics windowing).
    pub cfg: ObsConfig,
    /// Destination shared across the batch's jobs.
    pub sink: Arc<ObsSink>,
    /// Caller-assigned batch id (one per submission wave).
    pub batch: u64,
    /// Submission index within the batch.
    pub index: usize,
}

/// A process-wide, fingerprint-keyed cache of finished simulation
/// results.
///
/// Sweeps across experiments repeat identical cells — the same
/// `(config, workload, scale, seed)` shows up in several grids (e.g. the
/// baseline column of every figure). The simulator is deterministic, so a
/// finished cell's [`RunStats`] (and, when observability is on, its
/// [`Observation`]) can be replayed instead of re-simulated with no
/// visible difference: stdout stays byte-identical at any job count,
/// cache on or off. Keys are caller-computed FNV-1a fingerprints that
/// must cover *everything* behavior-affecting: the full config, workload
/// identity, scale, seed, and any pollution/fault attachments.
///
/// Storage is sharded into [`CACHE_STRIPES`] independently-locked
/// stripes selected by the key's low bits (FNV-1a mixes well, so keys
/// spread uniformly). Concurrent jobs touching different cells then take
/// different locks; a single global `Mutex` serialized every lookup at
/// high `--jobs` counts. Hit/miss counters stay whole-cache atomics —
/// sharding changes lock granularity, never observable counts.
///
/// With [`ResultCache::with_store`], the in-memory cache becomes a
/// write-through L1 over a persistent [`cdp_store::ResultStore`]: every
/// insert also lands on disk, and an L1 miss consults the store before
/// reporting a miss. Store failures never affect correctness — an
/// unreadable or damaged entry is quarantined by the store and the cell
/// recomputes; a failed persist leaves the in-memory entry serving the
/// rest of the run.
#[derive(Debug)]
pub struct ResultCache {
    stripes: [ResultStripe; CACHE_STRIPES],
    hits: AtomicU64,
    misses: AtomicU64,
    store: Option<Arc<cdp_store::ResultStore>>,
}

/// One independently-locked stripe of a [`ResultCache`]: fingerprint →
/// replayable outcome.
type ResultStripe = Mutex<HashMap<u64, (RunStats, Option<Observation>)>>;

/// Lock stripes per shared cache ([`ResultCache`], [`WorkloadCache`]).
/// A power of two so stripe selection is a mask; 16 comfortably exceeds
/// any plausible worker count on this workload.
pub const CACHE_STRIPES: usize = 16;

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store: None,
        }
    }
}

impl ResultCache {
    /// Creates an empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Creates an empty in-memory cache backed by a persistent store:
    /// inserts write through, and misses consult the store before
    /// recomputing.
    pub fn with_store(store: Arc<cdp_store::ResultStore>) -> ResultCache {
        ResultCache {
            store: Some(store),
            ..ResultCache::default()
        }
    }

    /// The backing store, if one is attached.
    pub fn store(&self) -> Option<&Arc<cdp_store::ResultStore>> {
        self.store.as_ref()
    }

    fn stripe(&self, key: u64) -> &ResultStripe {
        &self.stripes[key as usize & (CACHE_STRIPES - 1)]
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (cells actually simulated) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Finished cells currently held.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("result cache poisoned").len())
            .sum()
    }

    /// Whether no cells are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw lookup by fingerprint key. Public for the concurrency tests
    /// and the contention microbench; [`SimJob::try_execute`] is the
    /// consumer that also maintains the hit/miss counters.
    ///
    /// An in-memory miss falls through to the backing store (when
    /// attached); a disk hit is promoted into the in-memory tier so the
    /// decode cost is paid once per cell per process.
    pub fn get(&self, key: u64) -> Option<(RunStats, Option<Observation>)> {
        self.get_with_source(key).map(|(found, _)| found)
    }

    /// As [`ResultCache::get`], additionally reporting which tier served
    /// the hit ([`ResultSource::ResultCache`] for the in-memory stripes,
    /// [`ResultSource::ResultStore`] for a disk hit) for the status
    /// stream's provenance field.
    pub fn get_with_source(
        &self,
        key: u64,
    ) -> Option<((RunStats, Option<Observation>), ResultSource)> {
        if let Some(found) = self
            .stripe(key)
            .lock()
            .expect("result cache poisoned")
            .get(&key)
            .cloned()
        {
            return Some((found, ResultSource::ResultCache));
        }
        let store = self.store.as_ref()?;
        let payload = store.get(key)?;
        match crate::persist::decode_result(&payload) {
            Ok((stats, observation)) => {
                self.stripe(key)
                    .lock()
                    .expect("result cache poisoned")
                    .insert(key, (stats, observation.clone()));
                Some(((stats, observation), ResultSource::ResultStore))
            }
            Err(e) => {
                // The envelope checksummed clean but the payload refused
                // to decode (e.g. a future payload version). Treat as a
                // miss; the store has already served its framing checks.
                eprintln!("warning: result store payload for cell {key:016x} rejected: {e}");
                None
            }
        }
    }

    /// Raw insert by fingerprint key. Duplicate inserts under a race
    /// carry identical values (deterministic simulation), so either copy
    /// may win. With a backing store attached the entry is also
    /// persisted (write-through); persistence failures are counted by
    /// the store and never surface here.
    pub fn put(&self, key: u64, stats: RunStats, observation: Option<Observation>) {
        if let Some(store) = &self.store {
            store.put(key, &crate::persist::encode_result(&stats, observation.as_ref()));
        }
        self.stripe(key)
            .lock()
            .expect("result cache poisoned")
            .insert(key, (stats, observation));
    }
}

/// How a checkpointed cell actually started, for run-manifest provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointProvenance {
    /// No usable checkpoint: the cell ran from cycle zero.
    Fresh,
    /// The cell resumed from an on-disk snapshot.
    Resumed,
    /// A checkpoint existed but failed to decode (truncated, corrupt, or
    /// from a different configuration); the cell fell back to a fresh
    /// run instead of resuming from suspect state.
    CorruptFallback,
}

impl CheckpointProvenance {
    /// Stable manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckpointProvenance::Fresh => "fresh",
            CheckpointProvenance::Resumed => "resumed",
            CheckpointProvenance::CorruptFallback => "corrupt-fallback",
        }
    }
}

/// A thread-safe slot a [`SimJob`] reports its [`CheckpointProvenance`]
/// into, readable by the submitter after the batch. Also accumulates the
/// cell's *dropped checkpoint writes* — writes are best-effort, but a
/// silent drop would hide a dying disk, so every drop is counted (and
/// warned about once per cell on stderr).
#[derive(Debug, Default)]
pub struct CheckpointStatus {
    provenance: AtomicU8,
    dropped_writes: AtomicU64,
}

impl CheckpointStatus {
    /// A fresh slot behind an [`Arc`], ready to attach to a job.
    pub fn shared() -> Arc<CheckpointStatus> {
        Arc::new(CheckpointStatus::default())
    }

    fn set(&self, p: CheckpointProvenance) {
        let code = match p {
            CheckpointProvenance::Fresh => 0,
            CheckpointProvenance::Resumed => 1,
            CheckpointProvenance::CorruptFallback => 2,
        };
        self.provenance.store(code, Ordering::Relaxed);
    }

    /// The provenance last reported (defaults to `Fresh`).
    pub fn get(&self) -> CheckpointProvenance {
        match self.provenance.load(Ordering::Relaxed) {
            1 => CheckpointProvenance::Resumed,
            2 => CheckpointProvenance::CorruptFallback,
            _ => CheckpointProvenance::Fresh,
        }
    }

    /// Records one dropped (failed) checkpoint write.
    pub fn record_dropped_write(&self) {
        self.dropped_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Checkpoint writes that failed and were dropped.
    pub fn dropped_writes(&self) -> u64 {
        self.dropped_writes.load(Ordering::Relaxed)
    }
}

/// Periodic-checkpoint attachment for a [`SimJob`].
///
/// The job snapshots its [`SimSession`](crate::system::SimSession) into
/// `dir/cell-<key>.snap` every `every` simulated cycles (checked at
/// window boundaries). Writes are atomic (temp file + rename), so a kill
/// at any moment leaves either the previous or the new checkpoint intact
/// — never a torn file. On completion the checkpoint is removed: the
/// cell's result is deterministic, so a later resume of the sweep simply
/// re-runs it to the identical result.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Directory the checkpoint file lives in (must exist).
    pub dir: PathBuf,
    /// Simulated cycles between checkpoints (0 disables periodic writes;
    /// resume still works off whatever file is present).
    pub every: u64,
    /// Cell identity — the same fingerprint used for result-cache keys.
    /// Names the file, so it must be unique per cell within `dir`.
    pub key: u64,
    /// Whether to look for (and resume from) an existing checkpoint.
    pub resume: bool,
    /// Where to report how the cell actually started.
    pub status: Option<Arc<CheckpointStatus>>,
    /// Filesystem the checkpoint I/O goes through; `None` uses the real
    /// filesystem. Tests substitute a fault-injecting
    /// [`cdp_store::FaultyIo`] to prove the crash-safety story.
    pub io: Option<Arc<dyn cdp_store::StoreIo>>,
}

impl CheckpointSpec {
    /// The checkpoint file path for this cell.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("cell-{:016x}.snap", self.key))
    }

    /// The filesystem this spec's I/O goes through.
    fn io(&self) -> Arc<dyn cdp_store::StoreIo> {
        self.io
            .clone()
            .unwrap_or_else(|| Arc::new(cdp_store::RealIo))
    }
}

/// Writes `bytes` to `path` atomically: a temp file in the same
/// directory, then rename. An error leaves any previous file under
/// `path` untouched (the temp is cleaned up best-effort).
fn write_atomic(io: &dyn cdp_store::StoreIo, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("part");
    if let Err(e) = io.write(&tmp, bytes) {
        let _ = io.remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = io.rename(&tmp, path) {
        let _ = io.remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// One independent simulation: a configuration over a shared workload.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// Caller-chosen identifier carried through to the [`SimResult`]
    /// (sweep-point labels, benchmark names, ...).
    pub label: String,
    /// Full system configuration (including warm-up budget).
    pub cfg: SystemConfig,
    /// The shared immutable workload image.
    pub workload: Arc<Workload>,
    /// Optional §3.5 junk-fill injection (the pollution limit study).
    pub pollution: Option<PollutionConfig>,
    /// Optional injected page-walk failures (fault studies).
    pub walk_fault: Option<WalkFault>,
    /// Optional observability attachment; `None` keeps the run on the
    /// plain [`Simulator::try_run`] path, byte-identical to a build
    /// without tracing.
    pub obs: Option<JobObs>,
    /// Optional result cache plus this job's precomputed key.
    pub result_cache: Option<(Arc<ResultCache>, u64)>,
    /// Optional periodic checkpointing / resume (see [`CheckpointSpec`]).
    pub checkpoint: Option<CheckpointSpec>,
    /// Batch submission index carried on in-cell `heartbeat` events (set
    /// by [`Pool::run_sims_profiled`]; 0 for standalone execution).
    pub status_index: usize,
}

impl SimJob {
    /// A plain job with no pollution or fault injection.
    pub fn new(label: impl Into<String>, cfg: SystemConfig, workload: Arc<Workload>) -> SimJob {
        SimJob {
            label: label.into(),
            cfg,
            workload,
            pollution: None,
            walk_fault: None,
            obs: None,
            result_cache: None,
            checkpoint: None,
            status_index: 0,
        }
    }

    /// Sets the batch submission index carried on heartbeat events.
    pub fn with_status_index(mut self, index: usize) -> SimJob {
        self.status_index = index;
        self
    }

    /// Adds injected page-walk failures.
    pub fn with_walk_fault(mut self, f: WalkFault) -> SimJob {
        self.walk_fault = Some(f);
        self
    }

    /// Attaches an observability sink: the run switches to
    /// [`Simulator::try_run_observed`] and pushes its
    /// [`Observation`](crate::observe::Observation) into `obs.sink`.
    pub fn with_obs(mut self, obs: JobObs) -> SimJob {
        self.obs = Some(obs);
        self
    }

    /// Attaches periodic checkpointing / resume.
    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> SimJob {
        self.checkpoint = Some(spec);
        self
    }

    /// Attaches a shared result cache under `key`. The key must fold in
    /// every behavior-affecting input of this job — config, workload
    /// identity, scale, seed, pollution, and fault attachments — or a hit
    /// would replay the wrong cell.
    pub fn with_result_cache(mut self, cache: Arc<ResultCache>, key: u64) -> SimJob {
        self.result_cache = Some((cache, key));
        self
    }

    fn simulator(&self) -> Result<Simulator, CdpError> {
        let mut sim = Simulator::try_new(self.cfg.clone())?;
        if let Some(p) = self.pollution {
            sim = sim.with_pollution(p);
        }
        if let Some(f) = self.walk_fault {
            sim = sim.with_walk_fault(f);
        }
        Ok(sim)
    }

    /// Runs the simulation.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or an unrecoverable demand-path
    /// fault; use [`SimJob::try_execute`] to handle both.
    pub fn execute(&self) -> RunStats {
        match self.try_execute() {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation, surfacing configuration and demand-path
    /// faults as typed errors.
    ///
    /// # Errors
    ///
    /// [`CdpError::Config`] for an invalid configuration, otherwise the
    /// first fault latched by the memory hierarchy.
    pub fn try_execute(&self) -> Result<RunStats, CdpError> {
        self.try_execute_sourced(None)
    }

    /// As [`SimJob::try_execute`], additionally reporting *how* the
    /// result was obtained (fresh run, cache/store replay, checkpoint
    /// resume) into `source` for the status stream. The slot is a
    /// shared atomic because a watchdogged attempt may run on a
    /// detached thread while the pool worker reads the slot.
    ///
    /// # Errors
    ///
    /// As [`SimJob::try_execute`].
    pub fn try_execute_sourced(&self, source: Option<&SourceSlot>) -> Result<RunStats, CdpError> {
        let report = |s: ResultSource| {
            if let Some(slot) = source {
                slot.set(s);
            }
        };
        // A cached result is usable when it can satisfy this job's full
        // contract: plain jobs need only the stats; observed jobs also
        // need a cached observation to replay into their sink.
        if let Some((cache, key)) = &self.result_cache {
            if let Some(((stats, cached_obs), tier)) = cache.get_with_source(*key) {
                match (&self.obs, cached_obs) {
                    (None, _) => {
                        cache.hits.fetch_add(1, Ordering::Relaxed);
                        report(tier);
                        return Ok(stats);
                    }
                    (Some(o), Some(observation)) => {
                        cache.hits.fetch_add(1, Ordering::Relaxed);
                        report(tier);
                        o.sink.push(ObsEntry {
                            batch: o.batch,
                            index: o.index,
                            label: self.label.clone(),
                            observation,
                        });
                        return Ok(stats);
                    }
                    // Cached entry lacks the observation this job needs:
                    // fall through and re-simulate (the fresh entry below
                    // upgrades the cache).
                    (Some(_), None) => {}
                }
            }
            cache.misses.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(spec) = &self.checkpoint {
            let (stats, observation, provenance) = self.run_checkpointed(spec)?;
            report(match provenance {
                CheckpointProvenance::Fresh => ResultSource::Fresh,
                CheckpointProvenance::Resumed => ResultSource::CheckpointResumed,
                CheckpointProvenance::CorruptFallback => ResultSource::CorruptFallback,
            });
            match (&self.obs, observation) {
                (Some(o), Some(observation)) => {
                    if let Some((cache, key)) = &self.result_cache {
                        cache.put(*key, stats, Some(observation.clone()));
                    }
                    o.sink.push(ObsEntry {
                        batch: o.batch,
                        index: o.index,
                        label: self.label.clone(),
                        observation,
                    });
                }
                _ => {
                    if let Some((cache, key)) = &self.result_cache {
                        cache.put(*key, stats, None);
                    }
                }
            }
            return Ok(stats);
        }
        report(ResultSource::Fresh);
        // The same windowed driving loop `Simulator::try_run` /
        // `try_run_observed` are built on, surfaced here so the cell can
        // emit throttled in-cell heartbeats between windows. Window
        // boundaries change no simulated state, so stats are identical
        // to the convenience wrappers.
        let sim = self.simulator()?;
        let obs_cfg = self.obs.as_ref().map(|o| &o.cfg);
        let mut session = sim.session(&self.workload, obs_cfg);
        let mut hb = self.heartbeat();
        while !session.step()? {
            hb.tick(session.retired());
        }
        let (stats, observation) = session.finish();
        match &self.obs {
            None => {
                if let Some((cache, key)) = &self.result_cache {
                    cache.put(*key, stats, None);
                }
                Ok(stats)
            }
            Some(o) => {
                if let Some((cache, key)) = &self.result_cache {
                    cache.put(*key, stats, Some(observation.clone()));
                }
                o.sink.push(ObsEntry {
                    batch: o.batch,
                    index: o.index,
                    label: self.label.clone(),
                    observation,
                });
                Ok(stats)
            }
        }
    }

    /// The cell's post-warm-up measurement budget in uops (streamed
    /// workloads report their generator target; materialized ones their
    /// trace length).
    fn measurement_uops(&self) -> u64 {
        let total = match &self.workload.stream {
            Some(spec) => spec.target_uops() as u64,
            None => self.workload.program.len() as u64,
        };
        total.saturating_sub(self.cfg.warmup_uops)
    }

    /// A throttled heartbeat reporter for this cell (no-op without an
    /// installed status sink).
    fn heartbeat(&self) -> CellHeartbeat {
        CellHeartbeat::new(&self.label, self.status_index, self.measurement_uops())
    }

    /// Drives the cell through a [`SimSession`](crate::system::SimSession)
    /// with periodic checkpoint writes, resuming from an existing
    /// checkpoint when asked. A checkpoint that fails to decode is never
    /// resumed from: the cell restarts fresh (recording
    /// [`CheckpointProvenance::CorruptFallback`]) so the result is still
    /// bit-identical to an uninterrupted run. Checkpoint *writes* are
    /// best-effort — a failed write leaves the previous checkpoint valid
    /// and the simulation unaffected.
    fn run_checkpointed(
        &self,
        spec: &CheckpointSpec,
    ) -> Result<(RunStats, Option<Observation>, CheckpointProvenance), CdpError> {
        let sim = self.simulator()?;
        let obs_cfg = self.obs.as_ref().map(|o| &o.cfg);
        let io = spec.io();
        let path = spec.path();
        let mut provenance = CheckpointProvenance::Fresh;
        let mut session = None;
        if spec.resume {
            // An unreadable checkpoint file is treated as absent (fresh
            // start); bytes that *read* but fail to decode are the
            // corrupt-fallback case below.
            if let Ok(bytes) = io.read(&path) {
                match sim.resume(&self.workload, obs_cfg, &bytes) {
                    Ok(s) => {
                        provenance = CheckpointProvenance::Resumed;
                        session = Some(s);
                    }
                    Err(CdpError::Snapshot(_)) => {
                        provenance = CheckpointProvenance::CorruptFallback;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if let Some(status) = &spec.status {
            status.set(provenance);
        }
        let mut session = session.unwrap_or_else(|| sim.session(&self.workload, obs_cfg));
        let mut last_checkpoint = session.cycles();
        let mut hb = self.heartbeat();
        // One snapshot arena recycled across every checkpoint write.
        let mut snap_buf = Vec::new();
        loop {
            if session.step()? {
                break;
            }
            hb.tick(session.retired());
            if spec.every > 0 && session.cycles().saturating_sub(last_checkpoint) >= spec.every {
                last_checkpoint = session.cycles();
                snap_buf = session.snapshot_into(snap_buf);
                if let Err(e) = write_atomic(io.as_ref(), &path, &snap_buf) {
                    // Best-effort, but never silent: the previous
                    // checkpoint stays valid, the drop is counted, and
                    // the operator hears about the failing disk.
                    eprintln!(
                        "warning: checkpoint write dropped for {}: {e}",
                        path.display()
                    );
                    if let Some(status) = &spec.status {
                        status.record_dropped_write();
                    }
                }
            }
        }
        // The cell finished: its checkpoint has served its purpose. A
        // later sweep resume re-runs the (deterministic) cell instead.
        let _ = io.remove_file(&path);
        let (stats, observation) = session.finish();
        Ok((stats, self.obs.as_ref().map(|_| observation), provenance))
    }
}

/// One finished [`SimJob`].
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The job's label, unchanged.
    pub label: String,
    /// The simulation statistics.
    pub stats: RunStats,
}

impl SimJob {
    fn execute_labelled(self) -> SimResult {
        let stats = self.execute();
        SimResult {
            label: self.label,
            stats,
        }
    }
}

/// A thread-safe `(Benchmark, Scale)`-keyed cache of immutable workload
/// images.
///
/// Experiments run many configurations over the same workloads; building
/// each image once — and sharing it by `Arc` across concurrent jobs —
/// matters. Workload generation is deterministic (fixed experiment
/// seed), so the rare duplicate build under a race produces an identical
/// image and either copy may win.
///
/// Sharded like [`ResultCache`]: [`CACHE_STRIPES`] stripes selected by
/// benchmark, so concurrent first-builds of *different* benchmarks never
/// contend on one lock (the builds themselves already ran unlocked; this
/// removes the remaining serialization on the map itself).
#[derive(Debug)]
pub struct WorkloadCache {
    stripes: [WorkloadStripe; CACHE_STRIPES],
}

/// One independently-locked stripe of a [`WorkloadCache`]: (benchmark,
/// scale) → shared built image.
type WorkloadStripe = Mutex<HashMap<(Benchmark, Scale), Arc<Workload>>>;

impl Default for WorkloadCache {
    fn default() -> WorkloadCache {
        WorkloadCache {
            stripes: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    fn stripe(&self, bench: Benchmark) -> &WorkloadStripe {
        self.stripes
            .get(bench as usize & (CACHE_STRIPES - 1))
            .expect("stripe mask in bounds")
    }

    /// The workload for `bench` at `scale` with the experiment seed,
    /// built on first use. The build runs outside the lock so other
    /// benchmarks stay fetchable meanwhile.
    pub fn get(&self, bench: Benchmark, scale: Scale) -> Arc<Workload> {
        self.get_with(bench, scale, || build_workload(bench, scale))
    }

    /// As [`WorkloadCache::get`] with a caller-supplied builder (custom
    /// seeds or structures). The builder must be deterministic for the
    /// key: under a race both builds run and either image is kept.
    pub fn get_with(
        &self,
        bench: Benchmark,
        scale: Scale,
        build: impl FnOnce() -> Workload,
    ) -> Arc<Workload> {
        let stripe = self.stripe(bench);
        if let Some(w) = stripe.lock().expect("cache lock").get(&(bench, scale)) {
            return Arc::clone(w);
        }
        let built = Arc::new(build());
        Arc::clone(
            stripe
                .lock()
                .expect("cache lock")
                .entry((bench, scale))
                .or_insert(built),
        )
    }

    /// How many distinct `(benchmark, scale)` images are cached.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("cache lock").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Tasks finish intentionally out of order (later tasks are
        // cheaper), yet the result vector matches submission order.
        let pool = Pool::new(4);
        let tasks: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(16 - i));
                    i * 10
                }
            })
            .collect();
        let got = pool.run(tasks);
        assert_eq!(got, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel_pool() {
        let run = |jobs| Pool::new(jobs).run((0..32).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn try_run_survives_a_panicking_job() {
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job 1 dies")),
            Box::new(|| 3),
            Box::new(|| 4),
        ];
        let got = pool.try_run(tasks);
        assert_eq!(got, vec![Some(1), None, Some(3), Some(4)]);
    }

    #[test]
    #[should_panic(expected = "job 0 dies")]
    fn run_propagates_the_panic() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("job 0 dies")), Box::new(|| 2)];
        Pool::new(2).run(tasks);
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_batches_work() {
        let pool = Pool::new(0);
        assert_eq!(pool.jobs(), 1);
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(pool.run(empty).is_empty());
    }

    #[test]
    fn workload_cache_is_keyed_by_benchmark_and_scale() {
        let cache = WorkloadCache::new();
        let smoke = cache.get(Benchmark::B2e, Scale::smoke());
        let again = cache.get(Benchmark::B2e, Scale::smoke());
        assert!(Arc::ptr_eq(&smoke, &again), "same key shares one image");
        let other = cache.get(Benchmark::Slsb, Scale::smoke());
        assert!(!Arc::ptr_eq(&smoke, &other));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn run_with_status_mixed_outcomes_preserve_submission_order() {
        use std::sync::atomic::AtomicU32;
        // Track that every started attempt also finishes (no leaked
        // worker left running after the batch, modulo the one task we
        // deliberately hang past its watchdog).
        let entered = Arc::new(AtomicU32::new(0));
        let exited = Arc::new(AtomicU32::new(0));
        type Task = Box<dyn Fn() -> Result<u32, String> + Send + Sync>;
        let track = |body: Box<dyn Fn() -> Result<u32, String> + Send + Sync>,
                     entered: &Arc<AtomicU32>,
                     exited: &Arc<AtomicU32>|
         -> Task {
            let (en, ex) = (Arc::clone(entered), Arc::clone(exited));
            Box::new(move || {
                en.fetch_add(1, Ordering::SeqCst);
                let r = body();
                ex.fetch_add(1, Ordering::SeqCst);
                r
            })
        };
        let tasks: Vec<Task> = vec![
            track(Box::new(|| Ok(10)), &entered, &exited),
            track(Box::new(|| Err("typed failure".into())), &entered, &exited),
            track(Box::new(|| panic!("panicking job")), &entered, &exited),
            track(
                Box::new(|| {
                    std::thread::sleep(Duration::from_millis(400));
                    Ok(99)
                }),
                &entered,
                &exited,
            ),
            track(Box::new(|| Ok(50)), &entered, &exited),
        ];
        let policy = RunPolicy {
            timeout: Some(Duration::from_millis(60)),
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..RunPolicy::default()
        };
        let got = Pool::new(3).run_with_status(tasks, policy);
        assert_eq!(got.len(), 5, "one outcome per submitted job");
        assert_eq!(got[0], JobOutcome::Ok(10));
        match &got[1] {
            JobOutcome::Failed { error, attempts } => {
                assert!(error.contains("typed failure"), "{error}");
                assert_eq!(*attempts, 2, "errors are retried up to the cap");
            }
            other => panic!("index 1: {other:?}"),
        }
        match &got[2] {
            JobOutcome::Failed { error, attempts } => {
                assert!(error.contains("panicking job"), "{error}");
                assert_eq!(*attempts, 2);
            }
            other => panic!("index 2: {other:?}"),
        }
        match &got[3] {
            JobOutcome::TimedOut { attempts, timeout } => {
                assert_eq!(*attempts, 1, "timeouts are not retried");
                assert_eq!(*timeout, Duration::from_millis(60));
            }
            other => panic!("index 3: {other:?}"),
        }
        assert_eq!(got[4], JobOutcome::Ok(50));
        // Failure indices are recoverable from the outcome vector alone.
        let failed: Vec<usize> = got
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.is_ok())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![1, 2, 3]);
        // No leaked workers: every attempt that started finishes once the
        // deliberately hung task's sleep elapses. Expected exits: ok(1) +
        // error-retries(2) + timed-out-but-completing(1) + ok(1) = 5; the
        // two panicking attempts unwind before their exit marker.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while exited.load(Ordering::SeqCst) < 5 {
            assert!(std::time::Instant::now() < deadline, "attempt leaked");
            std::thread::sleep(Duration::from_millis(10));
        }
        // entered counts: ok(1) + failed(2) + panic(2) + timeout(1, not
        // retried) + ok(1) = 7.
        assert_eq!(entered.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn run_with_status_retry_succeeds_after_transient_failures() {
        use std::sync::atomic::AtomicU32;
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        let task = move || {
            if c.fetch_add(1, Ordering::SeqCst) < 2 {
                Err("transient".to_string())
            } else {
                Ok(7u32)
            }
        };
        let policy = RunPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            ..RunPolicy::default()
        };
        let got = Pool::new(1).run_with_status(vec![task], policy);
        assert_eq!(got, vec![JobOutcome::Ok(7)]);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "two retries consumed");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RunPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..RunPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35), "capped");
        assert_eq!(p.backoff(30), Duration::from_millis(35), "shift clamped");
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_desynchronized() {
        let p = RunPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 17,
            ..RunPolicy::default()
        };
        for retry in 1..=5u32 {
            for salt in 0..8u64 {
                let j = p.backoff_jittered(retry, salt);
                let full = p.backoff(retry);
                assert!(j <= full, "jitter only subtracts");
                assert!(
                    j >= full.mul_f64(0.75),
                    "shave bounded at 25%: {j:?} vs {full:?}"
                );
                assert_eq!(
                    j,
                    p.backoff_jittered(retry, salt),
                    "same (seed, salt, retry) -> same wait"
                );
            }
        }
        // Colliding tasks (same retry, different salts) must not all
        // re-land on the same instant.
        let waits: std::collections::HashSet<Duration> =
            (0..16u64).map(|salt| p.backoff_jittered(1, salt)).collect();
        assert!(waits.len() > 8, "salts de-synchronize: {waits:?}");
    }

    #[test]
    fn job_outcome_accessors() {
        let ok: JobOutcome<u32> = JobOutcome::Ok(3);
        assert!(ok.is_ok() && ok.failure().is_none() && ok.attempts() == 1);
        assert_eq!(ok.ok(), Some(3));
        let failed: JobOutcome<u32> = JobOutcome::Failed {
            error: "boom".into(),
            attempts: 2,
        };
        assert_eq!(failed.attempts(), 2);
        assert!(failed.failure().unwrap().contains("boom"));
        let timed: JobOutcome<u32> = JobOutcome::TimedOut {
            attempts: 1,
            timeout: Duration::from_secs(1),
        };
        assert!(timed.failure().unwrap().contains("timed out"));
        assert_eq!(timed.ok(), None);
    }

    #[test]
    fn sims_with_status_surface_bad_configs_without_aborting_the_batch() {
        let cache = WorkloadCache::new();
        let w = cache.get(Benchmark::Slsb, Scale::smoke());
        let mut bad_cfg = SystemConfig::asplos2002();
        bad_cfg.dtlb.entries = 63; // fails validation
        let jobs = vec![
            SimJob::new("good", SystemConfig::asplos2002(), Arc::clone(&w)),
            SimJob::new("bad", bad_cfg, Arc::clone(&w)),
        ];
        let got = Pool::new(2).run_sims_with_status(jobs, RunPolicy::default());
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "good");
        assert!(got[0].1.is_ok());
        assert_eq!(got[1].0, "bad");
        assert!(got[1].1.failure().unwrap().contains("configuration"));
    }

    #[test]
    fn profiled_sims_time_jobs_and_route_observations() {
        use cdp_types::TraceConfig;
        let cache = WorkloadCache::new();
        let w = cache.get(Benchmark::Slsb, Scale::smoke());
        let sink = ObsSink::shared();
        let jobs: Vec<SimJob> = (0..2)
            .map(|i| {
                SimJob::new(format!("cell/{i}"), SystemConfig::with_content(), Arc::clone(&w))
                    .with_obs(JobObs {
                        cfg: ObsConfig {
                            trace: Some(TraceConfig::default()),
                            metrics_window: Some(16_384),
                            profile_hist: true,
                        },
                        sink: Arc::clone(&sink),
                        batch: 7,
                        index: i,
                    })
            })
            .collect();
        let reports = Pool::new(2).run_sims_profiled(jobs, RunPolicy::default());
        assert_eq!(reports.len(), 2);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.label, format!("cell/{i}"));
            assert!(r.outcome.is_ok(), "{:?}", r.outcome.failure());
            assert!(r.wall > Duration::ZERO);
        }
        let entries = sink.drain_sorted();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].index, 0);
        assert!(!entries[0].observation.windows.is_empty());
        // Observed runs must not perturb the simulation itself.
        let plain = SimJob::new("p", SystemConfig::with_content(), Arc::clone(&w))
            .try_execute()
            .unwrap();
        let observed = reports[0].outcome.clone().ok().unwrap();
        assert_eq!(plain.cycles, observed.cycles);
        assert_eq!(plain.retired, observed.retired);
        assert_eq!(plain.mem, observed.mem);
    }

    #[test]
    fn pooled_sims_match_serial_sims() {
        let cache = WorkloadCache::new();
        let jobs = |n: usize| -> Vec<SimJob> {
            [Benchmark::B2e, Benchmark::Slsb]
                .iter()
                .flat_map(|&b| {
                    let w = cache.get(b, Scale::smoke());
                    (0..n).map(move |i| {
                        let cfg = if i % 2 == 0 {
                            SystemConfig::asplos2002()
                        } else {
                            SystemConfig::with_content()
                        };
                        SimJob::new(format!("{b:?}/{i}"), cfg, Arc::clone(&w))
                    })
                })
                .collect()
        };
        let serial = Pool::new(1).run_sims(jobs(2));
        let parallel = Pool::new(4).run_sims(jobs(2));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.stats.cycles, p.stats.cycles, "{}", s.label);
            assert_eq!(s.stats.retired, p.stats.retired, "{}", s.label);
        }
    }
}
