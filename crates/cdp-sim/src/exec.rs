//! Parallel experiment execution engine.
//!
//! Experiments are embarrassingly parallel: every sweep point is an
//! independent `Simulator::run` over an immutable [`Workload`]. This
//! module provides the std-only plumbing to exploit that:
//!
//! * [`Pool`] — a scoped-thread work pool (no external crates) that runs
//!   a batch of closures across cores and returns results **in
//!   submission order**, so rendered tables are byte-identical at any
//!   job count;
//! * [`SimJob`] / [`Pool::run_sims`] — the labelled
//!   `(SystemConfig, Arc<Workload>)` batch unit every sweep submits;
//! * [`WorkloadCache`] — a shared `(Benchmark, Scale)`-keyed cache of
//!   immutable `Arc<Workload>`s, so concurrent jobs reuse one build.
//!
//! The simulator core itself stays single-threaded (see DESIGN.md §5);
//! parallelism lives entirely above it, one simulation per task.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use cdp_types::SystemConfig;
use cdp_workloads::suite::{Benchmark, Scale};
use cdp_workloads::Workload;

use crate::hierarchy::PollutionConfig;
use crate::runner::build_workload;
use crate::system::{RunStats, Simulator};

/// The number of worker threads to use when the caller does not say:
/// every available core.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A fixed-width scoped-thread work pool.
///
/// `Pool` owns no threads between calls: each batch spins up at most
/// `jobs` scoped workers, drains a shared queue of tasks, and joins.
/// Results always come back in submission order regardless of which
/// worker ran which task, which keeps experiment output deterministic.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    /// A pool sized to [`default_jobs`].
    fn default() -> Pool {
        Pool::new(default_jobs())
    }
}

impl Pool {
    /// A pool running at most `jobs` tasks concurrently (clamped to at
    /// least one). `Pool::new(1)` degrades to strictly serial execution.
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// The concurrency limit.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns the results in submission order.
    ///
    /// A panicking task poisons nothing: the panic propagates from here
    /// (first panicking task wins) after all workers have drained.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let mut out = Vec::with_capacity(tasks.len());
        for r in self.run_caught(tasks) {
            match r {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Panic-tolerant variant of [`Pool::run`]: a panicking task yields
    /// `None` in its slot while every other task still completes.
    pub fn try_run<T, F>(&self, tasks: Vec<F>) -> Vec<Option<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_caught(tasks).into_iter().map(Result::ok).collect()
    }

    /// Shared batch driver: scoped workers pull task indices from an
    /// atomic counter and park each (caught) result in its slot.
    fn run_caught<T, F>(&self, tasks: Vec<F>) -> Vec<thread::Result<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<thread::Result<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(n);
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = tasks[i]
                        .lock()
                        .expect("task cell never poisoned: each index is claimed once")
                        .take()
                        .expect("each index is claimed exactly once");
                    let result = catch_unwind(AssertUnwindSafe(task));
                    *slots[i].lock().expect("slot never poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot never poisoned")
                    .expect("every index was claimed and stored")
            })
            .collect()
    }

    /// Runs a batch of simulations, returning per-job results in
    /// submission order.
    pub fn run_sims(&self, jobs: Vec<SimJob>) -> Vec<SimResult> {
        self.run(jobs.into_iter().map(|j| move || j.execute_labelled()).collect())
    }
}

/// One independent simulation: a configuration over a shared workload.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// Caller-chosen identifier carried through to the [`SimResult`]
    /// (sweep-point labels, benchmark names, ...).
    pub label: String,
    /// Full system configuration (including warm-up budget).
    pub cfg: SystemConfig,
    /// The shared immutable workload image.
    pub workload: Arc<Workload>,
    /// Optional §3.5 junk-fill injection (the pollution limit study).
    pub pollution: Option<PollutionConfig>,
}

impl SimJob {
    /// A plain job with no pollution injection.
    pub fn new(label: impl Into<String>, cfg: SystemConfig, workload: Arc<Workload>) -> SimJob {
        SimJob {
            label: label.into(),
            cfg,
            workload,
            pollution: None,
        }
    }

    /// Runs the simulation.
    pub fn execute(&self) -> RunStats {
        let mut sim = Simulator::new(self.cfg.clone());
        if let Some(p) = self.pollution {
            sim = sim.with_pollution(p);
        }
        sim.run(&self.workload)
    }
}

/// One finished [`SimJob`].
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The job's label, unchanged.
    pub label: String,
    /// The simulation statistics.
    pub stats: RunStats,
}

impl SimJob {
    fn execute_labelled(self) -> SimResult {
        let stats = self.execute();
        SimResult {
            label: self.label,
            stats,
        }
    }
}

/// A thread-safe `(Benchmark, Scale)`-keyed cache of immutable workload
/// images.
///
/// Experiments run many configurations over the same workloads; building
/// each image once — and sharing it by `Arc` across concurrent jobs —
/// matters. Workload generation is deterministic (fixed experiment
/// seed), so the rare duplicate build under a race produces an identical
/// image and either copy may win.
#[derive(Debug, Default)]
pub struct WorkloadCache {
    entries: Mutex<HashMap<(Benchmark, Scale), Arc<Workload>>>,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// The workload for `bench` at `scale` with the experiment seed,
    /// built on first use. The build runs outside the lock so other
    /// benchmarks stay fetchable meanwhile.
    pub fn get(&self, bench: Benchmark, scale: Scale) -> Arc<Workload> {
        self.get_with(bench, scale, || build_workload(bench, scale))
    }

    /// As [`WorkloadCache::get`] with a caller-supplied builder (custom
    /// seeds or structures). The builder must be deterministic for the
    /// key: under a race both builds run and either image is kept.
    pub fn get_with(
        &self,
        bench: Benchmark,
        scale: Scale,
        build: impl FnOnce() -> Workload,
    ) -> Arc<Workload> {
        if let Some(w) = self.entries.lock().expect("cache lock").get(&(bench, scale)) {
            return Arc::clone(w);
        }
        let built = Arc::new(build());
        Arc::clone(
            self.entries
                .lock()
                .expect("cache lock")
                .entry((bench, scale))
                .or_insert(built),
        )
    }

    /// How many distinct `(benchmark, scale)` images are cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Tasks finish intentionally out of order (later tasks are
        // cheaper), yet the result vector matches submission order.
        let pool = Pool::new(4);
        let tasks: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(16 - i));
                    i * 10
                }
            })
            .collect();
        let got = pool.run(tasks);
        assert_eq!(got, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel_pool() {
        let run = |jobs| Pool::new(jobs).run((0..32).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn try_run_survives_a_panicking_job() {
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job 1 dies")),
            Box::new(|| 3),
            Box::new(|| 4),
        ];
        let got = pool.try_run(tasks);
        assert_eq!(got, vec![Some(1), None, Some(3), Some(4)]);
    }

    #[test]
    #[should_panic(expected = "job 0 dies")]
    fn run_propagates_the_panic() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("job 0 dies")), Box::new(|| 2)];
        Pool::new(2).run(tasks);
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_batches_work() {
        let pool = Pool::new(0);
        assert_eq!(pool.jobs(), 1);
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(pool.run(empty).is_empty());
    }

    #[test]
    fn workload_cache_is_keyed_by_benchmark_and_scale() {
        let cache = WorkloadCache::new();
        let smoke = cache.get(Benchmark::B2e, Scale::smoke());
        let again = cache.get(Benchmark::B2e, Scale::smoke());
        assert!(Arc::ptr_eq(&smoke, &again), "same key shares one image");
        let other = cache.get(Benchmark::Slsb, Scale::smoke());
        assert!(!Arc::ptr_eq(&smoke, &other));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn pooled_sims_match_serial_sims() {
        let cache = WorkloadCache::new();
        let jobs = |n: usize| -> Vec<SimJob> {
            [Benchmark::B2e, Benchmark::Slsb]
                .iter()
                .flat_map(|&b| {
                    let w = cache.get(b, Scale::smoke());
                    (0..n).map(move |i| {
                        let cfg = if i % 2 == 0 {
                            SystemConfig::asplos2002()
                        } else {
                            SystemConfig::with_content()
                        };
                        SimJob::new(format!("{b:?}/{i}"), cfg, Arc::clone(&w))
                    })
                })
                .collect()
        };
        let serial = Pool::new(1).run_sims(jobs(2));
        let parallel = Pool::new(4).run_sims(jobs(2));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.stats.cycles, p.stats.cycles, "{}", s.label);
            assert_eq!(s.stats.retired, p.stats.retired, "{}", s.label);
        }
    }
}
