//! The full memory hierarchy (Figure 6 of the paper).
//!
//! ```text
//!        Processor
//!            │ demand requests
//!        L1 data cache (virtually indexed)
//!            │ L1 misses ──────────────► stride prefetcher
//!        DTLB ──► hardware page walker (bypasses the scanner)
//!            │
//!        UL2 cache (physically indexed, depth bits per line)
//!            │ misses            ▲ fills (copy to content prefetcher)
//!        MSHRs / arbiters ◄───── content prefetcher candidates
//!            │                    (virtual, TLB-translated)
//!        front-side bus ──► DRAM (the byte-level memory image)
//! ```
//!
//! Timing is analytic: every access returns its completion cycle
//! immediately, with bus contention and queue pressure folded in by the
//! [`cdp_mem::Bus`] model, and fills processed lazily in completion order
//! (so chained content prefetches are issued at their parent fill's
//! arrival time, exactly like the paper's recurrence).

use cdp_core::MemoryModel;
use cdp_mem::{AddressSpace, Bus, Cache, MshrFile, Tlb};
use cdp_obs::trace::{DropReason, EngineTag, FaultTag, TraceData, TraceRing, VamCause};
use cdp_prefetch::adaptive::AdaptiveVam;
use cdp_prefetch::{
    ContentPrefetcher, DeltaPrefetcher, JumpPrefetcher, MarkovPrefetcher, PerceptronFilter,
    Prefetcher, PrefetchRequest, StreamPrefetcher, StridePrefetcher, VamVerdict,
};
use cdp_types::{
    AccessKind, CdpError, LineAddr, PhysAddr, RequestKind, SystemConfig, TraceFilter, VirtAddr,
    LINE_SIZE, WORD_SIZE,
};

use crate::fault::WalkFault;
use crate::stats::{Engine, MemStats};

/// Per-L2-line metadata: the paper's reinforcement depth bits plus
/// bookkeeping for the Figure 10 classification.
#[derive(Clone, Copy, Debug)]
pub struct L2Meta {
    /// Engine that brought the line in.
    pub owner: Engine,
    /// Stored request depth (§3.4.2); 0 for demand lines.
    pub depth: u8,
    /// Virtual base address of the line (rescans need a virtual trigger).
    pub vline: VirtAddr,
    /// Whether a demand has hit this line since it was filled.
    pub demand_touched: bool,
    /// Whether the line arrived via width expansion (§3.4.3) — the most
    /// speculative fill class.
    pub width: bool,
    /// Whether a store has touched the line (writeback candidate).
    pub dirty: bool,
    /// Cycle the fill that installed this line entered the memory system
    /// (from its MSHR entry). Lets a demand's first touch of a prefetched
    /// line compute issue-to-use timeliness without any per-line clock.
    pub issued_at: u64,
}

/// Pollution-injection settings for the §3.5 limit study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollutionConfig {
    /// Inject one bad prefetch each time the bus has been idle for this
    /// many cycles (the paper injects "on every idle bus cycle"; a period
    /// of one line-occupancy reproduces that).
    pub period: u64,
}

impl cdp_mem::EvictClass for L2Meta {
    /// Speculative fills may not displace the proven working set: lines a
    /// demand has touched (or demand fills themselves) are protected,
    /// untouched chain candidates are preferred victims over them, and
    /// untouched width-expansion lines (§3.4.3, the most speculative
    /// class) go first.
    fn evict_class(&self) -> u8 {
        if self.owner == Engine::Demand || self.demand_touched {
            0
        } else if self.width {
            2
        } else {
            1
        }
    }
}

fn engine_of(kind: RequestKind) -> Engine {
    match kind {
        RequestKind::Demand | RequestKind::PageWalk => Engine::Demand,
        RequestKind::Stride => Engine::Stride,
        RequestKind::Content { .. } => Engine::Content,
        RequestKind::Markov => Engine::Markov,
        RequestKind::Delta => Engine::Delta,
        RequestKind::Jump => Engine::Jump,
    }
}

/// Inverse of [`engine_of`] for sites that only kept the owning engine
/// (L2 metadata, MSHR entries): reconstructs a request kind carrying the
/// same perceptron features the original request hashed to.
fn kind_of_engine(owner: Engine, depth: u8) -> RequestKind {
    match owner {
        Engine::Demand => RequestKind::Demand,
        Engine::Stride => RequestKind::Stride,
        Engine::Content => RequestKind::Content { depth },
        Engine::Markov => RequestKind::Markov,
        Engine::Delta => RequestKind::Delta,
        Engine::Jump => RequestKind::Jump,
    }
}

/// Maps a request kind onto the observability layer's engine tag.
fn engine_tag(kind: RequestKind) -> EngineTag {
    match kind {
        RequestKind::Demand | RequestKind::PageWalk => EngineTag::Demand,
        RequestKind::Stride => EngineTag::Stride,
        RequestKind::Content { .. } => EngineTag::Content,
        RequestKind::Markov => EngineTag::Markov,
        RequestKind::Delta => EngineTag::Delta,
        RequestKind::Jump => EngineTag::Jump,
    }
}

/// The assembled memory system.
pub struct Hierarchy<'w> {
    space: &'w AddressSpace,
    cfg: SystemConfig,
    l1: Cache<()>,
    l2: Cache<L2Meta>,
    dtlb: Tlb,
    bus: Bus,
    mshrs: MshrFile,
    stride: Option<StridePrefetcher>,
    content: Option<ContentPrefetcher>,
    markov: Option<MarkovPrefetcher>,
    stream: Option<StreamPrefetcher>,
    adaptive: Option<AdaptiveVam>,
    delta: Option<DeltaPrefetcher>,
    jump: Option<JumpPrefetcher>,
    /// Perceptron confidence filter: consulted between request generation
    /// and `issue_prefetch`, trained at the useful/wasted accounting sites.
    perceptron: Option<PerceptronFilter>,
    stats: MemStats,
    pollution: Option<PollutionConfig>,
    next_pollution: u64,
    pollution_rng: u64,
    /// Lines with an in-flight fill that a store has requested (they will
    /// install dirty).
    pending_dirty: std::collections::HashSet<u32>,
    /// Reusable request buffers for the prefetch-issue hot path. A small
    /// stack (not one buffer) because `issue_prefetch` can recurse through
    /// a resident-line rescan back into `scan_and_issue`, which needs a
    /// second buffer while the first is still borrowed out.
    req_bufs: Vec<Vec<PrefetchRequest>>,
    /// Reusable buffer for MSHR completion draining (taken out of `self`
    /// while `drain` iterates, so steady-state ticks never allocate).
    drain_buf: Vec<cdp_mem::InFlight>,
    /// First unrecoverable demand-path fault, latched for the driver.
    /// The hierarchy keeps serving accesses after a fault (returning
    /// L1-hit latency) so the core can be driven to a clean stop; the
    /// simulator checks this latch between run windows.
    fault: Option<CdpError>,
    /// Injected page-walk failures (fault-injection studies).
    walk_fault: Option<WalkFault>,
    /// Count of injection-eligible walks, for the period check.
    walk_tick: u64,
    /// Structured event tracer; `None` (the default) keeps every hook a
    /// single branch with no payload computation — the unobserved path is
    /// allocation-free and byte-identical.
    tracer: Option<Box<TraceRing>>,
    /// Latency-attribution histograms (`--profile-hist`); `None` (the
    /// default) keeps every recording site a single branch.
    profile: Option<Box<cdp_obs::Profile>>,
}

impl<'w> std::fmt::Debug for Hierarchy<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'w> Hierarchy<'w> {
    /// Builds the hierarchy described by `cfg` over the (read-only) memory
    /// image `space`.
    pub fn new(cfg: SystemConfig, space: &'w AddressSpace) -> Self {
        let stride = cfg
            .prefetchers
            .stride
            .as_ref()
            .map(StridePrefetcher::new);
        let content = cfg.prefetchers.content.map(ContentPrefetcher::new);
        let markov = cfg.prefetchers.markov.as_ref().map(MarkovPrefetcher::new);
        let stream = cfg.prefetchers.stream.as_ref().map(StreamPrefetcher::new);
        let adaptive = cfg.prefetchers.adaptive.map(AdaptiveVam::new);
        let delta = cfg.prefetchers.delta.as_ref().map(DeltaPrefetcher::new);
        let jump = cfg.prefetchers.jump.as_ref().map(JumpPrefetcher::new);
        let perceptron = cfg
            .prefetchers
            .perceptron
            .as_ref()
            .map(PerceptronFilter::new);
        Hierarchy {
            l1: Cache::from_config(&cfg.l1d),
            l2: Cache::from_config(&cfg.ul2),
            dtlb: Tlb::new(&cfg.dtlb),
            bus: Bus::new(&cfg.bus),
            mshrs: MshrFile::with_capacity(cfg.arbiters.l2_queue_size),
            stride,
            content,
            markov,
            stream,
            adaptive,
            delta,
            jump,
            perceptron,
            stats: MemStats::default(),
            pollution: None,
            next_pollution: 0,
            pollution_rng: 0x1234_5678_9abc_def0,
            pending_dirty: std::collections::HashSet::new(),
            req_bufs: Vec::new(),
            drain_buf: Vec::new(),
            fault: None,
            walk_fault: None,
            walk_tick: 0,
            tracer: None,
            profile: None,
            space,
            cfg,
        }
    }

    /// Installs a structured event tracer. All hook sites start recording;
    /// simulated behavior and statistics are unaffected.
    pub fn set_tracer(&mut self, ring: TraceRing) {
        self.tracer = Some(Box::new(ring));
    }

    /// Removes and returns the tracer (with everything it buffered).
    pub fn take_tracer(&mut self) -> Option<TraceRing> {
        self.tracer.take().map(|b| *b)
    }

    /// Mutable access to the installed tracer, if any (used to clear it
    /// at the warmup boundary).
    pub fn tracer_mut(&mut self) -> Option<&mut TraceRing> {
        self.tracer.as_deref_mut()
    }

    /// Installs the latency-attribution histograms. All recording sites
    /// start sampling; simulated behavior and statistics are unaffected.
    pub fn set_profile(&mut self, profile: Box<cdp_obs::Profile>) {
        self.profile = Some(profile);
    }

    /// Removes and returns the profile (with everything it recorded).
    pub fn take_profile(&mut self) -> Option<Box<cdp_obs::Profile>> {
        self.profile.take()
    }

    /// Records one trace event when a tracer is installed and its filter
    /// wants `category`. The payload closure only runs in that case, so
    /// hook sites cost a single branch when tracing is off.
    #[inline]
    fn trace(&mut self, category: TraceFilter, at: u64, make: impl FnOnce() -> TraceData) {
        if let Some(t) = self.tracer.as_deref_mut() {
            if t.wants(category) {
                t.push(at, make());
            }
        }
    }

    /// Enables the §3.5 pollution limit study: junk lines are force-filled
    /// into the L2 whenever the bus is idle.
    pub fn with_pollution(mut self, pollution: PollutionConfig) -> Self {
        self.pollution = Some(pollution);
        self
    }

    /// Enables deterministic page-walk fault injection: every
    /// `fault.period`-th eligible hardware walk is forced to fail.
    /// Prefetch-candidate walks are always eligible (the failure is
    /// squashed and counted as an unmapped drop); demand walks only when
    /// `fault.demand` is set (the failure latches a
    /// [`CdpError::TranslationFailure`]).
    pub fn with_walk_fault(mut self, fault: WalkFault) -> Self {
        self.walk_fault = Some(fault);
        self
    }

    /// The first unrecoverable demand-path fault, if one has occurred.
    pub fn fault(&self) -> Option<&CdpError> {
        self.fault.as_ref()
    }

    /// Takes the latched fault, clearing the latch.
    pub fn take_fault(&mut self) -> Option<CdpError> {
        self.fault.take()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Content-prefetcher internals (scan/rescan/candidate counters).
    pub fn content_stats(&self) -> Option<cdp_prefetch::ContentStats> {
        self.content.as_ref().map(|c| c.stats())
    }

    /// Stride-prefetcher internals.
    pub fn stride_stats(&self) -> Option<cdp_prefetch::StrideStats> {
        self.stride.as_ref().map(|s| s.stats())
    }

    /// Markov-prefetcher internals.
    pub fn markov_stats(&self) -> Option<cdp_prefetch::MarkovStats> {
        self.markov.as_ref().map(|m| m.stats())
    }

    /// Stream-buffer internals.
    pub fn stream_stats(&self) -> Option<cdp_prefetch::StreamStats> {
        self.stream.as_ref().map(|s| s.stats())
    }

    /// Delta-prefetcher internals.
    pub fn delta_stats(&self) -> Option<cdp_prefetch::DeltaStats> {
        self.delta.as_ref().map(|d| d.stats())
    }

    /// Jump-prefetcher internals.
    pub fn jump_stats(&self) -> Option<cdp_prefetch::JumpStats> {
        self.jump.as_ref().map(|j| j.stats())
    }

    /// Perceptron-filter internals.
    pub fn perceptron_stats(&self) -> Option<cdp_prefetch::PerceptronStats> {
        self.perceptron.as_ref().map(|p| p.stats())
    }

    /// Adaptive-controller internals (and the content configuration it has
    /// steered to, for inspection).
    pub fn adaptive_state(&self) -> Option<(cdp_prefetch::adaptive::AdaptiveStats, cdp_types::ContentConfig)> {
        match (&self.adaptive, &self.content) {
            (Some(a), Some(c)) => Some((a.stats(), *c.config())),
            _ => None,
        }
    }

    /// Bus statistics.
    pub fn bus_stats(&self) -> cdp_mem::BusStats {
        self.bus.stats()
    }

    /// Resets statistics at the warm-up boundary (§2.2). Cache, TLB, MSHR,
    /// and predictor *state* is preserved — only counters clear.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.dtlb.reset_stats();
        if let Some(p) = self.profile.as_deref_mut() {
            p.clear();
        }
    }

    /// Processes every fill that has completed by `now`, in completion
    /// order, including chained fills that complete before `now`.
    fn drain(&mut self, now: u64) {
        let mut done = std::mem::take(&mut self.drain_buf);
        loop {
            self.mshrs.drain_complete_into(now, &mut done);
            if done.is_empty() {
                break;
            }
            for fill in done.iter().copied() {
                self.install_fill(
                    fill.line,
                    fill.vline,
                    fill.kind,
                    fill.width,
                    fill.issued_at,
                    fill.complete_at,
                );
            }
        }
        self.drain_buf = done;
    }

    /// Installs one arrived line into the L2 (and L1 for demand fills) and
    /// lets the content prefetcher scan it.
    fn install_fill(
        &mut self,
        line: LineAddr,
        trigger_ea: VirtAddr,
        kind: RequestKind,
        width: bool,
        issued_at: u64,
        at: u64,
    ) {
        let is_demand = matches!(kind, RequestKind::Demand);
        let meta = L2Meta {
            owner: engine_of(kind),
            depth: kind.depth(),
            vline: trigger_ea.line(),
            demand_touched: is_demand,
            width,
            dirty: self.pending_dirty.remove(&line.0),
            issued_at,
        };
        if let Some(evicted) = self.l2.fill(line.0, meta) {
            if self.cfg.model_writebacks && evicted.meta.dirty {
                // Dirty victim: one low-priority line transfer back to
                // memory.
                self.bus.schedule(at, false);
                self.stats.writebacks += 1;
            }
            if evicted.meta.owner != Engine::Demand && !evicted.meta.demand_touched {
                match evicted.meta.owner {
                    Engine::Stride => self.stats.stride.wasted_evictions += 1,
                    Engine::Content => self.stats.content.wasted_evictions += 1,
                    Engine::Markov => self.stats.markov.wasted_evictions += 1,
                    Engine::Delta => self.stats.delta.wasted_evictions += 1,
                    Engine::Jump => self.stats.jump.wasted_evictions += 1,
                    Engine::Demand => {}
                }
                // A wasted prefetch is the perceptron's negative sample.
                if let Some(p) = self.perceptron.as_mut() {
                    p.train(
                        evicted.meta.vline,
                        kind_of_engine(evicted.meta.owner, evicted.meta.depth),
                        false,
                    );
                }
            }
        }
        if is_demand {
            self.l1.fill(trigger_ea.line().0, ());
        }
        // Content prefetcher sees a copy of every fill except page walks;
        // the jump prefetcher harvests its pointer link from the same copy.
        if !matches!(kind, RequestKind::PageWalk) {
            let mut data = [0u8; LINE_SIZE];
            self.space.phys().read_line_into(line, &mut data);
            if let Some(jp) = self.jump.as_mut() {
                let mut out = Vec::new();
                jp.on_l2_fill(trigger_ea, trigger_ea.line(), &data, kind, &mut out);
                debug_assert!(out.is_empty(), "jump trains on fills, chases on misses");
            }
            self.scan_and_issue(trigger_ea, &data, kind.depth(), at, false);
        }
    }

    /// Scans a line with the content prefetcher and issues the resulting
    /// candidates at time `at`.
    fn scan_and_issue(
        &mut self,
        trigger_ea: VirtAddr,
        data: &[u8; LINE_SIZE],
        fill_depth: u8,
        at: u64,
        is_rescan: bool,
    ) {
        // Trace-only VAM classification: a separate read-only walk over the
        // same words the scanner will examine, so the scan hot path below
        // stays untouched when tracing is off.
        if self.tracer.is_some() {
            self.trace_vam_pass(trigger_ea, data, fill_depth, at);
        }
        let mut out = self.take_req_buf();
        if let Some(c) = self.content.as_mut() {
            if is_rescan {
                c.rescan(trigger_ea, data, fill_depth, &mut out);
            } else {
                c.scan_fill(trigger_ea, data, fill_depth, &mut out);
            }
        }
        for r in out.drain(..) {
            self.issue_prefetch(r, at);
        }
        self.put_req_buf(out);
    }

    /// Re-classifies every word the VAM scanner would examine and records
    /// an accept/reject event per word. Uses [`cdp_prefetch::classify`] —
    /// the same function `is_candidate` wraps — so the trace can never
    /// disagree with the actual scan.
    fn trace_vam_pass(
        &mut self,
        trigger_ea: VirtAddr,
        data: &[u8; LINE_SIZE],
        fill_depth: u8,
        at: u64,
    ) {
        let Some(c) = self.content.as_ref() else { return };
        if !c.may_scan(fill_depth) {
            return;
        }
        let vam = c.config().vam;
        let Some(t) = self.tracer.as_deref_mut() else { return };
        if !t.wants(TraceFilter::VAM) {
            return;
        }
        let step = vam.scan_step.max(1);
        let mut off = 0;
        while off + WORD_SIZE <= LINE_SIZE {
            let word =
                u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]]);
            let event = match cdp_prefetch::classify(word, trigger_ea, &vam) {
                VamVerdict::Accept => TraceData::VamAccept { word },
                VamVerdict::RejectAlign => TraceData::VamReject {
                    word,
                    cause: VamCause::Align,
                },
                VamVerdict::RejectCompare => TraceData::VamReject {
                    word,
                    cause: VamCause::Compare,
                },
                VamVerdict::RejectFilter => TraceData::VamReject {
                    word,
                    cause: VamCause::Filter,
                },
            };
            t.push(at, event);
            off += step;
        }
    }

    /// Borrows a request buffer from the reuse stack (steady state: no
    /// allocation per fill).
    #[inline]
    fn take_req_buf(&mut self) -> Vec<PrefetchRequest> {
        self.req_bufs.pop().unwrap_or_default()
    }

    /// Returns a request buffer to the reuse stack.
    #[inline]
    fn put_req_buf(&mut self, mut buf: Vec<PrefetchRequest>) {
        buf.clear();
        if self.req_bufs.len() < 8 {
            self.req_bufs.push(buf);
        }
    }

    /// Translates a demand access, charging page-walk latency on a DTLB
    /// miss. Page-walk lines are cached in the L2 but bypass the scanner.
    ///
    /// # Errors
    ///
    /// Demand traces only touch mapped memory by construction, so a
    /// failed walk is unrecoverable: [`CdpError::UnmappedAccess`] when
    /// the page genuinely has no mapping (a corrupt image or an unmapped
    /// page under the run), [`CdpError::TranslationFailure`] when the
    /// mapping exists but the walk was denied (injected walk fault).
    fn translate_demand(
        &mut self,
        pc: u32,
        vaddr: VirtAddr,
        now: u64,
    ) -> Result<(PhysAddr, u64), CdpError> {
        if let Some(frame) = self.dtlb.lookup(vaddr.page()) {
            self.stats.dtlb_hits += 1;
            return Ok((PhysAddr(frame.0 + vaddr.page_offset()), 0));
        }
        self.stats.dtlb_misses += 1;
        let Some((paddr, penalty)) = self.walk(vaddr, now, true) else {
            return Err(if self.space.translate(vaddr).is_some() {
                CdpError::TranslationFailure { addr: vaddr }
            } else {
                CdpError::UnmappedAccess { pc, addr: vaddr }
            });
        };
        self.dtlb.insert(vaddr.page(), PhysAddr(paddr.0 - vaddr.page_offset()));
        Ok((paddr, penalty))
    }

    /// Performs a hardware page walk: two dependent physical reads through
    /// the L2. Returns the translated address and the cycles consumed, or
    /// `None` if the page is unmapped. `demand` selects the bus priority
    /// class for page-table fetches: walks for demand accesses preempt
    /// speculative traffic, while walks issued on behalf of prefetch
    /// candidates ride the prefetch track so they never delay the core.
    fn walk(&mut self, vaddr: VirtAddr, now: u64, demand: bool) -> Option<(PhysAddr, u64)> {
        if let Some(wf) = self.walk_fault {
            if !demand || wf.demand {
                self.walk_tick += 1;
                if wf.period > 0 && self.walk_tick.is_multiple_of(wf.period) {
                    return None;
                }
            }
        }
        let walk = self.space.walk(vaddr);
        let mut penalty = 0u64;
        let lines = [Some(walk.pde_addr.line()), walk.pte_addr.map(|p| p.line())];
        for l in lines.into_iter().flatten() {
            if self.l2.access(l.0).is_some() {
                penalty += self.cfg.ul2.latency;
            } else {
                // Synchronous fill of the page-table line (demand priority,
                // scanner bypassed).
                let done = self.bus.schedule(now + penalty, demand);
                penalty = done - now;
                self.l2.fill(
                    l.0,
                    L2Meta {
                        owner: Engine::Demand,
                        depth: 0,
                        vline: VirtAddr(0),
                        demand_touched: true,
                        width: false,
                        dirty: false,
                        issued_at: now,
                    },
                );
            }
        }
        let frame = walk.frame_base?;
        Some((PhysAddr(frame.0 + vaddr.page_offset()), penalty))
    }

    /// Translates a prefetch candidate. Unlike demands, an unmapped page
    /// drops the request instead of faulting. Walk latency is charged to
    /// the prefetch, not to the core.
    fn translate_prefetch(&mut self, vaddr: VirtAddr, now: u64) -> Option<(PhysAddr, u64)> {
        if let Some(frame) = self.dtlb.lookup(vaddr.page()) {
            self.stats.prefetch_tlb_hits += 1;
            return Some((PhysAddr(frame.0 + vaddr.page_offset()), 0));
        }
        let (paddr, penalty) = self.walk(vaddr, now, false)?;
        self.stats.prefetch_walks += 1;
        self.dtlb
            .insert(vaddr.page(), PhysAddr(paddr.0 - vaddr.page_offset()));
        Some((paddr, penalty))
    }

    /// Issues one prefetch request through the §3.5 checks: depth
    /// threshold, translation, residency (with the reinforcement cascade),
    /// in-flight matching, and queue capacity.
    fn issue_prefetch(&mut self, req: PrefetchRequest, now: u64) {
        // Confidence gate: every prefetch consults the perceptron filter
        // before spending any bandwidth. Rejected requests vanish here —
        // they never reach translation, the MSHRs, or the bus — but the
        // filter remembers their lines so a later demand miss on one
        // (a false negative) trains the weights back open.
        if req.kind.is_prefetch() {
            if let Some(p) = self.perceptron.as_mut() {
                if !p.accept(&req) {
                    return;
                }
            }
        }
        if let RequestKind::Content { depth } = req.kind {
            let threshold = self
                .content
                .as_ref()
                .map(|c| c.config().depth_threshold)
                .unwrap_or(0);
            if depth > threshold {
                self.stats.drops.too_deep += 1;
                self.trace(TraceFilter::DROP, now, || TraceData::PrefetchDrop {
                    line: req.vaddr.line().0,
                    reason: DropReason::TooDeep,
                    depth,
                });
                return;
            }
        }
        let Some((paddr, walk_penalty)) = self.translate_prefetch(req.vaddr, now) else {
            self.stats.drops.unmapped += 1;
            self.trace(TraceFilter::DROP, now, || TraceData::PrefetchDrop {
                line: req.vaddr.line().0,
                reason: DropReason::Unmapped,
                depth: req.kind.depth(),
            });
            return;
        };
        let pline = paddr.line();

        // Already resident? For content requests, a shallower incoming
        // depth re-energizes the chain (Figure 3, right side): reset the
        // stored depth and rescan the resident line.
        if let Some(meta) = self.l2.peek_mut(pline.0) {
            if let RequestKind::Content { depth } = req.kind {
                let stored = meta.depth;
                let rescan = self
                    .content
                    .as_ref()
                    .map(|c| c.should_rescan(depth, stored))
                    .unwrap_or(false);
                if rescan {
                    meta.depth = depth;
                    let trigger = req.vaddr;
                    self.stats.depth_promotions += 1;
                    self.stats.rescans += 1;
                    self.trace(TraceFilter::DEPTH, now, || TraceData::DepthTransition {
                        line: pline.0,
                        from: stored,
                        to: depth,
                    });
                    self.trace(TraceFilter::RESCAN, now, || TraceData::Rescan {
                        line: pline.0,
                        depth,
                    });
                    let mut data = [0u8; LINE_SIZE];
                    self.space.phys().read_line_into(pline, &mut data);
                    self.scan_and_issue(trigger, &data, depth, now, true);
                }
            }
            self.stats.drops.resident += 1;
            self.trace(TraceFilter::DROP, now, || TraceData::PrefetchDrop {
                line: pline.0,
                reason: DropReason::Resident,
                depth: req.kind.depth(),
            });
            return;
        }

        // Matching transaction in flight? Promote its depth/priority and
        // drop the duplicate.
        if self.mshrs.lookup(pline).is_some() {
            self.mshrs.promote(pline, req.kind);
            self.stats.drops.in_flight += 1;
            self.trace(TraceFilter::MSHR, now, || TraceData::MshrMerge {
                line: pline.0,
                engine: engine_tag(req.kind),
            });
            self.trace(TraceFilter::DROP, now, || TraceData::PrefetchDrop {
                line: pline.0,
                reason: DropReason::InFlight,
                depth: req.kind.depth(),
            });
            return;
        }

        // Queue capacity: prefetches are squashed when the L2 request
        // queue (outstanding misses) or the bus queue is full.
        if self.mshrs.len() >= self.cfg.arbiters.l2_queue_size
            || self.bus.prefetch_backlog_at(now) >= self.cfg.bus.queue_size
        {
            self.stats.drops.queue_full += 1;
            self.trace(TraceFilter::DROP, now, || TraceData::PrefetchDrop {
                line: pline.0,
                reason: DropReason::QueueFull,
                depth: req.kind.depth(),
            });
            return;
        }

        let fill_at = self.bus.schedule(now + walk_penalty + self.cfg.ul2.latency, false);
        self.mshrs
            .insert_width(pline, req.vaddr, req.kind, now, fill_at, req.width);
        if let Some(p) = self.profile.as_deref_mut() {
            self.mshrs.record_occupancy(&mut p.mshr_occupancy);
        }
        match engine_of(req.kind) {
            Engine::Stride => self.stats.stride.issued += 1,
            Engine::Content => self.stats.content.issued += 1,
            Engine::Markov => self.stats.markov.issued += 1,
            Engine::Delta => self.stats.delta.issued += 1,
            Engine::Jump => self.stats.jump.issued += 1,
            Engine::Demand => {}
        }
        self.trace(TraceFilter::ISSUE, now, || TraceData::PrefetchIssue {
            line: pline.0,
            engine: engine_tag(req.kind),
            depth: req.kind.depth(),
        });
    }

    /// The §3.5 pollution limit study: when enabled, force junk lines into
    /// the L2 on idle bus cycles to measure sensitivity to low-accuracy
    /// prefetching.
    fn maybe_pollute(&mut self, now: u64) {
        let Some(p) = self.pollution else { return };
        if self.next_pollution == 0 {
            self.next_pollution = p.period;
        }
        while self.next_pollution <= now {
            let at = self.next_pollution;
            self.next_pollution += p.period;
            if !self.bus.is_idle_at(at) {
                continue;
            }
            // A pseudo-random physical line in a junk region.
            self.pollution_rng = self
                .pollution_rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let line = LineAddr((0x3000_0000 | (self.pollution_rng as u32 & 0x00ff_ffc0)) & !63);
            self.bus.schedule(at, false);
            self.l2.fill(
                line.0,
                L2Meta {
                    owner: Engine::Content,
                    depth: 3,
                    vline: VirtAddr(0),
                    demand_touched: false,
                    width: true,
                    dirty: false,
                    issued_at: at,
                },
            );
            self.stats.injected_pollution += 1;
        }
    }

    /// Serializes the complete hierarchy state: both caches (slot layout
    /// and replacement state), DTLB, bus timing tracks, MSHR file,
    /// every configured prefetcher, statistics, the pollution/fault RNG
    /// streams, pending-dirty lines, and the tracer ring / profile
    /// histograms when installed.
    ///
    /// Call only between accesses (the transient request/drain buffers
    /// are empty then and are not serialized). A latched fault is not
    /// serialized either — the run drivers check the latch at every
    /// window boundary before snapshotting.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        self.l1.save_state(enc, |(), _| {});
        self.l2.save_state(enc, |m, e| {
            e.u8(match m.owner {
                Engine::Demand => 0,
                Engine::Stride => 1,
                Engine::Content => 2,
                Engine::Markov => 3,
                Engine::Delta => 4,
                Engine::Jump => 5,
            });
            e.u8(m.depth);
            e.u32(m.vline.0);
            e.bool(m.demand_touched);
            e.bool(m.width);
            e.bool(m.dirty);
            e.u64(m.issued_at);
        });
        self.dtlb.save_state(enc);
        self.bus.save_state(enc);
        self.mshrs.save_state(enc);
        enc.bool(self.stride.is_some());
        if let Some(p) = &self.stride {
            p.save_state(enc);
        }
        enc.bool(self.content.is_some());
        if let Some(p) = &self.content {
            p.save_state(enc);
        }
        enc.bool(self.markov.is_some());
        if let Some(p) = &self.markov {
            p.save_state(enc);
        }
        enc.bool(self.stream.is_some());
        if let Some(p) = &self.stream {
            p.save_state(enc);
        }
        enc.bool(self.adaptive.is_some());
        if let Some(p) = &self.adaptive {
            p.save_state(enc);
        }
        enc.bool(self.delta.is_some());
        if let Some(p) = &self.delta {
            p.save_state(enc);
        }
        enc.bool(self.jump.is_some());
        if let Some(p) = &self.jump {
            p.save_state(enc);
        }
        enc.bool(self.perceptron.is_some());
        if let Some(p) = &self.perceptron {
            p.save_state(enc);
        }
        self.stats.save_state(enc);
        enc.u64(self.next_pollution);
        enc.u64(self.pollution_rng);
        enc.u64(self.walk_tick);
        // HashSet iteration order is unspecified; serialize sorted so the
        // snapshot bytes are deterministic for a given state.
        let mut dirty: Vec<u32> = self.pending_dirty.iter().copied().collect();
        dirty.sort_unstable();
        enc.seq_len(dirty.len());
        for line in dirty {
            enc.u32(line);
        }
        enc.bool(self.tracer.is_some());
        if let Some(t) = self.tracer.as_deref() {
            t.save_state(enc);
        }
        enc.bool(self.profile.is_some());
        if let Some(p) = self.profile.as_deref() {
            p.save_state(enc);
        }
    }

    /// Restores state written by [`Hierarchy::save_state`] into a freshly
    /// built hierarchy of the same configuration (same workload image,
    /// same prefetcher set, tracer installed iff it was at save time).
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation,
    /// structural mismatch with this hierarchy's geometry, or a
    /// prefetcher/tracer presence flag that contradicts the
    /// configuration this hierarchy was built with.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.l1.restore_state(dec, |_| Ok(()))?;
        self.l2.restore_state(dec, |d| {
            Ok(L2Meta {
                owner: match d.u8("l2 meta owner")? {
                    0 => Engine::Demand,
                    1 => Engine::Stride,
                    2 => Engine::Content,
                    3 => Engine::Markov,
                    4 => Engine::Delta,
                    5 => Engine::Jump,
                    _ => {
                        return Err(SnapshotError::Corrupt {
                            context: "l2 meta owner",
                        })
                    }
                },
                depth: d.u8("l2 meta depth")?,
                vline: VirtAddr(d.u32("l2 meta vline")?),
                demand_touched: d.bool("l2 meta demand_touched")?,
                width: d.bool("l2 meta width")?,
                dirty: d.bool("l2 meta dirty")?,
                issued_at: d.u64("l2 meta issued_at")?,
            })
        })?;
        self.dtlb.restore_state(dec)?;
        self.bus.restore_state(dec)?;
        self.mshrs.restore_state(dec)?;
        macro_rules! restore_opt {
            ($field:ident, $ctx:literal) => {
                if dec.bool($ctx)? != self.$field.is_some() {
                    return Err(SnapshotError::Corrupt { context: $ctx });
                }
                if let Some(p) = self.$field.as_mut() {
                    p.restore_state(dec)?;
                }
            };
        }
        restore_opt!(stride, "stride presence");
        restore_opt!(content, "content presence");
        restore_opt!(markov, "markov presence");
        restore_opt!(stream, "stream presence");
        restore_opt!(adaptive, "adaptive presence");
        restore_opt!(delta, "delta presence");
        restore_opt!(jump, "jump presence");
        restore_opt!(perceptron, "perceptron presence");
        self.stats.restore_state(dec)?;
        self.next_pollution = dec.u64("next_pollution")?;
        self.pollution_rng = dec.u64("pollution_rng")?;
        self.walk_tick = dec.u64("walk_tick")?;
        let n = dec.seq_len(4, "pending_dirty count")?;
        self.pending_dirty.clear();
        for _ in 0..n {
            self.pending_dirty.insert(dec.u32("pending_dirty line")?);
        }
        if dec.bool("tracer presence")? != self.tracer.is_some() {
            return Err(SnapshotError::Corrupt {
                context: "tracer presence",
            });
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.restore_state(dec)?;
        }
        if dec.bool("profile presence")? != self.profile.is_some() {
            return Err(SnapshotError::Corrupt {
                context: "profile presence",
            });
        }
        if let Some(p) = self.profile.as_deref_mut() {
            *p = cdp_obs::Profile::restore_state(dec)?;
        }
        Ok(())
    }
}

impl<'w> MemoryModel for Hierarchy<'w> {
    fn access(&mut self, pc: u32, vaddr: VirtAddr, kind: AccessKind, now: u64) -> u64 {
        self.drain(now);
        self.maybe_pollute(now);
        self.stats.accesses += 1;

        // L1 lookup (virtually indexed).
        if self.l1.access(vaddr.line().0).is_some() {
            self.stats.l1_hits += 1;
            if let Some(p) = self.profile.as_deref_mut() {
                p.load_to_use.record(self.cfg.l1d.latency);
            }
            return now + self.cfg.l1d.latency;
        }
        self.stats.l1_misses += 1;

        // The stride prefetcher monitors all L1 miss traffic (§3.5); the
        // optional stream buffers watch the same stream.
        let mut reqs = self.take_req_buf();
        if let Some(sp) = self.stride.as_mut() {
            sp.observe(pc, vaddr, &mut reqs);
        }
        let stride_issued_here = !reqs.is_empty();
        if let Some(sb) = self.stream.as_mut() {
            sb.observe(vaddr, &mut reqs);
        }

        // Address translation. An unrecoverable demand fault latches for
        // the driver; the access itself degrades to an L1-hit-latency
        // no-op so the core drains cleanly instead of tearing down the
        // process mid-flight.
        let (paddr, walk_penalty) = match self.translate_demand(pc, vaddr, now) {
            Ok(t) => t,
            Err(e) => {
                let tag = match &e {
                    CdpError::UnmappedAccess { .. } => FaultTag::Unmapped,
                    CdpError::TranslationFailure { .. } => FaultTag::Walk,
                    _ => FaultTag::Other,
                };
                self.trace(TraceFilter::FAULT, now, || TraceData::Fault { kind: tag });
                if self.fault.is_none() {
                    self.fault = Some(e);
                }
                self.put_req_buf(reqs);
                return now + self.cfg.l1d.latency;
            }
        };
        let pline = paddr.line();
        let base = now + self.cfg.l1d.latency + walk_penalty;

        self.stats.l2_demand_accesses += 1;
        let completion = match self.l2.access(pline.0) {
            Some(meta) => {
                self.stats.l2_demand_hits += 1;
                let (owner, stored_depth, first_touch, fill_issued_at) =
                    (meta.owner, meta.depth, !meta.demand_touched, meta.issued_at);
                meta.demand_touched = true;
                if kind.is_store() {
                    meta.dirty = true;
                }
                if first_touch {
                    if owner != Engine::Demand {
                        if let Some(p) = self.profile.as_deref_mut() {
                            // Full latency mask: issue-to-use spans the
                            // whole fill plus the resident dwell time.
                            p.prefetch_to_use.record(now.saturating_sub(fill_issued_at));
                        }
                    }
                    match owner {
                        Engine::Stride => {
                            self.stats.stride.useful_full += 1;
                            self.stats.distribution.stride_full += 1;
                        }
                        Engine::Content => {
                            self.stats.content.useful_full += 1;
                            self.stats.distribution.cpf_full += 1;
                        }
                        Engine::Markov => {
                            self.stats.markov.useful_full += 1;
                            self.stats.distribution.markov_full += 1;
                        }
                        Engine::Delta => self.stats.delta.useful_full += 1,
                        Engine::Jump => self.stats.jump.useful_full += 1,
                        Engine::Demand => {}
                    }
                    // A fully-masked prefetch is the perceptron's positive
                    // sample.
                    if owner != Engine::Demand {
                        if let Some(p) = self.perceptron.as_mut() {
                            p.train(vaddr, kind_of_engine(owner, stored_depth), true);
                        }
                    }
                }
                // A demand hitting the L2 installs the line in the L1.
                self.l1.fill(vaddr.line().0, ());
                // Path reinforcement (§3.4.2): a depth-0 demand hit on a
                // deeper line promotes it and rescans.
                let rescan = self
                    .content
                    .as_ref()
                    .map(|c| c.should_rescan(0, stored_depth))
                    .unwrap_or(false);
                if rescan {
                    if let Some(m) = self.l2.peek_mut(pline.0) {
                        m.depth = 0;
                    }
                    self.stats.depth_promotions += 1;
                    self.stats.rescans += 1;
                    self.trace(TraceFilter::DEPTH, now, || TraceData::DepthTransition {
                        line: pline.0,
                        from: stored_depth,
                        to: 0,
                    });
                    self.trace(TraceFilter::RESCAN, now, || TraceData::Rescan {
                        line: pline.0,
                        depth: 0,
                    });
                    let mut data = [0u8; LINE_SIZE];
                    self.space.phys().read_line_into(pline, &mut data);
                    self.scan_and_issue(vaddr, &data, 0, now, true);
                }
                base + self.cfg.ul2.latency
            }
            None => {
                if let Some(inflight) = self.mshrs.lookup(pline).copied() {
                    // Merge with the in-flight fill; promote prefetches.
                    if kind.is_store() {
                        self.pending_dirty.insert(pline.0);
                    }
                    self.stats.l2_miss_merged += 1;
                    self.trace(TraceFilter::MSHR, now, || TraceData::MshrMerge {
                        line: pline.0,
                        engine: EngineTag::Demand,
                    });
                    // A prefetch whose bus transfer has not started yet is
                    // re-arbitrated at demand priority (§3.5 promotion):
                    // otherwise the demand would wait out the prefetch
                    // backlog it is supposed to outrank.
                    let mut effective = inflight.complete_at;
                    if inflight.kind.is_prefetch()
                        && self.bus.peek_schedule(base + self.cfg.ul2.latency, true)
                            < inflight.complete_at
                    {
                        let fresh = self.bus.schedule(base + self.cfg.ul2.latency, true);
                        effective = effective.min(fresh);
                        self.mshrs.expedite(pline, effective);
                    }
                    if inflight.kind.is_prefetch() {
                        if let Some(p) = self.profile.as_deref_mut() {
                            // Partial mask: the demand arrived while the
                            // prefetch was still in flight.
                            p.prefetch_to_use.record(now.saturating_sub(inflight.issued_at));
                        }
                        match engine_of(inflight.kind) {
                            Engine::Stride => {
                                self.stats.stride.useful_partial += 1;
                                self.stats.distribution.stride_partial += 1;
                            }
                            Engine::Content => {
                                self.stats.content.useful_partial += 1;
                                self.stats.distribution.cpf_partial += 1;
                            }
                            Engine::Markov => {
                                self.stats.markov.useful_partial += 1;
                                self.stats.distribution.markov_partial += 1;
                            }
                            Engine::Delta => self.stats.delta.useful_partial += 1,
                            Engine::Jump => self.stats.jump.useful_partial += 1,
                            Engine::Demand => {}
                        }
                        // A partially-masked prefetch still counts as a
                        // positive perceptron sample.
                        if let Some(p) = self.perceptron.as_mut() {
                            p.train(vaddr, inflight.kind, true);
                        }
                        self.mshrs.promote(pline, RequestKind::Demand);
                    }
                    effective.max(base)
                } else {
                    // True demand miss.
                    if kind.is_store() {
                        self.pending_dirty.insert(pline.0);
                    }
                    self.stats.l2_demand_misses += 1;
                    self.stats.distribution.unmasked_misses += 1;
                    // An unmasked demand miss on a line the perceptron
                    // rejected is a false negative: reopen the gate.
                    if let Some(p) = self.perceptron.as_mut() {
                        p.on_demand_miss(vaddr);
                    }
                    let before = reqs.len();
                    if let Some(mk) = self.markov.as_mut() {
                        mk.observe_miss(vaddr, &mut reqs);
                    }
                    if let Some(dp) = self.delta.as_mut() {
                        dp.observe_miss(vaddr, &mut reqs);
                    }
                    if let Some(jp) = self.jump.as_mut() {
                        jp.on_l2_miss(vaddr, &mut reqs);
                    }
                    if stride_issued_here {
                        // Stride precedence blocks correlation-engine issue
                        // (§5), though training still occurs. Delta and
                        // jump get the same treatment as Markov so the
                        // tournament compares them under one policy.
                        reqs.truncate(before);
                    }
                    let fill_at = self.bus.schedule(base + self.cfg.ul2.latency, true);
                    self.mshrs.insert(pline, vaddr, RequestKind::Demand, now, fill_at);
                    if let Some(p) = self.profile.as_deref_mut() {
                        self.mshrs.record_occupancy(&mut p.mshr_occupancy);
                    }
                    fill_at
                }
            }
        };

        // Issue everything the prefetchers asked for.
        for r in reqs.drain(..) {
            self.issue_prefetch(r, now);
        }
        self.put_req_buf(reqs);
        // Run-time adaptation (§4.1 future work): periodically steer the
        // content prefetcher's knobs by observed accuracy.
        if let (Some(ctl), Some(content)) = (self.adaptive.as_mut(), self.content.as_mut()) {
            if ctl.window_ready(self.stats.content.issued) {
                let mut cfg = *content.config();
                ctl.adjust(&mut cfg, self.stats.content.issued, self.stats.content.useful());
                content.set_config(cfg);
            }
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.load_to_use.record(completion.saturating_sub(now));
        }
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;
    use cdp_types::{ContentConfig, PrefetchersConfig, StrideConfig};
    use cdp_workloads::structures::{build_list, NEXT_OFFSET};
    use cdp_workloads::Heap;
        
    fn space_with_list(n: usize, shuffle: bool) -> (AddressSpace, Vec<VirtAddr>) {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 24);
        let mut rng = Rng::seed_from_u64(11);
        let list = build_list(&mut space, &mut heap, &mut rng, n, 64, shuffle);
        (space, list.nodes)
    }

    fn cfg_stride_only() -> SystemConfig {
        SystemConfig::asplos2002()
    }

    fn cfg_with_content() -> SystemConfig {
        SystemConfig::with_content()
    }

    #[test]
    fn l1_hit_costs_l1_latency() {
        let (space, nodes) = space_with_list(4, false);
        let mut h = Hierarchy::new(cfg_stride_only(), &space);
        let a = nodes[0];
        let t1 = h.access(0x40, a, AccessKind::Load, 0);
        assert!(t1 > 460, "cold miss goes to memory: {t1}");
        // Re-access after the fill arrives.
        let t2 = h.access(0x40, a, AccessKind::Load, t1 + 1);
        assert_eq!(t2, t1 + 1 + 3, "L1 hit is 3 cycles");
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn demand_miss_counts_mptu() {
        let (space, nodes) = space_with_list(8, true);
        let mut h = Hierarchy::new(cfg_stride_only(), &space);
        let mut now = 0;
        for &n in &nodes {
            now = h.access(0x40, n, AccessKind::Load, now) + 1;
        }
        assert_eq!(h.stats().l2_demand_misses, 8, "every node line cold-misses");
    }

    #[test]
    fn content_prefetcher_chases_list_ahead() {
        let (space, nodes) = space_with_list(32, true);
        let mut h = Hierarchy::new(cfg_with_content(), &space);
        // Demand-load node0's next pointer; the fill contains node1's
        // address, so the CDP should start chaining.
        let t = h.access(
            0x40,
            VirtAddr(nodes[0].0 + NEXT_OFFSET),
            AccessKind::Load,
            0,
        );
        // Drain by accessing far in the future.
        let _ = h.access(0x44, VirtAddr(nodes[0].0 + NEXT_OFFSET), AccessKind::Load, t + 5000);
        let s = h.stats();
        assert!(
            s.content.issued >= 3,
            "chained prefetches issued: {}",
            s.content.issued
        );
    }

    #[test]
    fn content_prefetch_turns_later_miss_into_hit() {
        let (space, nodes) = space_with_list(16, true);
        let mut h = Hierarchy::new(cfg_with_content(), &space);
        let mut now = 0u64;
        // Walk the list with generous think time so prefetches land.
        let mut misses_late = 0;
        for (i, &n) in nodes.iter().enumerate() {
            let before = h.stats().l2_demand_misses;
            now = h.access(0x40, VirtAddr(n.0 + NEXT_OFFSET), AccessKind::Load, now) + 2000;
            if i >= 4 && h.stats().l2_demand_misses > before {
                misses_late += 1;
            }
        }
        assert!(
            misses_late <= 4,
            "CDP should cover most of the tail of the walk: {misses_late} late misses"
        );
        assert!(h.stats().content.useful_full > 0);
    }

    #[test]
    fn stride_prefetcher_covers_sequential_scan() {
        let mut space = AddressSpace::new();
        space.map_range(VirtAddr(0x2000_0000), 1 << 20);
        let mut h = Hierarchy::new(cfg_stride_only(), &space);
        let mut now = 0u64;
        for i in 0..200u32 {
            now = h.access(0x80, VirtAddr(0x2000_0000 + i * 64), AccessKind::Load, now) + 800;
        }
        let s = h.stats();
        assert!(s.stride.issued > 50, "stride locked: {}", s.stride.issued);
        assert!(
            s.stride.useful() > 30,
            "stride prefetches get used: {}",
            s.stride.useful()
        );
    }

    #[test]
    fn page_walks_happen_and_bypass_scanner() {
        // A line holding only a non-pointer word: the demand fill scans
        // (finding nothing), while the two page-table lines the walk
        // filled into the L2 are never scanned.
        let mut space = AddressSpace::new();
        space.write_u32(VirtAddr(0x1000_0000), 0x0000_0007);
        let mut h = Hierarchy::new(cfg_with_content(), &space);
        let t = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, 0);
        assert!(h.stats().dtlb_misses >= 1, "first touch walks");
        let _ = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, t + 5000);
        assert_eq!(
            h.content_stats().unwrap().fills_scanned,
            1,
            "exactly the demand fill is scanned, not the page-table lines"
        );
        assert_eq!(h.stats().content.issued, 0);
    }

    #[test]
    fn prefetch_to_unmapped_page_is_dropped() {
        let mut space = AddressSpace::new();
        // A line whose only pointer-looking word targets an unmapped page.
        space.write_u32(VirtAddr(0x1000_0000), 0x10ff_0000); // target unmapped
        let mut h = Hierarchy::new(cfg_with_content(), &space);
        let t = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, 0);
        let _ = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, t + 2000);
        assert!(h.stats().drops.unmapped >= 1);
        assert_eq!(h.stats().content.issued, 0);
    }

    #[test]
    fn reinforcement_promotes_and_rescans() {
        let (space, nodes) = space_with_list(64, true);
        let mut cfg = cfg_with_content();
        cfg.prefetchers.content = Some(ContentConfig::tuned());
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for &n in nodes.iter().take(32) {
            now = h.access(0x40, VirtAddr(n.0 + NEXT_OFFSET), AccessKind::Load, now) + 1500;
        }
        assert!(h.stats().rescans > 0, "reinforcement rescans occurred");
        assert!(h.stats().depth_promotions > 0);
    }

    #[test]
    fn no_reinforcement_means_no_rescans() {
        let (space, nodes) = space_with_list(64, true);
        let mut cfg = cfg_with_content();
        cfg.prefetchers.content = Some(ContentConfig {
            reinforcement: false,
            ..ContentConfig::tuned()
        });
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for &n in nodes.iter().take(32) {
            now = h.access(0x40, VirtAddr(n.0 + NEXT_OFFSET), AccessKind::Load, now) + 1500;
        }
        assert_eq!(h.stats().rescans, 0);
    }

    #[test]
    fn demand_joining_inflight_prefetch_counts_partial() {
        let (space, nodes) = space_with_list(8, true);
        let mut h = Hierarchy::new(cfg_with_content(), &space);
        // Trigger the chain.
        let t0 = h.access(0x40, VirtAddr(nodes[0].0 + NEXT_OFFSET), AccessKind::Load, 0);
        // Demand node1 shortly after the fill returns: its prefetch is
        // likely still in flight.
        let _ = h.access(0x40, VirtAddr(nodes[1].0 + NEXT_OFFSET), AccessKind::Load, t0 + 10);
        let s = h.stats();
        assert!(
            s.content.useful_partial + s.content.useful_full >= 1,
            "node1's line covered: {:?}",
            s.content
        );
    }

    #[test]
    fn pollution_injects_and_hurts_nothing_structurally() {
        let (space, nodes) = space_with_list(8, false);
        let mut h =
            Hierarchy::new(cfg_stride_only(), &space).with_pollution(PollutionConfig { period: 64 });
        let mut now = 0;
        for &n in &nodes {
            now = h.access(0x40, n, AccessKind::Load, now) + 500;
        }
        assert!(h.stats().injected_pollution > 0);
    }

    #[test]
    fn dirty_evictions_cost_writebacks_when_modeled() {
        // A tiny L2 (one set, 2 ways) so stores' lines get evicted fast.
        let mut space = AddressSpace::new();
        space.map_range(VirtAddr(0x1000_0000), 1 << 16);
        let mut cfg = cfg_stride_only();
        cfg.prefetchers.stride = None;
        cfg.ul2.size_bytes = 2 * 64;
        cfg.ul2.associativity = 2;
        cfg.model_writebacks = true;
        let mut h = Hierarchy::new(cfg.clone(), &space);
        let mut now = 0u64;
        for i in 0..16u32 {
            now = h.access(0x40, VirtAddr(0x1000_0000 + i * 64), AccessKind::Store, now) + 10;
        }
        // Drain remaining fills.
        let _ = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, now + 50_000);
        assert!(h.stats().writebacks > 0, "dirty victims must write back");

        // Same run without stores: no writebacks.
        let mut h2 = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for i in 0..16u32 {
            now = h2.access(0x40, VirtAddr(0x1000_0000 + i * 64), AccessKind::Load, now) + 10;
        }
        let _ = h2.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, now + 50_000);
        assert_eq!(h2.stats().writebacks, 0, "clean victims are silent");
    }

    #[test]
    fn writebacks_not_counted_when_unmodeled() {
        let mut space = AddressSpace::new();
        space.map_range(VirtAddr(0x1000_0000), 1 << 16);
        let mut cfg = cfg_stride_only();
        cfg.ul2.size_bytes = 2 * 64;
        cfg.ul2.associativity = 2;
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for i in 0..16u32 {
            now = h.access(0x40, VirtAddr(0x1000_0000 + i * 64), AccessKind::Store, now) + 10;
        }
        let _ = h.access(0x40, VirtAddr(0x1000_0000), AccessKind::Load, now + 50_000);
        assert_eq!(h.stats().writebacks, 0);
    }

    #[test]
    fn stream_buffers_cover_sequential_misses() {
        let mut space = AddressSpace::new();
        space.map_range(VirtAddr(0x2000_0000), 1 << 20);
        let mut cfg = cfg_stride_only();
        cfg.prefetchers.stride = None;
        cfg.prefetchers.stream = Some(cdp_types::StreamConfig::default());
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for i in 0..200u32 {
            now = h.access(0x80, VirtAddr(0x2000_0000 + i * 64), AccessKind::Load, now) + 800;
        }
        // Stream requests are accounted under the stride engine.
        assert!(h.stream_stats().unwrap().emitted > 50);
        assert!(h.stats().stride.useful() > 30);
    }

    #[test]
    fn adaptive_controller_reacts_to_junk() {
        // A workload whose chased pointers lead nowhere useful: the
        // controller should tighten the knobs over time.
        let (space, nodes) = space_with_list(256, true);
        let mut cfg = cfg_with_content();
        cfg.prefetchers.adaptive = Some(cdp_types::AdaptiveConfig {
            window: 64,
            ..cdp_types::AdaptiveConfig::default()
        });
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        // Touch scattered nodes only once each: prefetches rarely pay.
        for &n in nodes.iter().step_by(7) {
            now = h.access(0x40, VirtAddr(n.0 + NEXT_OFFSET), AccessKind::Load, now) + 3000;
        }
        let (stats, steered) = h.adaptive_state().expect("adaptive on");
        assert!(stats.windows > 0, "controller evaluated windows");
        // It must have moved off the tuned point in the conservative
        // direction (less width and/or more compare bits).
        let tuned = ContentConfig::tuned();
        assert!(
            steered.next_lines <= tuned.next_lines,
            "width never grows on junk: {steered:?}"
        );
    }

    #[test]
    fn markov_issues_after_training() {
        let (space, nodes) = space_with_list(6, true);
        let mut cfg = SystemConfig::with_markov(cdp_types::MarkovConfig::half(), 512 * 1024, 8);
        // Disable stride so Markov is never blocked in this focused test.
        cfg.prefetchers.stride = None;
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        // Two passes over the same miss sequence; flush L2 between passes
        // by using a fresh hierarchy... instead rely on eviction-free reuse:
        // pass 1 trains, pass 2 hits in L2 (no new misses) — so instead
        // check that training happened and the STAB grew.
        for &n in &nodes {
            now = h.access(0x40, n, AccessKind::Load, now) + 600;
        }
        let mk = h.markov_stats().unwrap();
        assert!(mk.observed >= 6);
        assert!(mk.trained >= 5);
    }

    #[test]
    fn reset_stats_clears_counters_keeps_cache_state() {
        let (space, nodes) = space_with_list(4, false);
        let mut h = Hierarchy::new(cfg_stride_only(), &space);
        let t = h.access(0x40, nodes[0], AccessKind::Load, 0);
        h.reset_stats();
        assert_eq!(h.stats().accesses, 0);
        // The line is still cached: post-reset access is an L1 hit.
        let t2 = h.access(0x40, nodes[0], AccessKind::Load, t + 10);
        assert_eq!(t2, t + 13);
        assert_eq!(h.stats().l1_hits, 1);
    }

    #[test]
    fn prefetchers_config_default_is_empty() {
        let p = PrefetchersConfig::default();
        assert!(p.stride.is_none() && p.content.is_none() && p.markov.is_none());
        let _ = StrideConfig::default();
    }
}
