//! Suite-level experiment runners.
//!
//! These helpers implement the paper's measurement conventions: every
//! speedup is the ratio of the stride-prefetcher baseline's cycles to the
//! variant's cycles on the *same* workload (same structures, same trace,
//! same seed), averaged arithmetically across the suite.

use cdp_types::SystemConfig;
use cdp_workloads::suite::{Benchmark, Scale};
use cdp_workloads::Workload;

use crate::metrics::mean;
use crate::system::{speedup, RunStats, Simulator};

/// Default seed for experiment workload generation.
pub const DEFAULT_SEED: u64 = 0x5eed_2002;

/// Builds a benchmark workload at `scale` with the experiment seed.
pub fn build_workload(bench: Benchmark, scale: Scale) -> Workload {
    bench.build(scale, DEFAULT_SEED)
}

/// Runs one benchmark under one configuration (fresh workload).
pub fn run_benchmark(cfg: &SystemConfig, bench: Benchmark, scale: Scale) -> RunStats {
    let w = build_workload(bench, scale);
    Simulator::new(cfg.clone()).run(&w)
}

/// Per-benchmark result of a baseline/variant comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Benchmark name.
    pub name: String,
    /// Stride-only baseline.
    pub baseline: RunStats,
    /// Variant under test.
    pub variant: RunStats,
    /// baseline.cycles / variant.cycles.
    pub speedup: f64,
}

/// Runs `benches` under both configurations on identical workloads and
/// reports per-benchmark speedups plus their arithmetic mean.
pub fn compare_suite(
    baseline_cfg: &SystemConfig,
    variant_cfg: &SystemConfig,
    benches: &[Benchmark],
    scale: Scale,
) -> (Vec<Comparison>, f64) {
    let mut rows = Vec::with_capacity(benches.len());
    for &b in benches {
        let w = build_workload(b, scale);
        let baseline = Simulator::new(baseline_cfg.clone()).run(&w);
        let variant = Simulator::new(variant_cfg.clone()).run(&w);
        let s = speedup(&baseline, &variant);
        rows.push(Comparison {
            name: b.name().to_string(),
            baseline,
            variant,
            speedup: s,
        });
    }
    let avg = mean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    (rows, avg)
}

/// The pointer-intensive subset used for heuristic tuning sweeps (the
/// workloads where the content prefetcher has headroom; keeps Figure 7/8
/// sweeps affordable).
pub fn pointer_subset() -> Vec<Benchmark> {
    vec![
        Benchmark::Tpcc2,
        Benchmark::VerilogFunc,
        Benchmark::Slsb,
        Benchmark::SpecjbbVsnet,
    ]
}

/// Applies the §2.2 warm-up convention to a config for a given scale.
pub fn with_warmup(mut cfg: SystemConfig, scale: Scale) -> SystemConfig {
    cfg.warmup_uops = (scale.target_uops / 6) as u64;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_suite_produces_one_row_per_benchmark() {
        let base = SystemConfig::asplos2002();
        let variant = SystemConfig::with_content();
        let benches = [Benchmark::B2e, Benchmark::Slsb];
        let (rows, avg) = compare_suite(&base, &variant, &benches, Scale::smoke());
        assert_eq!(rows.len(), 2);
        assert!(avg > 0.8 && avg < 5.0, "sane speedup {avg}");
        for r in &rows {
            assert_eq!(r.baseline.retired, r.variant.retired, "{}", r.name);
            assert!((r.speedup
                - r.baseline.cycles as f64 / r.variant.cycles as f64)
                .abs()
                < 1e-12);
        }
    }

    #[test]
    fn warmup_helper_sets_budget() {
        let cfg = with_warmup(SystemConfig::asplos2002(), Scale::quick());
        assert_eq!(cfg.warmup_uops, Scale::quick().target_uops as u64 / 6);
        assert!(cfg.warmup_uops > 0);
    }

    #[test]
    fn pointer_subset_is_pointer_heavy() {
        for b in pointer_subset() {
            assert!(b.name() != "quake" && b.name() != "b2e");
        }
    }
}
