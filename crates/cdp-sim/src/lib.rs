//! Full-system simulator for the content-directed prefetching
//! reproduction.
//!
//! * [`hierarchy`] — the Figure 6 memory system: L1 → DTLB/walker → UL2
//!   (with per-line depth bits) → MSHRs → bus → the byte-level image, with
//!   the stride, content, and Markov prefetchers plugged into their hook
//!   points.
//! * [`system`] — [`Simulator`]: core + hierarchy, warm-up handling,
//!   MPTU tracing, and [`system::speedup`]. [`SimSession`] exposes the
//!   stepping loop incrementally and can [`SimSession::snapshot`] the
//!   full simulation state between steps; [`Simulator::resume`] restores
//!   a session that continues bit-identically.
//! * [`stats`] / [`metrics`] — counters and the paper's coverage/accuracy
//!   and Figure 10 timeliness metrics.
//! * [`runner`] — suite-level comparison drivers used by the experiment
//!   harness.
//! * [`exec`] — the parallel experiment engine: a std-only scoped-thread
//!   [`Pool`] running independent simulations across cores with
//!   submission-order (deterministic) results, plus the shared
//!   [`WorkloadCache`]. [`Pool::run_with_status`] adds watchdog
//!   timeouts, bounded retry, and per-job [`JobOutcome`] reporting.
//! * [`observe`] — windowed metrics time-series ([`MetricsWindow`]) and
//!   the deterministic [`ObsSink`] that collects per-run
//!   [`Observation`]s from parallel jobs for manifest emission.
//! * [`fault`] — deterministic, seeded fault injection (corrupt pointer
//!   words, unmap pages, force TLB-walk failures) for robustness tests:
//!   the prefetcher must squash, the demand path must surface typed
//!   [`cdp_types::CdpError`]s.
//!
//! # Examples
//!
//! ```
//! use cdp_sim::{Simulator, RunLength, speedup};
//! use cdp_types::SystemConfig;
//! use cdp_workloads::suite::Benchmark;
//!
//! let w = Benchmark::Slsb.build(RunLength::Smoke.scale(), 42);
//! let base = Simulator::new(SystemConfig::asplos2002()).run(&w);
//! let cdp = Simulator::new(SystemConfig::with_content()).run(&w);
//! println!("speedup: {:.3}", speedup(&base, &cdp));
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod fault;
pub mod hierarchy;
pub mod metrics;
pub mod observe;
pub mod persist;
pub mod runner;
pub mod stats;
pub mod status;
pub mod system;

pub use exec::{
    default_jobs, CheckpointProvenance, CheckpointSpec, CheckpointStatus, JobObs, JobOutcome,
    JobReport, Pool, ResultCache, RunPolicy, SimJob, SimResult, WorkloadCache, CACHE_STRIPES,
};
pub use fault::{FaultKind, FaultPlan, FaultSpec, WalkFault};
pub use hierarchy::{Hierarchy, L2Meta, PollutionConfig};
pub use metrics::{accuracy, coverage, geomean, mean};
pub use observe::{MetricsWindow, Observation, ObsEntry, ObsSink};
pub use persist::{decode_result, encode_result, RESULT_VERSION};
pub use runner::{build_workload, compare_suite, run_benchmark, Comparison};
pub use stats::{DropCounters, Engine, EngineCounters, MemStats, RequestDistribution};
pub use status::{install_status_sink, status_sink, ResultSource, SourceSlot, StatusSink};
pub use system::{
    set_fast_forward, speedup, RunLength, RunStats, SimSession, Simulator, WindowSample,
};
