//! Coverage / accuracy metrics (§4.1) and small statistics helpers.
//!
//! The paper tunes the VAM heuristic with *adjusted* coverage and accuracy
//! — adjusted by "subtracting the content prefetches that would have also
//! been issued by the stride prefetcher". In this simulator the stride
//! prefetcher runs alongside the content prefetcher with higher priority,
//! and duplicate requests are suppressed at the L2/in-flight checks, so
//! the content counters are *natively* adjusted: they only ever credit
//! lines the stride engine did not already cover.

use crate::stats::{Engine, EngineCounters};
use crate::system::RunStats;

/// Coverage (Equation 1): prefetch hits / misses without prefetching.
///
/// `baseline` must be a run of the same workload without the engine under
/// measurement (for content coverage: the stride-only baseline).
pub fn coverage(variant: &RunStats, baseline: &RunStats, engine: Engine) -> f64 {
    let denom = baseline.mem.l2_demand_misses;
    if denom == 0 {
        return 0.0;
    }
    let Some(counters) = variant.mem.engine(engine) else {
        return 0.0;
    };
    counters.useful() as f64 / denom as f64
}

/// Accuracy (Equation 2): useful prefetches / prefetches issued.
/// Demand traffic has no prefetch counters and reports 0.
pub fn accuracy(variant: &RunStats, engine: Engine) -> f64 {
    variant.mem.engine(engine).map_or(0.0, EngineCounters::accuracy)
}

/// Arithmetic mean (the paper reports average speedups across the suite).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean (provided for robustness studies; the paper's headline
/// numbers use the arithmetic mean).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{EngineCounters, MemStats};

    fn run_with(content_useful: u64, content_issued: u64, misses: u64) -> RunStats {
        RunStats {
            mem: MemStats {
                l2_demand_misses: misses,
                content: EngineCounters {
                    issued: content_issued,
                    useful_full: content_useful,
                    ..EngineCounters::default()
                },
                ..MemStats::default()
            },
            ..RunStats::default()
        }
    }

    #[test]
    fn coverage_against_baseline() {
        let base = run_with(0, 0, 200);
        let variant = run_with(50, 100, 120);
        assert!((coverage(&variant, &base, Engine::Content) - 0.25).abs() < 1e-12);
        assert!((accuracy(&variant, Engine::Content) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_misses() {
        let base = run_with(0, 0, 0);
        let variant = run_with(5, 10, 0);
        assert_eq!(coverage(&variant, &base, Engine::Content), 0.0);
    }

    #[test]
    fn markov_coverage_and_accuracy_use_markov_counters() {
        let base = run_with(0, 0, 400);
        let mut variant = run_with(10, 20, 300);
        variant.mem.markov = EngineCounters {
            issued: 80,
            useful_full: 30,
            useful_partial: 10,
            wasted_evictions: 8,
        };
        // Markov metrics read the Markov engine's counters, not content's.
        assert!((coverage(&variant, &base, Engine::Markov) - 0.1).abs() < 1e-12);
        assert!((accuracy(&variant, Engine::Markov) - 0.5).abs() < 1e-12);
        // Content metrics over the same run stay on the content counters.
        assert!((coverage(&variant, &base, Engine::Content) - 0.025).abs() < 1e-12);
        assert!((accuracy(&variant, Engine::Content) - 0.5).abs() < 1e-12);
        // Demand has no prefetch counters: both metrics report 0.
        assert_eq!(coverage(&variant, &base, Engine::Demand), 0.0);
        assert_eq!(accuracy(&variant, Engine::Demand), 0.0);
    }

    #[test]
    fn markov_accuracy_with_no_issues_is_zero() {
        let variant = run_with(0, 0, 100);
        assert_eq!(accuracy(&variant, Engine::Markov), 0.0);
    }

    #[test]
    fn means() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
