//! Result payload codec for the persistent store (`cdp-store`).
//!
//! The store moves opaque bytes; this module defines what those bytes
//! *are* for a simulation result: a versioned encoding of
//! ([`RunStats`], `Option<`[`Observation`]`>`) — exactly the pair the
//! in-memory [`crate::exec::ResultCache`] holds per cell. The encoding
//! rides inside a checksummed `cdp-snap` section, so this layer only
//! needs structural validation (version gate, length guards); bit-level
//! damage is caught by the envelope before these bytes are ever decoded.
//!
//! The payload carries its own version, independent of the store's
//! envelope version: the envelope describes *how entries are framed*,
//! this describes *what a result contains*. Bumping either refuses old
//! files safely (typed [`SnapshotError::UnsupportedVersion`]), and a
//! refused entry is just a cache miss — the cell recomputes.

use cdp_core::CoreStats;
use cdp_mem::BusStats;
use cdp_obs::trace::{load_trace_data, save_trace_data, TraceEvent};
use cdp_prefetch::adaptive::AdaptiveStats;
use cdp_prefetch::{ContentStats, MarkovStats, StreamStats, StrideStats};
use cdp_snap::{Dec, Enc};
use cdp_types::{ContentConfig, SnapshotError, VamConfig};

use crate::observe::{MetricsWindow, Observation};
use crate::system::RunStats;

/// Version of the result payload encoding. Bump on any layout change;
/// older builds refuse newer payloads (and recompute) instead of
/// misdecoding them. History: v1 — initial layout; v2 — appends the
/// optional latency-attribution [`cdp_obs::Profile`] to observations
/// (v1 entries still decode, with `profile: None`).
pub const RESULT_VERSION: u32 = 2;

/// Encodes a cached cell result — run statistics plus the optional
/// observation — into self-contained payload bytes for the store.
#[must_use]
pub fn encode_result(stats: &RunStats, obs: Option<&Observation>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(RESULT_VERSION);
    save_run_stats(stats, &mut e);
    match obs {
        Some(o) => {
            e.bool(true);
            save_observation(o, &mut e);
        }
        None => e.bool(false),
    }
    e.into_bytes()
}

/// Decodes payload bytes written by [`encode_result`].
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] on truncation, a future payload
/// version, or structurally impossible values. Callers treat any error
/// as a miss (recompute) after the store quarantines the entry.
pub fn decode_result(bytes: &[u8]) -> Result<(RunStats, Option<Observation>), SnapshotError> {
    let mut d = Dec::new(bytes);
    let version = d.u32("result payload version")?;
    if version > RESULT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: RESULT_VERSION,
        });
    }
    let stats = load_run_stats(&mut d)?;
    let obs = if d.bool("result has observation")? {
        Some(load_observation(&mut d, version)?)
    } else {
        None
    };
    if !d.is_exhausted() {
        return Err(SnapshotError::Corrupt {
            context: "result payload trailing bytes",
        });
    }
    Ok((stats, obs))
}

fn save_run_stats(s: &RunStats, e: &mut Enc) {
    e.u64(s.cycles);
    e.u64(s.retired);
    save_core_stats(&s.core, e);
    s.mem.save_state(e);
    opt(e, s.content.as_ref(), save_content_stats);
    opt(e, s.stride.as_ref(), save_stride_stats);
    opt(e, s.markov.as_ref(), save_markov_stats);
    opt(e, s.stream.as_ref(), save_stream_stats);
    match &s.adaptive {
        Some((a, cfg)) => {
            e.bool(true);
            e.u64(a.windows);
            e.u64(a.tightened);
            e.u64(a.loosened);
            save_content_config(cfg, e);
        }
        None => e.bool(false),
    }
    e.u64(s.bus.transfers);
    e.u64(s.bus.demand_transfers);
    e.u64(s.bus.busy_cycles);
    e.u64(s.bus.queue_waits);
}

fn load_run_stats(d: &mut Dec<'_>) -> Result<RunStats, SnapshotError> {
    let mut s = RunStats {
        cycles: d.u64("result cycles")?,
        retired: d.u64("result retired")?,
        core: load_core_stats(d)?,
        ..RunStats::default()
    };
    s.mem.restore_state(d)?;
    s.content = opt_load(d, "result content stats", load_content_stats)?;
    s.stride = opt_load(d, "result stride stats", load_stride_stats)?;
    s.markov = opt_load(d, "result markov stats", load_markov_stats)?;
    s.stream = opt_load(d, "result stream stats", load_stream_stats)?;
    s.adaptive = if d.bool("result has adaptive")? {
        let a = AdaptiveStats {
            windows: d.u64("adaptive windows")?,
            tightened: d.u64("adaptive tightened")?,
            loosened: d.u64("adaptive loosened")?,
        };
        Some((a, load_content_config(d)?))
    } else {
        None
    };
    s.bus = BusStats {
        transfers: d.u64("bus transfers")?,
        demand_transfers: d.u64("bus demand_transfers")?,
        busy_cycles: d.u64("bus busy_cycles")?,
        queue_waits: d.u64("bus queue_waits")?,
    };
    Ok(s)
}

fn opt<T>(e: &mut Enc, v: Option<&T>, save: impl Fn(&T, &mut Enc)) {
    match v {
        Some(v) => {
            e.bool(true);
            save(v, e);
        }
        None => e.bool(false),
    }
}

fn opt_load<T>(
    d: &mut Dec<'_>,
    context: &'static str,
    load: impl Fn(&mut Dec<'_>) -> Result<T, SnapshotError>,
) -> Result<Option<T>, SnapshotError> {
    if d.bool(context)? {
        Ok(Some(load(d)?))
    } else {
        Ok(None)
    }
}

fn save_core_stats(c: &CoreStats, e: &mut Enc) {
    e.u64(c.cycles);
    e.u64(c.retired);
    e.u64(c.loads);
    e.u64(c.stores);
    e.u64(c.branches);
    e.u64(c.mispredicts);
    e.u64(c.redirect_stall_cycles);
    e.u64(c.forwarded_loads);
    e.u64(c.rob_occupancy_cycles);
}

fn load_core_stats(d: &mut Dec<'_>) -> Result<CoreStats, SnapshotError> {
    Ok(CoreStats {
        cycles: d.u64("core cycles")?,
        retired: d.u64("core retired")?,
        loads: d.u64("core loads")?,
        stores: d.u64("core stores")?,
        branches: d.u64("core branches")?,
        mispredicts: d.u64("core mispredicts")?,
        redirect_stall_cycles: d.u64("core redirect_stall_cycles")?,
        forwarded_loads: d.u64("core forwarded_loads")?,
        rob_occupancy_cycles: d.u64("core rob_occupancy_cycles")?,
    })
}

fn save_content_stats(c: &ContentStats, e: &mut Enc) {
    e.u64(c.fills_scanned);
    e.u64(c.rescans);
    e.u64(c.candidates);
    e.u64(c.emitted);
    e.u64(c.depth_terminations);
}

fn load_content_stats(d: &mut Dec<'_>) -> Result<ContentStats, SnapshotError> {
    Ok(ContentStats {
        fills_scanned: d.u64("content fills_scanned")?,
        rescans: d.u64("content rescans")?,
        candidates: d.u64("content candidates")?,
        emitted: d.u64("content emitted")?,
        depth_terminations: d.u64("content depth_terminations")?,
    })
}

fn save_stride_stats(s: &StrideStats, e: &mut Enc) {
    e.u64(s.observed);
    e.u64(s.emitted);
    e.u64(s.conflicts);
}

fn load_stride_stats(d: &mut Dec<'_>) -> Result<StrideStats, SnapshotError> {
    Ok(StrideStats {
        observed: d.u64("stride observed")?,
        emitted: d.u64("stride emitted")?,
        conflicts: d.u64("stride conflicts")?,
    })
}

fn save_markov_stats(m: &MarkovStats, e: &mut Enc) {
    e.u64(m.observed);
    e.u64(m.stab_hits);
    e.u64(m.emitted);
    e.u64(m.trained);
    e.u64(m.evictions);
}

fn load_markov_stats(d: &mut Dec<'_>) -> Result<MarkovStats, SnapshotError> {
    Ok(MarkovStats {
        observed: d.u64("markov observed")?,
        stab_hits: d.u64("markov stab_hits")?,
        emitted: d.u64("markov emitted")?,
        trained: d.u64("markov trained")?,
        evictions: d.u64("markov evictions")?,
    })
}

fn save_stream_stats(s: &StreamStats, e: &mut Enc) {
    e.u64(s.observed);
    e.u64(s.confirmed);
    e.u64(s.allocated);
    e.u64(s.emitted);
}

fn load_stream_stats(d: &mut Dec<'_>) -> Result<StreamStats, SnapshotError> {
    Ok(StreamStats {
        observed: d.u64("stream observed")?,
        confirmed: d.u64("stream confirmed")?,
        allocated: d.u64("stream allocated")?,
        emitted: d.u64("stream emitted")?,
    })
}

fn save_content_config(c: &ContentConfig, e: &mut Enc) {
    e.u32(c.vam.compare_bits);
    e.u32(c.vam.filter_bits);
    e.u32(c.vam.align_bits);
    e.usize(c.vam.scan_step);
    e.u8(c.depth_threshold);
    e.bool(c.reinforcement);
    e.u8(c.reinforcement_margin);
    e.u32(c.prev_lines);
    e.u32(c.next_lines);
}

fn load_content_config(d: &mut Dec<'_>) -> Result<ContentConfig, SnapshotError> {
    Ok(ContentConfig {
        vam: VamConfig {
            compare_bits: d.u32("vam compare_bits")?,
            filter_bits: d.u32("vam filter_bits")?,
            align_bits: d.u32("vam align_bits")?,
            scan_step: d.usize("vam scan_step")?,
        },
        depth_threshold: d.u8("content depth_threshold")?,
        reinforcement: d.bool("content reinforcement")?,
        reinforcement_margin: d.u8("content reinforcement_margin")?,
        prev_lines: d.u32("content prev_lines")?,
        next_lines: d.u32("content next_lines")?,
    })
}

fn save_observation(o: &Observation, e: &mut Enc) {
    e.seq_len(o.windows.len());
    for w in &o.windows {
        w.save_state(e);
    }
    e.seq_len(o.events.len());
    for ev in &o.events {
        e.u64(ev.seq);
        e.u64(ev.at);
        save_trace_data(&ev.data, e);
    }
    e.u64(o.trace_recorded);
    e.u64(o.trace_overwritten);
    e.u64(o.trace_sampled_out);
    match &o.profile {
        Some(p) => {
            e.bool(true);
            p.save_state(e);
        }
        None => e.bool(false),
    }
}

fn load_observation(d: &mut Dec<'_>, version: u32) -> Result<Observation, SnapshotError> {
    // MetricsWindow is 16 fixed-width fields; 17 is the smallest
    // possible encoding (usize can shrink, the u64s cannot... both are
    // fixed 8 bytes here, but a conservative floor still bounds the
    // allocation).
    let n_windows = d.seq_len(16 * 8, "observation window count")?;
    let mut windows = Vec::with_capacity(n_windows);
    for _ in 0..n_windows {
        windows.push(MetricsWindow::restore_state(d)?);
    }
    let n_events = d.seq_len(17, "observation event count")?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        events.push(TraceEvent {
            seq: d.u64("event seq")?,
            at: d.u64("event at")?,
            data: load_trace_data(d)?,
        });
    }
    let trace_recorded = d.u64("observation trace_recorded")?;
    let trace_overwritten = d.u64("observation trace_overwritten")?;
    let trace_sampled_out = d.u64("observation trace_sampled_out")?;
    // v1 entries predate profiles; they decode with `profile: None` so
    // warm store files stay usable across the upgrade.
    let profile = if version >= 2 && d.bool("observation has profile")? {
        Some(cdp_obs::Profile::restore_state(d)?)
    } else {
        None
    };
    Ok(Observation {
        windows,
        events,
        trace_recorded,
        trace_overwritten,
        trace_sampled_out,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_obs::trace::TraceData;

    fn sample_stats() -> RunStats {
        let mut s = RunStats {
            cycles: 123_456,
            retired: 99_000,
            ..RunStats::default()
        };
        s.core.loads = 42_000;
        s.core.mispredicts = 77;
        s.mem.l2_demand_misses = 1_234;
        s.mem.stride.issued = 500;
        s.content = Some(ContentStats {
            fills_scanned: 10,
            rescans: 2,
            candidates: 8,
            emitted: 20,
            depth_terminations: 1,
        });
        s.adaptive = Some((
            AdaptiveStats {
                windows: 4,
                tightened: 1,
                loosened: 2,
            },
            ContentConfig::tuned(),
        ));
        s.bus.transfers = 999;
        s
    }

    fn sample_observation() -> Observation {
        Observation {
            windows: vec![MetricsWindow {
                window: 0,
                retired: 1000,
                cycles: 2000,
                ..MetricsWindow::default()
            }],
            events: vec![TraceEvent {
                seq: 7,
                at: 1234,
                data: TraceData::VamAccept { word: 0x1000_0040 },
            }],
            trace_recorded: 8,
            trace_overwritten: 1,
            trace_sampled_out: 2,
            profile: Some({
                let mut p = cdp_obs::Profile::new();
                for v in [3u64, 5, 900, 4096, 1 << 40] {
                    p.load_to_use.record(v);
                    p.rob_stall.record(v / 2);
                }
                p.mshr_occupancy.record(4);
                p
            }),
        }
    }

    #[test]
    fn round_trips_stats_without_observation() {
        let stats = sample_stats();
        let bytes = encode_result(&stats, None);
        let (back, obs) = decode_result(&bytes).unwrap();
        assert!(obs.is_none());
        assert_eq!(format!("{stats:?}"), format!("{back:?}"));
    }

    #[test]
    fn round_trips_stats_with_observation() {
        let stats = sample_stats();
        let obs = sample_observation();
        let bytes = encode_result(&stats, Some(&obs));
        let (back_stats, back_obs) = decode_result(&bytes).unwrap();
        assert_eq!(format!("{stats:?}"), format!("{back_stats:?}"));
        assert_eq!(format!("{obs:?}"), format!("{:?}", back_obs.unwrap()));
    }

    #[test]
    fn default_stats_round_trip() {
        let stats = RunStats::default();
        let (back, obs) = decode_result(&encode_result(&stats, None)).unwrap();
        assert!(obs.is_none());
        assert_eq!(format!("{stats:?}"), format!("{back:?}"));
    }

    #[test]
    fn v1_payload_decodes_with_no_profile() {
        // Emulate a pre-profile store entry: same layout minus the
        // trailing "has profile" flag, tagged version 1.
        let stats = sample_stats();
        let mut obs = sample_observation();
        obs.profile = None;
        let mut bytes = encode_result(&stats, Some(&obs));
        bytes[0..4].copy_from_slice(&1u32.to_le_bytes());
        bytes.pop();
        let (back_stats, back_obs) = decode_result(&bytes).unwrap();
        assert_eq!(format!("{stats:?}"), format!("{back_stats:?}"));
        assert!(back_obs.unwrap().profile.is_none());
    }

    #[test]
    fn future_version_is_refused_typed() {
        let mut bytes = encode_result(&RunStats::default(), None);
        bytes[0..4].copy_from_slice(&(RESULT_VERSION + 1).to_le_bytes());
        match decode_result(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, RESULT_VERSION + 1);
                assert_eq!(supported, RESULT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_refused_typed() {
        let bytes = encode_result(&sample_stats(), Some(&sample_observation()));
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            match decode_result(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut} must not decode"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_refused() {
        let mut bytes = encode_result(&RunStats::default(), None);
        bytes.extend_from_slice(&[0xAA; 8]);
        match decode_result(&bytes) {
            Err(SnapshotError::Corrupt { context }) => {
                assert!(context.contains("trailing"), "{context}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
