//! Randomized invariant tests over the assembled memory hierarchy: whatever
//! the access pattern and configuration, timing and accounting invariants
//! must hold. Driven by the in-repo seeded PRNG, so every run checks the
//! same deterministic case set.

use cdp_core::MemoryModel;
use cdp_mem::AddressSpace;
use cdp_sim::hierarchy::Hierarchy;
use cdp_types::{AccessKind, ContentConfig, SystemConfig, VirtAddr};
use cdp_workloads::structures::build_list;
use cdp_workloads::Heap;

fn pointer_space(nodes: usize) -> (AddressSpace, Vec<VirtAddr>) {
    let mut space = AddressSpace::new();
    let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 24);
    let mut rng = cdp_testutil::seeded_rng(99);
    let list = build_list(&mut space, &mut heap, &mut rng, nodes, 48, true);
    (space, list.nodes)
}

/// Completion is never before `now + L1 latency`, for any access mix and
/// any prefetcher configuration.
#[test]
fn completion_respects_minimum_latency() {
    let (space, nodes) = pointer_space(64);
    let mut rng = cdp_testutil::seeded_rng(0x41e4_0001);
    for case in 0..24 {
        let with_content = case % 2 == 0;
        let cfg = if with_content {
            SystemConfig::with_content()
        } else {
            SystemConfig::asplos2002()
        };
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        let n = rng.gen_range_usize(1..120);
        for _ in 0..n {
            let i = rng.gen_range_usize(0..64);
            let gap = rng.next_u64() % 500;
            let store = rng.gen_bool(0.5);
            now += gap;
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            let done = h.access(0x40, nodes[i], kind, now);
            assert!(done >= now + 3, "completion {done} before {now}+3");
            now = now.max(done.saturating_sub(400));
        }
    }
}

/// Accounting partitions hold for random access sequences.
#[test]
fn accounting_partitions() {
    let (space, nodes) = pointer_space(48);
    let mut rng = cdp_testutil::seeded_rng(0x41e4_0002);
    for _ in 0..24 {
        let mut h = Hierarchy::new(SystemConfig::with_content(), &space);
        let mut now = 0u64;
        let n = rng.gen_range_usize(1..150);
        for _ in 0..n {
            let i = rng.gen_range_usize(0..48);
            now += 1 + rng.next_u64() % 1999;
            h.access(0x80, nodes[i], AccessKind::Load, now);
        }
        let s = h.stats();
        assert_eq!(s.accesses, s.l1_hits + s.l1_misses);
        assert_eq!(s.l1_misses, s.l2_demand_accesses);
        assert_eq!(
            s.l2_demand_accesses,
            s.l2_demand_hits + s.l2_miss_merged + s.l2_demand_misses
        );
        assert!(s.content.useful() <= s.content.issued);
        assert_eq!(s.distribution.unmasked_misses, s.l2_demand_misses);
    }
}

/// Re-running the identical access sequence gives identical statistics
/// (full determinism, any depth/width configuration).
#[test]
fn determinism_across_configs() {
    let (space, nodes) = pointer_space(32);
    let mut rng = cdp_testutil::seeded_rng(0x41e4_0003);
    for _ in 0..24 {
        let n = rng.gen_range_usize(1..60);
        let picks: Vec<(usize, u64)> = (0..n)
            .map(|_| (rng.gen_range_usize(0..32), 1 + rng.next_u64() % 799))
            .collect();
        let depth = rng.gen_range_u8(1..6);
        let next_lines = rng.gen_range_u32(0..4);
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig {
            depth_threshold: depth,
            next_lines,
            ..ContentConfig::tuned()
        });
        let run = |cfg: &SystemConfig| {
            let mut h = Hierarchy::new(cfg.clone(), &space);
            let mut now = 0u64;
            let mut acc = 0u64;
            for &(i, gap) in &picks {
                now += gap;
                acc = acc.wrapping_add(h.access(0x80, nodes[i], AccessKind::Load, now));
            }
            (acc, h.stats().l2_demand_misses, h.stats().content.issued)
        };
        assert_eq!(run(&cfg), run(&cfg));
    }
}

/// The scanner enforces the chain-depth bound before the hierarchy sees
/// the request, so `drops.too_deep` stays zero at any threshold.
#[test]
fn depth_threshold_enforced_at_source() {
    let (space, nodes) = pointer_space(32);
    let mut rng = cdp_testutil::seeded_rng(0x41e4_0004);
    for _ in 0..24 {
        let depth = rng.gen_range_u8(1..8);
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig {
            depth_threshold: depth,
            ..ContentConfig::tuned()
        });
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        let n = rng.gen_range_usize(1..40);
        for _ in 0..n {
            let i = rng.gen_range_usize(0..32);
            now += 700;
            h.access(0x80, nodes[i], AccessKind::Load, now);
        }
        assert_eq!(h.stats().drops.too_deep, 0);
    }
}
