//! Property-based tests over the assembled memory hierarchy: whatever the
//! access pattern and configuration, timing and accounting invariants must
//! hold.

use cdp_core::MemoryModel;
use cdp_mem::AddressSpace;
use cdp_sim::hierarchy::Hierarchy;
use cdp_types::{AccessKind, ContentConfig, SystemConfig, VirtAddr};
use cdp_workloads::structures::build_list;
use cdp_workloads::Heap;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pointer_space(nodes: usize) -> (AddressSpace, Vec<VirtAddr>) {
    let mut space = AddressSpace::new();
    let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 24);
    let mut rng = StdRng::seed_from_u64(99);
    let list = build_list(&mut space, &mut heap, &mut rng, nodes, 48, true);
    (space, list.nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Completion is never before `now + L1 latency`, for any access mix
    /// and any prefetcher configuration.
    #[test]
    fn completion_respects_minimum_latency(
        picks in proptest::collection::vec((0usize..64, 0u64..500, any::<bool>()), 1..120),
        with_content: bool,
    ) {
        let (space, nodes) = pointer_space(64);
        let cfg = if with_content {
            SystemConfig::with_content()
        } else {
            SystemConfig::asplos2002()
        };
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for (i, gap, store) in picks {
            now += gap;
            let kind = if store { AccessKind::Store } else { AccessKind::Load };
            let done = h.access(0x40, nodes[i], kind, now);
            prop_assert!(done >= now + 3, "completion {done} before {now}+3");
            now = now.max(done.saturating_sub(400));
        }
    }

    /// Accounting partitions hold for random access sequences.
    #[test]
    fn accounting_partitions(
        picks in proptest::collection::vec((0usize..48, 1u64..2000), 1..150),
    ) {
        let (space, nodes) = pointer_space(48);
        let mut h = Hierarchy::new(SystemConfig::with_content(), &space);
        let mut now = 0u64;
        for (i, gap) in picks {
            now += gap;
            h.access(0x80, nodes[i], AccessKind::Load, now);
        }
        let s = h.stats();
        prop_assert_eq!(s.accesses, s.l1_hits + s.l1_misses);
        prop_assert_eq!(s.l1_misses, s.l2_demand_accesses);
        prop_assert_eq!(
            s.l2_demand_accesses,
            s.l2_demand_hits + s.l2_miss_merged + s.l2_demand_misses
        );
        prop_assert!(s.content.useful() <= s.content.issued);
        prop_assert_eq!(s.distribution.unmasked_misses, s.l2_demand_misses);
    }

    /// Re-running the identical access sequence gives identical statistics
    /// (full determinism, any depth/width configuration).
    #[test]
    fn determinism_across_configs(
        picks in proptest::collection::vec((0usize..32, 1u64..800), 1..60),
        depth in 1u8..6,
        next_lines in 0u32..4,
    ) {
        let (space, nodes) = pointer_space(32);
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig {
            depth_threshold: depth,
            next_lines,
            ..ContentConfig::tuned()
        });
        let run = |cfg: &SystemConfig| {
            let mut h = Hierarchy::new(cfg.clone(), &space);
            let mut now = 0u64;
            let mut acc = 0u64;
            for &(i, gap) in &picks {
                now += gap;
                acc = acc.wrapping_add(h.access(0x80, nodes[i], AccessKind::Load, now));
            }
            (acc, h.stats().l2_demand_misses, h.stats().content.issued)
        };
        prop_assert_eq!(run(&cfg), run(&cfg));
    }

    /// A deeper chain threshold never issues fewer too-deep drops and the
    /// chain depth in any issued request never exceeds the threshold
    /// (observed via drops.too_deep staying zero — the scanner enforces
    /// the bound before the hierarchy sees the request).
    #[test]
    fn depth_threshold_enforced_at_source(
        depth in 1u8..8,
        picks in proptest::collection::vec(0usize..32, 1..40),
    ) {
        let (space, nodes) = pointer_space(32);
        let mut cfg = SystemConfig::asplos2002();
        cfg.prefetchers.content = Some(ContentConfig {
            depth_threshold: depth,
            ..ContentConfig::tuned()
        });
        let mut h = Hierarchy::new(cfg, &space);
        let mut now = 0u64;
        for i in picks {
            now += 700;
            h.access(0x80, nodes[i], AccessKind::Load, now);
        }
        prop_assert_eq!(h.stats().drops.too_deep, 0);
    }
}
