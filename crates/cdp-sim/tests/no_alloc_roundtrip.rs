//! Proves the steady-state simulation hot path is allocation-free: a
//! full demand → miss → MSHR → fill → VAM scan → prefetch round trip
//! runs under a counting global allocator and must not touch the heap
//! once warmed.
//!
//! This extends the `scan_line` no-alloc check in `cdp-prefetch` to the
//! whole memory model: the flat set-major cache, the open-addressed
//! frame table behind `read_line_into`, the linear-probe MSHR file with
//! its reused drain buffer, the binary-heap arbiters, and the pooled
//! prefetch-request buffers. The L2 is shrunk so the workload churns —
//! steady-state eviction, re-miss, and chained content prefetches all
//! stay on the measured path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cdp_core::{MemoryModel, UopKind};
use cdp_sim::Hierarchy;
use cdp_types::{AccessKind, SystemConfig};
use cdp_workloads::suite::Benchmark;

/// System allocator wrapper that counts every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Replays every memory uop of the trace through the hierarchy with a
/// simple in-order clock, returning the finishing cycle.
fn replay(h: &mut Hierarchy<'_>, uops: &[cdp_core::Uop], mut now: u64) -> u64 {
    for u in uops {
        let Some(vaddr) = u.vaddr() else { continue };
        let kind = match u.kind {
            UopKind::Store { .. } => AccessKind::Store,
            _ => AccessKind::Load,
        };
        let done = h.access(u.pc, vaddr, kind, now);
        now = done.max(now + 1);
    }
    now
}

#[test]
fn fill_scan_prefetch_roundtrip_never_allocates() {
    // A pointer-chasing workload (the content prefetcher's bread and
    // butter) over a deliberately small L2, so the measured pass keeps
    // missing, filling, evicting, and chaining prefetches.
    let w = cdp_testutil::tiny_workload(Benchmark::Slsb, 0xa110_c001);
    let mut cfg = SystemConfig::with_content();
    cfg.ul2.size_bytes = 32 * 1024;
    let mut h = Hierarchy::new(cfg, &w.space);

    // Two warm-up passes: grow every pooled buffer, hash table, arbiter
    // heap, and the pending-dirty set to their steady-state capacity.
    // The measured pass replays the identical uop sequence, so no
    // structure sees a larger high-water mark than warm-up did.
    let now = replay(&mut h, &w.program.uops, 0);
    let now = replay(&mut h, &w.program.uops, now);

    let stats_before = *h.stats();
    assert!(stats_before.l2_demand_misses > 0, "warm-up exercised the L2");

    let before = ALLOCS.load(Ordering::SeqCst);
    replay(&mut h, &w.program.uops, now);
    let after = ALLOCS.load(Ordering::SeqCst);

    let stats_after = *h.stats();
    assert!(
        stats_after.accesses > stats_before.accesses,
        "the measured pass did real work"
    );
    assert!(
        stats_after.l2_demand_misses > stats_before.l2_demand_misses,
        "the measured pass kept missing (tiny L2 must churn)"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state fill-scan-prefetch round trip must not allocate"
    );
}
