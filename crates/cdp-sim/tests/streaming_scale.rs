//! Streaming scale-tier contract: the huge tier simulates tens of
//! millions of uops with O(instruction-window) resident memory, because
//! the trace is synthesized chunk-by-chunk and never materialized.
//!
//! The RSS ceiling is the documented one (EXPERIMENTS.md): a ≥50M-uop
//! huge-tier run must peak under 256 MiB. A materialized trace of that
//! length alone would be well over a gigabyte, so the ceiling fails
//! loudly if streaming ever regresses to up-front generation.
//!
//! This file intentionally holds a single test: `VmHWM` is process-wide,
//! and integration-test binaries get their own process, so nothing else
//! can inflate the measurement.

use cdp_sim::Simulator;
use cdp_types::SystemConfig;
use cdp_workloads::suite::{Benchmark, Scale};

/// Uops the test must retire (the acceptance floor for the huge tier).
const TARGET_UOPS: u64 = 50_000_000;

/// Documented peak-RSS ceiling for the run, in KiB (256 MiB).
const RSS_CEILING_KIB: u64 = 256 * 1024;

/// Peak resident set (`VmHWM`) of this process, in KiB.
#[cfg(target_os = "linux")]
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn huge_tier_streams_50m_uops_within_the_rss_ceiling() {
    let w = Benchmark::Tpcc1.build(Scale::huge(), 0x5eed_2002);
    assert!(w.stream.is_some(), "the huge tier must stream");
    assert_eq!(w.program.len(), 0, "streamed builds materialize no trace");

    // No warm-up: `retired()` then counts from the first uop, so the
    // loop can stop as soon as the acceptance floor is reached instead
    // of running the full ~1B-uop budget.
    let mut cfg = SystemConfig::asplos2002();
    cfg.warmup_uops = 0;
    let sim = Simulator::new(cfg);
    let mut session = sim.session(&w, None);
    while session.retired() < TARGET_UOPS {
        if session.step().expect("huge-tier run is fault-free") {
            break;
        }
    }
    assert!(
        session.retired() >= TARGET_UOPS,
        "huge tier ended early: {} of {TARGET_UOPS} uops",
        session.retired()
    );

    #[cfg(target_os = "linux")]
    {
        let kib = peak_rss_kib().expect("/proc/self/status is readable on linux");
        assert!(
            kib < RSS_CEILING_KIB,
            "peak RSS {kib} KiB breaches the documented {RSS_CEILING_KIB} KiB ceiling"
        );
    }
}
