//! Uop-trace generation.
//!
//! [`TraceBuilder`] turns resident data structures into executable traces.
//! Every emitter takes a `site` identifier that anchors the program
//! counters of the uops it emits: repeated invocations of the same site
//! reuse the same PCs, exactly like a static loop in compiled code — which
//! is what lets the stride prefetcher's PC-indexed table and the gshare
//! predictor train across iterations.
//!
//! Register conventions (out of the [`cdp_core::NUM_REGS`] pool):
//! `r1` list cursor, `r2` hash-chain cursor, `r3` hash key, `r4` tree
//! cursor, `r5` stride index, `r8..r15` scratch destinations.

use cdp_core::{Program, Uop};
use cdp_types::VirtAddr;
use cdp_types::rng::Rng;

use crate::structures::{
    BinaryTree, DoublyLinkedList, Graph, HashTable, ADJ_PTR_OFFSET, LEFT_OFFSET, NEXT_OFFSET,
    PREV_OFFSET, RIGHT_OFFSET,
};

const R_LIST: u8 = 1;
const R_LIST2: u8 = 7;
const R_HASH: u8 = 2;
const R_KEY: u8 = 3;
const R_TREE: u8 = 4;
const R_SCRATCH: u8 = 8;
const SCRATCH_REGS: u8 = 8;

/// Builds dependency-annotated uop traces against resident structures.
///
/// # Examples
///
/// ```
/// use cdp_workloads::TraceBuilder;
///
/// let mut tb = TraceBuilder::new();
/// tb.alu_burst(0, 10);
/// let program = tb.build();
/// assert_eq!(program.len(), 10);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    uops: Vec<Uop>,
    scratch_rr: u8,
}

impl TraceBuilder {
    /// Creates an empty trace.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Uops emitted so far.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Finalizes the trace.
    pub fn build(self) -> Program {
        Program::new(self.uops)
    }

    /// Drains every pending uop into `out` (streaming generation: bursts
    /// accumulate here, then move to the core's sliding window). The
    /// scratch-register rotation persists across drains, so a drained
    /// builder continues the exact uop stream an undrained one would.
    pub fn drain_into(&mut self, out: &mut std::collections::VecDeque<Uop>) -> usize {
        let n = self.uops.len();
        out.extend(self.uops.drain(..));
        n
    }

    /// The scratch-register rotation cursor (streaming checkpoint state).
    pub fn scratch_cursor(&self) -> u8 {
        self.scratch_rr
    }

    /// Restores the rotation cursor saved by [`TraceBuilder::scratch_cursor`].
    pub fn set_scratch_cursor(&mut self, cursor: u8) {
        self.scratch_rr = cursor;
    }

    #[inline]
    fn pc(site: u32, local: u32) -> u32 {
        site.wrapping_mul(256).wrapping_add(local * 4)
    }

    #[inline]
    fn scratch(&mut self) -> u8 {
        let r = R_SCRATCH + (self.scratch_rr % SCRATCH_REGS);
        self.scratch_rr = self.scratch_rr.wrapping_add(1);
        r
    }

    /// Emits `n` independent single-cycle ALU uops.
    pub fn alu_burst(&mut self, site: u32, n: usize) {
        for i in 0..n {
            self.uops.push(Uop::alu(Self::pc(site, (i % 16) as u32)));
        }
    }

    /// Emits `n` independent floating-point uops of `latency` cycles.
    pub fn fp_burst(&mut self, site: u32, n: usize, latency: u8) {
        for i in 0..n {
            let dst = self.scratch();
            self.uops.push(Uop {
                pc: Self::pc(site, (i % 16) as u32),
                kind: cdp_core::UopKind::Fp { latency },
                dst: Some(dst),
                srcs: [None, None],
            });
        }
    }

    /// Walks `nodes` (a traversal-ordered slice of list nodes), loading
    /// each node's `next` pointer through the list-cursor register so the
    /// loads serialize, plus `payload_loads` dependent payload loads and
    /// `alu_per_node` dependent ALU uops per node, closed by a
    /// loop-back branch (taken until the final node).
    pub fn chase(
        &mut self,
        site: u32,
        nodes: &[VirtAddr],
        payload_loads: usize,
        alu_per_node: usize,
    ) {
        for (i, &node) in nodes.iter().enumerate() {
            // r1 = load [r1 + NEXT_OFFSET]  (address known: node)
            self.uops.push(Uop::load(
                Self::pc(site, 0),
                VirtAddr(node.0 + NEXT_OFFSET),
                R_LIST,
                Some(R_LIST),
            ));
            for p in 0..payload_loads {
                let dst = self.scratch();
                self.uops.push(Uop::load(
                    Self::pc(site, 1 + p as u32),
                    VirtAddr(node.0 + 8 + 4 * p as u32),
                    dst,
                    Some(R_LIST),
                ));
            }
            for a in 0..alu_per_node {
                let dst = self.scratch();
                self.uops.push(Uop::alu_dep(
                    Self::pc(site, 10 + a as u32),
                    dst,
                    [Some(R_LIST), None],
                    1,
                ));
            }
            // Loop branch: taken except on the last node.
            self.uops.push(Uop::branch(
                Self::pc(site, 30),
                i + 1 < nodes.len(),
                Some(R_LIST),
            ));
        }
    }

    /// Walks a doubly linked list segment *backwards* through the `prev`
    /// pointers — the traversal direction where previous-line width
    /// prefetching would pay (Figure 9's `p` axis).
    pub fn chase_back(
        &mut self,
        site: u32,
        dlist: &DoublyLinkedList,
        start_index: usize,
        count: usize,
        alu_per_node: usize,
    ) {
        let start = start_index.min(dlist.nodes.len() - 1);
        let steps = count.min(start + 1);
        for k in 0..steps {
            let node = dlist.nodes[start - k];
            self.uops.push(Uop::load(
                Self::pc(site, 0),
                VirtAddr(node.0 + PREV_OFFSET),
                R_LIST,
                Some(R_LIST),
            ));
            for a in 0..alu_per_node {
                let dst = self.scratch();
                self.uops.push(Uop::alu_dep(
                    Self::pc(site, 10 + a as u32),
                    dst,
                    [Some(R_LIST), None],
                    1,
                ));
            }
            self.uops
                .push(Uop::branch(Self::pc(site, 30), k + 1 < steps, Some(R_LIST)));
        }
    }

    /// Walks two list segments concurrently, alternating nodes between
    /// two independent cursor registers. This models the memory-level
    /// parallelism of real pointer codes (e.g. a netlist simulator
    /// following several fanout pointers): the out-of-order core can
    /// overlap the two chains' misses.
    pub fn chase_interleaved(
        &mut self,
        site: u32,
        seg_a: &[VirtAddr],
        seg_b: &[VirtAddr],
        payload_loads: usize,
        alu_per_node: usize,
    ) {
        let n = seg_a.len().max(seg_b.len());
        for i in 0..n {
            for (lane, (seg, reg)) in [(seg_a, R_LIST), (seg_b, R_LIST2)].iter().enumerate() {
                let Some(&node) = seg.get(i) else { continue };
                let lane = lane as u32;
                self.uops.push(Uop::load(
                    Self::pc(site, lane * 40),
                    VirtAddr(node.0 + NEXT_OFFSET),
                    *reg,
                    Some(*reg),
                ));
                for p in 0..payload_loads {
                    let dst = self.scratch();
                    self.uops.push(Uop::load(
                        Self::pc(site, lane * 40 + 1 + p as u32),
                        VirtAddr(node.0 + 8 + 4 * p as u32),
                        dst,
                        Some(*reg),
                    ));
                }
                for a in 0..alu_per_node {
                    let dst = self.scratch();
                    self.uops.push(Uop::alu_dep(
                        Self::pc(site, lane * 40 + 10 + a as u32),
                        dst,
                        [Some(*reg), None],
                        1,
                    ));
                }
                self.uops.push(Uop::branch(
                    Self::pc(site, lane * 40 + 39),
                    i + 1 < seg.len(),
                    Some(*reg),
                ));
            }
        }
    }

    /// Scans `count` elements starting at `base` with a fixed byte
    /// `stride`: one load + `alu_per_elem` ALU uops + a loop branch per
    /// element, all from one PC so the stride prefetcher can lock on.
    pub fn stride_scan(
        &mut self,
        site: u32,
        base: VirtAddr,
        stride: i64,
        count: usize,
        alu_per_elem: usize,
    ) {
        for i in 0..count {
            let addr = base.offset(stride * i as i64);
            let dst = self.scratch();
            self.uops
                .push(Uop::load(Self::pc(site, 0), addr, dst, Some(5)));
            self.uops
                .push(Uop::alu_dep(Self::pc(site, 1), 5, [Some(5), None], 1));
            for a in 0..alu_per_elem {
                let d2 = self.scratch();
                self.uops.push(Uop::alu_dep(
                    Self::pc(site, 2 + a as u32),
                    d2,
                    [Some(dst), None],
                    1,
                ));
            }
            self.uops
                .push(Uop::branch(Self::pc(site, 30), i + 1 < count, Some(5)));
        }
    }

    /// Emits `probes` hash-table lookups: hash computation, a dependent
    /// bucket-head load, then a walk of the resident chain with a compare
    /// branch per node (data-dependent, hence poorly predictable).
    pub fn hash_probe(&mut self, site: u32, table: &HashTable, probes: usize, rng: &mut Rng) {
        self.hash_probe_hot(site, table, probes, rng, 0.0);
    }

    /// [`TraceBuilder::hash_probe`] with a hot set: with probability
    /// `p_hot` the probe targets the first 1/8th of the buckets, modeling
    /// the skewed key popularity of real transaction workloads.
    pub fn hash_probe_hot(
        &mut self,
        site: u32,
        table: &HashTable,
        probes: usize,
        rng: &mut Rng,
        p_hot: f64,
    ) {
        self.hash_probe_hot_frac(site, table, probes, rng, p_hot, 1.0 / 16.0)
    }

    /// [`TraceBuilder::hash_probe_hot`] with an explicit hot-set size:
    /// the hot region is the first `hot_frac` of the buckets. Sizing the
    /// hot set between the L2 capacities under study is what produces
    /// capacity (rather than purely compulsory) miss behavior.
    pub fn hash_probe_hot_frac(
        &mut self,
        site: u32,
        table: &HashTable,
        probes: usize,
        rng: &mut Rng,
        p_hot: f64,
        hot_frac: f64,
    ) {
        let hot = ((table.bucket_count as f64 * hot_frac) as usize)
            .clamp(1, table.bucket_count);
        for _ in 0..probes {
            let b = if p_hot > 0.0 && rng.gen_bool(p_hot.clamp(0.0, 1.0)) {
                rng.gen_range_usize(0..hot)
            } else {
                rng.gen_range_usize(0..table.bucket_count)
            };
            // Hash computation: 2 dependent ALU ops into the key register.
            self.uops
                .push(Uop::alu_dep(Self::pc(site, 0), R_KEY, [Some(R_KEY), None], 1));
            self.uops
                .push(Uop::alu_dep(Self::pc(site, 1), R_KEY, [Some(R_KEY), None], 1));
            // Bucket head load (indexed by the hash).
            let head_addr = VirtAddr(table.buckets.0 + b as u32 * 4);
            self.uops
                .push(Uop::load(Self::pc(site, 2), head_addr, R_HASH, Some(R_KEY)));
            // Walk the chain that is actually resident in the image.
            let chain = &table.chains[b];
            let walked = chain.len();
            for (i, &node) in chain.iter().enumerate() {
                // Key compare: load node key, hash/compare work, branch.
                let dst = self.scratch();
                self.uops
                    .push(Uop::load(Self::pc(site, 3), node, dst, Some(R_HASH)));
                for a in 0..4u32 {
                    let d2 = self.scratch();
                    self.uops.push(Uop::alu_dep(
                        Self::pc(site, 8 + a),
                        d2,
                        [Some(dst), None],
                        1,
                    ));
                }
                self.uops.push(Uop::branch(
                    Self::pc(site, 4),
                    i + 1 < walked && rng.gen_bool(0.7),
                    Some(dst),
                ));
                if i + 1 < walked {
                    self.uops.push(Uop::load(
                        Self::pc(site, 5),
                        VirtAddr(node.0 + NEXT_OFFSET),
                        R_HASH,
                        Some(R_HASH),
                    ));
                }
            }
        }
    }

    /// Emits `descents` random root-to-leaf walks of a binary tree: a key
    /// compare and a dependent child-pointer load per level. Branch
    /// directions are data-dependent (random), so the front end pays real
    /// misprediction penalties, as in search-heavy pointer codes.
    pub fn tree_search(&mut self, site: u32, tree: &BinaryTree, descents: usize, rng: &mut Rng) {
        for _ in 0..descents {
            let mut idx = 0usize;
            loop {
                let node = tree.nodes[idx];
                // Load key (dependent on cursor), compare-branch.
                let dst = self.scratch();
                self.uops
                    .push(Uop::load(Self::pc(site, 0), node, dst, Some(R_TREE)));
                let go_right = rng.gen_bool(0.5);
                self.uops
                    .push(Uop::branch(Self::pc(site, 1), go_right, Some(dst)));
                let (child_idx, offset) = if go_right {
                    (2 * idx + 2, RIGHT_OFFSET)
                } else {
                    (2 * idx + 1, LEFT_OFFSET)
                };
                if child_idx >= tree.nodes.len() {
                    break;
                }
                self.uops.push(Uop::load(
                    Self::pc(site, 2),
                    VirtAddr(node.0 + offset),
                    R_TREE,
                    Some(R_TREE),
                ));
                idx = child_idx;
            }
        }
    }

    /// Walks `count` hops of an index-linked array starting at traversal
    /// position `start`: per hop, a dependent index load, two dependent
    /// address-computation ALU uops, `alu_extra` work uops, and a loop
    /// branch. Serializes like a pointer chase, but the fill contents are
    /// indices the VAM heuristic rejects.
    pub fn index_chase(
        &mut self,
        site: u32,
        arr: &crate::structures::IndexArray,
        start: usize,
        count: usize,
        alu_extra: usize,
    ) {
        let n = arr.order.len();
        for k in 0..count.min(n) {
            let idx = arr.order[(start + k) % n];
            let addr = arr.elem_addr(idx);
            // r6 = load [elem]; address depends on r6 (prior index).
            self.uops.push(Uop::load(Self::pc(site, 0), addr, 6, Some(6)));
            // Address computation: next = base + idx * size.
            self.uops
                .push(Uop::alu_dep(Self::pc(site, 1), 6, [Some(6), None], 1));
            self.uops
                .push(Uop::alu_dep(Self::pc(site, 2), 6, [Some(6), None], 1));
            for a in 0..alu_extra {
                let dst = self.scratch();
                self.uops.push(Uop::alu_dep(
                    Self::pc(site, 3 + a as u32),
                    dst,
                    [Some(6), None],
                    1,
                ));
            }
            self.uops.push(Uop::branch(
                Self::pc(site, 30),
                k + 1 < count.min(n),
                Some(6),
            ));
        }
    }

    /// Emits `steps` hops of a random graph walk starting at node
    /// `start`: per hop, a dependent adjacency-pointer load, a dependent
    /// edge load (picking the successor the generator chose), `alu` work
    /// uops, and a data-dependent branch. Alternates node lines and
    /// adjacency-array lines — both pointer-rich, so the content
    /// prefetcher can run ahead on either.
    pub fn graph_walk(
        &mut self,
        site: u32,
        graph: &Graph,
        start: u32,
        steps: usize,
        alu: usize,
        rng: &mut Rng,
    ) {
        const R_GRAPH: u8 = 4;
        let mut cur = start as usize % graph.nodes.len();
        for k in 0..steps {
            let node = graph.nodes[cur];
            // Load the adjacency pointer (dependent on the cursor).
            self.uops.push(Uop::load(
                Self::pc(site, 0),
                VirtAddr(node.0 + ADJ_PTR_OFFSET),
                R_GRAPH,
                Some(R_GRAPH),
            ));
            let adj = &graph.adjacency[cur];
            if adj.is_empty() {
                break;
            }
            let pick = rng.gen_range_usize(0..adj.len());
            // Load the chosen edge slot out of the adjacency array
            // (dependent on the adjacency pointer): its data is the next
            // node's address, serializing the walk.
            self.uops.push(Uop::load(
                Self::pc(site, 1),
                VirtAddr(graph.adj_arrays[cur].0 + 4 * pick as u32),
                R_GRAPH,
                Some(R_GRAPH),
            ));
            for a in 0..alu {
                let dst = self.scratch();
                self.uops.push(Uop::alu_dep(
                    Self::pc(site, 2 + a as u32),
                    dst,
                    [Some(R_GRAPH), None],
                    1,
                ));
            }
            self.uops.push(Uop::branch(
                Self::pc(site, 30),
                k + 1 < steps && rng.gen_bool(0.8),
                Some(R_GRAPH),
            ));
            cur = adj[pick] as usize;
        }
    }

    /// Emits `n` stores to consecutive slots of a buffer (write traffic;
    /// write-allocate misses fetch lines like loads).
    pub fn store_burst(&mut self, site: u32, base: VirtAddr, stride: i64, n: usize) {
        for i in 0..n {
            let addr = base.offset(stride * i as i64);
            self.uops
                .push(Uop::store(Self::pc(site, 0), addr, None, Some(6)));
            self.uops
                .push(Uop::alu_dep(Self::pc(site, 1), 6, [Some(6), None], 1));
        }
    }

    /// Emits `n` branches of which roughly `noise` fraction are random
    /// (unpredictable) and the rest always-taken.
    pub fn branch_noise(&mut self, site: u32, n: usize, noise: f64, rng: &mut Rng) {
        for _ in 0..n {
            let taken = if rng.gen_bool(noise.clamp(0.0, 1.0)) {
                rng.gen_bool(0.5)
            } else {
                true
            };
            self.uops.push(Uop::branch(Self::pc(site, 0), taken, None));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::structures::{build_binary_tree, build_hash_table, build_list};
    use cdp_core::UopKind;
    use cdp_mem::AddressSpace;
    
    fn setup() -> (AddressSpace, Heap, Rng) {
        (
            AddressSpace::new(),
            Heap::new(Heap::DEFAULT_BASE, 1 << 24),
            Rng::seed_from_u64(1),
        )
    }

    #[test]
    fn chase_serializes_through_list_register() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 10, 24, true);
        let mut tb = TraceBuilder::new();
        tb.chase(1, &list.nodes, 1, 2);
        let p = tb.build();
        // Every next-pointer load reads and writes r1.
        let next_loads: Vec<&Uop> = p
            .uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Load { .. }) && u.dst == Some(1))
            .collect();
        assert_eq!(next_loads.len(), 10);
        for u in next_loads {
            assert_eq!(u.srcs[0], Some(1));
        }
        // Addresses follow the traversal order.
        let addrs: Vec<u32> = p
            .uops
            .iter()
            .filter_map(|u| match u.kind {
                UopKind::Load { vaddr } if u.dst == Some(1) => Some(vaddr.0 - NEXT_OFFSET),
                _ => None,
            })
            .collect();
        let expect: Vec<u32> = list.nodes.iter().map(|n| n.0).collect();
        assert_eq!(addrs, expect);
    }

    #[test]
    fn chase_loop_branch_taken_until_last() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 5, 24, false);
        let mut tb = TraceBuilder::new();
        tb.chase(1, &list.nodes, 0, 0);
        let p = tb.build();
        let outcomes: Vec<bool> = p
            .uops
            .iter()
            .filter_map(|u| match u.kind {
                UopKind::Branch { taken } => Some(taken),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes, vec![true, true, true, true, false]);
    }

    #[test]
    fn stride_scan_uses_one_pc_and_fixed_stride() {
        let mut tb = TraceBuilder::new();
        tb.stride_scan(3, VirtAddr(0x2000_0000), 64, 8, 1);
        let p = tb.build();
        let loads: Vec<&Uop> = p
            .uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Load { .. }))
            .collect();
        assert_eq!(loads.len(), 8);
        let pc0 = loads[0].pc;
        assert!(loads.iter().all(|u| u.pc == pc0), "single static load PC");
        for (i, u) in loads.iter().enumerate() {
            assert_eq!(u.vaddr().unwrap().0, 0x2000_0000 + 64 * i as u32);
        }
    }

    #[test]
    fn hash_probe_walks_resident_chains() {
        let (mut space, mut heap, mut rng) = setup();
        let ht = build_hash_table(&mut space, &mut heap, &mut rng, 8, 64, 24);
        let mut tb = TraceBuilder::new();
        let mut rng2 = Rng::seed_from_u64(2);
        tb.hash_probe(5, &ht, 10, &mut rng2);
        let p = tb.build();
        assert!(p.num_loads() >= 10, "at least the bucket-head loads");
        assert!(p.num_branches() > 0);
    }

    #[test]
    fn tree_search_descends_to_leaves() {
        let (mut space, mut heap, mut rng) = setup();
        let tree = build_binary_tree(&mut space, &mut heap, &mut rng, 4, 32);
        let mut tb = TraceBuilder::new();
        let mut rng2 = Rng::seed_from_u64(3);
        tb.tree_search(6, &tree, 5, &mut rng2);
        let p = tb.build();
        // 4 levels: 4 key loads + 3 child loads per descent.
        assert_eq!(p.num_loads(), 5 * (4 + 3));
        assert_eq!(p.num_branches(), 5 * 4);
    }

    #[test]
    fn chase_back_walks_prev_pointers() {
        let (mut space, mut heap, mut rng) = setup();
        let dl = crate::structures::build_dlist(&mut space, &mut heap, &mut rng, 20, 24, false);
        let mut tb = TraceBuilder::new();
        tb.chase_back(2, &dl, 19, 10, 1);
        let p = tb.build();
        assert_eq!(p.num_loads(), 10);
        let addrs: Vec<u32> = p
            .uops
            .iter()
            .filter_map(|u| u.vaddr())
            .map(|a| a.0 - PREV_OFFSET)
            .collect();
        let expect: Vec<u32> = (0..10).map(|k| dl.nodes[19 - k].0).collect();
        assert_eq!(addrs, expect, "visits run tail-ward");
        // Clamping: starting past the head walks what exists.
        let mut tb2 = TraceBuilder::new();
        tb2.chase_back(2, &dl, 3, 100, 0);
        assert_eq!(tb2.build().num_loads(), 4);
    }

    #[test]
    fn graph_walk_emits_dependent_hops() {
        let (mut space, mut heap, mut rng) = setup();
        let g = crate::structures::build_graph(&mut space, &mut heap, &mut rng, 32, 3, 24);
        let mut tb = TraceBuilder::new();
        let mut rng2 = Rng::seed_from_u64(5);
        tb.graph_walk(9, &g, 0, 20, 2, &mut rng2);
        let p = tb.build();
        assert_eq!(p.num_loads(), 40, "two loads per hop");
        // Every load reads and writes the graph cursor register.
        for u in p.uops.iter().filter(|u| u.is_mem()) {
            assert_eq!(u.dst, Some(4));
            assert_eq!(u.srcs[0], Some(4));
        }
    }

    #[test]
    fn store_burst_counts() {
        let mut tb = TraceBuilder::new();
        tb.store_burst(7, VirtAddr(0x3000_0000), 64, 12);
        let p = tb.build();
        assert_eq!(p.num_stores(), 12);
    }

    #[test]
    fn branch_noise_mixes_outcomes() {
        let mut tb = TraceBuilder::new();
        let mut rng = Rng::seed_from_u64(4);
        tb.branch_noise(8, 200, 0.5, &mut rng);
        let p = tb.build();
        let taken = p
            .uops
            .iter()
            .filter(|u| matches!(u.kind, UopKind::Branch { taken: true }))
            .count();
        assert!((100..200).contains(&taken), "taken {taken}");
    }

    #[test]
    fn sites_produce_disjoint_pcs() {
        let mut tb = TraceBuilder::new();
        tb.alu_burst(1, 4);
        tb.alu_burst(2, 4);
        let p = tb.build();
        let (a, b) = (p.uops[0].pc, p.uops[4].pc);
        assert_ne!(a, b);
    }
}
