//! Linked data structure builders.
//!
//! Each builder writes a real structure — next pointers, child pointers,
//! bucket arrays, payload fields — into the byte-level memory image. The
//! content prefetcher later *reads these exact bytes* out of cache fills,
//! so structure layout (pointer offsets, node sizes, allocation order)
//! directly controls what the VAM heuristic can find.

use cdp_mem::AddressSpace;
use cdp_types::VirtAddr;
use cdp_types::rng::Rng;

use crate::heap::Heap;

/// Byte offset of the `next` pointer within every list/chain node built by
/// this module (the first field is a 4-byte payload header, mimicking the
/// `struct x { char a; struct x *next; }` example of §3.3 after padding).
pub const NEXT_OFFSET: u32 = 4;

/// Fills a node's payload bytes with plausible non-pointer data: small
/// integers and flag words that the VAM heuristic should reject.
fn fill_payload(space: &mut AddressSpace, node: VirtAddr, size: usize, rng: &mut Rng) {
    let mut off = 8; // skip header + next pointer
    while off + 4 <= size {
        let value: u32 = match rng.gen_range_u8(0..4) {
            0 => rng.gen_range_u32(0..4096),            // small int
            1 => rng.next_u32() & 0x0000_ffff,    // 16-bit quantity
            2 => 0,                                 // zeroed field
            _ => rng.next_u32() | 0x8000_0001,    // odd/negative junk
        };
        space.write_u32(VirtAddr(node.0 + off as u32), value);
        off += 4;
    }
}

/// A singly linked list resident in the image.
#[derive(Debug, Clone)]
pub struct LinkedList {
    /// First node.
    pub head: VirtAddr,
    /// Node addresses in traversal order (head first).
    pub nodes: Vec<VirtAddr>,
    /// Node size in bytes.
    pub node_size: usize,
}

/// Traversal-order window used by the aged-heap shuffle: nodes are
/// reordered within windows of this many allocation-order neighbors, and
/// the windows themselves are visited in random order. Allocation
/// clustering survives (a window spans only a handful of cache lines —
/// which is what makes the paper's next-line width prefetching pay off),
/// while the window-to-window jumps defeat stride prediction.
pub const SHUFFLE_WINDOW: usize = 16;

/// Builds a singly linked list of `count` nodes of `node_size` bytes.
///
/// With `shuffle = false` nodes are laid out in allocation (= traversal)
/// order, giving the list stride-like spatial locality; with
/// `shuffle = true` the traversal order is an aged-heap permutation:
/// random within [`SHUFFLE_WINDOW`]-node allocation neighborhoods, and
/// random across neighborhoods. Only content-directed prefetching can
/// follow such a chain, but short-range spatial locality (nodes sharing
/// or neighboring cache lines) is preserved, as in real allocators.
///
/// # Panics
///
/// Panics if `count` is zero or `node_size < 8` (header + next pointer).
pub fn build_list(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    count: usize,
    node_size: usize,
    shuffle: bool,
) -> LinkedList {
    assert!(count > 0, "list needs at least one node");
    assert!(node_size >= 8, "node must hold header + next pointer");
    let mut nodes: Vec<VirtAddr> = (0..count)
        .map(|_| heap.alloc_padded(space, node_size, rng))
        .collect();
    if shuffle {
        let mut windows: Vec<Vec<VirtAddr>> = nodes
            .chunks(SHUFFLE_WINDOW)
            .map(|w| {
                let mut w = w.to_vec();
                rng.shuffle(&mut w);
                w
            })
            .collect();
        rng.shuffle(&mut windows);
        nodes = windows.into_iter().flatten().collect();
    }
    for i in 0..count {
        let next = if i + 1 < count {
            nodes[i + 1].0
        } else {
            0 // null terminator
        };
        let node = nodes[i];
        space.write_u32(node, rng.gen_range_u32(1..256)); // header byte-ish field
        space.write_u32(VirtAddr(node.0 + NEXT_OFFSET), next);
        fill_payload(space, node, node_size, rng);
    }
    LinkedList {
        head: nodes[0],
        nodes,
        node_size,
    }
}

/// A binary tree resident in the image.
#[derive(Debug, Clone)]
pub struct BinaryTree {
    /// Root node.
    pub root: VirtAddr,
    /// All node addresses, in allocation order (level order).
    pub nodes: Vec<VirtAddr>,
    /// Node size in bytes.
    pub node_size: usize,
}

/// Byte offset of the left child pointer in tree nodes.
pub const LEFT_OFFSET: u32 = 4;
/// Byte offset of the right child pointer in tree nodes.
pub const RIGHT_OFFSET: u32 = 8;

/// Builds a complete binary tree with `levels` levels (`2^levels - 1`
/// nodes). Node layout: `[key, left, right, payload…]`.
///
/// # Panics
///
/// Panics if `levels == 0` or `node_size < 12`.
pub fn build_binary_tree(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    levels: u32,
    node_size: usize,
) -> BinaryTree {
    assert!(levels > 0, "tree needs at least one level");
    assert!(node_size >= 12, "node must hold key + two child pointers");
    let count = (1usize << levels) - 1;
    let nodes: Vec<VirtAddr> = (0..count)
        .map(|_| heap.alloc_padded(space, node_size, rng))
        .collect();
    for (i, &node) in nodes.iter().enumerate() {
        let l = 2 * i + 1;
        let r = 2 * i + 2;
        space.write_u32(node, i as u32); // key
        space.write_u32(
            VirtAddr(node.0 + LEFT_OFFSET),
            if l < count { nodes[l].0 } else { 0 },
        );
        space.write_u32(
            VirtAddr(node.0 + RIGHT_OFFSET),
            if r < count { nodes[r].0 } else { 0 },
        );
        let mut off = 12;
        while off + 4 <= node_size {
            space.write_u32(VirtAddr(node.0 + off as u32), rng.gen_range_u32(0..1024));
            off += 4;
        }
    }
    BinaryTree {
        root: nodes[0],
        nodes,
        node_size,
    }
}

/// A chained hash table resident in the image.
#[derive(Debug, Clone)]
pub struct HashTable {
    /// Base of the bucket-head pointer array.
    pub buckets: VirtAddr,
    /// Number of buckets.
    pub bucket_count: usize,
    /// Chain nodes per bucket, in chain order.
    pub chains: Vec<Vec<VirtAddr>>,
    /// Node size in bytes.
    pub node_size: usize,
}

/// Builds a chained hash table: an array of `bucket_count` head pointers
/// plus `items` chain nodes distributed uniformly. This is the paper's
/// "pointer-intensive applications do not strictly utilize recursive
/// pointer paths (e.g. hash tables)" workload shape: one dependent load
/// into the bucket array, then a short chain walk.
pub fn build_hash_table(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    bucket_count: usize,
    items: usize,
    node_size: usize,
) -> HashTable {
    assert!(bucket_count > 0, "need at least one bucket");
    assert!(node_size >= 8, "node must hold header + next pointer");
    let buckets = heap.alloc(space, bucket_count * 4);
    let mut chains: Vec<Vec<VirtAddr>> = vec![Vec::new(); bucket_count];
    for _ in 0..items {
        let b = rng.gen_range_usize(0..bucket_count);
        let node = heap.alloc_padded(space, node_size, rng);
        space.write_u32(node, rng.next_u32() & 0xffff); // key fragment
        // Push-front: node.next = current head; head = node.
        let head_addr = VirtAddr(buckets.0 + (b as u32) * 4);
        let old_head = space.read_u32(head_addr);
        space.write_u32(VirtAddr(node.0 + NEXT_OFFSET), old_head);
        space.write_u32(head_addr, node.0);
        fill_payload(space, node, node_size, rng);
        chains[b].insert(0, node);
    }
    HashTable {
        buckets,
        bucket_count,
        chains,
        node_size,
    }
}

/// An index-linked array: elements chain through stored *indices* rather
/// than pointers.
///
/// This models the irregular-but-not-pointer-chasing accesses of real
/// applications (offset-based arenas, index-linked pools, column stores).
/// The traversal is exactly as serial and cache-hostile as a linked list,
/// but the line contents are small integers, so the content prefetcher's
/// VAM heuristic — correctly — finds nothing to chase. The paper observes
/// that "not all irregular loads are caused by pointer-following, and as
/// such, the content prefetcher can not mask all the non-stride based
/// load misses" (§4.2.3); this structure is that residue.
#[derive(Debug, Clone)]
pub struct IndexArray {
    /// Base of the element array.
    pub base: VirtAddr,
    /// Element size in bytes.
    pub elem_size: usize,
    /// Element indices in traversal order (a permutation cycle).
    pub order: Vec<u32>,
}

impl IndexArray {
    /// Address of element `idx`.
    pub fn elem_addr(&self, idx: u32) -> VirtAddr {
        VirtAddr(self.base.0 + idx * self.elem_size as u32)
    }
}

/// Builds an index-linked array of `count` elements of `elem_size` bytes.
/// Each element's first word holds the *index* of the next element in a
/// shuffled permutation cycle; remaining words are small-integer payload.
///
/// # Panics
///
/// Panics if `count == 0` or `elem_size < 8`.
pub fn build_index_array(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    count: usize,
    elem_size: usize,
) -> IndexArray {
    assert!(count > 0, "index array needs at least one element");
    assert!(elem_size >= 8, "element must hold an index + payload");
    let base = heap.alloc(space, count * elem_size);
    let mut order: Vec<u32> = (0..count as u32).collect();
    rng.shuffle(&mut order);
    for i in 0..count {
        let this = order[i];
        let next = order[(i + 1) % count];
        let addr = VirtAddr(base.0 + this * elem_size as u32);
        space.write_u32(addr, next);
        let mut off = 4;
        while off + 4 <= elem_size {
            space.write_u32(VirtAddr(addr.0 + off as u32), rng.gen_range_u32(0..65536));
            off += 4;
        }
    }
    IndexArray {
        base,
        elem_size,
        order,
    }
}

/// Byte offset of the `prev` pointer in doubly-linked nodes.
pub const PREV_OFFSET: u32 = 8;

/// A doubly linked list resident in the image.
///
/// Node layout: `[header, next, prev, payload…]`. Backward traversals
/// through `prev` are the access pattern where the paper's
/// *previous-line* width prefetching (the `p` axis of Figure 9) would pay
/// off — Figure 9 shows it does not for their forward-dominated
/// workloads, and [`build_dlist`] lets downstream studies probe the
/// backward case.
#[derive(Debug, Clone)]
pub struct DoublyLinkedList {
    /// First node (forward traversal order).
    pub head: VirtAddr,
    /// Last node.
    pub tail: VirtAddr,
    /// Node addresses in forward traversal order.
    pub nodes: Vec<VirtAddr>,
    /// Node size in bytes.
    pub node_size: usize,
}

/// Builds a doubly linked list of `count` nodes (aged-heap shuffle as in
/// [`build_list`] when `shuffle` is set).
///
/// # Panics
///
/// Panics if `count == 0` or `node_size < 12` (header + two pointers).
pub fn build_dlist(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    count: usize,
    node_size: usize,
    shuffle: bool,
) -> DoublyLinkedList {
    assert!(count > 0, "list needs at least one node");
    assert!(node_size >= 12, "node must hold header + next + prev");
    let mut nodes: Vec<VirtAddr> = (0..count)
        .map(|_| heap.alloc_padded(space, node_size, rng))
        .collect();
    if shuffle {
        let mut windows: Vec<Vec<VirtAddr>> = nodes
            .chunks(SHUFFLE_WINDOW)
            .map(|w| {
                let mut w = w.to_vec();
                rng.shuffle(&mut w);
                w
            })
            .collect();
        rng.shuffle(&mut windows);
        nodes = windows.into_iter().flatten().collect();
    }
    for i in 0..count {
        let node = nodes[i];
        let next = if i + 1 < count { nodes[i + 1].0 } else { 0 };
        let prev = if i > 0 { nodes[i - 1].0 } else { 0 };
        space.write_u32(node, rng.gen_range_u32(1..256));
        space.write_u32(VirtAddr(node.0 + NEXT_OFFSET), next);
        space.write_u32(VirtAddr(node.0 + PREV_OFFSET), prev);
        let mut off = 12;
        while off + 4 <= node_size {
            space.write_u32(VirtAddr(node.0 + off as u32), rng.gen_range_u32(0..4096));
            off += 4;
        }
    }
    DoublyLinkedList {
        head: nodes[0],
        tail: *nodes.last().expect("non-empty"),
        nodes,
        node_size,
    }
}

/// A directed graph in adjacency-list form, resident in the image.
///
/// Layout per node: `[key, degree, adj_ptr, payload…]` where `adj_ptr`
/// targets a heap-resident array of `degree` node pointers. Traversals
/// therefore alternate between node lines and adjacency-array lines, both
/// full of VAM-recognizable pointers — the "graph walk" shape of netlist
/// and mesh codes.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Node addresses, index = node id.
    pub nodes: Vec<VirtAddr>,
    /// Adjacency lists (node ids), index = node id.
    pub adjacency: Vec<Vec<u32>>,
    /// Base address of each node's adjacency array.
    pub adj_arrays: Vec<VirtAddr>,
    /// Node size in bytes.
    pub node_size: usize,
}

/// Byte offset of a graph node's degree field.
pub const DEGREE_OFFSET: u32 = 4;
/// Byte offset of a graph node's adjacency-array pointer.
pub const ADJ_PTR_OFFSET: u32 = 8;

/// Builds a random directed graph with `count` nodes of out-degree
/// `degree` (edges chosen uniformly; self-loops permitted but rare).
///
/// # Panics
///
/// Panics if `count == 0` or `node_size < 12`.
pub fn build_graph(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    count: usize,
    degree: usize,
    node_size: usize,
) -> Graph {
    assert!(count > 0, "graph needs at least one node");
    assert!(node_size >= 12, "node must hold key + degree + adj pointer");
    let nodes: Vec<VirtAddr> = (0..count)
        .map(|_| heap.alloc_padded(space, node_size, rng))
        .collect();
    let mut adjacency = Vec::with_capacity(count);
    let mut adj_arrays = Vec::with_capacity(count);
    for (i, &node) in nodes.iter().enumerate() {
        let adj: Vec<u32> = (0..degree).map(|_| rng.gen_range_u32(0..count as u32)).collect();
        let adj_array = heap.alloc(space, degree.max(1) * 4);
        adj_arrays.push(adj_array);
        for (k, &succ) in adj.iter().enumerate() {
            space.write_u32(VirtAddr(adj_array.0 + 4 * k as u32), nodes[succ as usize].0);
        }
        space.write_u32(node, i as u32);
        space.write_u32(VirtAddr(node.0 + DEGREE_OFFSET), adj.len() as u32);
        space.write_u32(VirtAddr(node.0 + ADJ_PTR_OFFSET), adj_array.0);
        let mut off = 12;
        while off + 4 <= node_size {
            space.write_u32(VirtAddr(node.0 + off as u32), rng.gen_range_u32(0..4096));
            off += 4;
        }
        adjacency.push(adj);
    }
    Graph {
        nodes,
        adjacency,
        adj_arrays,
        node_size,
    }
}

/// A contiguous array region for stride workloads.
#[derive(Debug, Clone)]
pub struct Array {
    /// Base address.
    pub base: VirtAddr,
    /// Length in bytes.
    pub len: usize,
}

/// Builds a contiguous array of `len` bytes filled with non-pointer data
/// (float-looking bit patterns), mapped and ready for stride scans.
pub fn build_array(space: &mut AddressSpace, heap: &mut Heap, rng: &mut Rng, len: usize) -> Array {
    let base = heap.alloc(space, len);
    // Fill sparsely (one word per 64-byte line is enough to materialize
    // pages and give the scanner junk to reject).
    let mut off = 0;
    while off + 4 <= len {
        let bits = (rng.next_f32() * 1e6).to_bits();
        space.write_u32(VirtAddr(base.0 + off as u32), bits);
        off += 64;
    }
    Array { base, len }
}

/// Builds an array like [`build_array`] but without writing a byte: content
/// is synthesized on first touch by the physical backing store's lazy
/// regions, so building stays O(pages) and resident memory stays O(touched
/// pages). Used by the large/huge scale tiers, where eagerly filling the
/// footprint would dominate build time.
///
/// The array is page-aligned so its backing frames are mapped fresh and in
/// order; each physically contiguous run of frames becomes one lazy region
/// (page-table frames interleave with data frames at 4 MB boundaries, so a
/// big array is usually several runs).
pub fn build_array_lazy(
    space: &mut AddressSpace,
    heap: &mut Heap,
    rng: &mut Rng,
    len: usize,
) -> Array {
    use cdp_types::PAGE_SIZE;

    heap.align_next(PAGE_SIZE as u32);
    let base = heap.alloc(space, len);
    debug_assert_eq!(base.0 as usize % PAGE_SIZE, 0);
    let seed = rng.next_u64();

    let mut run_virt = 0usize; // virtual offset where the current run began
    let mut run_phys = space.translate(base).expect("array just mapped");
    let mut off = PAGE_SIZE;
    while off < len {
        let p = space
            .translate(VirtAddr(base.0 + off as u32))
            .expect("array just mapped");
        let expected = run_phys.0 + (off - run_virt) as u32;
        if p.0 != expected {
            space.phys_mut().add_lazy_region(
                run_phys,
                (off - run_virt) as u32,
                seed.wrapping_add(run_virt as u64),
            );
            run_virt = off;
            run_phys = p;
        }
        off += PAGE_SIZE;
    }
    space.phys_mut().add_lazy_region(
        run_phys,
        (len - run_virt) as u32,
        seed.wrapping_add(run_virt as u64),
    );
    Array { base, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    fn setup() -> (AddressSpace, Heap, Rng) {
        (
            AddressSpace::new(),
            Heap::new(Heap::DEFAULT_BASE, 1 << 24),
            Rng::seed_from_u64(42),
        )
    }

    #[test]
    fn list_next_pointers_chain_in_traversal_order() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 50, 24, true);
        let mut cur = list.head;
        for (i, &expect) in list.nodes.iter().enumerate() {
            assert_eq!(cur, expect, "node {i}");
            cur = VirtAddr(space.read_u32(VirtAddr(cur.0 + NEXT_OFFSET)));
        }
        assert_eq!(cur, VirtAddr(0), "null terminated");
    }

    #[test]
    fn sequential_list_is_address_ordered() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 20, 32, false);
        for w in list.nodes.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn shuffled_list_is_not_address_ordered() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 100, 32, true);
        let ordered = list.nodes.windows(2).filter(|w| w[1].0 > w[0].0).count();
        assert!(ordered < 80, "shuffle should break order: {ordered}/99 ascending");
    }

    #[test]
    fn list_pointers_share_heap_upper_bits() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 50, 24, true);
        for &n in &list.nodes {
            assert_eq!(n.0 >> 24, 0x10);
            let next = space.read_u32(VirtAddr(n.0 + NEXT_OFFSET));
            assert!(next == 0 || next >> 24 == 0x10);
        }
    }

    #[test]
    fn payload_words_are_not_heap_pointers() {
        let (mut space, mut heap, mut rng) = setup();
        let list = build_list(&mut space, &mut heap, &mut rng, 30, 40, false);
        for &n in &list.nodes {
            for off in (8..40).step_by(4) {
                let w = space.read_u32(VirtAddr(n.0 + off));
                assert_ne!(w >> 24, 0x10, "payload must not look like a heap ptr");
            }
        }
    }

    #[test]
    fn tree_children_link_correctly() {
        let (mut space, mut heap, mut rng) = setup();
        let tree = build_binary_tree(&mut space, &mut heap, &mut rng, 5, 32);
        assert_eq!(tree.nodes.len(), 31);
        // Check node 0's children are nodes 1 and 2.
        let l = space.read_u32(VirtAddr(tree.root.0 + LEFT_OFFSET));
        let r = space.read_u32(VirtAddr(tree.root.0 + RIGHT_OFFSET));
        assert_eq!(l, tree.nodes[1].0);
        assert_eq!(r, tree.nodes[2].0);
        // Leaves have null children.
        let leaf = tree.nodes[30];
        assert_eq!(space.read_u32(VirtAddr(leaf.0 + LEFT_OFFSET)), 0);
        assert_eq!(space.read_u32(VirtAddr(leaf.0 + RIGHT_OFFSET)), 0);
    }

    #[test]
    fn hash_chains_walkable_from_bucket_heads() {
        let (mut space, mut heap, mut rng) = setup();
        let ht = build_hash_table(&mut space, &mut heap, &mut rng, 16, 100, 24);
        let mut found = 0;
        for b in 0..ht.bucket_count {
            let mut cur = space.read_u32(VirtAddr(ht.buckets.0 + b as u32 * 4));
            let mut chain = Vec::new();
            while cur != 0 {
                chain.push(VirtAddr(cur));
                cur = space.read_u32(VirtAddr(cur + NEXT_OFFSET));
                found += 1;
                assert!(found <= 100, "cycle detected");
            }
            assert_eq!(chain, ht.chains[b], "bucket {b}");
        }
        assert_eq!(found, 100);
    }

    #[test]
    fn array_filled_with_non_pointers() {
        let (mut space, mut heap, mut rng) = setup();
        let arr = build_array(&mut space, &mut heap, &mut rng, 4096);
        assert!(space.translate(arr.base).is_some());
        let w = space.read_u32(arr.base);
        assert_ne!(w >> 24, 0x10);
    }

    #[test]
    fn dlist_links_are_symmetric() {
        let (mut space, mut heap, mut rng) = setup();
        let dl = build_dlist(&mut space, &mut heap, &mut rng, 40, 24, true);
        assert_eq!(dl.head, dl.nodes[0]);
        assert_eq!(dl.tail, dl.nodes[39]);
        for w in dl.nodes.windows(2) {
            let next = space.read_u32(VirtAddr(w[0].0 + NEXT_OFFSET));
            let prev = space.read_u32(VirtAddr(w[1].0 + PREV_OFFSET));
            assert_eq!(next, w[1].0);
            assert_eq!(prev, w[0].0);
        }
        // Ends are null-terminated.
        assert_eq!(space.read_u32(VirtAddr(dl.head.0 + PREV_OFFSET)), 0);
        assert_eq!(space.read_u32(VirtAddr(dl.tail.0 + NEXT_OFFSET)), 0);
    }

    #[test]
    fn graph_edges_point_at_real_nodes() {
        let (mut space, mut heap, mut rng) = setup();
        let g = build_graph(&mut space, &mut heap, &mut rng, 64, 3, 24);
        assert_eq!(g.nodes.len(), 64);
        for (i, &node) in g.nodes.iter().enumerate() {
            assert_eq!(space.read_u32(node), i as u32, "key");
            let degree = space.read_u32(VirtAddr(node.0 + DEGREE_OFFSET));
            assert_eq!(degree as usize, g.adjacency[i].len());
            let adj_ptr = space.read_u32(VirtAddr(node.0 + ADJ_PTR_OFFSET));
            for (k, &succ) in g.adjacency[i].iter().enumerate() {
                let stored = space.read_u32(VirtAddr(adj_ptr + 4 * k as u32));
                assert_eq!(stored, g.nodes[succ as usize].0, "edge {i}->{k}");
            }
        }
    }

    #[test]
    fn graph_pointers_are_vam_candidates() {
        use cdp_types::VamConfig;
        let (mut space, mut heap, mut rng) = setup();
        let g = build_graph(&mut space, &mut heap, &mut rng, 32, 4, 24);
        // An adjacency array line scanned with a same-heap trigger yields
        // candidates.
        let adj_ptr = space.read_u32(VirtAddr(g.nodes[0].0 + ADJ_PTR_OFFSET));
        let line = space.read_line(VirtAddr(adj_ptr));
        let hits = cdp_prefetch_stub_scan(&line, g.nodes[0]);
        assert!(!hits.is_empty(), "adjacency lines must be chaseable");
        let _ = VamConfig::tuned();
    }

    /// Minimal VAM re-implementation for the test (cdp-workloads must not
    /// depend on cdp-prefetch): upper byte match against the trigger.
    fn cdp_prefetch_stub_scan(line: &[u8; 64], trigger: VirtAddr) -> Vec<u32> {
        (0..61)
            .step_by(2)
            .filter_map(|off| {
                let w = u32::from_le_bytes(line[off..off + 4].try_into().unwrap());
                (w >> 24 == trigger.0 >> 24 && w != 0).then_some(w)
            })
            .collect()
    }

    #[test]
    fn determinism_same_seed_same_layout() {
        let build = |seed: u64| {
            let mut space = AddressSpace::new();
            let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 22);
            let mut rng = Rng::seed_from_u64(seed);
            build_list(&mut space, &mut heap, &mut rng, 40, 24, true).nodes
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }
}
