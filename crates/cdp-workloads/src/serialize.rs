//! Workload serialization: a plain-text format for pinning exact
//! workloads (trace + memory image) to disk.
//!
//! Use cases: regression-pinning a workload that exposed a simulator bug,
//! inspecting generated traces with standard text tools, and feeding the
//! same workload to external simulators. The format is line-based:
//!
//! ```text
//! CDPWORKLOAD 1
//! name <string>
//! suite <Internet|Multimedia|Productivity|Server|Workstation|Runtime>
//! cursors <next_user_frame> <next_table_frame> <mapped_pages>
//! uops <count>
//! A <pc> <latency> <dst> <s0> <s1>        # ALU    (registers: 255 = none)
//! F <pc> <latency> <dst> <s0> <s1>        # FP
//! L <pc> <vaddr-hex> <dst> <s0> <s1>      # load
//! S <pc> <vaddr-hex> <dst> <s0> <s1>      # store
//! B <pc> <taken 0|1> <dst> <s0> <s1>      # branch
//! frames <count>
//! P <frame-hex> <4096 bytes as hex>
//! ```

use std::fmt::Write as _;

use cdp_core::{Program, Uop, UopKind};
use cdp_mem::{AddressSpace, PhysMem};
use cdp_types::{VirtAddr, PAGE_SIZE};

use crate::suite::{Suite, Workload};

/// Why a workload failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong magic/version line.
    BadHeader,
    /// A structurally broken line, with its 1-based line number.
    BadLine(usize),
    /// The file ended before the declared counts were satisfied.
    Truncated,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or unsupported CDPWORKLOAD header"),
            ParseError::BadLine(n) => write!(f, "malformed line {n}"),
            ParseError::Truncated => write!(f, "file ended before declared contents"),
        }
    }
}

impl std::error::Error for ParseError {}

fn reg_str(r: Option<u8>) -> String {
    r.map(|v| v.to_string()).unwrap_or_else(|| "255".into())
}

fn parse_reg(s: &str) -> Option<Option<u8>> {
    let v: u16 = s.parse().ok()?;
    Some(if v == 255 { None } else { Some(v as u8) })
}

fn suite_str(s: Suite) -> &'static str {
    match s {
        Suite::Internet => "Internet",
        Suite::Multimedia => "Multimedia",
        Suite::Productivity => "Productivity",
        Suite::Server => "Server",
        Suite::Workstation => "Workstation",
        Suite::Runtime => "Runtime",
    }
}

fn parse_suite(s: &str) -> Option<Suite> {
    Some(match s {
        "Internet" => Suite::Internet,
        "Multimedia" => Suite::Multimedia,
        "Productivity" => Suite::Productivity,
        "Server" => Suite::Server,
        "Workstation" => Suite::Workstation,
        "Runtime" => Suite::Runtime,
        _ => return None,
    })
}

/// Serializes a workload to the text format.
pub fn to_text(w: &Workload) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CDPWORKLOAD 1");
    let _ = writeln!(out, "name {}", w.name);
    let _ = writeln!(out, "suite {}", suite_str(w.suite));
    let (nu, nt, mp) = w.space.cursors();
    let _ = writeln!(out, "cursors {nu} {nt} {mp}");
    let _ = writeln!(out, "uops {}", w.program.len());
    for u in &w.program.uops {
        let (tag, field): (char, String) = match u.kind {
            UopKind::Alu { latency } => ('A', latency.to_string()),
            UopKind::Fp { latency } => ('F', latency.to_string()),
            UopKind::Load { vaddr } => ('L', format!("{:x}", vaddr.0)),
            UopKind::Store { vaddr } => ('S', format!("{:x}", vaddr.0)),
            UopKind::Branch { taken } => ('B', u8::from(taken).to_string()),
        };
        let _ = writeln!(
            out,
            "{tag} {} {field} {} {} {}",
            u.pc,
            reg_str(u.dst),
            reg_str(u.srcs[0]),
            reg_str(u.srcs[1])
        );
    }
    let frames: Vec<_> = w.space.phys().frames().collect();
    let _ = writeln!(out, "frames {}", frames.len());
    for (frame, data) in frames {
        let mut hex = String::with_capacity(PAGE_SIZE * 2);
        for b in data.iter() {
            let _ = write!(hex, "{b:02x}");
        }
        let _ = writeln!(out, "P {frame:x} {hex}");
    }
    out
}

/// Parses a workload from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first problem.
pub fn from_text(text: &str) -> Result<Workload, ParseError> {
    let mut lines = text.lines().enumerate();
    let mut next = || lines.next().ok_or(ParseError::Truncated);

    let (_, header) = next()?;
    if header.trim() != "CDPWORKLOAD 1" {
        return Err(ParseError::BadHeader);
    }
    let (n, name_line) = next()?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or(ParseError::BadLine(n + 1))?
        .to_string();
    let (n, suite_line) = next()?;
    let suite = suite_line
        .strip_prefix("suite ")
        .and_then(parse_suite)
        .ok_or(ParseError::BadLine(n + 1))?;
    let (n, cursors_line) = next()?;
    let cur: Vec<&str> = cursors_line
        .strip_prefix("cursors ")
        .ok_or(ParseError::BadLine(n + 1))?
        .split_whitespace()
        .collect();
    if cur.len() != 3 {
        return Err(ParseError::BadLine(n + 1));
    }
    let cursors = (
        cur[0].parse().map_err(|_| ParseError::BadLine(n + 1))?,
        cur[1].parse().map_err(|_| ParseError::BadLine(n + 1))?,
        cur[2].parse().map_err(|_| ParseError::BadLine(n + 1))?,
    );
    let (n, uops_line) = next()?;
    let uop_count: usize = uops_line
        .strip_prefix("uops ")
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError::BadLine(n + 1))?;

    let mut uops = Vec::with_capacity(uop_count);
    for _ in 0..uop_count {
        let (n, line) = next()?;
        let lineno = n + 1;
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 6 {
            return Err(ParseError::BadLine(lineno));
        }
        let pc: u32 = parts[1].parse().map_err(|_| ParseError::BadLine(lineno))?;
        let dst = parse_reg(parts[3]).ok_or(ParseError::BadLine(lineno))?;
        let s0 = parse_reg(parts[4]).ok_or(ParseError::BadLine(lineno))?;
        let s1 = parse_reg(parts[5]).ok_or(ParseError::BadLine(lineno))?;
        let kind = match parts[0] {
            "A" => UopKind::Alu {
                latency: parts[2].parse().map_err(|_| ParseError::BadLine(lineno))?,
            },
            "F" => UopKind::Fp {
                latency: parts[2].parse().map_err(|_| ParseError::BadLine(lineno))?,
            },
            "L" => UopKind::Load {
                vaddr: VirtAddr(
                    u32::from_str_radix(parts[2], 16).map_err(|_| ParseError::BadLine(lineno))?,
                ),
            },
            "S" => UopKind::Store {
                vaddr: VirtAddr(
                    u32::from_str_radix(parts[2], 16).map_err(|_| ParseError::BadLine(lineno))?,
                ),
            },
            "B" => UopKind::Branch {
                taken: parts[2] == "1",
            },
            _ => return Err(ParseError::BadLine(lineno)),
        };
        uops.push(Uop {
            pc,
            kind,
            dst,
            srcs: [s0, s1],
        });
    }

    let (n, frames_line) = next()?;
    let frame_count: usize = frames_line
        .strip_prefix("frames ")
        .and_then(|v| v.parse().ok())
        .ok_or(ParseError::BadLine(n + 1))?;
    let mut phys = PhysMem::new();
    for _ in 0..frame_count {
        let (n, line) = next()?;
        let lineno = n + 1;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("P") {
            return Err(ParseError::BadLine(lineno));
        }
        let frame = u32::from_str_radix(parts.next().ok_or(ParseError::BadLine(lineno))?, 16)
            .map_err(|_| ParseError::BadLine(lineno))?;
        let hex = parts.next().ok_or(ParseError::BadLine(lineno))?;
        if hex.len() != PAGE_SIZE * 2 {
            return Err(ParseError::BadLine(lineno));
        }
        let mut data = [0u8; PAGE_SIZE];
        for (i, byte) in data.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                .map_err(|_| ParseError::BadLine(lineno))?;
        }
        phys.install_frame(frame, data);
    }

    Ok(Workload {
        name,
        suite,
        program: Program::new(uops),
        space: AddressSpace::from_parts(phys, cursors),
        stream: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{Benchmark, Scale};

    #[test]
    fn roundtrip_preserves_everything() {
        let w = Benchmark::B2e.build(Scale::smoke(), 12);
        let text = to_text(&w);
        let back = from_text(&text).expect("parse");
        assert_eq!(back.name, w.name);
        assert_eq!(back.suite, w.suite);
        assert_eq!(back.program.uops, w.program.uops);
        assert_eq!(back.space.mapped_pages(), w.space.mapped_pages());
        assert_eq!(back.space.cursors(), w.space.cursors());
        // Byte-identical image: re-serialization is a fixed point.
        assert_eq!(to_text(&back), text);
        // And the reloaded workload validates and simulates.
        back.validate().expect("mapped");
    }

    #[test]
    fn reloaded_workload_simulates_identically() {
        // The ultimate roundtrip check lives in the facade integration
        // tests (cdp-sim is not a dependency here); at this level, verify
        // the trace walks the same addresses through the image.
        let w = Benchmark::ProE.build(Scale::smoke(), 3);
        let back = from_text(&to_text(&w)).expect("parse");
        for (a, b) in w.program.uops.iter().zip(&back.program.uops) {
            assert_eq!(a.vaddr(), b.vaddr());
        }
        // Image contents agree at every accessed address.
        for u in w.program.uops.iter().take(500) {
            if let Some(a) = u.vaddr() {
                assert_eq!(w.space.read_u32(a), back.space.read_u32(a));
            }
        }
    }

    #[test]
    fn header_and_line_errors() {
        assert_eq!(from_text("nope").unwrap_err(), ParseError::BadHeader);
        assert_eq!(from_text("").unwrap_err(), ParseError::Truncated);
        let bad = "CDPWORKLOAD 1\nname x\nsuite Server\ncursors 1 2 3\nuops 1\nQ 0 0 0 0 0\nframes 0\n";
        assert_eq!(from_text(bad).unwrap_err(), ParseError::BadLine(6));
        let trunc = "CDPWORKLOAD 1\nname x\nsuite Server\ncursors 1 2 3\nuops 5\nA 0 1 255 255 255\n";
        assert_eq!(from_text(trunc).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn error_display() {
        assert!(ParseError::BadLine(7).to_string().contains('7'));
        assert!(!ParseError::BadHeader.to_string().is_empty());
    }
}
