//! The 15-benchmark suite mirroring Table 2 of the paper.
//!
//! Each benchmark is a parameterized synthetic stand-in for one of the
//! paper's commercial traces, built so the suite reproduces the paper's
//! *spread* of behaviors:
//!
//! * working sets from well under the 1 MB L2 (`b2e`, `proE`) up to tens of
//!   megabytes (`verilog-gate`), ordering the L2 MPTU column the same way
//!   Table 2 does;
//! * stride-dominated codes (`quake`, `rc3`) that the baseline prefetcher
//!   already covers;
//! * pointer chasers over aged (shuffled) heaps (`slsb`, `verilog-*`,
//!   `specjbb-vsnet`, `tpcc-*`) where only content-directed prefetching
//!   can follow the chain.
//!
//! Workloads are fully deterministic given `(benchmark, scale, seed)`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use cdp_core::{Program, Uop, UopKind, UopSource};
use cdp_mem::AddressSpace;
use cdp_types::rng::Rng;
use cdp_types::SnapshotError;

use crate::heap::Heap;
use crate::structures::{
    build_array, build_array_lazy, build_binary_tree, build_hash_table, build_index_array,
    build_list, Array, BinaryTree, HashTable, IndexArray, LinkedList,
};
use crate::trace::TraceBuilder;

/// Workload suite categories (Table 2, column 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Internet business applications.
    Internet,
    /// Game-playing and multimedia.
    Multimedia,
    /// Productivity applications.
    Productivity,
    /// On-line transaction processing.
    Server,
    /// Computer-aided design.
    Workstation,
    /// Java / managed-runtime applications.
    Runtime,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Internet => "Internet",
            Suite::Multimedia => "Multimedia",
            Suite::Productivity => "Productivity",
            Suite::Server => "Server",
            Suite::Workstation => "Workstation",
            Suite::Runtime => "Runtime",
        };
        f.write_str(s)
    }
}

/// Uop budget above which [`Benchmark::build`] returns a streaming
/// workload: the trace is generated on demand in chunks instead of being
/// materialized as a `Vec<Uop>`, and the stride array's content is
/// synthesized lazily on first touch. Everything at or below the
/// threshold builds exactly as before, byte for byte.
pub const STREAM_THRESHOLD_UOPS: usize = 4_000_000;

static FORCE_STREAMING: AtomicBool = AtomicBool::new(false);

/// Forces [`Benchmark::build`] to return streaming workloads at *every*
/// scale (tests and the differential harness use this to compare the
/// streaming engine against the materialized one on small runs). Unlike
/// true large/huge tiers, force-streamed small scales keep their eagerly
/// written memory image, so results are bit-identical to materialized
/// builds.
pub fn set_force_streaming(on: bool) {
    FORCE_STREAMING.store(on, Ordering::SeqCst);
}

/// Whether [`set_force_streaming`] is currently on.
pub fn force_streaming() -> bool {
    FORCE_STREAMING.load(Ordering::SeqCst)
}

/// Run-size scaling: uop budget plus a divisor applied to every structure
/// footprint (tests use large divisors; experiments use 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Scale {
    /// Uops to emit (the trace may slightly overshoot to finish a burst).
    pub target_uops: usize,
    /// Structure footprints are divided by this (>= 1).
    pub footprint_div: usize,
}

impl Scale {
    /// Tiny runs for unit tests (~30 K uops, 1/32 footprints).
    pub fn smoke() -> Self {
        Scale {
            target_uops: 30_000,
            footprint_div: 16,
        }
    }

    /// Fast experiment runs (~1 M uops, halved footprints). The budget is
    /// several passes over each working set, so capacity behavior (the
    /// 1 MB vs 4 MB UL2 contrast of Table 2) is visible, not just
    /// compulsory misses.
    pub fn quick() -> Self {
        Scale {
            target_uops: 1_000_000,
            footprint_div: 2,
        }
    }

    /// Full experiment runs (~4 M uops, halved footprints): several
    /// sweeps of every hot working set.
    pub fn full() -> Self {
        Scale {
            target_uops: 4_000_000,
            footprint_div: 2,
        }
    }

    /// Large runs (~100 M uops, full footprints): only reachable through
    /// the streaming engine — the trace is never materialized.
    pub fn large() -> Self {
        Scale {
            target_uops: 100_000_000,
            footprint_div: 1,
        }
    }

    /// Huge runs (~1 B uops, full footprints), streaming only.
    pub fn huge() -> Self {
        Scale {
            target_uops: 1_000_000_000,
            footprint_div: 1,
        }
    }

    /// Whether builds at this scale stream their trace (over the
    /// [`STREAM_THRESHOLD_UOPS`] budget, or [`set_force_streaming`] is on).
    pub fn streamed(&self) -> bool {
        self.target_uops > STREAM_THRESHOLD_UOPS || force_streaming()
    }

    fn div(&self, x: usize) -> usize {
        (x / self.footprint_div).max(1)
    }
}

/// A generated workload: the trace plus the memory image it runs against.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (Table 2 spelling).
    pub name: String,
    /// Suite category.
    pub suite: Suite,
    /// The uop trace (empty when the workload streams — see
    /// [`Workload::stream`]).
    pub program: Program,
    /// The memory image (page tables included).
    pub space: AddressSpace,
    /// Streaming recipe for large/huge tiers: when set, the trace is
    /// generated on demand by a [`cdp_core::UopSource`] built from
    /// [`StreamSpec::make_source`] and `program` stays empty.
    pub stream: Option<StreamSpec>,
}

impl Workload {
    /// Whether this workload streams its trace instead of materializing it.
    pub fn is_streamed(&self) -> bool {
        self.stream.is_some()
    }

    /// Checks that every load/store in the trace targets mapped memory —
    /// the invariant the simulator's demand path relies on. Returns the
    /// first offending (uop index, address) if any.
    ///
    /// # Errors
    ///
    /// Returns `Err((index, address))` for the first unmapped access.
    pub fn validate(&self) -> Result<(), (usize, cdp_types::VirtAddr)> {
        if let Some(spec) = &self.stream {
            // Streamed traces are too long to check exhaustively; generate
            // and check a bounded prefix (the generator revisits the same
            // structures throughout, so an unmapped target shows up early).
            const PREFIX_UOPS: usize = 65_536;
            let mut source = spec.make_source();
            let mut chunk = VecDeque::new();
            let mut idx = 0usize;
            while idx < PREFIX_UOPS {
                chunk.clear();
                if source.fill(&mut chunk) == 0 {
                    break;
                }
                for u in &chunk {
                    if let Some(a) = u.vaddr() {
                        if self.space.translate(a).is_none() {
                            return Err((idx, a));
                        }
                    }
                    idx += 1;
                }
            }
            return Ok(());
        }
        for (i, u) in self.program.uops.iter().enumerate() {
            if let Some(a) = u.vaddr() {
                if self.space.translate(a).is_none() {
                    return Err((i, a));
                }
            }
        }
        Ok(())
    }

    /// [`Workload::validate`] as a typed error: the first unmapped trace
    /// access becomes a [`cdp_types::CdpError::CorruptWorkload`] carrying
    /// the benchmark name, uop index, and faulting address.
    ///
    /// # Errors
    ///
    /// Returns `CdpError::CorruptWorkload` for the first unmapped access.
    pub fn check(&self) -> Result<(), cdp_types::CdpError> {
        self.validate()
            .map_err(|(uop, addr)| cdp_types::CdpError::CorruptWorkload {
                benchmark: self.name.clone(),
                uop,
                addr,
            })
    }

    /// A content fingerprint over the trace and the memory image.
    ///
    /// Workloads are rebuilt deterministically from `(Benchmark, Scale,
    /// seed)` when a checkpoint is resumed; this fingerprint is recorded
    /// in the snapshot header so a resume against a workload that was
    /// built differently (changed generator, changed scale) is rejected
    /// with a typed error instead of silently diverging.
    pub fn fingerprint(&self) -> u64 {
        let mut h = cdp_snap::Fnv1a::new();
        h.write(self.name.as_bytes());
        if let Some(spec) = &self.stream {
            // The trace is a pure function of (generator, tier, seed), so
            // hash the recipe instead of the uops. Tier parameters are
            // part of the key: a `large` workload can never collide with
            // a `smoke` one, even at the same seed.
            h.write(b"stream");
            h.write_u64(spec.target_uops as u64);
            h.write_u64(spec.footprint_div as u64);
            h.write_u64(spec.seed);
            let (heap, table, rng) = self.space.cursors();
            h.write_u32(heap);
            h.write_u32(table);
            h.write_u64(rng);
            h.write_u64(self.space.phys().state_fingerprint());
            return h.finish();
        }
        h.write_u64(self.program.uops.len() as u64);
        for u in &self.program.uops {
            h.write_u32(u.pc);
            let (tag, payload) = match u.kind {
                UopKind::Alu { latency } => (0u8, u32::from(latency)),
                UopKind::Fp { latency } => (1, u32::from(latency)),
                UopKind::Load { vaddr } => (2, vaddr.0),
                UopKind::Store { vaddr } => (3, vaddr.0),
                UopKind::Branch { taken } => (4, u32::from(taken)),
            };
            h.write(&[
                tag,
                u.dst.map_or(0xff, |r| r),
                u.srcs[0].map_or(0xff, |r| r),
                u.srcs[1].map_or(0xff, |r| r),
            ]);
            h.write_u32(payload);
        }
        let (heap, table, rng) = self.space.cursors();
        h.write_u32(heap);
        h.write_u32(table);
        h.write_u64(rng);
        h.write_u64(self.space.phys().state_fingerprint());
        h.finish()
    }

    /// A one-paragraph characterization: uop mix percentages and the
    /// mapped footprint (a debugging/reporting aid).
    pub fn summary(&self) -> String {
        if let Some(spec) = &self.stream {
            return format!(
                "{} [{}]: streaming {} uops (window-resident), {} KB mapped",
                self.name,
                self.suite,
                spec.target_uops,
                self.space.mapped_pages() * 4
            );
        }
        let n = self.program.len().max(1) as f64;
        let loads = self.program.num_loads() as f64 / n * 100.0;
        let stores = self.program.num_stores() as f64 / n * 100.0;
        let branches = self.program.num_branches() as f64 / n * 100.0;
        format!(
            "{} [{}]: {} uops ({loads:.1}% loads, {stores:.1}% stores, {branches:.1}% branches), {} KB mapped",
            self.name,
            self.suite,
            self.program.len(),
            self.space.mapped_pages() * 4
        )
    }
}

/// Streaming recipe for a workload's trace: a pristine generator plus the
/// tier parameters that produced it. The generator inside is never
/// advanced — [`StreamSpec::make_source`] clones it, so every source
/// starts at uop 0 and replays the identical stream.
#[derive(Clone, Debug)]
pub struct StreamSpec {
    gen: TraceGen,
    target_uops: usize,
    footprint_div: usize,
    seed: u64,
}

impl StreamSpec {
    /// A fresh [`UopSource`] positioned at uop 0.
    pub fn make_source(&self) -> Box<dyn UopSource> {
        Box::new(self.gen.clone())
    }

    /// The tier's uop budget.
    pub fn target_uops(&self) -> usize {
        self.target_uops
    }

    /// The tier's footprint divisor.
    pub fn footprint_div(&self) -> usize {
        self.footprint_div
    }

    /// The workload seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// How many uops a streaming fill accumulates before handing them to the
/// core: large enough to amortize per-chunk dispatch, small enough that
/// the resident window stays a few hundred KB.
const STREAM_CHUNK_UOPS: usize = 4096;

/// The phase-loop generator behind both build modes: materialized builds
/// drive it to completion up front, streaming builds drive it chunk by
/// chunk from the core's fetch stage. Both modes draw the same rng
/// trajectory, so they emit identical uop streams.
#[derive(Clone, Debug)]
struct TraceGen {
    profile: Profile,
    list: Option<LinkedList>,
    tree: Option<BinaryTree>,
    hash: Option<HashTable>,
    array: Option<Array>,
    index: Option<IndexArray>,
    store_buf: cdp_types::VirtAddr,
    rng: Rng,
    tb: TraceBuilder,
    stride_cursor: u32,
    /// Uops handed out via [`UopSource::fill`] so far (streaming only).
    emitted: usize,
    target: usize,
}

impl TraceGen {
    /// Emits one phase burst (plus the trailing store burst for OLTP
    /// profiles) into the internal builder. This is the loop body of the
    /// original materialized build, verbatim.
    fn fill_burst(&mut self) {
        let p = self.profile;
        let TraceGen {
            ref list,
            ref tree,
            ref hash,
            ref array,
            ref index,
            store_buf,
            ref mut rng,
            ref mut tb,
            ref mut stride_cursor,
            ..
        } = *self;
        let total_w: u32 = p.weights.iter().sum();
        let mut pick = rng.gen_range_u32(0..total_w);
        let mut phase = 0;
        for (i, &w) in p.weights.iter().enumerate() {
            if pick < w {
                phase = i;
                break;
            }
            pick -= w;
        }
        match phase {
            0 => {
                let l = list.as_ref().expect("chase weight requires a list");
                let seg = p.segment.min(l.nodes.len());
                let hot_span =
                    ((l.nodes.len() as f64 * p.hot_frac) as usize).min(l.nodes.len() - seg);
                let pick = |rng: &mut Rng| {
                    if rng.gen_bool(p.locality.clamp(0.0, 1.0)) {
                        rng.gen_range_usize_incl(0..=hot_span.min(l.nodes.len() - seg))
                    } else {
                        rng.gen_range_usize_incl(0..=(l.nodes.len() - seg))
                    }
                };
                let a = pick(&mut *rng);
                let b = pick(&mut *rng);
                tb.chase_interleaved(
                    10,
                    &l.nodes[a..a + seg],
                    &l.nodes[b..b + seg],
                    p.payload_loads,
                    p.alu,
                );
            }
            1 => {
                let t = tree.as_ref().expect("tree weight requires a tree");
                tb.tree_search(20, t, 6, &mut *rng);
            }
            2 => {
                let h = hash.as_ref().expect("hash weight requires a table");
                tb.hash_probe_hot_frac(30, h, 12, &mut *rng, p.locality, p.hot_frac);
            }
            3 => {
                let a = array.as_ref().expect("stride weight requires an array");
                let stride = 64i64;
                // Burst length clamped to the (possibly scaled-down)
                // array so the sweep never walks past its end.
                let elems = 256usize.min(a.len / stride as usize).max(1);
                let span = (elems as i64 * stride) as u32;
                // Sweep the array sequentially across phases (wrapping),
                // like a frame/vertex buffer pass: capacity behavior,
                // and the stride prefetcher's bread and butter.
                if *stride_cursor + span > a.len as u32 {
                    *stride_cursor = 0;
                }
                tb.stride_scan(
                    40,
                    a.base.offset(*stride_cursor as i64),
                    stride,
                    elems,
                    p.alu,
                );
                *stride_cursor += span;
            }
            5 => {
                let ia = index.as_ref().expect("index weight requires an array");
                let count = (p.segment * 2).min(ia.order.len());
                let hot_span = (ia.order.len() as f64 * p.hot_frac) as usize;
                let start = if rng.gen_bool(p.locality.clamp(0.0, 1.0)) && hot_span > 0 {
                    rng.gen_range_usize(0..hot_span)
                } else {
                    rng.gen_range_usize(0..ia.order.len())
                };
                tb.index_chase(60, ia, start, count, p.alu);
            }
            _ => {
                tb.alu_burst(50, 160);
                if p.fp {
                    tb.fp_burst(51, 32, 4);
                }
                tb.branch_noise(52, 8, p.branch_noise, &mut *rng);
            }
        }
        // OLTP-style benchmarks write back the rows they touch: a
        // store burst follows every phase.
        if p.stores {
            let off = rng.gen_range_u32(0..900) * 64;
            tb.store_burst(53, store_buf.offset(off as i64), 64, 16);
        }
    }
}

impl UopSource for TraceGen {
    fn fill(&mut self, out: &mut VecDeque<Uop>) -> usize {
        while self.emitted + self.tb.len() < self.target && self.tb.len() < STREAM_CHUNK_UOPS {
            self.fill_burst();
        }
        let n = self.tb.drain_into(out);
        self.emitted += n;
        n
    }

    fn exhausted(&self) -> bool {
        self.emitted + self.tb.len() >= self.target
    }

    fn box_clone(&self) -> Box<dyn UopSource> {
        Box::new(self.clone())
    }

    fn save_cursor(&self, enc: &mut cdp_snap::Enc) {
        // `fill` always drains the builder, so between fills only the
        // scratch-register rotation survives in it.
        debug_assert_eq!(self.tb.len(), 0, "cursor saved between fills");
        for w in self.rng.state() {
            enc.u64(w);
        }
        enc.u32(self.stride_cursor);
        enc.usize(self.emitted);
        enc.u8(self.tb.scratch_cursor());
    }

    fn restore_cursor(&mut self, dec: &mut cdp_snap::Dec<'_>) -> Result<(), SnapshotError> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.u64("tracegen rng state")?;
        }
        self.rng = Rng::from_state(s);
        self.stride_cursor = dec.u32("tracegen stride cursor")?;
        self.emitted = dec.usize("tracegen emitted")?;
        self.tb = TraceBuilder::new();
        self.tb
            .set_scratch_cursor(dec.u8("tracegen scratch cursor")?);
        Ok(())
    }
}

/// The 15 benchmarks of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    B2b,
    B2e,
    Quake,
    Speech,
    Rc3,
    Creation,
    Tpcc1,
    Tpcc2,
    Tpcc3,
    Tpcc4,
    VerilogFunc,
    VerilogGate,
    ProE,
    Slsb,
    SpecjbbVsnet,
}

/// Mix and footprint parameters for one benchmark.
#[derive(Clone, Copy, Debug)]
struct Profile {
    suite: Suite,
    /// Linked-list node count (0 = no list), node size, heap aging.
    list_nodes: usize,
    node_size: usize,
    shuffled: bool,
    /// Heap allocation alignment. Most compilers place structures on
    /// 4-byte boundaries, but §3.3 notes that footprint-optimizing
    /// compilers pack to 2 bytes — which is why the paper's tuned VAM
    /// configuration predicts on 2-byte alignment with a 2-byte scan
    /// step. The CAD workloads here use 2-byte packing.
    node_align: u32,
    /// Complete-binary-tree levels (0 = no tree).
    tree_levels: u32,
    /// Hash table geometry (0 items = no table).
    hash_buckets: usize,
    hash_items: usize,
    hash_node: usize,
    /// Stride-array footprint in bytes (0 = none).
    array_bytes: usize,
    /// Index-linked-array element count (0 = none): serial irregular
    /// traversals that the content prefetcher cannot follow.
    index_elems: usize,
    /// Phase weights: chase, tree, hash, stride, compute, index-chase.
    weights: [u32; 6],
    /// List nodes walked per chase burst.
    segment: usize,
    /// Dependent payload loads per chased node.
    payload_loads: usize,
    /// Dependent ALU uops per chased node / per stride element.
    alu: usize,
    /// Whether compute bursts include FP work (multimedia/CAD).
    fp: bool,
    /// Whether the workload emits store bursts (OLTP).
    stores: bool,
    /// Fraction of filler branches that are random.
    branch_noise: f64,
    /// Probability that a pointer phase targets the hot subset of its
    /// structure (real workloads have skewed reuse; `verilog-gate` sweeps
    /// nearly uniformly, OLTP concentrates on hot rows).
    locality: f64,
    /// Fraction of each structure forming the hot subset. Sized so the
    /// hot working set falls between the 1 MB and 4 MB UL2 capacities for
    /// the mid-tier benchmarks (the Table 2 contrast).
    hot_frac: f64,
    /// Virtual base of the arena holding the hash table (0 = the main
    /// heap at `0x1000_0000`). OLTP and runtime workloads place their
    /// tables in *low* arenas (below 16 MB), where a candidate's upper
    /// compare bits are all zero and the VAM filter bits (§3.3) decide
    /// whether the region is prefetchable at all — the Figure 7 axis.
    hash_arena: u32,
}

impl Benchmark {
    /// All 15 benchmarks in Table 2 order.
    pub fn all() -> [Benchmark; 15] {
        use Benchmark::*;
        [
            B2b, B2e, Quake, Speech, Rc3, Creation, Tpcc1, Tpcc2, Tpcc3, Tpcc4, VerilogFunc,
            VerilogGate, ProE, Slsb, SpecjbbVsnet,
        ]
    }

    /// The six benchmarks used in the Figure 1 warm-up trace (one per
    /// suite).
    pub fn figure1_set() -> [Benchmark; 6] {
        use Benchmark::*;
        [B2e, Quake, Rc3, Tpcc2, VerilogFunc, SpecjbbVsnet]
    }

    /// Table 2 name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::B2b => "b2b",
            Benchmark::B2e => "b2e",
            Benchmark::Quake => "quake",
            Benchmark::Speech => "speech",
            Benchmark::Rc3 => "rc3",
            Benchmark::Creation => "creation",
            Benchmark::Tpcc1 => "tpcc-1",
            Benchmark::Tpcc2 => "tpcc-2",
            Benchmark::Tpcc3 => "tpcc-3",
            Benchmark::Tpcc4 => "tpcc-4",
            Benchmark::VerilogFunc => "verilog-func",
            Benchmark::VerilogGate => "verilog-gate",
            Benchmark::ProE => "proE",
            Benchmark::Slsb => "slsb",
            Benchmark::SpecjbbVsnet => "specjbb-vsnet",
        }
    }

    /// Parses a Table 2 name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// Suite category (Table 2).
    pub fn suite(&self) -> Suite {
        self.profile().suite
    }

    fn profile(&self) -> Profile {
        let base = Profile {
            suite: Suite::Productivity,
            list_nodes: 0,
            node_size: 32,
            shuffled: false,
            node_align: 4,
            tree_levels: 0,
            hash_buckets: 0,
            hash_items: 0,
            hash_node: 32,
            array_bytes: 0,
            index_elems: 0,
            weights: [0, 0, 0, 0, 1, 0],
            segment: 384,
            payload_loads: 1,
            alu: 4,
            fp: false,
            stores: false,
            branch_noise: 0.05,
            locality: 0.85,
            hot_frac: 0.7,
            hash_arena: 0,
        };
        match self {
            Benchmark::B2b => Profile {
                suite: Suite::Internet,
                list_nodes: 22_000, // ~1 MB of 48 B nodes
                node_size: 48,
                shuffled: true,
                hash_buckets: 16_384,
                hash_items: 50_000, // ~1.6 MB
                array_bytes: 256 << 10,
                index_elems: 30000,
                weights: [1, 0, 2, 1, 3, 3],
                alu: 24,
                hash_arena: 0x0090_0000,
                ..base
            },
            Benchmark::B2e => Profile {
                suite: Suite::Internet,
                list_nodes: 3_000, // ~96 KB
                shuffled: false,
                hash_buckets: 512,
                hash_items: 2_000,
                hash_node: 24,
                array_bytes: 128 << 10,
                weights: [1, 0, 3, 2, 6, 0],
                alu: 6,
                locality: 0.92,
                ..base
            },
            Benchmark::Quake => Profile {
                suite: Suite::Multimedia,
                list_nodes: 12_000,
                shuffled: false,
                array_bytes: 1500 << 10,
                weights: [1, 0, 0, 5, 3, 0],
                fp: true,
                ..base
            },
            Benchmark::Speech => Profile {
                suite: Suite::Productivity,
                // Lattice/token chains on top of the pronunciation hash
                // table: speech decoders chase linked hypothesis tokens.
                list_nodes: 24_000, // ~0.8 MB of 32 B nodes
                shuffled: true,
                hash_buckets: 8_192,
                hash_items: 55_000, // ~1.7 MB
                array_bytes: 512 << 10,
                index_elems: 20000,
                weights: [1, 0, 2, 2, 4, 1],
                alu: 12,
                hash_arena: 0x0090_0000,
                ..base
            },
            Benchmark::Rc3 => Profile {
                suite: Suite::Productivity,
                list_nodes: 8_000,
                shuffled: false,
                array_bytes: 1 << 20,
                weights: [1, 0, 0, 4, 5, 0],
                alu: 6,
                ..base
            },
            Benchmark::Creation => Profile {
                suite: Suite::Productivity,
                list_nodes: 13_000, // ~0.5 MB of 40 B
                node_size: 40,
                shuffled: false,
                hash_buckets: 1_024,
                hash_items: 4_000,
                array_bytes: 1200 << 10,
                weights: [2, 0, 1, 3, 4, 0],
                alu: 5,
                ..base
            },
            Benchmark::Tpcc1 => Profile {
                suite: Suite::Server,
                list_nodes: 32_000, // ~1.5 MB
                node_size: 48,
                shuffled: true,
                hash_buckets: 32_768,
                hash_items: 60_000, // ~2.4 MB of 40 B
                hash_node: 40,
                array_bytes: 512 << 10,
                index_elems: 50000,
                weights: [2, 0, 3, 1, 2, 2],
                alu: 24,
                stores: true,
                branch_noise: 0.15,
                hash_arena: 0x0024_0000,
                ..base
            },
            Benchmark::Tpcc2 => Profile {
                suite: Suite::Server,
                list_nodes: 42_000, // ~2 MB
                node_size: 48,
                shuffled: true,
                hash_buckets: 32_768,
                hash_items: 75_000, // ~3 MB
                hash_node: 40,
                array_bytes: 512 << 10,
                index_elems: 50000,
                weights: [2, 0, 3, 1, 2, 2],
                alu: 24,
                stores: true,
                branch_noise: 0.15,
                hash_arena: 0x0024_0000,
                ..base
            },
            Benchmark::Tpcc3 => Profile {
                suite: Suite::Server,
                list_nodes: 52_000, // ~2.5 MB
                node_size: 48,
                shuffled: true,
                hash_buckets: 32_768,
                hash_items: 75_000,
                hash_node: 40,
                array_bytes: 512 << 10,
                index_elems: 50000,
                weights: [3, 0, 3, 1, 2, 2],
                alu: 24,
                stores: true,
                branch_noise: 0.15,
                hash_arena: 0x0024_0000,
                ..base
            },
            Benchmark::Tpcc4 => Profile {
                suite: Suite::Server,
                list_nodes: 42_000,
                node_size: 48,
                shuffled: true,
                hash_buckets: 32_768,
                hash_items: 60_000,
                hash_node: 40,
                array_bytes: 512 << 10,
                index_elems: 50000,
                weights: [2, 0, 3, 1, 2, 2],
                alu: 24,
                stores: true,
                branch_noise: 0.15,
                hash_arena: 0x0024_0000,
                ..base
            },
            Benchmark::VerilogFunc => Profile {
                suite: Suite::Workstation,
                list_nodes: 250_000, // ~8 MB of 32 B nodes
                node_size: 30,
                node_align: 2,
                shuffled: true,
                tree_levels: 13,
                index_elems: 120000,
                weights: [4, 1, 0, 0, 2, 2],
                segment: 768,
                locality: 0.35,
                alu: 24,
                ..base
            },
            Benchmark::VerilogGate => Profile {
                suite: Suite::Workstation,
                list_nodes: 850_000, // ~20 MB of 24 B nodes
                node_size: 24,
                shuffled: true,
                index_elems: 300000,
                weights: [5, 0, 0, 0, 1, 2],
                segment: 1024,
                locality: 0.1,
                payload_loads: 0,
                alu: 20,
                ..base
            },
            Benchmark::ProE => Profile {
                suite: Suite::Workstation,
                tree_levels: 13, // 8191 x 40 B ≈ 320 KB
                node_size: 40,
                array_bytes: 256 << 10,
                weights: [0, 3, 0, 1, 6, 0],
                alu: 8,
                locality: 0.9,
                fp: true,
                ..base
            },
            Benchmark::Slsb => Profile {
                suite: Suite::Workstation,
                list_nodes: 100_000, // ~6 MB of 64 B nodes
                node_size: 62,
                node_align: 2,
                shuffled: true,
                hash_buckets: 4_096,
                hash_items: 10_000,
                array_bytes: 256 << 10,
                index_elems: 60000,
                weights: [3, 0, 1, 1, 1, 2],
                segment: 512,
                locality: 0.5,
                payload_loads: 2,
                alu: 32,
                ..base
            },
            Benchmark::SpecjbbVsnet => Profile {
                suite: Suite::Runtime,
                list_nodes: 42_000, // ~2 MB of 48 B
                node_size: 48,
                shuffled: true,
                tree_levels: 12,
                hash_buckets: 8_192,
                hash_items: 30_000,
                array_bytes: 512 << 10,
                index_elems: 40000,
                weights: [2, 1, 2, 1, 3, 2],
                locality: 0.8,
                alu: 20,
                hash_arena: 0x0090_0000,
                ..base
            },
        }
    }

    /// Builds the workload: allocates and links its structures into a
    /// fresh address space, then emits `scale.target_uops` of trace —
    /// materialized below [`STREAM_THRESHOLD_UOPS`], streaming above it
    /// (or everywhere when [`set_force_streaming`] is on).
    pub fn build(&self, scale: Scale, seed: u64) -> Workload {
        self.build_with_engine(scale, seed, scale.streamed())
    }

    /// [`Benchmark::build`] with an explicit engine choice: `streamed`
    /// selects the chunked on-demand generator regardless of scale.
    /// Both engines draw the same rng trajectory, so they produce the
    /// identical uop stream; the differential tests compare them directly
    /// without touching the process-wide [`set_force_streaming`] toggle.
    pub fn build_with_engine(&self, scale: Scale, seed: u64, streamed: bool) -> Workload {
        let p = self.profile();
        let mut space = AddressSpace::new();
        // Heap capacity: generous upper bound on all structures.
        let cap_estimate = p.list_nodes / scale.footprint_div * (p.node_size + 16)
            + ((1usize << p.tree_levels) * (p.node_size.max(16) + 16))
            + p.hash_items / scale.footprint_div * (p.hash_node + 16)
            + p.hash_buckets * 4
            + p.array_bytes / scale.footprint_div
            + (1 << 20);
        let mut heap = Heap::new(Heap::DEFAULT_BASE, (cap_estimate as u32).next_power_of_two())
            .with_align(p.node_align)
            .with_padding(if p.shuffled { 16 } else { 0 });
        let mut rng = Rng::seed_from_u64(seed ^ 0xc0c0_0000 ^ (*self as u64) << 32);

        let list: Option<LinkedList> = (p.list_nodes > 0).then(|| {
            build_list(
                &mut space,
                &mut heap,
                &mut rng,
                scale.div(p.list_nodes),
                p.node_size,
                p.shuffled,
            )
        });
        let tree: Option<BinaryTree> = (p.tree_levels > 0).then(|| {
            let levels = if scale.footprint_div > 1 {
                (p.tree_levels.saturating_sub(scale.footprint_div.ilog2())).max(4)
            } else {
                p.tree_levels
            };
            build_binary_tree(&mut space, &mut heap, &mut rng, levels, p.node_size.max(16))
        });
        let hash: Option<HashTable> = (p.hash_items > 0).then(|| {
            // The table (bucket array + chain nodes together, so chain
            // pointers stay intra-region) lives either in the main heap or
            // in a low arena whose prefetchability depends on the VAM
            // filter bits.
            let mut arena = if p.hash_arena != 0 {
                Heap::new(p.hash_arena, 6 << 20).with_padding(if p.shuffled { 16 } else { 0 })
            } else {
                Heap::new(0, 0)
            };
            let h = if p.hash_arena != 0 { &mut arena } else { &mut heap };
            build_hash_table(
                &mut space,
                h,
                &mut rng,
                scale.div(p.hash_buckets.max(16)),
                scale.div(p.hash_items),
                p.hash_node,
            )
        });
        // True large/huge tiers synthesize array content lazily on first
        // touch (one seed draw instead of one draw per line); smaller
        // tiers — including force-streamed ones — keep the eager fill so
        // their rng trajectory and memory image match historical builds
        // byte for byte.
        let lazy_image = scale.target_uops > STREAM_THRESHOLD_UOPS;
        let array: Option<Array> = (p.array_bytes > 0).then(|| {
            if lazy_image {
                build_array_lazy(&mut space, &mut heap, &mut rng, scale.div(p.array_bytes))
            } else {
                build_array(&mut space, &mut heap, &mut rng, scale.div(p.array_bytes))
            }
        });
        let index: Option<IndexArray> = (p.index_elems > 0).then(|| {
            build_index_array(&mut space, &mut heap, &mut rng, scale.div(p.index_elems), 32)
        });
        // A scratch buffer for store bursts.
        let store_buf = heap.alloc(&mut space, 64 << 10);

        let total_w: u32 = p.weights.iter().sum();
        assert!(total_w > 0, "benchmark must have at least one phase");
        let mut gen = TraceGen {
            profile: p,
            list,
            tree,
            hash,
            array,
            index,
            store_buf,
            rng,
            tb: TraceBuilder::new(),
            stride_cursor: 0,
            emitted: 0,
            target: scale.target_uops,
        };

        if streamed {
            return Workload {
                name: self.name().to_string(),
                suite: p.suite,
                program: Program::new(Vec::new()),
                space,
                stream: Some(StreamSpec {
                    gen,
                    target_uops: scale.target_uops,
                    footprint_div: scale.footprint_div,
                    seed,
                }),
            };
        }

        // Materialized build: drive the generator to completion up front.
        // This draws the exact rng trajectory of the historical phase
        // loop, so traces are byte-identical to pre-streaming builds.
        while gen.tb.len() < gen.target {
            gen.fill_burst();
        }

        Workload {
            name: self.name().to_string(),
            suite: p.suite,
            program: gen.tb.build(),
            space,
            stream: None,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_roundtrip() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn builds_every_benchmark_at_smoke_scale() {
        for b in Benchmark::all() {
            let w = b.build(Scale::smoke(), 1);
            assert!(
                w.program.len() >= Scale::smoke().target_uops,
                "{b}: {} uops",
                w.program.len()
            );
            assert!(w.space.mapped_pages() > 0, "{b} has a memory image");
            assert!(w.program.num_loads() > 0, "{b} loads data");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Benchmark::Slsb.build(Scale::smoke(), 9);
        let b = Benchmark::Slsb.build(Scale::smoke(), 9);
        assert_eq!(a.program.len(), b.program.len());
        assert_eq!(a.program.uops, b.program.uops);
        let c = Benchmark::Slsb.build(Scale::smoke(), 10);
        assert_ne!(a.program.uops, c.program.uops);
    }

    #[test]
    fn pointer_benchmarks_have_bigger_footprints_than_cache_resident_ones() {
        let gate = Benchmark::VerilogGate.build(Scale::smoke(), 1);
        let b2e = Benchmark::B2e.build(Scale::smoke(), 1);
        assert!(
            gate.space.mapped_pages() > 4 * b2e.space.mapped_pages(),
            "gate {} vs b2e {}",
            gate.space.mapped_pages(),
            b2e.space.mapped_pages()
        );
    }

    #[test]
    fn every_benchmark_trace_is_fully_mapped() {
        for b in Benchmark::all() {
            let w = b.build(Scale::smoke(), 5);
            if let Err(e) = w.check() {
                panic!("{e}");
            }
        }
    }

    #[test]
    fn validate_reports_unmapped_accesses() {
        let mut w = Benchmark::B2e.build(Scale::smoke(), 5);
        w.program
            .uops
            .push(cdp_core::Uop::load(0, cdp_types::VirtAddr(0x7777_0000), 1, None));
        let (idx, addr) = w.validate().unwrap_err();
        assert_eq!(idx, w.program.len() - 1);
        assert_eq!(addr, cdp_types::VirtAddr(0x7777_0000));
    }

    #[test]
    fn check_wraps_the_fault_in_a_typed_error() {
        let mut w = Benchmark::Slsb.build(Scale::smoke(), 5);
        assert!(w.check().is_ok());
        w.program
            .uops
            .push(cdp_core::Uop::load(0, cdp_types::VirtAddr(0x7777_0000), 1, None));
        let err = w.check().unwrap_err();
        match err {
            cdp_types::CdpError::CorruptWorkload {
                benchmark,
                uop,
                addr,
            } => {
                assert_eq!(benchmark, "slsb");
                assert_eq!(uop, w.program.len() - 1);
                assert_eq!(addr, cdp_types::VirtAddr(0x7777_0000));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn summary_reports_mix_and_footprint() {
        let w = Benchmark::Tpcc2.build(Scale::smoke(), 3);
        let s = w.summary();
        assert!(s.contains("tpcc-2"));
        assert!(s.contains("Server"));
        assert!(s.contains("% loads"));
        assert!(s.contains("KB mapped"));
    }

    #[test]
    fn figure1_set_covers_six_suites() {
        let suites: std::collections::HashSet<_> = Benchmark::figure1_set()
            .iter()
            .map(|b| b.suite())
            .collect();
        assert_eq!(suites.len(), 6);
    }

    #[test]
    fn op_mixes_match_profiles() {
        use cdp_core::UopKind;
        // FP work appears exactly in the fp-profile benchmarks.
        for b in [Benchmark::Quake, Benchmark::ProE] {
            let w = b.build(Scale::smoke(), 2);
            assert!(
                w.program.uops.iter().any(|u| matches!(u.kind, UopKind::Fp { .. })),
                "{b} must contain FP work"
            );
        }
        for b in [Benchmark::VerilogGate, Benchmark::Tpcc1] {
            let w = b.build(Scale::smoke(), 2);
            assert!(
                !w.program.uops.iter().any(|u| matches!(u.kind, UopKind::Fp { .. })),
                "{b} is integer-only"
            );
        }
        // Stores appear exactly in the OLTP benchmarks.
        for b in [Benchmark::Tpcc1, Benchmark::Tpcc2, Benchmark::Tpcc3, Benchmark::Tpcc4] {
            assert!(b.build(Scale::smoke(), 2).program.num_stores() > 0, "{b}");
        }
        for b in [Benchmark::VerilogGate, Benchmark::Quake, Benchmark::B2e] {
            assert_eq!(b.build(Scale::smoke(), 2).program.num_stores(), 0, "{b}");
        }
    }

    #[test]
    fn footprints_order_like_table2() {
        // Mapped pages at equal scale must order the workload extremes the
        // way Table 2's footprints do.
        let pages = |b: Benchmark| b.build(Scale::smoke(), 1).space.mapped_pages();
        let gate = pages(Benchmark::VerilogGate);
        let func = pages(Benchmark::VerilogFunc);
        let b2e = pages(Benchmark::B2e);
        assert!(gate > func, "gate {gate} > func {func}");
        assert!(func > b2e * 2, "func {func} >> b2e {b2e}");
    }

    #[test]
    fn low_arena_benchmarks_map_below_16mb() {
        // OLTP tables live in low arenas so the VAM filter bits matter.
        // Which structures a tiny smoke trace touches is seed-dependent, so
        // scan a few seeds: tpcc must hit its hash table on at least one,
        // while the pure-heap benchmark must never map low.
        let touches_low = |b: Benchmark, seed: u64| {
            b.build(Scale::smoke(), seed)
                .program
                .uops
                .iter()
                .filter_map(cdp_core::Uop::vaddr)
                .any(|a| a.0 < 0x0100_0000)
        };
        assert!(
            (1..=8).any(|s| touches_low(Benchmark::Tpcc2, s)),
            "tpcc must touch its low-arena hash table"
        );
        assert!(
            (1..=8).all(|s| !touches_low(Benchmark::VerilogGate, s)),
            "gate has no low-arena structures"
        );
    }

    #[test]
    fn packed_benchmarks_have_sub4_aligned_nodes() {
        // slsb/verilog-func use 2-byte packing (the Figure 8 axis). Which
        // structures a tiny smoke trace touches is seed-dependent, so scan
        // a few seeds.
        let any_packed = (1..=6u64).any(|seed| {
            Benchmark::Slsb
                .build(Scale::smoke(), seed)
                .program
                .uops
                .iter()
                .filter_map(cdp_core::Uop::vaddr)
                .any(|a| a.0 % 4 == 2)
        });
        assert!(any_packed, "slsb must touch 2-byte-aligned fields");
    }

    /// Drains a streaming workload's source to a flat uop vector.
    fn drain_stream(w: &Workload) -> Vec<Uop> {
        let mut source = w.stream.as_ref().expect("streamed workload").make_source();
        let mut all = VecDeque::new();
        while source.fill(&mut all) > 0 {}
        assert!(source.exhausted());
        all.into_iter().collect()
    }

    #[test]
    fn streamed_source_replays_the_materialized_trace() {
        for b in [Benchmark::Tpcc2, Benchmark::Quake, Benchmark::VerilogGate] {
            let mat = b.build_with_engine(Scale::smoke(), 7, false);
            let st = b.build_with_engine(Scale::smoke(), 7, true);
            assert!(st.is_streamed() && st.program.uops.is_empty());
            assert_eq!(drain_stream(&st), mat.program.uops, "{b}");
            // The memory image is byte-identical too (no lazy pages at
            // smoke scale).
            assert_eq!(
                st.space.phys().state_fingerprint(),
                mat.space.phys().state_fingerprint(),
                "{b}"
            );
        }
    }

    #[test]
    fn stream_cursor_roundtrip_resumes_mid_trace() {
        // Bursts can run to ~20 K uops, so give the stream enough budget
        // that a checkpoint after one fill still has plenty left to run.
        let scale = Scale {
            target_uops: 120_000,
            ..Scale::smoke()
        };
        let w = Benchmark::Tpcc1.build_with_engine(scale, 3, true);
        let spec = w.stream.as_ref().unwrap();
        let mut source = spec.make_source();
        let mut prefix = VecDeque::new();
        assert!(source.fill(&mut prefix) > 0);
        let mut enc = cdp_snap::Enc::new();
        source.save_cursor(&mut enc);
        let bytes = enc.into_bytes();

        let mut resumed = spec.make_source();
        let mut dec = cdp_snap::Dec::new(&bytes);
        resumed.restore_cursor(&mut dec).expect("cursor restores");
        let (mut rest_a, mut rest_b) = (VecDeque::new(), VecDeque::new());
        while source.fill(&mut rest_a) > 0 {}
        while resumed.fill(&mut rest_b) > 0 {}
        assert_eq!(rest_a, rest_b, "resumed source continues identically");
        assert!(!rest_a.is_empty());
    }

    #[test]
    fn stream_fingerprint_keys_on_tier_parameters() {
        let at = |scale: Scale, seed: u64| {
            Benchmark::B2e
                .build_with_engine(scale, seed, true)
                .fingerprint()
        };
        let smoke = at(Scale::smoke(), 5);
        assert_eq!(smoke, at(Scale::smoke(), 5), "fingerprint is stable");
        let more_uops = Scale {
            target_uops: Scale::smoke().target_uops * 2,
            ..Scale::smoke()
        };
        assert_ne!(smoke, at(more_uops, 5), "uop budget is part of the key");
        assert_ne!(smoke, at(Scale::smoke(), 6), "seed is part of the key");
        // Footprint divisor changes the image itself *and* the key field.
        let denser = Scale {
            footprint_div: Scale::smoke().footprint_div * 2,
            ..Scale::smoke()
        };
        assert_ne!(smoke, at(denser, 5), "footprint divisor is part of the key");
    }

    #[test]
    fn streamed_workload_validates_and_summarizes() {
        let w = Benchmark::Tpcc2.build_with_engine(Scale::smoke(), 4, true);
        w.check().expect("streamed prefix fully mapped");
        let s = w.summary();
        assert!(s.contains("streaming"), "{s}");
        assert!(s.contains("tpcc-2"), "{s}");
    }

    #[test]
    fn large_tiers_stream_and_synthesize_lazily() {
        // A true large-tier build installs lazy regions for its stride
        // array instead of writing it eagerly, and builds quickly because
        // no trace is materialized.
        let w = Benchmark::Quake.build(Scale::large(), 1);
        assert!(w.is_streamed());
        assert!(
            w.space.phys().lazy_regions() > 0,
            "large tier synthesizes the array lazily"
        );
        assert_eq!(w.stream.as_ref().unwrap().target_uops(), 100_000_000);
        w.check().expect("large-tier prefix fully mapped");
    }

    #[test]
    fn scale_streaming_predicate_and_toggle() {
        // The toggle is process-wide, so every `!streamed()` assertion
        // lives in this one test (others pass the engine explicitly and
        // never read the toggle).
        assert!(Scale::large().streamed());
        assert!(Scale::huge().streamed());
        assert!(!Scale::smoke().streamed());
        assert!(!Scale::full().streamed());
        set_force_streaming(true);
        let forced = Scale::smoke().streamed();
        set_force_streaming(false);
        assert!(forced, "force-streaming covers small scales");
        assert!(!Scale::smoke().streamed());
    }

    #[test]
    fn quake_emits_fp_and_tpcc_emits_stores() {
        let quake = Benchmark::Quake.build(Scale::smoke(), 1);
        let has_fp = quake
            .program
            .uops
            .iter()
            .any(|u| matches!(u.kind, cdp_core::UopKind::Fp { .. }));
        assert!(has_fp);
        let tpcc = Benchmark::Tpcc1.build(Scale::smoke(), 1);
        assert!(tpcc.program.num_stores() > 0);
    }
}
