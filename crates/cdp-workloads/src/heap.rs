//! Heap allocation into the simulated address space.
//!
//! "This paper proposes ... a data prefetching architecture that exploits
//! the memory allocation used by operating systems and runtime systems"
//! (abstract). The exploitable property is that heap allocations share
//! high-order address bits with each other and with the stack/globals of
//! the same region. The [`Heap`] bump allocator reproduces that: all
//! allocations fall inside one region (default base `0x1000_0000`), are
//! aligned (4-byte by default, as §3.3 discusses for IA-32 compilers), and
//! may carry random inter-object padding to model allocator metadata and
//! heap aging.

use cdp_mem::AddressSpace;
use cdp_types::VirtAddr;
use cdp_types::rng::Rng;

/// Default heap base: shares the `0x10` upper byte across a 256 MB region.
pub const DEFAULT_HEAP_BASE: u32 = 0x1000_0000;

/// A bump allocator over a region of the simulated address space.
///
/// # Examples
///
/// ```
/// use cdp_mem::AddressSpace;
/// use cdp_workloads::Heap;
///
/// let mut space = AddressSpace::new();
/// let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 20);
/// let a = heap.alloc(&mut space, 24);
/// let b = heap.alloc(&mut space, 24);
/// assert!(b.0 > a.0);
/// assert_eq!(a.0 % 4, 0, "allocations are 4-byte aligned");
/// ```
#[derive(Debug, Clone)]
pub struct Heap {
    base: u32,
    next: u32,
    end: u32,
    align: u32,
    /// Maximum random padding inserted between objects (0 = dense).
    max_pad: u32,
}

impl Heap {
    /// The default heap base address.
    pub const DEFAULT_BASE: u32 = DEFAULT_HEAP_BASE;

    /// Creates a heap covering `[base, base + capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if the region wraps the address space.
    pub fn new(base: u32, capacity: u32) -> Self {
        assert!(
            base.checked_add(capacity).is_some(),
            "heap region wraps the 32-bit space"
        );
        Heap {
            base,
            next: base,
            end: base + capacity,
            align: 4,
            max_pad: 0,
        }
    }

    /// Sets the allocation alignment (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn with_align(mut self, align: u32) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.align = align;
        self
    }

    /// Enables random inter-object padding up to `max_pad` bytes (models
    /// allocator headers and heap fragmentation).
    pub fn with_padding(mut self, max_pad: u32) -> Self {
        self.max_pad = max_pad;
        self
    }

    /// The heap base.
    pub fn base(&self) -> VirtAddr {
        VirtAddr(self.base)
    }

    /// Bytes allocated so far (including padding).
    pub fn used(&self) -> u32 {
        self.next - self.base
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u32 {
        self.end - self.next
    }

    /// Allocates `size` bytes, maps the backing pages, and returns the
    /// object base.
    ///
    /// # Panics
    ///
    /// Panics if the heap region is exhausted.
    pub fn alloc(&mut self, space: &mut AddressSpace, size: usize) -> VirtAddr {
        let aligned = (self.next + self.align - 1) & !(self.align - 1);
        let end = aligned
            .checked_add(size as u32)
            .expect("allocation wraps address space");
        assert!(end <= self.end, "heap exhausted: {size} bytes requested");
        self.next = end;
        let addr = VirtAddr(aligned);
        space.map_range(addr, size.max(1));
        addr
    }

    /// Rounds the next allocation up to `align` (a power of two) without
    /// mapping anything — used to page-align lazily synthesized arrays so
    /// they occupy a fresh, physically contiguous frame range.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_next(&mut self, align: u32) {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next = ((self.next + align - 1) & !(align - 1)).min(self.end);
    }

    /// Allocates with random padding before the object (if configured).
    pub fn alloc_padded(&mut self, space: &mut AddressSpace, size: usize, rng: &mut Rng) -> VirtAddr {
        if self.max_pad > 0 {
            let pad = rng.gen_range_u32_incl(0..=self.max_pad);
            self.next = (self.next + pad).min(self.end);
        }
        self.alloc(space, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    #[test]
    fn bump_allocation_is_monotone_and_aligned() {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 1 << 20);
        let mut prev = 0u32;
        for size in [1usize, 3, 24, 64, 100] {
            let a = heap.alloc(&mut space, size);
            assert!(a.0 >= prev);
            assert_eq!(a.0 % 4, 0);
            prev = a.0 + size as u32;
        }
        assert!(heap.used() >= 192);
    }

    #[test]
    fn allocations_share_upper_byte() {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(Heap::DEFAULT_BASE, 1 << 24);
        for _ in 0..100 {
            let a = heap.alloc(&mut space, 1000);
            assert_eq!(a.0 >> 24, 0x10, "upper byte shared: {a}");
        }
    }

    #[test]
    fn allocated_memory_is_mapped() {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 1 << 20);
        let a = heap.alloc(&mut space, 8192);
        assert!(space.translate(a).is_some());
        assert!(space.translate(VirtAddr(a.0 + 8191)).is_some());
    }

    #[test]
    fn custom_alignment() {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 1 << 20).with_align(64);
        heap.alloc(&mut space, 3);
        let b = heap.alloc(&mut space, 3);
        assert_eq!(b.0 % 64, 0);
    }

    #[test]
    fn padding_spreads_objects() {
        let mut space = AddressSpace::new();
        let mut rng = Rng::seed_from_u64(7);
        let mut dense = Heap::new(0x1000_0000, 1 << 20);
        let mut padded = Heap::new(0x2000_0000, 1 << 20).with_padding(64);
        for _ in 0..50 {
            dense.alloc_padded(&mut space, 16, &mut rng);
            padded.alloc_padded(&mut space, 16, &mut rng);
        }
        assert!(padded.used() > dense.used());
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn exhaustion_panics() {
        let mut space = AddressSpace::new();
        let mut heap = Heap::new(0x1000_0000, 64);
        heap.alloc(&mut space, 65);
    }
}
