//! Synthetic workload generation.
//!
//! The paper evaluates on 15 proprietary commercial traces (Table 2). This
//! crate substitutes a parameterized synthetic suite with the same names
//! and the same *qualitative spread*: low-MPTU codes whose working sets fit
//! the L2, stride-dominated multimedia codes, and high-MPTU pointer
//! chasers. Each workload is:
//!
//! 1. a **memory image** — linked lists, trees, and hash tables written
//!    byte-for-byte into an [`cdp_mem::AddressSpace`] by heap allocators
//!    that share high-order address bits (the property the VAM heuristic
//!    exploits), and
//! 2. a **dependency-annotated uop trace** that traverses those structures,
//!    with load-to-load dependences carried through registers so pointer
//!    chasing serializes in the out-of-order core.
//!
//! Modules:
//!
//! * [`heap`] — bump allocators with alignment, padding, and address-space
//!   regions mimicking OS/runtime layout.
//! * [`structures`] — linked data structure builders (lists, binary trees,
//!   chained hash tables, arrays of structs).
//! * [`trace`] — the uop-trace builder (pointer chases, stride scans, hash
//!   probes, compute bursts, branches).
//! * [`suite`] — the 15-benchmark suite mirroring Table 2.
//! * [`serialize`] — plain-text save/load of complete workloads
//!   (trace + memory image) for regression pinning and external tools.

#![warn(missing_docs)]

pub mod heap;
pub mod serialize;
pub mod structures;
pub mod suite;
pub mod trace;

pub use heap::Heap;
pub use suite::{
    force_streaming, set_force_streaming, Benchmark, Scale, StreamSpec, Suite, Workload,
    STREAM_THRESHOLD_UOPS,
};
pub use trace::TraceBuilder;
