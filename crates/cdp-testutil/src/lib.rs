//! Shared test support for the CDP workspace.
//!
//! Integration tests across `tests/`, `crates/cdp-sim/tests/`, and the
//! experiment-CLI tests kept re-growing the same three helpers: a smoke
//! `Scale`, a small deterministic workload, and "diff these two outputs
//! and show me where they diverge". This crate is the single home for
//! them (it is a dev-dependency only — nothing in the shipped simulator
//! depends on it).

#![warn(missing_docs)]

use cdp_sim::RunLength;
use cdp_types::rng::Rng;
use cdp_workloads::suite::{Benchmark, Scale};
use cdp_workloads::Workload;

/// The smoke-run scale (the standard size for CI-speed tests).
#[must_use]
pub fn smoke() -> Scale {
    RunLength::Smoke.scale()
}

/// Builds a tiny deterministic workload: `bench` at smoke scale with an
/// explicit seed. Equal arguments always produce byte-identical images.
#[must_use]
pub fn tiny_workload(bench: Benchmark, seed: u64) -> Workload {
    bench.build(smoke(), seed)
}

/// The default tiny workload most tests use: aged-heap pointer chasing
/// (`slsb`), the paper's motivating case, seeded at 42.
#[must_use]
pub fn default_workload() -> Workload {
    tiny_workload(Benchmark::Slsb, 42)
}

/// A deterministically seeded xoshiro256++ stream for tests that need
/// randomized-but-reproducible choices (snapshot points, shuffles).
#[must_use]
pub fn seeded_rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// The first line where two captured outputs diverge, as
/// `(line_number, left_line, right_line)` — `None` when byte-identical.
/// Missing lines render as `"<eof>"`.
#[must_use]
pub fn first_divergence(left: &str, right: &str) -> Option<(usize, String, String)> {
    if left == right {
        return None;
    }
    let mut l = left.lines();
    let mut r = right.lines();
    let mut n = 1;
    loop {
        match (l.next(), r.next()) {
            (None, None) => {
                // Same lines but different bytes (trailing newline etc.).
                return Some((n, "<eof>".to_string(), "<eof>".to_string()));
            }
            (a, b) if a != b => {
                return Some((
                    n,
                    a.unwrap_or("<eof>").to_string(),
                    b.unwrap_or("<eof>").to_string(),
                ));
            }
            _ => n += 1,
        }
    }
}

/// Asserts two captured outputs are byte-identical, failing with the
/// first divergent line instead of two full dumps.
///
/// # Panics
///
/// Panics (with context) when the outputs differ.
pub fn assert_identical_output(what: &str, left: &str, right: &str) {
    if let Some((line, l, r)) = first_divergence(left, right) {
        panic!("{what}: outputs diverge at line {line}:\n  left:  {l}\n  right: {r}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = tiny_workload(Benchmark::Slsb, 7);
        let b = tiny_workload(Benchmark::Slsb, 7);
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn divergence_reports_first_differing_line() {
        assert_eq!(first_divergence("a\nb\n", "a\nb\n"), None);
        let (n, l, r) = first_divergence("a\nb\n", "a\nc\n").unwrap();
        assert_eq!((n, l.as_str(), r.as_str()), (2, "b", "c"));
        let (n, _, r) = first_divergence("a\nb\n", "a\n").unwrap();
        assert_eq!((n, r.as_str()), (2, "<eof>"));
    }
}
