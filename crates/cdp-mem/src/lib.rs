//! Memory substrate for the content-directed prefetching simulator.
//!
//! Everything the paper's memory system needs, built from scratch:
//!
//! * [`phys`] — a sparse, byte-level physical memory backing store. Cache
//!   fills return *real bytes* from here; this is what makes content-directed
//!   prefetching (which scans fill data for pointers) simulatable at all.
//! * [`vmem`] — a 32-bit virtual address space with IA-32-style two-level
//!   page tables that physically live *inside* the backing store, a frame
//!   allocator, and a hardware page walker that reports the physical
//!   addresses it touches (so walks create real, scanner-bypassing traffic).
//! * [`cache`] — a generic set-associative cache with true-LRU replacement,
//!   parameterized over per-line metadata so the L2 can carry the content
//!   prefetcher's 2-bit request-depth tag (§3.4.2 of the paper).
//! * [`tlb`] — set-associative translation look-aside buffers.
//! * [`arbiter`] — the strict priority arbiters of §3.5 (demand > stride >
//!   content-by-depth) with the paper's drop/evict semantics.
//! * [`bus`] — the 460-cycle, occupancy-limited front-side bus and DRAM.
//! * [`mshr`] — in-flight miss tracking with the paper's priority promotion
//!   of prefetches hit by demands.

#![warn(missing_docs)]

pub mod arbiter;
pub mod bus;
pub mod cache;
pub mod mshr;
pub mod phys;
pub mod tlb;
pub mod vmem;

pub use arbiter::{Arbiter, EnqueueOutcome};
pub use bus::{Bus, BusStats};
pub use cache::{AccessResult, Cache, Entry, EvictClass, EvictedLine};
pub use mshr::{InFlight, MshrFile, MshrStats};
pub use phys::PhysMem;
pub use tlb::Tlb;
pub use vmem::{AddressSpace, WalkResult};
