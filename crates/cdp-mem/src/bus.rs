//! Front-side bus and DRAM timing model.
//!
//! Table 1: 4.26 GB/s bandwidth (≈60 processor cycles of occupancy per
//! 64-byte line at 4 GHz), 460 cycles of round-trip latency (8 bus cycles
//! through the chipset + 55 ns DRAM access), and a 32-entry bus queue.
//!
//! The model is analytic rather than slot-by-slot, but it honors the
//! §3.5 arbiter rule that "demand requests are given the highest
//! priority": demand transfers are scheduled against a demand-only
//! bandwidth track, so they never queue behind speculative traffic, while
//! prefetch transfers queue behind *everything*. The prefetch backlog
//! (scheduled-but-not-started transfers) is exposed via
//! [`Bus::backlog_at`]; the hierarchy squashes prefetches when it exceeds
//! the 32-entry bus queue, reproducing the paper's drop behavior.

use std::collections::VecDeque;

use cdp_types::BusConfig;

/// Cumulative bus statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Line transfers performed.
    pub transfers: u64,
    /// Demand-priority transfers.
    pub demand_transfers: u64,
    /// Cycles the data path was occupied.
    pub busy_cycles: u64,
    /// Transfers that waited for a queue slot (full outstanding window).
    pub queue_waits: u64,
}

/// The bus + DRAM model.
///
/// # Examples
///
/// ```
/// use cdp_mem::Bus;
/// use cdp_types::BusConfig;
///
/// let mut bus = Bus::new(&BusConfig::default());
/// let t0 = bus.schedule(100, false);
/// assert_eq!(t0, 100 + 460);
/// // A prefetch issued in the same cycle waits for the data path...
/// let t1 = bus.schedule(100, false);
/// assert_eq!(t1, 100 + 60 + 460);
/// // ...but a demand does not queue behind speculative traffic.
/// let t2 = bus.schedule(100, true);
/// assert_eq!(t2, 100 + 460);
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    latency: u64,
    cycles_per_line: u64,
    queue_size: usize,
    /// Data-path free time counting all traffic.
    next_free_all: u64,
    /// Data-path free time counting only demand-priority traffic.
    next_free_demand: u64,
    outstanding: VecDeque<u64>,
    /// Completion times of outstanding demand transfers only.
    outstanding_demand: VecDeque<u64>,
    /// Start times of scheduled prefetch transfers (monotone).
    prefetch_starts: VecDeque<u64>,
    stats: BusStats,
}

impl Bus {
    /// Creates a bus with the given timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `queue_size` is zero.
    pub fn new(cfg: &BusConfig) -> Self {
        assert!(cfg.queue_size > 0, "bus queue must hold at least one entry");
        Bus {
            latency: cfg.latency,
            cycles_per_line: cfg.cycles_per_line,
            queue_size: cfg.queue_size,
            next_free_all: 0,
            next_free_demand: 0,
            outstanding: VecDeque::new(),
            outstanding_demand: VecDeque::new(),
            prefetch_starts: VecDeque::new(),
            stats: BusStats::default(),
        }
    }

    /// Round-trip latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Bus queue capacity.
    pub fn queue_size(&self) -> usize {
        self.queue_size
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Number of transfers currently outstanding at cycle `now`.
    pub fn outstanding_at(&mut self, now: u64) -> usize {
        self.prune(now);
        self.outstanding.len()
    }

    /// Transfers scheduled but not yet started at `now`, in line-transfer
    /// units (total bandwidth debt, demand + prefetch).
    pub fn backlog_at(&self, now: u64) -> usize {
        let backlog_cycles = self.next_free_all.saturating_sub(now);
        (backlog_cycles / self.cycles_per_line.max(1)) as usize
    }

    /// *Prefetch* transfers scheduled but not yet started at `now` — the
    /// queue occupancy the §3.5 arbiters squash new prefetches against.
    /// Demand bursts do not count here: in the paper's arbiter, demands
    /// displace prefetches rather than blocking them forever.
    pub fn prefetch_backlog_at(&mut self, now: u64) -> usize {
        while matches!(self.prefetch_starts.front(), Some(&t) if t <= now) {
            self.prefetch_starts.pop_front();
        }
        self.prefetch_starts.len()
    }

    /// Computes the completion time [`Bus::schedule`] *would* return for a
    /// transfer at `now`, without scheduling anything. Used by the demand
    /// promotion path to decide whether re-arbitrating a backlogged
    /// prefetch at demand priority is actually faster.
    pub fn peek_schedule(&self, now: u64, demand: bool) -> u64 {
        let mut start = if demand {
            self.next_free_demand.max(now)
        } else {
            self.next_free_all.max(now)
        };
        let class_queue = if demand {
            &self.outstanding_demand
        } else {
            &self.outstanding
        };
        if class_queue.len() >= self.queue_size {
            if let Some(&oldest) = class_queue.front() {
                start = start.max(oldest);
            }
        }
        start + self.latency
    }

    /// Whether the bus data path is idle at `now` (used by the §3.5
    /// pollution limit study, which injects bad prefetches on idle cycles).
    pub fn is_idle_at(&self, now: u64) -> bool {
        self.next_free_all <= now
    }

    fn prune(&mut self, now: u64) {
        while matches!(self.outstanding.front(), Some(&t) if t <= now) {
            self.outstanding.pop_front();
        }
        while matches!(self.outstanding_demand.front(), Some(&t) if t <= now) {
            self.outstanding_demand.pop_front();
        }
    }

    /// Schedules one line transfer requested at cycle `now`; returns the
    /// cycle at which the fill data arrives. Demand transfers never queue
    /// behind speculative traffic (strict priority; in the paper's
    /// arbiters a demand displaces the lowest-priority prefetch rather
    /// than waiting for it), so a demand's queue-full wait considers only
    /// *demand*-class occupancy. Prefetch transfers queue behind
    /// everything.
    pub fn schedule(&mut self, now: u64, demand: bool) -> u64 {
        self.prune(now);
        let mut start = if demand {
            self.next_free_demand.max(now)
        } else {
            self.next_free_all.max(now)
        };
        let class_queue = if demand {
            &mut self.outstanding_demand
        } else {
            &mut self.outstanding
        };
        if class_queue.len() >= self.queue_size {
            // Wait for the oldest same-class transfer to retire its slot.
            let oldest = *class_queue.front().expect("queue non-empty");
            start = start.max(oldest);
            self.stats.queue_waits += 1;
            class_queue.pop_front();
        }
        if demand {
            self.next_free_demand = start + self.cycles_per_line;
            self.stats.demand_transfers += 1;
        } else {
            // Bound the backlog bookkeeping even if a caller ignores
            // `prefetch_backlog_at` (the hierarchy squashes prefetches at
            // `queue_size`, so entries beyond a few multiples are stale).
            if self.prefetch_starts.len() >= self.queue_size * 4 {
                self.prefetch_starts.pop_front();
            }
            self.prefetch_starts.push_back(start);
        }
        self.next_free_all = self.next_free_all.max(start) + self.cycles_per_line;
        let complete = start + self.latency;
        // Insert keeping completion order (starts are monotone per track,
        // but the two tracks interleave).
        let pos = self
            .outstanding
            .iter()
            .rposition(|&t| t <= complete)
            .map(|p| p + 1)
            .unwrap_or(0);
        self.outstanding.insert(pos, complete);
        if demand {
            self.outstanding_demand.push_back(complete);
        }
        self.stats.transfers += 1;
        self.stats.busy_cycles += self.cycles_per_line;
        complete
    }

    /// Serializes the complete bus state (timing tracks, the three
    /// outstanding queues in order, and statistics).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.next_free_all);
        enc.u64(self.next_free_demand);
        for q in [
            &self.outstanding,
            &self.outstanding_demand,
            &self.prefetch_starts,
        ] {
            enc.seq_len(q.len());
            for &t in q {
                enc.u64(t);
            }
        }
        enc.u64(self.stats.transfers);
        enc.u64(self.stats.demand_transfers);
        enc.u64(self.stats.busy_cycles);
        enc.u64(self.stats.queue_waits);
    }

    /// Restores state written by [`Bus::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or a
    /// corrupted queue length.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.next_free_all = dec.u64("bus next_free_all")?;
        self.next_free_demand = dec.u64("bus next_free_demand")?;
        for q in [
            &mut self.outstanding,
            &mut self.outstanding_demand,
            &mut self.prefetch_starts,
        ] {
            let len = dec.seq_len(8, "bus queue length")?;
            q.clear();
            for _ in 0..len {
                q.push_back(dec.u64("bus queue entry")?);
            }
        }
        self.stats = BusStats {
            transfers: dec.u64("bus transfers")?,
            demand_transfers: dec.u64("bus demand transfers")?,
            busy_cycles: dec.u64("bus busy cycles")?,
            queue_waits: dec.u64("bus queue waits")?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;

    fn bus() -> Bus {
        Bus::new(&BusConfig::default())
    }

    #[test]
    fn single_transfer_latency() {
        let mut b = bus();
        assert_eq!(b.schedule(0, true), 460);
        assert_eq!(b.stats().transfers, 1);
        assert_eq!(b.stats().demand_transfers, 1);
    }

    #[test]
    fn back_to_back_prefetches_serialize_on_occupancy() {
        let mut b = bus();
        assert_eq!(b.schedule(0, false), 460);
        assert_eq!(b.schedule(0, false), 60 + 460);
        assert_eq!(b.schedule(0, false), 120 + 460);
    }

    #[test]
    fn demands_bypass_prefetch_backlog() {
        let mut b = bus();
        for _ in 0..10 {
            b.schedule(0, false);
        }
        // The demand track is empty: a demand at cycle 0 starts immediately.
        assert_eq!(b.schedule(0, true), 460);
    }

    #[test]
    fn demands_serialize_with_each_other() {
        let mut b = bus();
        assert_eq!(b.schedule(0, true), 460);
        assert_eq!(b.schedule(0, true), 60 + 460);
    }

    #[test]
    fn prefetches_queue_behind_demands() {
        let mut b = bus();
        b.schedule(0, true);
        b.schedule(0, true);
        assert_eq!(b.schedule(0, false), 120 + 460);
    }

    #[test]
    fn backlog_counts_unstarted_transfers() {
        let mut b = bus();
        assert_eq!(b.backlog_at(0), 0);
        for _ in 0..8 {
            b.schedule(0, false);
        }
        assert_eq!(b.backlog_at(0), 8);
        // Backlog drains over time.
        assert_eq!(b.backlog_at(240), 4);
        assert_eq!(b.backlog_at(10_000), 0);
    }

    #[test]
    fn spaced_transfers_do_not_interfere() {
        let mut b = bus();
        assert_eq!(b.schedule(0, true), 460);
        assert_eq!(b.schedule(1000, true), 1460);
    }

    #[test]
    fn queue_full_adds_wait() {
        let mut b = Bus::new(&BusConfig {
            latency: 100,
            cycles_per_line: 1,
            queue_size: 2,
        });
        let t0 = b.schedule(0, true);
        let _ = b.schedule(0, true);
        let t2 = b.schedule(0, true);
        assert!(t2 >= t0 + 100, "third transfer delayed: {t2}");
        assert_eq!(b.stats().queue_waits, 1);
    }

    #[test]
    fn idle_detection() {
        let mut b = bus();
        assert!(b.is_idle_at(0));
        b.schedule(0, false);
        assert!(!b.is_idle_at(30));
        assert!(b.is_idle_at(60));
    }

    #[test]
    fn outstanding_prunes_completed() {
        let mut b = bus();
        b.schedule(0, true);
        b.schedule(0, false);
        assert_eq!(b.outstanding_at(0), 2);
        assert_eq!(b.outstanding_at(10_000), 0);
    }

    #[test]
    fn peek_matches_schedule_without_mutating() {
        let mut b = bus();
        for _ in 0..5 {
            b.schedule(0, false);
        }
        let predicted = b.peek_schedule(100, true);
        let actual = b.schedule(100, true);
        assert_eq!(predicted, actual);
        // A second peek after the schedule sees the new demand-track state.
        assert!(b.peek_schedule(100, true) > predicted);
    }

    #[test]
    fn peek_is_pure() {
        let mut b = bus();
        b.schedule(0, false);
        let s1 = b.stats();
        let _ = b.peek_schedule(50, true);
        let _ = b.peek_schedule(50, false);
        assert_eq!(b.stats(), s1, "peeking never counts transfers");
    }

    /// Completion time respects minimum latency and demand completions
    /// are monotone for a time-sorted demand stream.
    #[test]
    fn prop_demand_completions_monotone() {
        let mut rng = Rng::seed_from_u64(0xb5b5_0001);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..100);
            let mut times: Vec<u64> = (0..n).map(|_| rng.next_u64() % 10_000).collect();
            times.sort_unstable();
            let mut b = bus();
            let mut last = 0;
            for t in times {
                let c = b.schedule(t, true);
                assert!(c >= last);
                assert!(c >= t + 460);
                last = c;
            }
        }
    }

    /// Busy cycles equal transfers x occupancy.
    #[test]
    fn prop_busy_accounting() {
        let mut rng = Rng::seed_from_u64(0xb5b5_0002);
        for _ in 0..32 {
            let n = rng.gen_range_usize(1..50);
            let mut b = bus();
            for i in 0..n {
                b.schedule(i as u64, i % 2 == 0);
            }
            assert_eq!(b.stats().busy_cycles, n as u64 * 60);
        }
    }

    /// A demand is never slower than the same demand on an idle bus
    /// plus the full outstanding-window wait.
    #[test]
    fn prop_demand_bounded_wait() {
        for prefetches in 0usize..64 {
            let mut b = bus();
            for _ in 0..prefetches {
                b.schedule(0, false);
            }
            let c = b.schedule(0, true);
            // Worst case: queue-full wait for the oldest completion.
            assert!(c <= 460 + 460 + 60 * 33);
        }
    }
}
