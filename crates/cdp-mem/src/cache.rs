//! Generic set-associative cache with true-LRU replacement.
//!
//! The cache is parameterized over a per-line metadata type `M` so the
//! unified L2 can store the content prefetcher's request-depth bits
//! ("a very small amount of space is allocated ... in the cache line to
//! maintain the depth of a reference", §3.4.2) while the L1 carries no
//! metadata. Lookups are by *line-aligned address* as a raw `u32`; the
//! paper's L1 is virtually indexed and the L2 physically indexed, so the
//! hierarchy layer decides which address space each cache sees.
//!
//! Storage is one contiguous set-major array: way `w` of set `s` lives at
//! slot `s * associativity + w`, and the occupied ways of a set are packed
//! at the front of its slot range (`0..len[s]`). A probe therefore walks
//! one short contiguous stretch of memory instead of chasing a per-set
//! `Vec` pointer, which matters because every simulated access — L1, L2,
//! and both TLBs — lands here.

use std::fmt;

/// Eviction preference of a line's metadata.
///
/// Victim selection evicts the highest [`EvictClass::evict_class`] in the
/// set first (LRU within a class). The blanket default (class 0) gives
/// plain LRU; the L2 uses it to make never-demanded prefetched lines
/// preferred victims, bounding the pollution a speculative prefetcher can
/// inflict on the demand working set.
pub trait EvictClass {
    /// Higher values are evicted first; ties fall back to LRU.
    fn evict_class(&self) -> u8 {
        0
    }
}

impl EvictClass for () {}
impl EvictClass for u8 {}
impl EvictClass for u32 {}
impl EvictClass for cdp_types::PhysAddr {}

/// One resident cache line.
#[derive(Clone, Debug)]
pub struct Entry<M> {
    /// The line-aligned address held by this way.
    pub line: u32,
    /// Per-line metadata (e.g. CDP request depth, prefetcher ownership).
    pub meta: M,
    stamp: u64,
}

/// A line pushed out by a fill.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictedLine<M> {
    /// The evicted line-aligned address.
    pub line: u32,
    /// Its metadata at eviction time.
    pub meta: M,
}

/// Outcome of [`Cache::access`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was resident.
    Hit,
    /// The line was absent.
    Miss,
}

/// A set-associative, true-LRU cache.
///
/// # Examples
///
/// ```
/// use cdp_mem::Cache;
///
/// // 4 sets x 2 ways of 64-byte lines, no metadata.
/// let mut cache: Cache<()> = Cache::new(4, 2, 64);
/// assert!(!cache.probe(0x1000));
/// cache.fill(0x1000, ());
/// assert!(cache.probe(0x1000));
/// ```
#[derive(Clone)]
pub struct Cache<M> {
    /// Set-major flat storage: `slots[set * associativity + way]`. The
    /// occupied ways of a set are packed at `0..lens[set]`; vacancy is
    /// `None`. Within a set, slot order reproduces the historical
    /// push/swap-remove order of the per-set `Vec` this replaced, so the
    /// Random policy's candidate indexing is bit-for-bit unchanged.
    slots: Vec<Option<Entry<M>>>,
    /// Occupied way count per set.
    lens: Vec<u32>,
    num_sets: usize,
    associativity: usize,
    line_size: usize,
    line_shift: u32,
    policy: cdp_types::ReplacementPolicy,
    rng: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<M: fmt::Debug> fmt::Debug for Cache<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("sets", &self.num_sets)
            .field("associativity", &self.associativity)
            .field("line_size", &self.line_size)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl<M: EvictClass> Cache<M> {
    /// Creates a cache with `num_sets` sets of `associativity` ways of
    /// `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is zero or `line_size` is not a power of two.
    pub fn new(num_sets: usize, associativity: usize, line_size: usize) -> Self {
        assert!(num_sets > 0, "cache must have at least one set");
        assert!(associativity > 0, "cache must have at least one way");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let mut slots = Vec::new();
        slots.resize_with(num_sets * associativity, || None);
        Cache {
            slots,
            lens: vec![0; num_sets],
            num_sets,
            associativity,
            line_size,
            line_shift: line_size.trailing_zeros(),
            policy: cdp_types::ReplacementPolicy::Lru,
            rng: 0x9e37_79b9_7f4a_7c15,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Sets the replacement policy (the eviction-class preference of
    /// [`EvictClass`] applies first under every policy).
    pub fn with_policy(mut self, policy: cdp_types::ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active replacement policy.
    pub fn policy(&self) -> cdp_types::ReplacementPolicy {
        self.policy
    }

    /// Creates a cache from a [`cdp_types::CacheConfig`].
    pub fn from_config(cfg: &cdp_types::CacheConfig) -> Self {
        Cache::new(cfg.num_sets(), cfg.associativity, cfg.line_size).with_policy(cfg.replacement)
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.num_sets * self.associativity
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// (hits, misses) counted by [`Cache::access`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Resets hit/miss counters (used at the warm-up boundary, §2.2).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    #[inline]
    fn set_index(&self, line: u32) -> usize {
        ((line >> self.line_shift) as usize) % self.num_sets
    }

    #[inline]
    fn align(&self, addr: u32) -> u32 {
        addr & !(self.line_size as u32 - 1)
    }

    /// Occupied slice of a set.
    #[inline]
    fn set(&self, set: usize) -> &[Option<Entry<M>>] {
        let base = set * self.associativity;
        &self.slots[base..base + self.lens[set] as usize]
    }

    /// Index into `slots` of `line` within `set`, if resident.
    #[inline]
    fn find(&self, set: usize, line: u32) -> Option<usize> {
        let base = set * self.associativity;
        self.set(set)
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.line == line))
            .map(|w| base + w)
    }

    /// Whether the line containing `addr` is resident. Does **not** update
    /// LRU state or statistics.
    pub fn probe(&self, addr: u32) -> bool {
        let line = self.align(addr);
        self.find(self.set_index(line), line).is_some()
    }

    /// Looks up the line containing `addr`, updating LRU and hit/miss
    /// statistics. On a hit, returns mutable access to the line metadata.
    pub fn access(&mut self, addr: u32) -> Option<&mut M> {
        let line = self.align(addr);
        let set = self.set_index(line);
        self.clock += 1;
        let clock = self.clock;
        let refresh = !matches!(self.policy, cdp_types::ReplacementPolicy::Fifo);
        match self.find(set, line) {
            Some(slot) => {
                self.hits += 1;
                let entry = self.slots[slot].as_mut().expect("occupied slot");
                if refresh {
                    entry.stamp = clock;
                }
                Some(&mut entry.meta)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Reads the metadata of a resident line without counting a hit or
    /// touching LRU (used by the reinforcement rescan logic, which inspects
    /// stored depths out of band).
    pub fn peek(&self, addr: u32) -> Option<&M> {
        let line = self.align(addr);
        let slot = self.find(self.set_index(line), line)?;
        self.slots[slot].as_ref().map(|e| &e.meta)
    }

    /// Mutable [`Cache::peek`].
    pub fn peek_mut(&mut self, addr: u32) -> Option<&mut M> {
        let line = self.align(addr);
        let slot = self.find(self.set_index(line), line)?;
        self.slots[slot].as_mut().map(|e| &mut e.meta)
    }

    /// Inserts the line containing `addr`, evicting the LRU way if the set
    /// is full. If the line is already resident its metadata is replaced
    /// in place (no eviction).
    pub fn fill(&mut self, addr: u32, meta: M) -> Option<EvictedLine<M>> {
        let line = self.align(addr);
        let set = self.set_index(line);
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.find(set, line) {
            let entry = self.slots[slot].as_mut().expect("occupied slot");
            entry.meta = meta;
            entry.stamp = clock;
            return None;
        }
        let evicted = if self.lens[set] as usize >= self.associativity {
            let way = match self.policy {
                // LRU and FIFO both evict the minimum stamp — they differ
                // in whether access() refreshed it.
                cdp_types::ReplacementPolicy::Lru | cdp_types::ReplacementPolicy::Fifo => self
                    .set(set)
                    .iter()
                    .enumerate()
                    .filter_map(|(w, e)| e.as_ref().map(|e| (w, e)))
                    .min_by_key(|(_, e)| (std::cmp::Reverse(e.meta.evict_class()), e.stamp))
                    .map(|(w, _)| w)
                    .expect("set is non-empty"),
                cdp_types::ReplacementPolicy::Random => {
                    // Deterministic xorshift; eviction-class preference
                    // still applies (random within the worst class). The
                    // k-th worst-class way in slot order is selected —
                    // identical to indexing the old candidate Vec, without
                    // materializing it.
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    let ways = self.set(set);
                    let worst = ways
                        .iter()
                        .filter_map(|e| e.as_ref().map(|e| e.meta.evict_class()))
                        .max()
                        .expect("set is non-empty");
                    let count = ways
                        .iter()
                        .filter(|e| e.as_ref().is_some_and(|e| e.meta.evict_class() == worst))
                        .count();
                    let pick = (self.rng as usize) % count;
                    ways.iter()
                        .enumerate()
                        .filter(|(_, e)| {
                            e.as_ref().is_some_and(|e| e.meta.evict_class() == worst)
                        })
                        .nth(pick)
                        .map(|(w, _)| w)
                        .expect("candidate index in range")
                }
            };
            let e = self.swap_remove(set, way);
            Some(EvictedLine {
                line: e.line,
                meta: e.meta,
            })
        } else {
            None
        };
        // Emulated push: append at the packed end of the set's slot range.
        let base = set * self.associativity;
        let len = self.lens[set] as usize;
        debug_assert!(self.slots[base + len].is_none());
        self.slots[base + len] = Some(Entry {
            line,
            meta,
            stamp: clock,
        });
        self.lens[set] += 1;
        evicted
    }

    /// Removes way `way` of `set`, moving the last occupied way into the
    /// hole — the same reordering `Vec::swap_remove` performed when each
    /// set was its own `Vec`.
    fn swap_remove(&mut self, set: usize, way: usize) -> Entry<M> {
        let base = set * self.associativity;
        let last = self.lens[set] as usize - 1;
        debug_assert!(way <= last);
        self.slots.swap(base + way, base + last);
        self.lens[set] -= 1;
        self.slots[base + last].take().expect("occupied slot")
    }

    /// Removes the line containing `addr`, returning its metadata.
    pub fn invalidate(&mut self, addr: u32) -> Option<M> {
        let line = self.align(addr);
        let set = self.set_index(line);
        let way = self.find(set, line)? - set * self.associativity;
        Some(self.swap_remove(set, way).meta)
    }

    /// Empties the cache (statistics are preserved).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        for len in &mut self.lens {
            *len = 0;
        }
    }

    /// Iterates over resident lines (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &M)> {
        self.slots
            .iter()
            .filter_map(|e| e.as_ref().map(|e| (&e.line, &e.meta)))
    }

    /// Serializes the cache's complete state — slot layout (way order
    /// included, so Random/LRU victim streams continue bit-identically),
    /// LRU stamps, clock, xorshift word, and hit/miss counters. `meta`
    /// encodes the per-line metadata.
    pub fn save_state(
        &self,
        enc: &mut cdp_snap::Enc,
        mut meta: impl FnMut(&M, &mut cdp_snap::Enc),
    ) {
        enc.u64(self.rng);
        enc.u64(self.clock);
        enc.u64(self.hits);
        enc.u64(self.misses);
        enc.seq_len(self.num_sets);
        for set in 0..self.num_sets {
            let len = self.lens[set] as usize;
            enc.u32(self.lens[set]);
            let base = set * self.associativity;
            for e in &self.slots[base..base + len] {
                let e = e.as_ref().expect("packed slot");
                enc.u32(e.line);
                enc.u64(e.stamp);
                meta(&e.meta, enc);
            }
        }
    }

    /// Restores state written by [`Cache::save_state`] into a cache of
    /// identical geometry (typically freshly built from the same config).
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] when the stream is
    /// truncated or structurally impossible for this geometry.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
        mut meta: impl FnMut(&mut cdp_snap::Dec<'_>) -> Result<M, cdp_types::SnapshotError>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.rng = dec.u64("cache rng")?;
        self.clock = dec.u64("cache clock")?;
        self.hits = dec.u64("cache hits")?;
        self.misses = dec.u64("cache misses")?;
        let sets = dec.seq_len(4, "cache set count")?;
        if sets != self.num_sets {
            return Err(SnapshotError::Corrupt {
                context: "cache set count",
            });
        }
        self.clear();
        for set in 0..self.num_sets {
            let len = dec.u32("cache set occupancy")? as usize;
            if len > self.associativity {
                return Err(SnapshotError::Corrupt {
                    context: "cache set occupancy",
                });
            }
            let base = set * self.associativity;
            for w in 0..len {
                let line = dec.u32("cache line")?;
                let stamp = dec.u64("cache stamp")?;
                let m = meta(dec)?;
                self.slots[base + w] = Some(Entry {
                    line,
                    meta: m,
                    stamp,
                });
            }
            self.lens[set] = len as u32;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;

    fn small() -> Cache<u8> {
        Cache::new(2, 2, 64)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(c.access(0x100).is_none());
        assert_eq!(c.fill(0x100, 7), None);
        assert_eq!(c.access(0x13f).copied(), Some(7), "same line, other byte");
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines with (line >> 6) % 2 == 0: 0x000, 0x080, 0x100.
        c.fill(0x000, 1);
        c.fill(0x080, 2);
        c.access(0x000); // make 0x000 MRU
        let ev = c.fill(0x100, 3).expect("set full, must evict");
        assert_eq!(ev.line, 0x080);
        assert!(c.probe(0x000));
        assert!(c.probe(0x100));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn fill_present_line_updates_meta_without_evicting() {
        let mut c = small();
        c.fill(0x000, 1);
        c.fill(0x080, 2);
        assert_eq!(c.fill(0x000, 9), None);
        assert_eq!(c.peek(0x000).copied(), Some(9));
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_stats() {
        let mut c = small();
        c.fill(0x000, 1);
        c.fill(0x080, 2);
        // Peek at 0x000 — should NOT protect it.
        assert_eq!(c.peek(0x000).copied(), Some(1));
        c.access(0x080);
        let ev = c.fill(0x100, 3).unwrap();
        assert_eq!(ev.line, 0x000, "peek must not refresh LRU");
        assert_eq!(c.stats(), (1, 0), "peek must not count");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(0x040, 5);
        assert_eq!(c.invalidate(0x040), Some(5));
        assert_eq!(c.invalidate(0x040), None);
        assert!(!c.probe(0x040));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        c.fill(0x000, 1); // set 0
        c.fill(0x040, 2); // set 1
        c.fill(0x080, 3); // set 0
        c.fill(0x0c0, 4); // set 1
        assert_eq!(c.resident_lines(), 4);
        // Filling more set-0 lines never evicts set-1 lines.
        c.fill(0x100, 5);
        assert!(c.probe(0x040));
        assert!(c.probe(0x0c0));
    }

    #[test]
    fn from_config_geometry() {
        let cfg = cdp_types::CacheConfig::l1d_asplos2002();
        let c: Cache<()> = Cache::from_config(&cfg);
        assert_eq!(c.capacity_lines(), 512);
    }

    #[test]
    fn seven_way_associativity_works() {
        // The Markov 1/8 configuration uses an 896 KB 7-way UL2.
        let mut c: Cache<()> = Cache::new(2048, 7, 64);
        for i in 0..7u32 {
            c.fill(i * 2048 * 64, ());
        }
        assert_eq!(c.resident_lines(), 7);
        assert!(c.fill(7 * 2048 * 64, ()).is_some());
    }

    #[test]
    fn fifo_ignores_hits_when_choosing_victims() {
        use cdp_types::ReplacementPolicy;
        let mut c: Cache<u8> = Cache::new(2, 2, 64).with_policy(ReplacementPolicy::Fifo);
        c.fill(0x000, 1);
        c.fill(0x080, 2);
        // Touch the older line: under LRU this would protect it; FIFO
        // evicts by insertion order regardless.
        c.access(0x000);
        let ev = c.fill(0x100, 3).expect("set full");
        assert_eq!(ev.line, 0x000, "FIFO evicts first-inserted");
    }

    #[test]
    fn random_policy_is_deterministic_and_in_set() {
        use cdp_types::ReplacementPolicy;
        let run = || {
            let mut c: Cache<()> = Cache::new(2, 2, 64).with_policy(ReplacementPolicy::Random);
            let mut evs = Vec::new();
            for i in 0..20u32 {
                if let Some(e) = c.fill(i * 128, ()) {
                    evs.push(e.line);
                }
            }
            evs
        };
        let a = run();
        assert_eq!(a, run(), "seeded xorshift is reproducible");
        assert!(!a.is_empty());
        for l in a {
            assert_eq!((l >> 6) % 2, 0, "victims come from the filled set");
        }
    }

    #[test]
    fn clear_keeps_stats() {
        let mut c = small();
        c.fill(0x40, 1);
        c.access(0x40);
        c.clear();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats(), (1, 0));
    }

    /// Residency never exceeds capacity and a just-filled line is always
    /// resident.
    #[test]
    fn prop_capacity_and_residency() {
        let mut rng = Rng::seed_from_u64(0xcac4_0001);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..200);
            let mut c: Cache<u32> = Cache::new(4, 2, 64);
            for i in 0..n {
                let a = rng.gen_range_u32(0..0x4000);
                c.fill(a, i as u32);
                assert!(c.probe(a));
                assert!(c.resident_lines() <= c.capacity_lines());
            }
        }
    }

    /// access() and probe() agree on residency.
    #[test]
    fn prop_access_probe_agree() {
        let mut rng = Rng::seed_from_u64(0xcac4_0002);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..100);
            let mut c: Cache<()> = Cache::new(2, 4, 64);
            for _ in 0..n {
                let a = rng.gen_range_u32(0..0x2000);
                let resident = c.probe(a);
                let hit = c.access(a).is_some();
                assert_eq!(resident, hit);
                if !hit {
                    c.fill(a, ());
                }
            }
            let (h, m) = c.stats();
            assert_eq!(h + m, n as u64);
        }
    }

    /// An evicted line comes from the same set as the fill that evicted
    /// it.
    #[test]
    fn prop_eviction_same_set() {
        let mut rng = Rng::seed_from_u64(0xcac4_0003);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..300);
            let num_sets = 4usize;
            let mut c: Cache<()> = Cache::new(num_sets, 2, 64);
            for _ in 0..n {
                let a = rng.gen_range_u32(0..0x8000);
                if let Some(ev) = c.fill(a, ()) {
                    assert_eq!(
                        (ev.line >> 6) as usize % num_sets,
                        (a >> 6) as usize % num_sets
                    );
                }
            }
        }
    }

    /// Packed occupancy invariant: occupied ways are contiguous from way 0.
    #[test]
    fn prop_packed_occupancy() {
        let mut rng = Rng::seed_from_u64(0xcac4_0004);
        let mut c: Cache<u8> = Cache::new(4, 4, 64);
        for _ in 0..2000 {
            let a = rng.gen_range_u32(0..0x8000);
            match rng.gen_range_u8(0..3) {
                0 => {
                    c.fill(a, rng.gen_range_u8(0..4));
                }
                1 => {
                    c.access(a);
                }
                _ => {
                    c.invalidate(a);
                }
            }
            for set in 0..4 {
                let base = set * c.associativity;
                let len = c.lens[set] as usize;
                for w in 0..c.associativity {
                    assert_eq!(c.slots[base + w].is_some(), w < len);
                }
            }
        }
    }
}
