//! Miss-status holding registers: in-flight fill tracking.
//!
//! Two behaviors from §3.5 live here:
//!
//! * "Before any prefetch request is enqueued to the memory system, both L2
//!   and bus arbiters are checked to see if a matching memory transaction is
//!   currently in-flight. If such a transaction is found, the prefetch
//!   request is dropped" — [`MshrFile::lookup`] gives the hierarchy that
//!   check.
//! * "In the event that a demand load encounters an in-flight prefetch
//!   memory transaction for the same cache line address, the prefetch
//!   request is promoted to the priority and depth of the demand request"
//!   — [`MshrFile::promote`]. A promoted prefetch also counts as a
//!   *partial* latency mask for the timeliness accounting of Figure 10.

use std::collections::HashMap;

use cdp_types::{LineAddr, RequestKind, VirtAddr};

/// An outstanding fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlight {
    /// Physical line being fetched.
    pub line: LineAddr,
    /// Virtual base of the same line (needed so the content prefetcher can
    /// scan the fill against virtual candidate addresses).
    pub vline: VirtAddr,
    /// Current request kind — may be promoted while in flight.
    pub kind: RequestKind,
    /// Whether this fill is a width-expansion prefetch (§3.4.3).
    pub width: bool,
    /// Cycle at which the fill data arrives.
    pub complete_at: u64,
    /// Cycle at which the request entered the memory system.
    pub issued_at: u64,
}

/// Lifetime counters for MSHR traffic, separating "a request merged into
/// an in-flight fill" (the §3.5 promotion path, a *partial* latency mask)
/// from plain inserts. The hierarchy's `DropCounters` record *why* a
/// prefetch died; these record what the MSHR file itself did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Fills registered.
    pub inserts: u64,
    /// Merges into an in-flight fill (`promote` found an entry).
    pub merges: u64,
    /// Merges that actually raised the in-flight request's priority.
    pub priority_raises: u64,
    /// Completion times moved earlier by demand promotion.
    pub expedites: u64,
}

/// The in-flight table.
///
/// # Examples
///
/// ```
/// use cdp_mem::MshrFile;
/// use cdp_types::{LineAddr, RequestKind, VirtAddr};
///
/// let mut mshrs = MshrFile::new();
/// mshrs.insert(LineAddr(0x40), VirtAddr(0x1000_0040),
///              RequestKind::Content { depth: 1 }, 0, 460);
/// assert!(mshrs.lookup(LineAddr(0x40)).is_some());
/// // A demand arrives for the same line: promote rather than re-request.
/// assert!(mshrs.promote(LineAddr(0x40), RequestKind::Demand));
/// assert_eq!(mshrs.lookup(LineAddr(0x40)).unwrap().kind, RequestKind::Demand);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MshrFile {
    inflight: HashMap<u32, InFlight>,
    stats: MshrStats,
}

impl MshrFile {
    /// Creates an empty MSHR file.
    pub fn new() -> Self {
        MshrFile::default()
    }

    /// Number of outstanding fills.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// The in-flight fill for `line`, if any.
    pub fn lookup(&self, line: LineAddr) -> Option<&InFlight> {
        self.inflight.get(&line.0)
    }

    /// Registers an outstanding fill.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a fill for the line is already outstanding —
    /// callers must check [`MshrFile::lookup`] first, mirroring the paper's
    /// duplicate suppression.
    pub fn insert(
        &mut self,
        line: LineAddr,
        vline: VirtAddr,
        kind: RequestKind,
        issued_at: u64,
        complete_at: u64,
    ) {
        self.insert_width(line, vline, kind, issued_at, complete_at, false)
    }

    /// [`MshrFile::insert`] with the width-expansion flag.
    pub fn insert_width(
        &mut self,
        line: LineAddr,
        vline: VirtAddr,
        kind: RequestKind,
        issued_at: u64,
        complete_at: u64,
        width: bool,
    ) {
        let prev = self.inflight.insert(
            line.0,
            InFlight {
                line,
                vline,
                kind,
                width,
                complete_at,
                issued_at,
            },
        );
        debug_assert!(prev.is_none(), "duplicate in-flight fill for {line}");
        self.stats.inserts += 1;
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// Promotes an in-flight fill to (at least) the priority and depth of
    /// `kind`. Returns `false` if no fill is outstanding for `line`.
    pub fn promote(&mut self, line: LineAddr, kind: RequestKind) -> bool {
        match self.inflight.get_mut(&line.0) {
            Some(f) => {
                self.stats.merges += 1;
                if kind.priority() > f.kind.priority() {
                    f.kind = kind;
                    self.stats.priority_raises += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Moves a fill's completion earlier (demand promotion re-arbitrates a
    /// backlogged prefetch at demand priority). Later completion times are
    /// ignored — promotion never delays a fill.
    pub fn expedite(&mut self, line: LineAddr, new_complete_at: u64) -> bool {
        match self.inflight.get_mut(&line.0) {
            Some(f) => {
                if new_complete_at < f.complete_at {
                    f.complete_at = new_complete_at;
                    self.stats.expedites += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Removes and returns every fill complete by cycle `now`, ordered by
    /// completion time (ties broken by line address for determinism).
    pub fn drain_complete(&mut self, now: u64) -> Vec<InFlight> {
        let mut done: Vec<InFlight> = self
            .inflight
            .values()
            .filter(|f| f.complete_at <= now)
            .copied()
            .collect();
        done.sort_by_key(|f| (f.complete_at, f.line.0));
        for f in &done {
            self.inflight.remove(&f.line.0);
        }
        done
    }

    /// The earliest outstanding completion time, if any.
    pub fn next_completion(&self) -> Option<u64> {
        self.inflight.values().map(|f| f.complete_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fly(mshrs: &mut MshrFile, line: u32, kind: RequestKind, done: u64) {
        mshrs.insert(LineAddr(line), VirtAddr(line), kind, 0, done);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut m = MshrFile::new();
        assert!(m.lookup(LineAddr(0x40)).is_none());
        fly(&mut m, 0x40, RequestKind::Stride, 100);
        let f = m.lookup(LineAddr(0x40)).unwrap();
        assert_eq!(f.kind, RequestKind::Stride);
        assert_eq!(f.complete_at, 100);
    }

    #[test]
    fn promote_raises_but_never_lowers() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Content { depth: 3 }, 100);
        assert!(m.promote(LineAddr(0x40), RequestKind::Demand));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().kind, RequestKind::Demand);
        // Promoting with something weaker is a no-op.
        assert!(m.promote(LineAddr(0x40), RequestKind::Content { depth: 1 }));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().kind, RequestKind::Demand);
        assert!(!m.promote(LineAddr(0x80), RequestKind::Demand));
    }

    #[test]
    fn drain_returns_in_completion_order() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x100, RequestKind::Demand, 300);
        fly(&mut m, 0x40, RequestKind::Stride, 100);
        fly(&mut m, 0x80, RequestKind::Demand, 200);
        fly(&mut m, 0xc0, RequestKind::Demand, 999);
        let done = m.drain_complete(300);
        let lines: Vec<u32> = done.iter().map(|f| f.line.0).collect();
        assert_eq!(lines, vec![0x40, 0x80, 0x100]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.next_completion(), Some(999));
    }

    #[test]
    fn drain_empty_when_nothing_due() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Demand, 500);
        assert!(m.drain_complete(499).is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn stats_separate_merges_from_inserts() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Content { depth: 2 }, 100);
        fly(&mut m, 0x80, RequestKind::Stride, 200);
        assert_eq!(m.stats().inserts, 2);
        assert_eq!(m.stats().merges, 0);

        // A prefetch hitting an in-flight line is an MSHR merge (the
        // hierarchy counts it under drops.in_flight); a prefetch hitting a
        // *resident* line never reaches the MSHR file at all, so nothing
        // here moves for that case.
        assert!(m.promote(LineAddr(0x40), RequestKind::Content { depth: 1 }));
        assert_eq!(m.stats().merges, 1);
        // depth 1 outranks depth 2 (priority 100 - depth), so it raises.
        assert_eq!(m.stats().priority_raises, 1);

        // A demand merge on the same line raises again …
        assert!(m.promote(LineAddr(0x40), RequestKind::Demand));
        assert_eq!(m.stats().merges, 2);
        assert_eq!(m.stats().priority_raises, 2);
        // … but a weaker merge counts as a merge without a raise.
        assert!(m.promote(LineAddr(0x40), RequestKind::Markov));
        assert_eq!(m.stats().merges, 3);
        assert_eq!(m.stats().priority_raises, 2);

        // Missing line: not a merge.
        assert!(!m.promote(LineAddr(0xc0), RequestKind::Demand));
        assert_eq!(m.stats().merges, 3);
    }

    #[test]
    fn stats_count_effective_expedites_only() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Content { depth: 1 }, 500);
        assert!(m.expedite(LineAddr(0x40), 300));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().complete_at, 300);
        // Later completion is ignored and not counted.
        assert!(m.expedite(LineAddr(0x40), 400));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().complete_at, 300);
        assert_eq!(m.stats().expedites, 1);
        assert!(!m.expedite(LineAddr(0x80), 100));
    }
}
