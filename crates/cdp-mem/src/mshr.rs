//! Miss-status holding registers: in-flight fill tracking.
//!
//! Two behaviors from §3.5 live here:
//!
//! * "Before any prefetch request is enqueued to the memory system, both L2
//!   and bus arbiters are checked to see if a matching memory transaction is
//!   currently in-flight. If such a transaction is found, the prefetch
//!   request is dropped" — [`MshrFile::lookup`] gives the hierarchy that
//!   check.
//! * "In the event that a demand load encounters an in-flight prefetch
//!   memory transaction for the same cache line address, the prefetch
//!   request is promoted to the priority and depth of the demand request"
//!   — [`MshrFile::promote`]. A promoted prefetch also counts as a
//!   *partial* latency mask for the timeliness accounting of Figure 10.
//!
//! The table is a small open-addressed, linear-probe array (fibonacci
//! hashing, power-of-two capacity) sized from the configured MSHR count —
//! a hardware MSHR file holds a handful of entries, so a flat array probed
//! in cache order beats a `HashMap` that hashes and chases buckets on
//! every lookup. Removal uses backward-shift deletion, keeping probing
//! tombstone-free.

use cdp_types::{LineAddr, RequestKind, VirtAddr};

/// An outstanding fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlight {
    /// Physical line being fetched.
    pub line: LineAddr,
    /// Virtual base of the same line (needed so the content prefetcher can
    /// scan the fill against virtual candidate addresses).
    pub vline: VirtAddr,
    /// Current request kind — may be promoted while in flight.
    pub kind: RequestKind,
    /// Whether this fill is a width-expansion prefetch (§3.4.3).
    pub width: bool,
    /// Cycle at which the fill data arrives.
    pub complete_at: u64,
    /// Cycle at which the request entered the memory system.
    pub issued_at: u64,
}

/// Lifetime counters for MSHR traffic, separating "a request merged into
/// an in-flight fill" (the §3.5 promotion path, a *partial* latency mask)
/// from plain inserts. The hierarchy's `DropCounters` record *why* a
/// prefetch died; these record what the MSHR file itself did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Fills registered.
    pub inserts: u64,
    /// Merges into an in-flight fill (`promote` found an entry).
    pub merges: u64,
    /// Merges that actually raised the in-flight request's priority.
    pub priority_raises: u64,
    /// Completion times moved earlier by demand promotion.
    pub expedites: u64,
}

/// Fibonacci multiplier (2^64 / golden ratio).
const HASH_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// Default slot count for [`MshrFile::new`]; callers that know the
/// configured MSHR count should use [`MshrFile::with_capacity`].
const DEFAULT_SLOTS: usize = 64;

/// The in-flight table.
///
/// # Examples
///
/// ```
/// use cdp_mem::MshrFile;
/// use cdp_types::{LineAddr, RequestKind, VirtAddr};
///
/// let mut mshrs = MshrFile::new();
/// mshrs.insert(LineAddr(0x40), VirtAddr(0x1000_0040),
///              RequestKind::Content { depth: 1 }, 0, 460);
/// assert!(mshrs.lookup(LineAddr(0x40)).is_some());
/// // A demand arrives for the same line: promote rather than re-request.
/// assert!(mshrs.promote(LineAddr(0x40), RequestKind::Demand));
/// assert_eq!(mshrs.lookup(LineAddr(0x40)).unwrap().kind, RequestKind::Demand);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    /// Power-of-two linear-probe array; `None` is vacancy.
    slots: Vec<Option<InFlight>>,
    len: usize,
    /// Lower bound on the earliest outstanding completion ([`u64::MAX`]
    /// when none). Drains are called once per demand access; this lets
    /// them return without touching the slot array while every fill is
    /// still in flight. Removals may leave it stale-low, which only
    /// costs a wasted scan, never a missed completion.
    earliest: u64,
    stats: MshrStats,
}

impl Default for MshrFile {
    fn default() -> Self {
        MshrFile::new()
    }
}

impl MshrFile {
    /// Creates an empty MSHR file with the default capacity.
    pub fn new() -> Self {
        MshrFile::with_capacity(DEFAULT_SLOTS / 2)
    }

    /// Creates an empty MSHR file sized for `entries` outstanding fills.
    /// The slot array keeps 2x headroom (demand misses are admitted past
    /// the prefetch queue bound) and grows if even that is exceeded.
    pub fn with_capacity(entries: usize) -> Self {
        let slots = (entries.max(1) * 2).next_power_of_two();
        MshrFile {
            slots: vec![None; slots],
            len: 0,
            earliest: u64::MAX,
            stats: MshrStats::default(),
        }
    }

    /// Number of outstanding fills.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn probe_start(&self, line: u32) -> usize {
        let shift = 64 - self.slots.len().trailing_zeros();
        ((line as u64).wrapping_mul(HASH_MUL) >> shift) as usize
    }

    /// Slot index of `line`, if in flight.
    #[inline]
    fn slot_of(&self, line: u32) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(line);
        loop {
            match &self.slots[i] {
                Some(f) if f.line.0 == line => return Some(i),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// The in-flight fill for `line`, if any.
    pub fn lookup(&self, line: LineAddr) -> Option<&InFlight> {
        self.slot_of(line.0)
            .map(|i| self.slots[i].as_ref().expect("occupied slot"))
    }

    /// Doubles the slot array and reinserts every fill (safety valve — the
    /// construction-time capacity normally suffices).
    fn grow(&mut self) {
        let old = std::mem::take(&mut self.slots);
        self.slots = vec![None; old.len() * 2];
        let mask = self.slots.len() - 1;
        for f in old.into_iter().flatten() {
            let mut i = self.probe_start(f.line.0);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(f);
        }
    }

    /// Registers an outstanding fill.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a fill for the line is already outstanding —
    /// callers must check [`MshrFile::lookup`] first, mirroring the paper's
    /// duplicate suppression.
    pub fn insert(
        &mut self,
        line: LineAddr,
        vline: VirtAddr,
        kind: RequestKind,
        issued_at: u64,
        complete_at: u64,
    ) {
        self.insert_width(line, vline, kind, issued_at, complete_at, false)
    }

    /// [`MshrFile::insert`] with the width-expansion flag.
    pub fn insert_width(
        &mut self,
        line: LineAddr,
        vline: VirtAddr,
        kind: RequestKind,
        issued_at: u64,
        complete_at: u64,
        width: bool,
    ) {
        debug_assert!(
            self.slot_of(line.0).is_none(),
            "duplicate in-flight fill for {line}"
        );
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(line.0);
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some(InFlight {
            line,
            vline,
            kind,
            width,
            complete_at,
            issued_at,
        });
        self.len += 1;
        self.earliest = self.earliest.min(complete_at);
        self.stats.inserts += 1;
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// Records the current outstanding-fill count into an occupancy
    /// histogram. Called at each insert so the distribution weights
    /// occupancy by allocation events, matching how MSHR pressure is
    /// felt (a full file stalls the *next* request, not time itself).
    #[inline]
    pub fn record_occupancy(&self, hist: &mut cdp_obs::Hist) {
        hist.record(self.len as u64);
    }

    /// Promotes an in-flight fill to (at least) the priority and depth of
    /// `kind`. Returns `false` if no fill is outstanding for `line`.
    pub fn promote(&mut self, line: LineAddr, kind: RequestKind) -> bool {
        match self.slot_of(line.0) {
            Some(i) => {
                let f = self.slots[i].as_mut().expect("occupied slot");
                self.stats.merges += 1;
                if kind.priority() > f.kind.priority() {
                    f.kind = kind;
                    self.stats.priority_raises += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Moves a fill's completion earlier (demand promotion re-arbitrates a
    /// backlogged prefetch at demand priority). Later completion times are
    /// ignored — promotion never delays a fill.
    pub fn expedite(&mut self, line: LineAddr, new_complete_at: u64) -> bool {
        match self.slot_of(line.0) {
            Some(i) => {
                let f = self.slots[i].as_mut().expect("occupied slot");
                if new_complete_at < f.complete_at {
                    f.complete_at = new_complete_at;
                    self.earliest = self.earliest.min(new_complete_at);
                    self.stats.expedites += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Removes the fill in `slot`, backward-shifting the probe chain so
    /// later lookups never cross a tombstone.
    fn remove_slot(&mut self, mut hole: usize) {
        self.slots[hole] = None;
        self.len -= 1;
        let mask = self.slots.len() - 1;
        let mut j = (hole + 1) & mask;
        while let Some(f) = self.slots[j] {
            let home = self.probe_start(f.line.0);
            // Shift back iff the hole sits within f's probe chain, i.e.
            // home..=j (cyclically) covers the hole.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = Some(f);
                self.slots[j] = None;
                hole = j;
            }
            j = (j + 1) & mask;
        }
    }

    /// Removes every fill complete by cycle `now` into `out` (which is
    /// cleared first), ordered by completion time (ties broken by line
    /// address for determinism). The caller owns the buffer, so steady-state
    /// draining performs no allocation.
    pub fn drain_complete_into(&mut self, now: u64, out: &mut Vec<InFlight>) {
        out.clear();
        if self.len == 0 || now < self.earliest {
            return;
        }
        let mut remaining_min = u64::MAX;
        for f in self.slots.iter().flatten() {
            if f.complete_at <= now {
                out.push(*f);
            } else if f.complete_at < remaining_min {
                remaining_min = f.complete_at;
            }
        }
        self.earliest = remaining_min;
        out.sort_by_key(|f| (f.complete_at, f.line.0));
        for f in out.iter() {
            let slot = self.slot_of(f.line.0).expect("drained fill is resident");
            self.remove_slot(slot);
        }
    }

    /// Allocating wrapper over [`MshrFile::drain_complete_into`] (tests and
    /// tools; the hierarchy reuses a buffer).
    pub fn drain_complete(&mut self, now: u64) -> Vec<InFlight> {
        let mut out = Vec::new();
        self.drain_complete_into(now, &mut out);
        out
    }

    /// The earliest outstanding completion time, if any.
    pub fn next_completion(&self) -> Option<u64> {
        self.slots
            .iter()
            .flatten()
            .map(|f| f.complete_at)
            .min()
    }

    /// Serializes the complete table state. The slot array is written
    /// verbatim (layout included) so restored probe chains — and
    /// therefore every later insert — behave bit-identically.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.usize(self.slots.len());
        enc.u64(self.earliest);
        enc.u64(self.stats.inserts);
        enc.u64(self.stats.merges);
        enc.u64(self.stats.priority_raises);
        enc.u64(self.stats.expedites);
        for slot in &self.slots {
            match slot {
                None => enc.bool(false),
                Some(f) => {
                    enc.bool(true);
                    enc.u32(f.line.0);
                    enc.u32(f.vline.0);
                    save_request_kind(f.kind, enc);
                    enc.bool(f.width);
                    enc.u64(f.complete_at);
                    enc.u64(f.issued_at);
                }
            }
        }
    }

    /// Restores state written by [`MshrFile::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or a
    /// structurally impossible table.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        let slots = dec.usize("mshr slot count")?;
        // The run may have grown the table past its construction size;
        // accept any power-of-two count the stream can actually back.
        if !slots.is_power_of_two() || slots > dec.remaining() {
            return Err(SnapshotError::Corrupt {
                context: "mshr slot count",
            });
        }
        self.earliest = dec.u64("mshr earliest")?;
        self.stats = MshrStats {
            inserts: dec.u64("mshr inserts")?,
            merges: dec.u64("mshr merges")?,
            priority_raises: dec.u64("mshr priority raises")?,
            expedites: dec.u64("mshr expedites")?,
        };
        self.slots = vec![None; slots];
        self.len = 0;
        for i in 0..slots {
            if dec.bool("mshr slot occupancy")? {
                let line = LineAddr(dec.u32("mshr line")?);
                let vline = VirtAddr(dec.u32("mshr vline")?);
                let kind = load_request_kind(dec)?;
                let width = dec.bool("mshr width flag")?;
                let complete_at = dec.u64("mshr complete_at")?;
                let issued_at = dec.u64("mshr issued_at")?;
                self.slots[i] = Some(InFlight {
                    line,
                    vline,
                    kind,
                    width,
                    complete_at,
                    issued_at,
                });
                self.len += 1;
            }
        }
        Ok(())
    }
}

/// Encodes a [`RequestKind`] as a tag byte plus depth.
pub(crate) fn save_request_kind(kind: RequestKind, enc: &mut cdp_snap::Enc) {
    let (tag, depth) = match kind {
        RequestKind::Demand => (0u8, 0u8),
        RequestKind::PageWalk => (1, 0),
        RequestKind::Stride => (2, 0),
        RequestKind::Content { depth } => (3, depth),
        RequestKind::Markov => (4, 0),
        RequestKind::Delta => (5, 0),
        RequestKind::Jump => (6, 0),
    };
    enc.u8(tag);
    enc.u8(depth);
}

/// Decodes a [`RequestKind`] written by [`save_request_kind`].
pub(crate) fn load_request_kind(
    dec: &mut cdp_snap::Dec<'_>,
) -> Result<RequestKind, cdp_types::SnapshotError> {
    let tag = dec.u8("request kind tag")?;
    let depth = dec.u8("request kind depth")?;
    Ok(match tag {
        0 => RequestKind::Demand,
        1 => RequestKind::PageWalk,
        2 => RequestKind::Stride,
        3 => RequestKind::Content { depth },
        4 => RequestKind::Markov,
        5 => RequestKind::Delta,
        6 => RequestKind::Jump,
        _ => {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "request kind tag",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fly(mshrs: &mut MshrFile, line: u32, kind: RequestKind, done: u64) {
        mshrs.insert(LineAddr(line), VirtAddr(line), kind, 0, done);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut m = MshrFile::new();
        assert!(m.lookup(LineAddr(0x40)).is_none());
        fly(&mut m, 0x40, RequestKind::Stride, 100);
        let f = m.lookup(LineAddr(0x40)).unwrap();
        assert_eq!(f.kind, RequestKind::Stride);
        assert_eq!(f.complete_at, 100);
    }

    #[test]
    fn promote_raises_but_never_lowers() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Content { depth: 3 }, 100);
        assert!(m.promote(LineAddr(0x40), RequestKind::Demand));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().kind, RequestKind::Demand);
        // Promoting with something weaker is a no-op.
        assert!(m.promote(LineAddr(0x40), RequestKind::Content { depth: 1 }));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().kind, RequestKind::Demand);
        assert!(!m.promote(LineAddr(0x80), RequestKind::Demand));
    }

    #[test]
    fn drain_returns_in_completion_order() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x100, RequestKind::Demand, 300);
        fly(&mut m, 0x40, RequestKind::Stride, 100);
        fly(&mut m, 0x80, RequestKind::Demand, 200);
        fly(&mut m, 0xc0, RequestKind::Demand, 999);
        let done = m.drain_complete(300);
        let lines: Vec<u32> = done.iter().map(|f| f.line.0).collect();
        assert_eq!(lines, vec![0x40, 0x80, 0x100]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.next_completion(), Some(999));
    }

    #[test]
    fn drain_empty_when_nothing_due() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Demand, 500);
        assert!(m.drain_complete(499).is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_into_reuses_buffer() {
        let mut m = MshrFile::with_capacity(4);
        let mut buf = Vec::new();
        fly(&mut m, 0x40, RequestKind::Demand, 10);
        m.drain_complete_into(10, &mut buf);
        assert_eq!(buf.len(), 1);
        // Stale contents are cleared on the next drain.
        m.drain_complete_into(10, &mut buf);
        assert!(buf.is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn grows_past_construction_capacity() {
        let mut m = MshrFile::with_capacity(2);
        for i in 0..64u32 {
            fly(&mut m, i * 0x40, RequestKind::Demand, 100 + i as u64);
        }
        assert_eq!(m.len(), 64);
        for i in 0..64u32 {
            assert!(m.lookup(LineAddr(i * 0x40)).is_some());
        }
        let done = m.drain_complete(200);
        assert_eq!(done.len(), 64);
        assert!(m.is_empty());
    }

    /// Interleaved inserts and removals keep every remaining entry
    /// findable (backward-shift deletion correctness).
    #[test]
    fn prop_backward_shift_keeps_chains_intact() {
        use cdp_types::rng::Rng;
        let mut rng = Rng::seed_from_u64(0x5a5a_0001);
        let mut m = MshrFile::with_capacity(8);
        let mut reference: std::collections::BTreeMap<u32, u64> = Default::default();
        let mut tick = 0u64;
        for step in 0..4000u64 {
            let line = rng.gen_range_u32(0..64) * 0x40;
            match reference.entry(line) {
                // Already in flight: promote instead of duplicate-insert.
                std::collections::btree_map::Entry::Occupied(_) => {
                    assert!(m.promote(LineAddr(line), RequestKind::Demand));
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    tick += 1 + rng.gen_range_u32(0..5) as u64;
                    m.insert(
                        LineAddr(line),
                        VirtAddr(line),
                        RequestKind::Stride,
                        step,
                        tick,
                    );
                    v.insert(tick);
                }
            }
            if rng.gen_range_u8(0..4) == 0 {
                let now = tick.saturating_sub(rng.gen_range_u32(0..8) as u64);
                let drained = m.drain_complete(now);
                for f in &drained {
                    assert_eq!(reference.remove(&f.line.0), Some(f.complete_at));
                }
            }
            assert_eq!(m.len(), reference.len());
            for (&line, &done) in &reference {
                let f = m.lookup(LineAddr(line)).expect("entry findable");
                assert_eq!(f.complete_at, done);
            }
        }
    }

    #[test]
    fn stats_separate_merges_from_inserts() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Content { depth: 2 }, 100);
        fly(&mut m, 0x80, RequestKind::Stride, 200);
        assert_eq!(m.stats().inserts, 2);
        assert_eq!(m.stats().merges, 0);

        // A prefetch hitting an in-flight line is an MSHR merge (the
        // hierarchy counts it under drops.in_flight); a prefetch hitting a
        // *resident* line never reaches the MSHR file at all, so nothing
        // here moves for that case.
        assert!(m.promote(LineAddr(0x40), RequestKind::Content { depth: 1 }));
        assert_eq!(m.stats().merges, 1);
        // depth 1 outranks depth 2 (priority 100 - depth), so it raises.
        assert_eq!(m.stats().priority_raises, 1);

        // A demand merge on the same line raises again …
        assert!(m.promote(LineAddr(0x40), RequestKind::Demand));
        assert_eq!(m.stats().merges, 2);
        assert_eq!(m.stats().priority_raises, 2);
        // … but a weaker merge counts as a merge without a raise.
        assert!(m.promote(LineAddr(0x40), RequestKind::Markov));
        assert_eq!(m.stats().merges, 3);
        assert_eq!(m.stats().priority_raises, 2);

        // Missing line: not a merge.
        assert!(!m.promote(LineAddr(0xc0), RequestKind::Demand));
        assert_eq!(m.stats().merges, 3);
    }

    #[test]
    fn stats_count_effective_expedites_only() {
        let mut m = MshrFile::new();
        fly(&mut m, 0x40, RequestKind::Content { depth: 1 }, 500);
        assert!(m.expedite(LineAddr(0x40), 300));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().complete_at, 300);
        // Later completion is ignored and not counted.
        assert!(m.expedite(LineAddr(0x40), 400));
        assert_eq!(m.lookup(LineAddr(0x40)).unwrap().complete_at, 300);
        assert_eq!(m.stats().expedites, 1);
        assert!(!m.expedite(LineAddr(0x80), 100));
    }
}
