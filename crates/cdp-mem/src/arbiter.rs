//! Priority arbiters for the L2 request queue and the front-side bus queue.
//!
//! §3.5 of the paper specifies the semantics reproduced here:
//!
//! * "The L2 and bus arbiters maintain a strict, priority-based ordering of
//!   requests" — [`Arbiter::pop`] always returns the highest-priority
//!   pending request, FIFO within equal priority.
//! * "If in the process of trying to enqueue a request the arbiter is found
//!   to not have any available buffer space, the prefetch request is
//!   squashed. No attempt is made to store the request" —
//!   [`EnqueueOutcome::Squashed`].
//! * "No demand request will be stalled due to lack of buffer space if one
//!   or more prefetch requests currently reside in the arbiter ... The
//!   prefetch request with the lowest priority is removed from the arbiter,
//!   with the demand request taking its place" —
//!   [`EnqueueOutcome::AcceptedEvicting`].
//! * A demand that finds a *matching* prefetch in the queue promotes it
//!   instead of enqueuing a duplicate — [`Arbiter::promote`].
//!
//! Note: the full-system hierarchy in `cdp-sim` models these capacity
//! semantics analytically (MSHR occupancy + the bus's prefetch backlog)
//! for speed; this slot-accurate queue is the reference implementation of
//! the §3.5 rules, used directly by slot-by-slot models and exhaustively
//! tested here (including with randomized invariant tests).

use cdp_types::{LineAddr, RequestKind};

/// A request waiting in an arbiter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingRequest {
    /// Target line (physical).
    pub line: LineAddr,
    /// Who issued it (and at what chain depth).
    pub kind: RequestKind,
    /// Cycle at which it entered the queue.
    pub enqueued_at: u64,
    seq: u64,
}

/// Result of [`Arbiter::enqueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued normally.
    Accepted,
    /// A demand was queued by dropping the lowest-priority prefetch.
    AcceptedEvicting(PendingRequest),
    /// A prefetch found the queue full and was dropped.
    Squashed,
    /// A demand found the queue full of other demands; the requester must
    /// retry (modeled upstream as added latency).
    Stalled,
}

/// Cumulative arbiter statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Requests accepted.
    pub accepted: u64,
    /// Prefetches squashed because the queue was full.
    pub squashed: u64,
    /// Prefetches evicted in favor of demands.
    pub evicted: u64,
    /// Demands stalled by a queue full of demands.
    pub stalled: u64,
    /// Duplicate enqueues suppressed (matching line already queued).
    pub merged: u64,
}

/// A fixed-capacity, strict-priority request queue.
///
/// The backing store is a binary max-heap ordered by
/// `(priority, Reverse(seq))`, so [`Arbiter::pop`] is O(log n) instead of
/// a full scan; the unique, monotone `seq` makes the order total, which
/// keeps pops FIFO within a priority level and deterministic. Line-keyed
/// operations (merge, promote, remove) still scan — the queue is a few
/// entries deep, and those paths are off the pop fast path.
///
/// # Examples
///
/// ```
/// use cdp_mem::{Arbiter, EnqueueOutcome};
/// use cdp_types::{LineAddr, RequestKind};
///
/// let mut arb = Arbiter::new(2);
/// arb.enqueue(LineAddr(0x40), RequestKind::Content { depth: 2 }, 0);
/// arb.enqueue(LineAddr(0x80), RequestKind::Demand, 1);
/// // Demand pops first despite arriving later.
/// assert_eq!(arb.pop().unwrap().kind, RequestKind::Demand);
/// ```
#[derive(Clone, Debug)]
pub struct Arbiter {
    /// Binary max-heap on `(priority, Reverse(seq))`.
    queue: Vec<PendingRequest>,
    capacity: usize,
    seq: u64,
    stats: ArbiterStats,
}

/// Heap ordering: `a` pops before `b`.
#[inline]
fn pops_before(a: &PendingRequest, b: &PendingRequest) -> bool {
    (a.kind.priority(), std::cmp::Reverse(a.seq)) > (b.kind.priority(), std::cmp::Reverse(b.seq))
}

impl Arbiter {
    /// Creates an arbiter holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "arbiter capacity must be positive");
        Arbiter {
            queue: Vec::with_capacity(capacity),
            capacity,
            seq: 0,
            stats: ArbiterStats::default(),
        }
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ArbiterStats {
        self.stats
    }

    /// Whether a request for `line` is already queued.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.queue.iter().any(|r| r.line == line)
    }

    /// The queued request for `line`, if any.
    pub fn find(&self, line: LineAddr) -> Option<&PendingRequest> {
        self.queue.iter().find(|r| r.line == line)
    }

    /// Enqueues a request, applying the paper's priority/drop semantics.
    /// A request whose line is already queued is merged: the queued entry
    /// keeps the *higher* of the two priorities (this implements the
    /// in-flight promotion of §3.5 for queued-but-not-yet-issued requests).
    pub fn enqueue(&mut self, line: LineAddr, kind: RequestKind, now: u64) -> EnqueueOutcome {
        if let Some(i) = self.queue.iter().position(|r| r.line == line) {
            if kind.priority() > self.queue[i].kind.priority() {
                self.queue[i].kind = kind;
                self.sift_up(i);
            }
            self.stats.merged += 1;
            return EnqueueOutcome::Accepted;
        }
        if self.queue.len() >= self.capacity {
            if kind.is_prefetch() {
                self.stats.squashed += 1;
                return EnqueueOutcome::Squashed;
            }
            // Demand: evict the lowest-priority prefetch, if any.
            let victim_idx = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, r)| r.kind.is_prefetch())
                .min_by_key(|(_, r)| (r.kind.priority(), std::cmp::Reverse(r.seq)))
                .map(|(i, _)| i);
            match victim_idx {
                Some(i) => {
                    let victim = self.remove_at(i);
                    self.push(line, kind, now);
                    self.stats.evicted += 1;
                    self.stats.accepted += 1;
                    return EnqueueOutcome::AcceptedEvicting(victim);
                }
                None => {
                    self.stats.stalled += 1;
                    return EnqueueOutcome::Stalled;
                }
            }
        }
        self.push(line, kind, now);
        self.stats.accepted += 1;
        EnqueueOutcome::Accepted
    }

    fn push(&mut self, line: LineAddr, kind: RequestKind, now: u64) {
        self.seq += 1;
        self.queue.push(PendingRequest {
            line,
            kind,
            enqueued_at: now,
            seq: self.seq,
        });
        self.sift_up(self.queue.len() - 1);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if pops_before(&self.queue[i], &self.queue[parent]) {
                self.queue.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut best = i;
            if left < self.queue.len() && pops_before(&self.queue[left], &self.queue[best]) {
                best = left;
            }
            if right < self.queue.len() && pops_before(&self.queue[right], &self.queue[best]) {
                best = right;
            }
            if best == i {
                break;
            }
            self.queue.swap(i, best);
            i = best;
        }
    }

    /// Removes the element at heap index `i`, restoring the heap invariant.
    fn remove_at(&mut self, i: usize) -> PendingRequest {
        let removed = self.queue.swap_remove(i);
        if i < self.queue.len() {
            self.sift_down(i);
            self.sift_up(i);
        }
        removed
    }

    /// Removes and returns the highest-priority request (FIFO within a
    /// priority level).
    pub fn pop(&mut self) -> Option<PendingRequest> {
        if self.queue.is_empty() {
            return None;
        }
        Some(self.remove_at(0))
    }

    /// Raises the priority of a queued request for `line` to that of `kind`
    /// (demand promotion of an in-flight prefetch, §3.5). Returns `true` if
    /// a queued request was found.
    pub fn promote(&mut self, line: LineAddr, kind: RequestKind) -> bool {
        match self.queue.iter().position(|r| r.line == line) {
            Some(i) => {
                if kind.priority() > self.queue[i].kind.priority() {
                    self.queue[i].kind = kind;
                    self.sift_up(i);
                }
                true
            }
            None => false,
        }
    }

    /// Removes any queued request for `line` (e.g. the line filled via
    /// another path).
    pub fn remove(&mut self, line: LineAddr) -> Option<PendingRequest> {
        let idx = self.queue.iter().position(|r| r.line == line)?;
        Some(self.remove_at(idx))
    }

    /// Serializes the complete arbiter state. The backing heap array is
    /// written verbatim (not sorted) so a restored arbiter pops, sifts,
    /// and evicts in exactly the order the original would have.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.seq);
        enc.u64(self.stats.accepted);
        enc.u64(self.stats.squashed);
        enc.u64(self.stats.evicted);
        enc.u64(self.stats.stalled);
        enc.u64(self.stats.merged);
        enc.seq_len(self.queue.len());
        for r in &self.queue {
            enc.u32(r.line.0);
            crate::mshr::save_request_kind(r.kind, enc);
            enc.u64(r.enqueued_at);
            enc.u64(r.seq);
        }
    }

    /// Restores state written by [`Arbiter::save_state`] into an arbiter
    /// constructed with the same capacity.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, an
    /// unknown request-kind tag, or more queued entries than `capacity`.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.seq = dec.u64("arbiter seq")?;
        self.stats.accepted = dec.u64("arbiter stats")?;
        self.stats.squashed = dec.u64("arbiter stats")?;
        self.stats.evicted = dec.u64("arbiter stats")?;
        self.stats.stalled = dec.u64("arbiter stats")?;
        self.stats.merged = dec.u64("arbiter stats")?;
        let n = dec.seq_len(4 + 2 + 8 + 8, "arbiter queue length")?;
        if n > self.capacity {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "arbiter queue length",
            });
        }
        self.queue.clear();
        for _ in 0..n {
            let line = LineAddr(dec.u32("arbiter line")?);
            let kind = crate::mshr::load_request_kind(dec)?;
            let enqueued_at = dec.u64("arbiter enqueued_at")?;
            let seq = dec.u64("arbiter entry seq")?;
            self.queue.push(PendingRequest {
                line,
                kind,
                enqueued_at,
                seq,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;

    const D: RequestKind = RequestKind::Demand;
    const S: RequestKind = RequestKind::Stride;
    fn c(depth: u8) -> RequestKind {
        RequestKind::Content { depth }
    }

    #[test]
    fn fifo_within_priority() {
        let mut a = Arbiter::new(8);
        a.enqueue(LineAddr(0x40), S, 0);
        a.enqueue(LineAddr(0x80), S, 1);
        assert_eq!(a.pop().unwrap().line, LineAddr(0x40));
        assert_eq!(a.pop().unwrap().line, LineAddr(0x80));
        assert!(a.pop().is_none());
    }

    #[test]
    fn strict_priority_order() {
        let mut a = Arbiter::new(8);
        a.enqueue(LineAddr(0x100), c(3), 0);
        a.enqueue(LineAddr(0x140), c(1), 0);
        a.enqueue(LineAddr(0x180), S, 0);
        a.enqueue(LineAddr(0x1c0), D, 0);
        let order: Vec<_> = std::iter::from_fn(|| a.pop()).map(|r| r.kind).collect();
        assert_eq!(order, vec![D, S, c(1), c(3)]);
    }

    #[test]
    fn full_queue_squashes_prefetch() {
        let mut a = Arbiter::new(2);
        a.enqueue(LineAddr(0x40), D, 0);
        a.enqueue(LineAddr(0x80), D, 0);
        assert_eq!(a.enqueue(LineAddr(0xc0), S, 0), EnqueueOutcome::Squashed);
        assert_eq!(a.len(), 2);
        assert_eq!(a.stats().squashed, 1);
    }

    #[test]
    fn demand_evicts_lowest_priority_prefetch() {
        let mut a = Arbiter::new(2);
        a.enqueue(LineAddr(0x40), S, 0);
        a.enqueue(LineAddr(0x80), c(2), 0);
        match a.enqueue(LineAddr(0xc0), D, 1) {
            EnqueueOutcome::AcceptedEvicting(victim) => {
                assert_eq!(victim.line, LineAddr(0x80), "deepest content is lowest");
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(a.contains(LineAddr(0xc0)));
        assert!(a.contains(LineAddr(0x40)));
        assert_eq!(a.stats().evicted, 1);
    }

    #[test]
    fn demand_stalls_when_full_of_demands() {
        let mut a = Arbiter::new(2);
        a.enqueue(LineAddr(0x40), D, 0);
        a.enqueue(LineAddr(0x80), D, 0);
        assert_eq!(a.enqueue(LineAddr(0xc0), D, 0), EnqueueOutcome::Stalled);
        assert_eq!(a.stats().stalled, 1);
    }

    #[test]
    fn duplicate_line_merges_and_keeps_higher_priority() {
        let mut a = Arbiter::new(4);
        a.enqueue(LineAddr(0x40), c(3), 0);
        assert_eq!(a.enqueue(LineAddr(0x40), D, 1), EnqueueOutcome::Accepted);
        assert_eq!(a.len(), 1);
        assert_eq!(a.find(LineAddr(0x40)).unwrap().kind, D);
        assert_eq!(a.stats().merged, 1);
        // Merging a lower priority does not downgrade.
        a.enqueue(LineAddr(0x40), c(2), 2);
        assert_eq!(a.find(LineAddr(0x40)).unwrap().kind, D);
    }

    #[test]
    fn promote_raises_priority() {
        let mut a = Arbiter::new(4);
        a.enqueue(LineAddr(0x40), c(3), 0);
        assert!(a.promote(LineAddr(0x40), D));
        assert_eq!(a.find(LineAddr(0x40)).unwrap().kind, D);
        assert!(!a.promote(LineAddr(0x999_9940), D));
    }

    #[test]
    fn remove_by_line() {
        let mut a = Arbiter::new(4);
        a.enqueue(LineAddr(0x40), S, 0);
        assert!(a.remove(LineAddr(0x40)).is_some());
        assert!(a.is_empty());
    }

    /// The queue never exceeds capacity, regardless of the input mix.
    #[test]
    fn prop_capacity_invariant() {
        let mut rng = Rng::seed_from_u64(0xa4b1_0001);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..200);
            let mut a = Arbiter::new(4);
            for i in 0..n {
                let line = rng.gen_range_u32(0..64);
                let k = rng.gen_range_u8(0..5);
                let kind = match k {
                    0 => RequestKind::Demand,
                    1 => RequestKind::Stride,
                    2 => RequestKind::Markov,
                    _ => RequestKind::Content { depth: k },
                };
                a.enqueue(LineAddr(line * 64), kind, i as u64);
                assert!(a.len() <= a.capacity());
            }
        }
    }

    /// pop() returns requests in non-increasing priority order when no
    /// enqueues intervene.
    #[test]
    fn prop_pop_priority_monotone() {
        let mut rng = Rng::seed_from_u64(0xa4b1_0002);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..50);
            let mut a = Arbiter::new(64);
            for i in 0..n {
                let line = rng.gen_range_u32(0..1024);
                let k = rng.gen_range_u8(0..6);
                let kind = match k {
                    0 => RequestKind::Demand,
                    1 => RequestKind::Stride,
                    _ => RequestKind::Content { depth: k },
                };
                a.enqueue(LineAddr(line * 64), kind, i as u64);
            }
            let mut last = cdp_types::Priority(u8::MAX);
            while let Some(r) = a.pop() {
                assert!(r.kind.priority() <= last);
                last = r.kind.priority();
            }
        }
    }

    /// The heap-backed pop order is identical to the original linear-scan
    /// implementation (`max_by_key((priority, Reverse(seq)))` over a plain
    /// `Vec`) across a randomized enqueue/pop/promote/remove mix.
    #[test]
    fn prop_pop_order_matches_linear_reference() {
        /// The pre-heap Arbiter, reduced to its ordering-relevant parts.
        struct LinearRef {
            queue: Vec<(LineAddr, RequestKind, u64)>,
            capacity: usize,
            seq: u64,
        }
        impl LinearRef {
            fn enqueue(&mut self, line: LineAddr, kind: RequestKind) {
                if let Some(r) = self.queue.iter_mut().find(|r| r.0 == line) {
                    if kind.priority() > r.1.priority() {
                        r.1 = kind;
                    }
                    return;
                }
                if self.queue.len() >= self.capacity {
                    if kind.is_prefetch() {
                        return;
                    }
                    let victim = self
                        .queue
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.1.is_prefetch())
                        .min_by_key(|(_, r)| (r.1.priority(), std::cmp::Reverse(r.2)))
                        .map(|(i, _)| i);
                    match victim {
                        Some(i) => {
                            self.queue.swap_remove(i);
                        }
                        None => return,
                    }
                }
                self.seq += 1;
                self.queue.push((line, kind, self.seq));
            }
            fn pop(&mut self) -> Option<(LineAddr, RequestKind, u64)> {
                let idx = self
                    .queue
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, r)| (r.1.priority(), std::cmp::Reverse(r.2)))
                    .map(|(i, _)| i)?;
                Some(self.queue.swap_remove(idx))
            }
        }

        let mut rng = Rng::seed_from_u64(0xa4b1_0004);
        for _ in 0..64 {
            let cap = rng.gen_range_usize(1..12);
            let mut heap = Arbiter::new(cap);
            let mut lin = LinearRef {
                queue: Vec::new(),
                capacity: cap,
                seq: 0,
            };
            for step in 0..rng.gen_range_usize(10..400) {
                match rng.gen_range_u8(0..8) {
                    0..=4 => {
                        let line = LineAddr(rng.gen_range_u32(0..48) * 64);
                        let kind = match rng.gen_range_u8(0..6) {
                            0 => RequestKind::Demand,
                            1 => RequestKind::Stride,
                            2 => RequestKind::Markov,
                            k => RequestKind::Content { depth: k },
                        };
                        heap.enqueue(line, kind, step as u64);
                        lin.enqueue(line, kind);
                    }
                    5 => {
                        let line = LineAddr(rng.gen_range_u32(0..48) * 64);
                        heap.promote(line, RequestKind::Demand);
                        if let Some(r) = lin.queue.iter_mut().find(|r| r.0 == line) {
                            if RequestKind::Demand.priority() > r.1.priority() {
                                r.1 = RequestKind::Demand;
                            }
                        }
                    }
                    6 => {
                        let line = LineAddr(rng.gen_range_u32(0..48) * 64);
                        heap.remove(line);
                        if let Some(i) = lin.queue.iter().position(|r| r.0 == line) {
                            lin.queue.swap_remove(i);
                        }
                    }
                    _ => {
                        let got = heap.pop().map(|r| (r.line, r.kind, r.seq));
                        assert_eq!(got, lin.pop(), "pop order diverged");
                    }
                }
            }
            // Drain both to the end.
            loop {
                let got = heap.pop().map(|r| (r.line, r.kind, r.seq));
                let want = lin.pop();
                assert_eq!(got, want, "drain order diverged");
                if want.is_none() {
                    break;
                }
            }
        }
    }

    /// A demand enqueue never fails while any prefetch is queued.
    #[test]
    fn prop_demand_never_stalls_on_prefetches() {
        let mut rng = Rng::seed_from_u64(0xa4b1_0003);
        for _ in 0..64 {
            let n = rng.gen_range_usize(1..20);
            let mut a = Arbiter::new(4);
            for _ in 0..n {
                let l = rng.gen_range_u32(0..1024);
                a.enqueue(LineAddr(l * 64), RequestKind::Stride, 0);
            }
            let outcome = a.enqueue(LineAddr(0xdead_ff40 & !63), RequestKind::Demand, 1);
            assert!(!matches!(
                outcome,
                EnqueueOutcome::Stalled | EnqueueOutcome::Squashed
            ));
        }
    }
}
