//! Sparse byte-level physical memory.
//!
//! The simulator keeps a full byte image of physical memory because the
//! content prefetcher's entire premise is scanning the *data* returned by
//! fills. Frames are allocated lazily; untouched memory reads as zero
//! (which the VAM heuristic correctly rejects in the all-zeros region
//! unless filter bits say otherwise).
//!
//! The frame table is an open-addressed, linear-probe hash table
//! (fibonacci hashing, power-of-two capacity) rather than a `HashMap`:
//! every simulated fill scan does one frame lookup per *line*, and the
//! byte/word read paths one per access, so the lookup is squarely on the
//! hot path. Frames are never deleted, which keeps probing tombstone-free.
//! A last-frame hint (a relaxed atomic, so shared read-only images stay
//! `Sync`) short-circuits the common case of consecutive reads landing in
//! the same page.

use std::sync::atomic::{AtomicU64, Ordering};

use cdp_types::{LineAddr, PhysAddr, LINE_SIZE, PAGE_SIZE};

/// One materialized frame.
#[derive(Clone, Debug)]
struct Frame {
    number: u32,
    data: Box<[u8; PAGE_SIZE]>,
}

/// Fibonacci multiplier (2^64 / golden ratio).
const HASH_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// A contiguous physical span whose content is synthesized on first
/// touch from a seed instead of being materialized at build time.
///
/// Streamed large/huge workload tiers register their flat data arrays
/// this way: the array occupies a contiguous frame range (virtual pages
/// are mapped in ascending order against sequentially allocated frames),
/// so one `(start, len, seed)` triple stands in for megabytes of frames.
/// The synthesized shape matches the eager array fill — one little-endian
/// u32 per 64-byte line at line offset 0, bit pattern of an `f32` uniform
/// in `[0, 1e6)`, remaining bytes zero — so VAM scans see the same value
/// distribution either way.
#[derive(Clone, Copy, Debug)]
struct LazyRegion {
    start: PhysAddr,
    len: u32,
    seed: u64,
}

impl LazyRegion {
    /// Offset of `addr` within the region, if covered.
    #[inline]
    fn offset_of(&self, addr: PhysAddr) -> Option<u32> {
        let off = addr.0.wrapping_sub(self.start.0);
        (off < self.len).then_some(off)
    }

    /// The synthesized byte at region offset `off`.
    fn byte_at(&self, off: u32) -> u8 {
        let word_base = off & !(LINE_SIZE as u32 - 1);
        let lane = (off - word_base) as usize;
        if lane >= 4 || word_base + 4 > self.len {
            return 0;
        }
        self.word(word_base / LINE_SIZE as u32).to_le_bytes()[lane]
    }

    /// The synthesized u32 at line index `i` (SplitMix64 of the region
    /// seed and `i`, shaped like `(f32_uniform * 1e6).to_bits()`).
    fn word(&self, i: u32) -> u32 {
        let mut z = self
            .seed
            .wrapping_add((i as u64).wrapping_mul(HASH_MUL));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let f = (z >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        (f * 1e6).to_bits()
    }
}

/// Hint value meaning "no cached lookup" — the frame half is all-ones,
/// which no real frame number reaches (frames are `addr >> 12`).
const HINT_EMPTY: u64 = u64::MAX;

/// A sparse physical memory image.
///
/// # Examples
///
/// ```
/// use cdp_mem::PhysMem;
/// use cdp_types::PhysAddr;
///
/// let mut mem = PhysMem::new();
/// mem.write_u32(PhysAddr(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u32(PhysAddr(0x1000)), 0xdead_beef);
/// // Untouched memory reads as zero.
/// assert_eq!(mem.read_u32(PhysAddr(0x9_0000)), 0);
/// ```
#[derive(Debug)]
pub struct PhysMem {
    /// Power-of-two slot array; `None` is vacancy.
    slots: Vec<Option<Frame>>,
    /// Resident frame count.
    len: usize,
    /// Last successful lookup, packed `(frame << 32) | slot`. Purely a
    /// cache: every use re-verifies against `slots`, so a stale value
    /// (e.g. after a rehash) is harmless. Relaxed is sufficient for the
    /// same reason.
    hint: AtomicU64,
    /// Seed-synthesized spans consulted when a frame is absent (empty for
    /// every fully-materialized image, keeping the miss path one check).
    lazy: Vec<LazyRegion>,
}

impl Default for PhysMem {
    fn default() -> Self {
        PhysMem::new()
    }
}

impl Clone for PhysMem {
    fn clone(&self) -> Self {
        PhysMem {
            slots: self.slots.clone(),
            len: self.len,
            hint: AtomicU64::new(self.hint.load(Ordering::Relaxed)),
            lazy: self.lazy.clone(),
        }
    }
}

impl PhysMem {
    /// Creates an empty physical memory.
    pub fn new() -> Self {
        PhysMem {
            slots: Vec::new(),
            len: 0,
            hint: AtomicU64::new(HINT_EMPTY),
            lazy: Vec::new(),
        }
    }

    /// Registers a lazily-synthesized span: reads of non-resident frames
    /// inside `[start, start + len)` return seeded content instead of
    /// zeros, and a frame materialized inside the span is pre-filled with
    /// that content. `start` must be line-aligned (the builder allocates
    /// lazy arrays line-aligned).
    pub fn add_lazy_region(&mut self, start: PhysAddr, len: u32, seed: u64) {
        debug_assert_eq!(start.0 % LINE_SIZE as u32, 0, "lazy region alignment");
        self.lazy.push(LazyRegion { start, len, seed });
    }

    /// Number of registered lazy regions.
    pub fn lazy_regions(&self) -> usize {
        self.lazy.len()
    }

    /// Synthesized content for an absent frame, or 0 outside any region.
    #[inline]
    fn lazy_u8(&self, addr: PhysAddr) -> u8 {
        if self.lazy.is_empty() {
            return 0;
        }
        self.lazy
            .iter()
            .find_map(|r| r.offset_of(addr).map(|off| r.byte_at(off)))
            .unwrap_or(0)
    }

    /// Line-granular synthesis for the fill-scan path (`line_base` is the
    /// line's base address; the whole line lies in one region or none —
    /// regions are line-aligned).
    #[cold]
    fn lazy_line(&self, line_base: PhysAddr, out: &mut [u8; LINE_SIZE]) {
        out.fill(0);
        for r in &self.lazy {
            if let Some(off) = r.offset_of(line_base) {
                debug_assert_eq!(off % LINE_SIZE as u32, 0);
                if off + 4 <= r.len {
                    out[..4].copy_from_slice(&r.word(off / LINE_SIZE as u32).to_le_bytes());
                }
                return;
            }
        }
    }

    /// Number of frames that have been materialized.
    pub fn resident_frames(&self) -> usize {
        self.len
    }

    #[inline]
    fn probe_start(&self, frame: u32) -> usize {
        let shift = 64 - self.slots.len().trailing_zeros();
        ((frame as u64).wrapping_mul(HASH_MUL) >> shift) as usize
    }

    /// Slot index of `frame`, if resident.
    #[inline]
    fn slot_of(&self, frame: u32) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let hint = self.hint.load(Ordering::Relaxed);
        if (hint >> 32) as u32 == frame {
            let slot = (hint & 0xffff_ffff) as usize;
            if slot < self.slots.len()
                && self.slots[slot].as_ref().is_some_and(|f| f.number == frame)
            {
                return Some(slot);
            }
        }
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(frame);
        loop {
            match &self.slots[i] {
                Some(f) if f.number == frame => {
                    self.hint
                        .store(((frame as u64) << 32) | i as u64, Ordering::Relaxed);
                    return Some(i);
                }
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    #[inline]
    fn frame(&self, frame: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.slot_of(frame)
            .map(|i| &*self.slots[i].as_ref().expect("occupied slot").data)
    }

    /// Doubles the table (or seeds it) and reinserts every frame.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(64);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        self.hint = AtomicU64::new(HINT_EMPTY);
        let mask = new_cap - 1;
        for frame in old.into_iter().flatten() {
            let mut i = self.probe_start(frame.number);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(frame);
        }
    }

    fn frame_mut(&mut self, frame: u32) -> &mut [u8; PAGE_SIZE] {
        // Keep load factor under ~7/8 so probe chains stay short; frames
        // are never removed, so there is no tombstone accounting.
        if (self.slots.is_empty() || self.len * 8 >= self.slots.len() * 7)
            && self.slot_of(frame).is_none()
        {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.probe_start(frame);
        loop {
            match &self.slots[i] {
                Some(f) if f.number == frame => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    let mut data = Box::new([0u8; PAGE_SIZE]);
                    if !self.lazy.is_empty() {
                        // Materializing a page inside a lazy region must
                        // capture its synthesized content, not zeros.
                        let base = (frame as u64 * PAGE_SIZE as u64) as u32;
                        for (off, b) in data.iter_mut().enumerate() {
                            *b = self.lazy_u8(PhysAddr(base.wrapping_add(off as u32)));
                        }
                    }
                    self.slots[i] = Some(Frame {
                        number: frame,
                        data,
                    });
                    self.len += 1;
                    break;
                }
            }
        }
        &mut self.slots[i].as_mut().expect("occupied slot").data
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        match self.frame(addr.frame()) {
            Some(f) => f[addr.page_offset() as usize],
            None => self.lazy_u8(addr),
        }
    }

    /// Writes one byte, materializing the frame if needed.
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        let off = addr.page_offset() as usize;
        self.frame_mut(addr.frame())[off] = value;
    }

    /// Reads a little-endian u32. Reads that straddle a page boundary
    /// fall back to byte-wise access (sub-4-byte-aligned structures are
    /// legal on IA-32).
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let off = addr.page_offset() as usize;
        if off + 4 <= PAGE_SIZE {
            match self.frame(addr.frame()) {
                Some(f) => u32::from_le_bytes([f[off], f[off + 1], f[off + 2], f[off + 3]]),
                None if self.lazy.is_empty() => 0,
                None => u32::from_le_bytes([
                    self.lazy_u8(addr),
                    self.lazy_u8(PhysAddr(addr.0.wrapping_add(1))),
                    self.lazy_u8(PhysAddr(addr.0.wrapping_add(2))),
                    self.lazy_u8(PhysAddr(addr.0.wrapping_add(3))),
                ]),
            }
        } else {
            let b = self.read_bytes(addr, 4);
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        }
    }

    /// Writes a little-endian u32 (byte-wise when straddling a page
    /// boundary).
    pub fn write_u32(&mut self, addr: PhysAddr, value: u32) {
        let off = addr.page_offset() as usize;
        if off + 4 <= PAGE_SIZE {
            let frame = self.frame_mut(addr.frame());
            frame[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_bytes(addr, &value.to_le_bytes());
        }
    }

    /// Returns the 64 bytes of the cache line at `line` (a copy, matching
    /// the paper's "a copy of the cache line is passed to the content
    /// prefetcher").
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_SIZE] {
        let mut out = [0u8; LINE_SIZE];
        self.read_line_into(line, &mut out);
        out
    }

    /// Copies the cache line at `line` into `out` — one frame lookup per
    /// line, no per-byte hashing, no allocation. This is the fill-scan
    /// entry point.
    pub fn read_line_into(&self, line: LineAddr, out: &mut [u8; LINE_SIZE]) {
        let addr = line.addr();
        let off = addr.page_offset() as usize;
        debug_assert!(off + LINE_SIZE <= PAGE_SIZE, "line straddles page");
        match self.frame(addr.frame()) {
            Some(f) => out.copy_from_slice(&f[off..off + LINE_SIZE]),
            None if self.lazy.is_empty() => out.fill(0),
            None => self.lazy_line(addr, out),
        }
    }

    /// Writes a full cache line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_SIZE]) {
        let addr = line.addr();
        let off = addr.page_offset() as usize;
        debug_assert!(off + LINE_SIZE <= PAGE_SIZE, "line straddles page");
        self.frame_mut(addr.frame())[off..off + LINE_SIZE].copy_from_slice(data);
    }

    /// Copies `data` to consecutive bytes starting at `addr`, which may span
    /// pages.
    pub fn write_bytes(&mut self, addr: PhysAddr, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(PhysAddr(addr.0.wrapping_add(i as u32)), *b);
        }
    }

    /// Reads `len` consecutive bytes starting at `addr` (may span pages).
    /// Allocates — tests and tools only; the simulation path uses
    /// [`PhysMem::read_line_into`].
    pub fn read_bytes(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(PhysAddr(addr.0.wrapping_add(i as u32))))
            .collect()
    }

    /// Iterates over resident frames as `(frame_number, bytes)`, sorted by
    /// frame number (serialization support).
    pub fn frames(&self) -> impl Iterator<Item = (u32, &[u8; PAGE_SIZE])> {
        let mut resident: Vec<(u32, &[u8; PAGE_SIZE])> = self
            .slots
            .iter()
            .flatten()
            .map(|f| (f.number, &*f.data))
            .collect();
        resident.sort_unstable_by_key(|&(n, _)| n);
        resident.into_iter()
    }

    /// Installs a whole frame (serialization support).
    pub fn install_frame(&mut self, frame: u32, data: [u8; PAGE_SIZE]) {
        *self.frame_mut(frame) = data;
    }

    /// Order-independent digest of the resident frame contents. Two images
    /// with the same bytes in the same frames produce the same value
    /// regardless of insertion order or table capacity; used to validate
    /// that a deterministically rebuilt memory image matches the one a
    /// snapshot was taken against.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = cdp_snap::Fnv1a::new();
        h.write_u64(self.len as u64);
        for (number, data) in self.frames() {
            h.write_u32(number);
            h.write(&data[..]);
        }
        // Lazy regions are part of the image identity: the same frames
        // with different synthesized spans are different memories.
        h.write_u64(self.lazy.len() as u64);
        for r in &self.lazy {
            h.write_u32(r.start.0);
            h.write_u32(r.len);
            h.write_u64(r.seed);
        }
        h.finish()
    }

    /// Serializes every resident frame, sorted by frame number.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.seq_len(self.len);
        for (number, data) in self.frames() {
            enc.u32(number);
            enc.bytes(&data[..]);
        }
    }

    /// Restores frames written by [`PhysMem::save_state`] into `self`
    /// (existing frames with the same number are overwritten; the table
    /// need not be empty).
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or a
    /// frame payload that is not exactly [`PAGE_SIZE`] bytes.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        let n = dec.seq_len(4 + PAGE_SIZE, "phys frame count")?;
        for _ in 0..n {
            let number = dec.u32("phys frame number")?;
            let bytes = dec.bytes("phys frame data")?;
            let page: &[u8; PAGE_SIZE] = bytes
                .try_into()
                .map_err(|_| cdp_types::SnapshotError::Corrupt {
                    context: "phys frame size",
                })?;
            self.install_frame(number, *page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;

    #[test]
    fn zero_fill_semantics() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u8(PhysAddr(0)), 0);
        assert_eq!(mem.read_u32(PhysAddr(0x123_4560)), 0);
        assert_eq!(mem.read_line(LineAddr(0x40)), [0u8; LINE_SIZE]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = PhysMem::new();
        mem.write_u32(PhysAddr(0x1000), 0x0102_0304);
        assert_eq!(mem.read_u8(PhysAddr(0x1000)), 0x04, "little endian");
        assert_eq!(mem.read_u8(PhysAddr(0x1003)), 0x01);
        assert_eq!(mem.read_u32(PhysAddr(0x1000)), 0x0102_0304);
        assert_eq!(mem.resident_frames(), 1);
    }

    #[test]
    fn line_roundtrip() {
        let mut mem = PhysMem::new();
        let mut data = [0u8; LINE_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        mem.write_line(LineAddr(0x2_0040), &data);
        assert_eq!(mem.read_line(LineAddr(0x2_0040)), data);
        // Adjacent lines untouched.
        assert_eq!(mem.read_line(LineAddr(0x2_0000)), [0u8; LINE_SIZE]);
        assert_eq!(mem.read_line(LineAddr(0x2_0080)), [0u8; LINE_SIZE]);
    }

    #[test]
    fn read_line_into_matches_read_line() {
        let mut mem = PhysMem::new();
        let mut data = [0u8; LINE_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37);
        }
        mem.write_line(LineAddr(0x5_00c0), &data);
        let mut out = [0xffu8; LINE_SIZE];
        mem.read_line_into(LineAddr(0x5_00c0), &mut out);
        assert_eq!(out, data);
        // Absent line zero-fills the caller buffer, even if it was dirty.
        mem.read_line_into(LineAddr(0x7_0000), &mut out);
        assert_eq!(out, [0u8; LINE_SIZE]);
    }

    #[test]
    fn cross_page_byte_copy() {
        let mut mem = PhysMem::new();
        let data: Vec<u8> = (0..100).collect();
        // Straddles the 0x1000 page boundary.
        mem.write_bytes(PhysAddr(0xfd0), &data);
        assert_eq!(mem.read_bytes(PhysAddr(0xfd0), 100), data);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn u32_straddle_is_bytewise_correct() {
        let mut mem = PhysMem::new();
        mem.write_u32(PhysAddr(0xffe), 0xaabb_ccdd);
        assert_eq!(mem.read_u32(PhysAddr(0xffe)), 0xaabb_ccdd);
        assert_eq!(mem.read_u8(PhysAddr(0xffe)), 0xdd, "first page");
        assert_eq!(mem.read_u8(PhysAddr(0x1001)), 0xaa, "second page");
    }

    #[test]
    fn many_frames_survive_rehash() {
        let mut mem = PhysMem::new();
        // Enough frames to force several table doublings.
        for i in 0..500u32 {
            mem.write_u8(PhysAddr(i * PAGE_SIZE as u32), i as u8);
        }
        assert_eq!(mem.resident_frames(), 500);
        for i in 0..500u32 {
            assert_eq!(mem.read_u8(PhysAddr(i * PAGE_SIZE as u32)), i as u8);
        }
        // frames() is sorted.
        let numbers: Vec<u32> = mem.frames().map(|(n, _)| n).collect();
        let mut sorted = numbers.clone();
        sorted.sort_unstable();
        assert_eq!(numbers, sorted);
        assert_eq!(numbers.len(), 500);
    }

    #[test]
    fn install_frame_overwrites() {
        let mut mem = PhysMem::new();
        mem.write_u8(PhysAddr(0x3000), 0xaa);
        let mut page = [0u8; PAGE_SIZE];
        page[7] = 0xbb;
        mem.install_frame(3, page);
        assert_eq!(mem.read_u8(PhysAddr(0x3000)), 0, "old byte replaced");
        assert_eq!(mem.read_u8(PhysAddr(0x3007)), 0xbb);
        assert_eq!(mem.resident_frames(), 1);
    }

    #[test]
    fn prop_u32_roundtrip() {
        let mut rng = Rng::seed_from_u64(0x9415_0001);
        for _ in 0..256 {
            let addr = PhysAddr(rng.gen_range_u32(0..0x10_0000) & !3);
            let value = rng.next_u32();
            let mut mem = PhysMem::new();
            mem.write_u32(addr, value);
            assert_eq!(mem.read_u32(addr), value);
        }
    }

    #[test]
    fn prop_disjoint_writes_do_not_interfere() {
        let mut rng = Rng::seed_from_u64(0x9415_0002);
        for _ in 0..256 {
            let a = PhysAddr(rng.gen_range_u32(0..0x1_0000) & !3);
            let b = PhysAddr(rng.gen_range_u32(0..0x1_0000) & !3);
            if a == b {
                continue;
            }
            let (va, vb) = (rng.next_u32(), rng.next_u32());
            let mut mem = PhysMem::new();
            mem.write_u32(a, va);
            mem.write_u32(b, vb);
            assert_eq!(mem.read_u32(b), vb);
            if a.0.abs_diff(b.0) >= 4 {
                assert_eq!(mem.read_u32(a), va);
            }
        }
    }

    #[test]
    fn prop_line_read_equals_byte_reads() {
        let mut rng = Rng::seed_from_u64(0x9415_0003);
        for _ in 0..64 {
            let line = LineAddr(rng.gen_range_u32(0..0x1000) * LINE_SIZE as u32);
            let mut mem = PhysMem::new();
            let mut data = [0u8; LINE_SIZE];
            let mut x = rng.next_u64() | 1;
            for byte in data.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *byte = (x >> 56) as u8;
            }
            mem.write_line(line, &data);
            for (i, &expected) in data.iter().enumerate() {
                assert_eq!(mem.read_u8(PhysAddr(line.0 + i as u32)), expected);
            }
        }
    }

    #[test]
    fn lazy_region_synthesis_is_consistent_across_read_paths() {
        let mut mem = PhysMem::new();
        mem.add_lazy_region(PhysAddr(0x40_0000), 4096 * 3, 0x5eed);
        assert_eq!(mem.lazy_regions(), 1);
        assert_eq!(mem.resident_frames(), 0, "no frames materialized");

        let line = LineAddr(0x40_0080);
        let full = mem.read_line(line);
        let word = u32::from_le_bytes([full[0], full[1], full[2], full[3]]);
        assert_ne!(word, 0, "line word is seeded");
        assert!(full[4..].iter().all(|&b| b == 0), "rest of line is zero");
        assert_eq!(mem.read_u32(PhysAddr(0x40_0080)), word);
        assert_eq!(mem.read_u8(PhysAddr(0x40_0080)), word.to_le_bytes()[0]);
        // The synthesized value looks like the eager array fill:
        // an f32 in [0, 1e6).
        let f = f32::from_bits(word);
        assert!((0.0..1e6).contains(&f), "{f}");
        // Outside the region, zero-fill semantics are untouched.
        assert_eq!(mem.read_u32(PhysAddr(0x40_0000 + 4096 * 3)), 0);
        assert_eq!(mem.read_u8(PhysAddr(0x3f_ffff)), 0);
    }

    #[test]
    fn lazy_region_materialization_preserves_content() {
        let mut mem = PhysMem::new();
        mem.add_lazy_region(PhysAddr(0x10_0000), 4096 * 2, 99);
        let before = mem.read_line(LineAddr(0x10_0040));
        // A write elsewhere in the same page materializes the frame; the
        // synthesized content must be captured, not zeroed.
        mem.write_u8(PhysAddr(0x10_0fff), 0xaa);
        assert_eq!(mem.resident_frames(), 1);
        assert_eq!(mem.read_line(LineAddr(0x10_0040)), before);
        assert_eq!(mem.read_u8(PhysAddr(0x10_0fff)), 0xaa);
    }

    #[test]
    fn lazy_regions_change_the_fingerprint() {
        let base = PhysMem::new().state_fingerprint();
        let mut a = PhysMem::new();
        a.add_lazy_region(PhysAddr(0x1000), 4096, 1);
        let mut b = PhysMem::new();
        b.add_lazy_region(PhysAddr(0x1000), 4096, 2);
        assert_ne!(a.state_fingerprint(), base);
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
    }

    /// Reference-check the open-addressed table against a plain map over
    /// a mixed write workload.
    #[test]
    fn prop_table_matches_reference_map() {
        use std::collections::HashMap;
        let mut rng = Rng::seed_from_u64(0x9415_0004);
        let mut mem = PhysMem::new();
        let mut reference: HashMap<u32, u8> = HashMap::new();
        for _ in 0..4000 {
            let addr = PhysAddr(rng.gen_range_u32(0..0x40_0000));
            if rng.gen_range_u8(0..2) == 0 {
                let v = rng.next_u32() as u8;
                mem.write_u8(addr, v);
                reference.insert(addr.0, v);
            } else {
                let expected = reference.get(&addr.0).copied().unwrap_or(0);
                assert_eq!(mem.read_u8(addr), expected);
            }
        }
    }
}
