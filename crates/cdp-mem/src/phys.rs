//! Sparse byte-level physical memory.
//!
//! The simulator keeps a full byte image of physical memory because the
//! content prefetcher's entire premise is scanning the *data* returned by
//! fills. Frames are allocated lazily; untouched memory reads as zero
//! (which the VAM heuristic correctly rejects in the all-zeros region
//! unless filter bits say otherwise).

use std::collections::HashMap;

use cdp_types::{LineAddr, PhysAddr, LINE_SIZE, PAGE_SIZE};

/// A sparse physical memory image.
///
/// # Examples
///
/// ```
/// use cdp_mem::PhysMem;
/// use cdp_types::PhysAddr;
///
/// let mut mem = PhysMem::new();
/// mem.write_u32(PhysAddr(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u32(PhysAddr(0x1000)), 0xdead_beef);
/// // Untouched memory reads as zero.
/// assert_eq!(mem.read_u32(PhysAddr(0x9_0000)), 0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct PhysMem {
    frames: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl PhysMem {
    /// Creates an empty physical memory.
    pub fn new() -> Self {
        PhysMem {
            frames: HashMap::new(),
        }
    }

    /// Number of frames that have been materialized.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn frame_mut(&mut self, frame: u32) -> &mut [u8; PAGE_SIZE] {
        self.frames
            .entry(frame)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        match self.frames.get(&addr.frame()) {
            Some(f) => f[addr.page_offset() as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the frame if needed.
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        let off = addr.page_offset() as usize;
        self.frame_mut(addr.frame())[off] = value;
    }

    /// Reads a little-endian u32. Reads that straddle a page boundary
    /// fall back to byte-wise access (sub-4-byte-aligned structures are
    /// legal on IA-32).
    pub fn read_u32(&self, addr: PhysAddr) -> u32 {
        let off = addr.page_offset() as usize;
        if off + 4 <= PAGE_SIZE {
            match self.frames.get(&addr.frame()) {
                Some(f) => u32::from_le_bytes([f[off], f[off + 1], f[off + 2], f[off + 3]]),
                None => 0,
            }
        } else {
            let b = self.read_bytes(addr, 4);
            u32::from_le_bytes([b[0], b[1], b[2], b[3]])
        }
    }

    /// Writes a little-endian u32 (byte-wise when straddling a page
    /// boundary).
    pub fn write_u32(&mut self, addr: PhysAddr, value: u32) {
        let off = addr.page_offset() as usize;
        if off + 4 <= PAGE_SIZE {
            let frame = self.frame_mut(addr.frame());
            frame[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_bytes(addr, &value.to_le_bytes());
        }
    }

    /// Returns the 64 bytes of the cache line at `line` (a copy, matching
    /// the paper's "a copy of the cache line is passed to the content
    /// prefetcher").
    pub fn read_line(&self, line: LineAddr) -> [u8; LINE_SIZE] {
        let addr = line.addr();
        let off = addr.page_offset() as usize;
        debug_assert!(off + LINE_SIZE <= PAGE_SIZE, "line straddles page");
        let mut out = [0u8; LINE_SIZE];
        if let Some(f) = self.frames.get(&addr.frame()) {
            out.copy_from_slice(&f[off..off + LINE_SIZE]);
        }
        out
    }

    /// Writes a full cache line.
    pub fn write_line(&mut self, line: LineAddr, data: &[u8; LINE_SIZE]) {
        let addr = line.addr();
        let off = addr.page_offset() as usize;
        debug_assert!(off + LINE_SIZE <= PAGE_SIZE, "line straddles page");
        self.frame_mut(addr.frame())[off..off + LINE_SIZE].copy_from_slice(data);
    }

    /// Copies `data` to consecutive bytes starting at `addr`, which may span
    /// pages.
    pub fn write_bytes(&mut self, addr: PhysAddr, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(PhysAddr(addr.0.wrapping_add(i as u32)), *b);
        }
    }

    /// Reads `len` consecutive bytes starting at `addr` (may span pages).
    pub fn read_bytes(&self, addr: PhysAddr, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(PhysAddr(addr.0.wrapping_add(i as u32))))
            .collect()
    }

    /// Iterates over resident frames as `(frame_number, bytes)`, sorted by
    /// frame number (serialization support).
    pub fn frames(&self) -> impl Iterator<Item = (u32, &[u8; PAGE_SIZE])> {
        let mut keys: Vec<u32> = self.frames.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |k| (k, &*self.frames[&k]))
    }

    /// Installs a whole frame (serialization support).
    pub fn install_frame(&mut self, frame: u32, data: [u8; PAGE_SIZE]) {
        self.frames.insert(frame, Box::new(data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;

    #[test]
    fn zero_fill_semantics() {
        let mem = PhysMem::new();
        assert_eq!(mem.read_u8(PhysAddr(0)), 0);
        assert_eq!(mem.read_u32(PhysAddr(0x123_4560)), 0);
        assert_eq!(mem.read_line(LineAddr(0x40)), [0u8; LINE_SIZE]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut mem = PhysMem::new();
        mem.write_u32(PhysAddr(0x1000), 0x0102_0304);
        assert_eq!(mem.read_u8(PhysAddr(0x1000)), 0x04, "little endian");
        assert_eq!(mem.read_u8(PhysAddr(0x1003)), 0x01);
        assert_eq!(mem.read_u32(PhysAddr(0x1000)), 0x0102_0304);
        assert_eq!(mem.resident_frames(), 1);
    }

    #[test]
    fn line_roundtrip() {
        let mut mem = PhysMem::new();
        let mut data = [0u8; LINE_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        mem.write_line(LineAddr(0x2_0040), &data);
        assert_eq!(mem.read_line(LineAddr(0x2_0040)), data);
        // Adjacent lines untouched.
        assert_eq!(mem.read_line(LineAddr(0x2_0000)), [0u8; LINE_SIZE]);
        assert_eq!(mem.read_line(LineAddr(0x2_0080)), [0u8; LINE_SIZE]);
    }

    #[test]
    fn cross_page_byte_copy() {
        let mut mem = PhysMem::new();
        let data: Vec<u8> = (0..100).collect();
        // Straddles the 0x1000 page boundary.
        mem.write_bytes(PhysAddr(0xfd0), &data);
        assert_eq!(mem.read_bytes(PhysAddr(0xfd0), 100), data);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn u32_straddle_is_bytewise_correct() {
        let mut mem = PhysMem::new();
        mem.write_u32(PhysAddr(0xffe), 0xaabb_ccdd);
        assert_eq!(mem.read_u32(PhysAddr(0xffe)), 0xaabb_ccdd);
        assert_eq!(mem.read_u8(PhysAddr(0xffe)), 0xdd, "first page");
        assert_eq!(mem.read_u8(PhysAddr(0x1001)), 0xaa, "second page");
    }

    #[test]
    fn prop_u32_roundtrip() {
        let mut rng = Rng::seed_from_u64(0x9415_0001);
        for _ in 0..256 {
            let addr = PhysAddr(rng.gen_range_u32(0..0x10_0000) & !3);
            let value = rng.next_u32();
            let mut mem = PhysMem::new();
            mem.write_u32(addr, value);
            assert_eq!(mem.read_u32(addr), value);
        }
    }

    #[test]
    fn prop_disjoint_writes_do_not_interfere() {
        let mut rng = Rng::seed_from_u64(0x9415_0002);
        for _ in 0..256 {
            let a = PhysAddr(rng.gen_range_u32(0..0x1_0000) & !3);
            let b = PhysAddr(rng.gen_range_u32(0..0x1_0000) & !3);
            if a == b {
                continue;
            }
            let (va, vb) = (rng.next_u32(), rng.next_u32());
            let mut mem = PhysMem::new();
            mem.write_u32(a, va);
            mem.write_u32(b, vb);
            assert_eq!(mem.read_u32(b), vb);
            if a.0.abs_diff(b.0) >= 4 {
                assert_eq!(mem.read_u32(a), va);
            }
        }
    }

    #[test]
    fn prop_line_read_equals_byte_reads() {
        let mut rng = Rng::seed_from_u64(0x9415_0003);
        for _ in 0..64 {
            let line = LineAddr(rng.gen_range_u32(0..0x1000) * LINE_SIZE as u32);
            let mut mem = PhysMem::new();
            let mut data = [0u8; LINE_SIZE];
            let mut x = rng.next_u64() | 1;
            for byte in data.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *byte = (x >> 56) as u8;
            }
            mem.write_line(line, &data);
            for (i, &expected) in data.iter().enumerate() {
                assert_eq!(mem.read_u8(PhysAddr(line.0 + i as u32)), expected);
            }
        }
    }
}
