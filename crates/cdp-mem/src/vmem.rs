//! Virtual address space: IA-32-style two-level page tables that live in
//! physical memory, a frame allocator, and a hardware page walker.
//!
//! The paper's processor "uses a hardware TLB page-walk, which accesses page
//! table structures in memory to fill TLB misses. All such page-walk traffic
//! bypasses the prefetcher because some of the page tables are large tables
//! of pointers" (§3.5). To reproduce that faithfully the page tables here are
//! real data in [`PhysMem`]: a walk performs two dependent physical reads
//! (page-directory entry, then page-table entry) and reports their addresses
//! so the memory hierarchy can charge latency and route them around the
//! content prefetcher's scanner.

use cdp_types::{LineAddr, PageNum, PhysAddr, VirtAddr, LINE_SIZE};

use crate::phys::PhysMem;

/// Physical address of the page directory (frame 1).
const PAGE_DIR_BASE: u32 = 0x1000;
/// First frame handed out by the allocator; everything below is reserved for
/// the page directory and page tables.
const FIRST_USER_FRAME: u32 = 0x400; // phys 0x40_0000
/// First frame used for page *tables* (between the directory and user data).
const FIRST_TABLE_FRAME: u32 = 0x10;
/// Number of frames reserved for page tables.
const TABLE_FRAMES: u32 = FIRST_USER_FRAME - FIRST_TABLE_FRAME;

const PTE_PRESENT: u32 = 1;

/// Page size re-exported for straddle checks.
pub(crate) const PAGE_SIZE_BYTES: usize = cdp_types::PAGE_SIZE;

/// The two physical reads performed by a hardware page walk, plus the
/// translation outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkResult {
    /// Physical address of the page-directory entry read first.
    pub pde_addr: PhysAddr,
    /// Physical address of the page-table entry read second, if the
    /// directory entry was present.
    pub pte_addr: Option<PhysAddr>,
    /// The translated frame base, if the mapping exists.
    pub frame_base: Option<PhysAddr>,
}

impl WalkResult {
    /// The cache lines touched by this walk, in access order.
    pub fn touched_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        std::iter::once(self.pde_addr.line()).chain(self.pte_addr.map(|a| a.line()))
    }
}

/// A 32-bit virtual address space backed by [`PhysMem`].
///
/// Pages are mapped on demand (or explicitly via [`AddressSpace::map`]);
/// frames are allocated sequentially. All virtual reads/writes go through
/// the real page tables, so the tables always agree with the translations
/// the walker produces.
///
/// # Examples
///
/// ```
/// use cdp_mem::AddressSpace;
/// use cdp_types::VirtAddr;
///
/// let mut space = AddressSpace::new();
/// space.write_u32(VirtAddr(0x1000_0000), 0x1234_5678);
/// assert_eq!(space.read_u32(VirtAddr(0x1000_0000)), 0x1234_5678);
/// assert!(space.translate(VirtAddr(0x1000_0000)).is_some());
/// assert!(space.translate(VirtAddr(0x7000_0000)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    phys: PhysMem,
    next_user_frame: u32,
    next_table_frame: u32,
    mapped_pages: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space with an empty page directory.
    pub fn new() -> Self {
        AddressSpace {
            phys: PhysMem::new(),
            next_user_frame: FIRST_USER_FRAME,
            next_table_frame: FIRST_TABLE_FRAME,
            mapped_pages: 0,
        }
    }

    /// Shared access to the physical backing store (what the bus "reads").
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Mutable access to the physical backing store.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// Number of virtual pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    fn pde_addr(vpage: PageNum) -> PhysAddr {
        PhysAddr(PAGE_DIR_BASE + 4 * (vpage.0 >> 10))
    }

    fn pte_addr(table_frame: u32, vpage: PageNum) -> PhysAddr {
        PhysAddr((table_frame << 12) + 4 * (vpage.0 & 0x3ff))
    }

    /// Maps `vpage` to a freshly allocated frame if not already mapped, and
    /// returns the frame base address.
    ///
    /// # Panics
    ///
    /// Panics if the page-table or user frame pools are exhausted (the
    /// workloads in this workspace stay far below the limits).
    pub fn map(&mut self, vpage: PageNum) -> PhysAddr {
        let pde_addr = Self::pde_addr(vpage);
        let mut pde = self.phys.read_u32(pde_addr);
        if pde & PTE_PRESENT == 0 {
            assert!(
                self.next_table_frame < FIRST_TABLE_FRAME + TABLE_FRAMES,
                "page-table frame pool exhausted"
            );
            let tf = self.next_table_frame;
            self.next_table_frame += 1;
            pde = (tf << 12) | PTE_PRESENT;
            self.phys.write_u32(pde_addr, pde);
        }
        let table_frame = pde >> 12;
        let pte_addr = Self::pte_addr(table_frame, vpage);
        let mut pte = self.phys.read_u32(pte_addr);
        if pte & PTE_PRESENT == 0 {
            let frame = self.next_user_frame;
            assert!(frame < 0x000f_ffff, "physical frame pool exhausted");
            self.next_user_frame += 1;
            self.mapped_pages += 1;
            pte = (frame << 12) | PTE_PRESENT;
            self.phys.write_u32(pte_addr, pte);
        }
        PhysAddr((pte >> 12) << 12)
    }

    /// Translates a virtual address without side effects. Returns `None` if
    /// the page is unmapped.
    pub fn translate(&self, vaddr: VirtAddr) -> Option<PhysAddr> {
        let walk = self.walk(vaddr);
        walk.frame_base
            .map(|base| PhysAddr(base.0 + vaddr.page_offset()))
    }

    /// Performs a full hardware page walk, reporting the physical addresses
    /// of the page-directory and page-table entries it reads.
    pub fn walk(&self, vaddr: VirtAddr) -> WalkResult {
        let vpage = vaddr.page();
        let pde_addr = Self::pde_addr(vpage);
        let pde = self.phys.read_u32(pde_addr);
        if pde & PTE_PRESENT == 0 {
            return WalkResult {
                pde_addr,
                pte_addr: None,
                frame_base: None,
            };
        }
        let pte_addr = Self::pte_addr(pde >> 12, vpage);
        let pte = self.phys.read_u32(pte_addr);
        let frame_base = (pte & PTE_PRESENT != 0).then_some(PhysAddr((pte >> 12) << 12));
        WalkResult {
            pde_addr,
            pte_addr: Some(pte_addr),
            frame_base,
        }
    }

    /// Translates, mapping the page on demand.
    pub fn translate_or_map(&mut self, vaddr: VirtAddr) -> PhysAddr {
        match self.translate(vaddr) {
            Some(p) => p,
            None => {
                let base = self.map(vaddr.page());
                PhysAddr(base.0 + vaddr.page_offset())
            }
        }
    }

    /// Writes a u32 at a virtual address, mapping pages on demand
    /// (byte-wise when straddling a virtual page boundary).
    pub fn write_u32(&mut self, vaddr: VirtAddr, value: u32) {
        if vaddr.page_offset() as usize + 4 <= crate::vmem::PAGE_SIZE_BYTES {
            let p = self.translate_or_map(vaddr);
            self.phys.write_u32(p, value);
        } else {
            self.write_bytes(vaddr, &value.to_le_bytes());
        }
    }

    /// Reads a u32 at a virtual address (0 if unmapped; byte-wise when
    /// straddling a virtual page boundary).
    pub fn read_u32(&self, vaddr: VirtAddr) -> u32 {
        if vaddr.page_offset() as usize + 4 <= crate::vmem::PAGE_SIZE_BYTES {
            match self.translate(vaddr) {
                Some(p) => self.phys.read_u32(p),
                None => 0,
            }
        } else {
            let mut b = [0u8; 4];
            for (i, byte) in b.iter_mut().enumerate() {
                if let Some(p) = self.translate(vaddr.offset(i as i64)) {
                    *byte = self.phys.read_u8(p);
                }
            }
            u32::from_le_bytes(b)
        }
    }

    /// Writes a byte slice starting at a virtual address, mapping pages on
    /// demand. The slice may span pages.
    pub fn write_bytes(&mut self, vaddr: VirtAddr, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            let va = vaddr.offset(i as i64);
            let p = self.translate_or_map(va);
            self.phys.write_u8(p, *b);
        }
    }

    /// Reads the cache line containing `vaddr` through the page tables
    /// (zeroes if unmapped).
    pub fn read_line(&self, vaddr: VirtAddr) -> [u8; LINE_SIZE] {
        match self.translate(vaddr.line()) {
            Some(p) => self.phys.read_line(p.line()),
            None => [0u8; LINE_SIZE],
        }
    }

    /// Serialization support: the allocator cursors
    /// `(next_user_frame, next_table_frame, mapped_pages)`.
    pub fn cursors(&self) -> (u32, u32, u64) {
        (self.next_user_frame, self.next_table_frame, self.mapped_pages)
    }

    /// Serialization support: reconstructs an address space from a
    /// physical image plus the cursors of [`AddressSpace::cursors`]. The
    /// caller is responsible for the image containing consistent page
    /// tables (as produced by a prior space's `phys()`).
    pub fn from_parts(phys: PhysMem, cursors: (u32, u32, u64)) -> Self {
        AddressSpace {
            phys,
            next_user_frame: cursors.0,
            next_table_frame: cursors.1,
            mapped_pages: cursors.2,
        }
    }

    /// Removes the mapping for `vpage` by clearing the present bit of its
    /// page-table entry (the frame itself is not reclaimed — this models a
    /// page being taken away under the prefetcher, not an allocator).
    /// Returns whether a mapping was actually removed.
    pub fn unmap(&mut self, vpage: PageNum) -> bool {
        let pde = self.phys.read_u32(Self::pde_addr(vpage));
        if pde & PTE_PRESENT == 0 {
            return false;
        }
        let pte_addr = Self::pte_addr(pde >> 12, vpage);
        let pte = self.phys.read_u32(pte_addr);
        if pte & PTE_PRESENT == 0 {
            return false;
        }
        self.phys.write_u32(pte_addr, pte & !PTE_PRESENT);
        self.mapped_pages -= 1;
        true
    }

    /// Every currently mapped virtual page, in ascending page-number order
    /// (a page-table walk over all present directory entries).
    pub fn mapped_page_numbers(&self) -> Vec<PageNum> {
        let mut pages = Vec::with_capacity(self.mapped_pages as usize);
        for dir in 0..1024u32 {
            let pde = self.phys.read_u32(PhysAddr(PAGE_DIR_BASE + 4 * dir));
            if pde & PTE_PRESENT == 0 {
                continue;
            }
            for idx in 0..1024u32 {
                let vpage = PageNum((dir << 10) | idx);
                let pte = self.phys.read_u32(Self::pte_addr(pde >> 12, vpage));
                if pte & PTE_PRESENT != 0 {
                    pages.push(vpage);
                }
            }
        }
        pages
    }

    /// Ensures every page in `[start, start+len)` is mapped. Returns the
    /// number of pages newly mapped.
    pub fn map_range(&mut self, start: VirtAddr, len: usize) -> usize {
        let mut newly = 0;
        let first = start.page().0;
        let last = VirtAddr(start.0.wrapping_add(len.saturating_sub(1) as u32))
            .page()
            .0;
        for vp in first..=last {
            if self.translate(PageNum(vp).base()).is_none() {
                self.map(PageNum(vp));
                newly += 1;
            }
        }
        newly
    }
}

/// Returns true when `addr` falls inside the physical region reserved for
/// the page directory and page tables (used by tests and sanity checks).
pub fn is_page_table_phys(addr: PhysAddr) -> bool {
    let f = addr.frame();
    f == 1 || (FIRST_TABLE_FRAME..FIRST_USER_FRAME).contains(&f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::PAGE_SIZE;
    use cdp_types::rng::Rng;

    #[test]
    fn unmapped_translates_to_none() {
        let space = AddressSpace::new();
        assert_eq!(space.translate(VirtAddr(0x1234_5678)), None);
        let walk = space.walk(VirtAddr(0x1234_5678));
        assert!(walk.pte_addr.is_none());
        assert!(walk.frame_base.is_none());
    }

    #[test]
    fn map_then_translate() {
        let mut space = AddressSpace::new();
        let frame = space.map(PageNum(0x10000));
        let p = space.translate(VirtAddr(0x1000_0123)).unwrap();
        assert_eq!(p.0, frame.0 + 0x123);
        assert_eq!(space.mapped_pages(), 1);
        // Mapping again is idempotent.
        let frame2 = space.map(PageNum(0x10000));
        assert_eq!(frame, frame2);
        assert_eq!(space.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut space = AddressSpace::new();
        let f1 = space.map(PageNum(0x10000));
        let f2 = space.map(PageNum(0x10001));
        let f3 = space.map(PageNum(0x20000));
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        assert_ne!(f1, f3);
    }

    #[test]
    fn walk_reads_two_dependent_entries() {
        let mut space = AddressSpace::new();
        space.map(PageNum(0x10000));
        let walk = space.walk(VirtAddr(0x1000_0000));
        assert!(walk.frame_base.is_some());
        let pte = walk.pte_addr.unwrap();
        // The PDE lives in the page directory frame; the PTE in a table frame.
        assert_eq!(walk.pde_addr.frame(), 1);
        assert!(is_page_table_phys(pte));
        assert!(is_page_table_phys(walk.pde_addr));
        assert_eq!(walk.touched_lines().count(), 2);
    }

    #[test]
    fn user_frames_are_outside_table_region() {
        let mut space = AddressSpace::new();
        for vp in 0..64u32 {
            let f = space.map(PageNum(0x40000 + vp));
            assert!(!is_page_table_phys(f), "user frame {f} in table region");
        }
    }

    #[test]
    fn virtual_rw_roundtrip() {
        let mut space = AddressSpace::new();
        space.write_u32(VirtAddr(0x2000_0040), 42);
        assert_eq!(space.read_u32(VirtAddr(0x2000_0040)), 42);
        assert_eq!(space.read_u32(VirtAddr(0x2000_0044)), 0);
        // Unmapped reads are zero.
        assert_eq!(space.read_u32(VirtAddr(0x5000_0000)), 0);
    }

    #[test]
    fn write_bytes_spans_pages() {
        let mut space = AddressSpace::new();
        let data: Vec<u8> = (0u8..200).collect();
        space.write_bytes(VirtAddr(0x1000_0f80), &data);
        for (i, b) in data.iter().enumerate() {
            let va = VirtAddr(0x1000_0f80 + i as u32);
            let p = space.translate(va).unwrap();
            assert_eq!(space.phys().read_u8(p), *b);
        }
        assert_eq!(space.mapped_pages(), 2);
    }

    #[test]
    fn read_line_matches_written_pointers() {
        let mut space = AddressSpace::new();
        space.write_u32(VirtAddr(0x1000_0100), 0x1000_0200);
        space.write_u32(VirtAddr(0x1000_0104), 0x1000_0300);
        let line = space.read_line(VirtAddr(0x1000_0110));
        assert_eq!(
            u32::from_le_bytes(line[0..4].try_into().unwrap()),
            0x1000_0200
        );
        assert_eq!(
            u32::from_le_bytes(line[4..8].try_into().unwrap()),
            0x1000_0300
        );
    }

    #[test]
    fn parts_roundtrip_preserves_translations() {
        let mut space = AddressSpace::new();
        space.write_u32(VirtAddr(0x1234_5678 & !3), 99);
        space.write_u32(VirtAddr(0x2000_0000), 7);
        let cursors = space.cursors();
        let rebuilt = AddressSpace::from_parts(space.phys().clone(), cursors);
        assert_eq!(rebuilt.read_u32(VirtAddr(0x1234_5678 & !3)), 99);
        assert_eq!(rebuilt.read_u32(VirtAddr(0x2000_0000)), 7);
        assert_eq!(rebuilt.translate(VirtAddr(0x2000_0000)), space.translate(VirtAddr(0x2000_0000)));
        assert_eq!(rebuilt.mapped_pages(), space.mapped_pages());
        // The rebuilt space can keep allocating without clobbering.
        let mut rebuilt = rebuilt;
        let f = rebuilt.map(cdp_types::PageNum(0x30000));
        assert!(space.translate(VirtAddr(0x3000_0000)).is_none());
        assert_eq!(rebuilt.translate(VirtAddr(0x3000_0000)), Some(f));
    }

    #[test]
    fn unmap_clears_translation_and_is_reported_by_the_walker() {
        let mut space = AddressSpace::new();
        space.write_u32(VirtAddr(0x1000_0000), 7);
        assert!(space.translate(VirtAddr(0x1000_0000)).is_some());
        assert!(space.unmap(PageNum(0x10000)));
        assert_eq!(space.translate(VirtAddr(0x1000_0000)), None);
        assert_eq!(space.mapped_pages(), 0);
        let walk = space.walk(VirtAddr(0x1000_0000));
        assert!(walk.pte_addr.is_some(), "directory entry survives");
        assert!(walk.frame_base.is_none());
        // Unmapping twice (or an unmapped page) is a no-op.
        assert!(!space.unmap(PageNum(0x10000)));
        assert!(!space.unmap(PageNum(0x70000)));
    }

    #[test]
    fn mapped_page_enumeration_matches_the_count() {
        let mut space = AddressSpace::new();
        for vp in [0x10000u32, 0x10007, 0x30001] {
            space.map(PageNum(vp));
        }
        assert_eq!(
            space.mapped_page_numbers(),
            vec![PageNum(0x10000), PageNum(0x10007), PageNum(0x30001)]
        );
        space.unmap(PageNum(0x10007));
        assert_eq!(space.mapped_page_numbers().len(), space.mapped_pages() as usize);
    }

    #[test]
    fn map_range_counts_new_pages() {
        let mut space = AddressSpace::new();
        assert_eq!(space.map_range(VirtAddr(0x3000_0800), 2 * PAGE_SIZE), 3);
        assert_eq!(space.map_range(VirtAddr(0x3000_0800), 2 * PAGE_SIZE), 0);
    }

    #[test]
    fn prop_translate_preserves_offset() {
        let mut rng = Rng::seed_from_u64(0x3e40_0001);
        for _ in 0..256 {
            let vaddr = VirtAddr(rng.gen_range_u32(0..0x4000_0000));
            let mut space = AddressSpace::new();
            let p = space.translate_or_map(vaddr);
            assert_eq!(p.page_offset(), vaddr.page_offset());
        }
    }

    #[test]
    fn prop_walk_agrees_with_translate() {
        let mut rng = Rng::seed_from_u64(0x3e40_0002);
        for _ in 0..256 {
            let vaddr = VirtAddr(rng.gen_range_u32(0..0x4000_0000));
            let mut space = AddressSpace::new();
            space.translate_or_map(vaddr);
            let walk = space.walk(vaddr);
            let t = space.translate(vaddr).unwrap();
            assert_eq!(walk.frame_base.unwrap().0, t.0 - vaddr.page_offset());
        }
    }

    #[test]
    fn prop_rw_roundtrip_virtual() {
        let mut rng = Rng::seed_from_u64(0x3e40_0003);
        for _ in 0..256 {
            let vaddr = VirtAddr(rng.gen_range_u32(0..0x4000_0000) & !3);
            if vaddr.page_offset() as usize + 4 > PAGE_SIZE {
                continue;
            }
            let value = rng.next_u32();
            let mut space = AddressSpace::new();
            space.write_u32(vaddr, value);
            assert_eq!(space.read_u32(vaddr), value);
        }
    }
}
