//! Translation look-aside buffers.
//!
//! A thin, page-granular wrapper over the generic set-associative [`Cache`]:
//! keys are virtual page numbers, payloads are physical frame bases. The
//! paper's DTLB is 64-entry 4-way; §4.2.2 sweeps it from 64 to 1024 entries
//! to show that the content prefetcher's gains are not merely TLB
//! prefetching.

use cdp_types::{PageNum, PhysAddr, TlbConfig};

use crate::cache::Cache;

/// A set-associative TLB.
///
/// # Examples
///
/// ```
/// use cdp_mem::Tlb;
/// use cdp_types::{PageNum, PhysAddr, TlbConfig};
///
/// let mut tlb = Tlb::new(&TlbConfig::dtlb_asplos2002());
/// assert_eq!(tlb.lookup(PageNum(0x10000)), None);
/// tlb.insert(PageNum(0x10000), PhysAddr(0x40_0000));
/// assert_eq!(tlb.lookup(PageNum(0x10000)), Some(PhysAddr(0x40_0000)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache<PhysAddr>,
    entries: usize,
}

impl Tlb {
    /// Creates a TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `associativity`.
    pub fn new(cfg: &TlbConfig) -> Self {
        assert!(
            cfg.entries.is_multiple_of(cfg.associativity),
            "TLB entries must divide evenly into sets"
        );
        let sets = cfg.entries / cfg.associativity;
        Tlb {
            // Page-number keys: treat each "line" as 1 byte wide.
            inner: Cache::new(sets, cfg.associativity, 1),
            entries: cfg.entries,
        }
    }

    /// Total entry capacity.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Looks up a translation, updating LRU and hit/miss statistics.
    pub fn lookup(&mut self, page: PageNum) -> Option<PhysAddr> {
        self.inner.access(page.0).copied()
    }

    /// Whether a translation is cached, without disturbing LRU or stats.
    pub fn probe(&self, page: PageNum) -> bool {
        self.inner.probe(page.0)
    }

    /// Installs a translation (evicting LRU in the set if full).
    pub fn insert(&mut self, page: PageNum, frame_base: PhysAddr) {
        self.inner.fill(page.0, frame_base);
    }

    /// Drops a translation.
    pub fn invalidate(&mut self, page: PageNum) -> Option<PhysAddr> {
        self.inner.invalidate(page.0)
    }

    /// (hits, misses) counted by [`Tlb::lookup`].
    pub fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }

    /// Resets hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    /// Serializes the complete TLB state (delegates to the inner cache).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        self.inner.save_state(enc, |frame, e| e.u32(frame.0));
    }

    /// Restores state written by [`Tlb::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or a
    /// geometry mismatch.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.inner
            .restore_state(dec, |d| Ok(PhysAddr(d.u32("tlb frame base")?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dtlb() -> Tlb {
        Tlb::new(&TlbConfig::dtlb_asplos2002())
    }

    #[test]
    fn miss_insert_hit() {
        let mut tlb = dtlb();
        assert_eq!(tlb.lookup(PageNum(5)), None);
        tlb.insert(PageNum(5), PhysAddr(0x1000));
        assert_eq!(tlb.lookup(PageNum(5)), Some(PhysAddr(0x1000)));
        assert_eq!(tlb.stats(), (1, 1));
    }

    #[test]
    fn capacity_eviction_within_set() {
        let mut tlb = dtlb(); // 16 sets x 4 ways
        // Pages mapping to set 0: page % 16 == 0.
        for i in 0..5u32 {
            tlb.insert(PageNum(i * 16), PhysAddr(i * 0x1000));
        }
        // First-inserted is LRU and must be gone.
        assert!(!tlb.probe(PageNum(0)));
        for i in 1..5u32 {
            assert!(tlb.probe(PageNum(i * 16)), "page {i} should remain");
        }
    }

    #[test]
    fn fully_associative_itlb() {
        let mut tlb = Tlb::new(&TlbConfig::itlb_asplos2002());
        assert_eq!(tlb.entries(), 128);
        for i in 0..128u32 {
            tlb.insert(PageNum(i), PhysAddr(i << 12));
        }
        for i in 0..128u32 {
            assert!(tlb.probe(PageNum(i)));
        }
        tlb.insert(PageNum(1000), PhysAddr(0));
        // Exactly one entry was displaced.
        let resident = (0..128u32).filter(|&i| tlb.probe(PageNum(i))).count();
        assert_eq!(resident, 127);
    }

    #[test]
    fn invalidate() {
        let mut tlb = dtlb();
        tlb.insert(PageNum(7), PhysAddr(0x7000));
        assert_eq!(tlb.invalidate(PageNum(7)), Some(PhysAddr(0x7000)));
        assert_eq!(tlb.lookup(PageNum(7)), None);
    }

    #[test]
    fn larger_tlb_sweep_geometries() {
        // §4.2.2 doubles the DTLB repeatedly from 64 to 1024 entries.
        for entries in [64usize, 128, 256, 512, 1024] {
            let tlb = Tlb::new(&TlbConfig {
                entries,
                associativity: 4,
            });
            assert_eq!(tlb.entries(), entries);
        }
    }
}
