//! Component-level snapshot round-trips: exercise each stateful cdp-mem
//! structure, save it, restore into a freshly constructed instance, and
//! check that *future behavior* (not just observable stats) is identical.

use cdp_mem::{Arbiter, Bus, MshrFile, PhysMem, Tlb};
use cdp_snap::{Dec, Enc};
use cdp_types::rng::Rng;
use cdp_types::{
    BusConfig, LineAddr, PageNum, PhysAddr, RequestKind, TlbConfig, VirtAddr, LINE_SIZE, PAGE_SIZE,
};

fn roundtrip<T>(save: impl FnOnce(&mut Enc), restore: impl FnOnce(&mut Dec<'_>) -> T) -> T {
    let mut enc = Enc::new();
    save(&mut enc);
    let bytes = enc.into_bytes();
    let mut dec = Dec::new(&bytes);
    let out = restore(&mut dec);
    assert!(dec.is_exhausted(), "restore left trailing bytes");
    out
}

fn random_kind(rng: &mut Rng) -> RequestKind {
    match rng.gen_range_u8(0..5) {
        0 => RequestKind::Demand,
        1 => RequestKind::PageWalk,
        2 => RequestKind::Stride,
        3 => RequestKind::Markov,
        _ => RequestKind::Content {
            depth: rng.gen_range_u8(1..8),
        },
    }
}

#[test]
fn tlb_roundtrip_preserves_future_evictions() {
    let cfg = TlbConfig::dtlb_asplos2002();
    let mut rng = Rng::seed_from_u64(0x51a9_0001);
    let mut a = Tlb::new(&cfg);
    for _ in 0..300 {
        let page = PageNum(rng.gen_range_u32(0..128));
        if a.lookup(page).is_none() {
            a.insert(page, PhysAddr(page.0 << 12));
        }
    }
    let mut b = Tlb::new(&cfg);
    roundtrip(|e| a.save_state(e), |d| b.restore_state(d).unwrap());
    assert_eq!(a.stats(), b.stats());
    // Drive both forward: LRU decisions must coincide.
    for _ in 0..300 {
        let page = PageNum(rng.gen_range_u32(0..128));
        assert_eq!(a.lookup(page), b.lookup(page));
        if !a.probe(page) {
            a.insert(page, PhysAddr(page.0 << 12));
            b.insert(page, PhysAddr(page.0 << 12));
        }
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn mshr_roundtrip_preserves_probe_layout_and_drain_order() {
    let mut rng = Rng::seed_from_u64(0x51a9_0002);
    let mut a = MshrFile::with_capacity(32);
    for i in 0..200u64 {
        let line = LineAddr(rng.gen_range_u32(0..256) * LINE_SIZE as u32);
        let kind = random_kind(&mut rng);
        if a.lookup(line).is_none() {
            a.insert(line, VirtAddr(line.0), kind, i, i + 1 + rng.next_u64() % 400);
        }
        if i % 17 == 0 {
            let mut done = Vec::new();
            a.drain_complete_into(i, &mut done);
        }
    }
    let mut b = MshrFile::with_capacity(32);
    roundtrip(|e| a.save_state(e), |d| b.restore_state(d).unwrap());
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.len(), b.len());
    // Future inserts and drains must behave identically (same probe
    // chains, same completion order).
    for i in 200..400u64 {
        let line = LineAddr(rng.gen_range_u32(0..256) * LINE_SIZE as u32);
        let kind = random_kind(&mut rng);
        assert_eq!(a.lookup(line).is_some(), b.lookup(line).is_some());
        if a.lookup(line).is_none() {
            a.insert(line, VirtAddr(line.0), kind, i, i + 100);
            b.insert(line, VirtAddr(line.0), kind, i, i + 100);
        }
        assert_eq!(a.next_completion(), b.next_completion());
        let mut da = Vec::new();
        let mut db = Vec::new();
        a.drain_complete_into(i, &mut da);
        b.drain_complete_into(i, &mut db);
        assert_eq!(da, db);
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn bus_roundtrip_preserves_timing_tracks() {
    let cfg = BusConfig::default();
    let mut rng = Rng::seed_from_u64(0x51a9_0003);
    let mut a = Bus::new(&cfg);
    for i in 0..100u64 {
        let demand = rng.gen_range_u8(0..2) == 0;
        a.schedule(i * 3, demand);
    }
    let mut b = Bus::new(&cfg);
    roundtrip(|e| a.save_state(e), |d| b.restore_state(d).unwrap());
    assert_eq!(a.stats(), b.stats());
    for i in 100..200u64 {
        let now = i * 3;
        assert_eq!(a.prefetch_backlog_at(now), b.prefetch_backlog_at(now));
        assert_eq!(a.outstanding_at(now), b.outstanding_at(now));
        assert_eq!(a.schedule(now, true), b.schedule(now, true));
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn arbiter_roundtrip_preserves_pop_order() {
    let mut rng = Rng::seed_from_u64(0x51a9_0004);
    let mut a = Arbiter::new(8);
    for i in 0..40u64 {
        let line = LineAddr(rng.gen_range_u32(0..64) * LINE_SIZE as u32);
        a.enqueue(line, random_kind(&mut rng), i);
        if i % 5 == 0 {
            a.pop();
        }
    }
    let mut b = Arbiter::new(8);
    roundtrip(|e| a.save_state(e), |d| b.restore_state(d).unwrap());
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.len(), b.len());
    for i in 40..120u64 {
        match rng.gen_range_u8(0..3) {
            0 => {
                let line = LineAddr(rng.gen_range_u32(0..64) * LINE_SIZE as u32);
                let kind = random_kind(&mut rng);
                assert_eq!(a.enqueue(line, kind, i), b.enqueue(line, kind, i));
            }
            1 => {
                let got_a = a.pop().map(|r| (r.line, r.kind, r.enqueued_at));
                let got_b = b.pop().map(|r| (r.line, r.kind, r.enqueued_at));
                assert_eq!(got_a, got_b);
            }
            _ => {
                let line = LineAddr(rng.gen_range_u32(0..64) * LINE_SIZE as u32);
                assert_eq!(a.promote(line, RequestKind::Demand), b.promote(line, RequestKind::Demand));
            }
        }
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn physmem_roundtrip_and_fingerprint() {
    let mut rng = Rng::seed_from_u64(0x51a9_0005);
    let mut a = PhysMem::new();
    for _ in 0..50 {
        let addr = PhysAddr(rng.gen_range_u32(0..64) * PAGE_SIZE as u32 + rng.gen_range_u32(0..256));
        a.write_u32(addr, rng.next_u32());
    }
    let fp = a.state_fingerprint();
    let mut b = PhysMem::new();
    roundtrip(|e| a.save_state(e), |d| b.restore_state(d).unwrap());
    assert_eq!(b.resident_frames(), a.resident_frames());
    assert_eq!(b.state_fingerprint(), fp, "fingerprint survives round-trip");
    for (num, data) in a.frames() {
        let base = PhysAddr(num << 12);
        assert_eq!(&b.read_bytes(base, PAGE_SIZE)[..], &data[..]);
    }
    // Fingerprint is insertion-order independent.
    let mut c = PhysMem::new();
    let frames: Vec<(u32, [u8; PAGE_SIZE])> = a.frames().map(|(n, d)| (n, *d)).collect();
    for (n, d) in frames.iter().rev() {
        c.install_frame(*n, *d);
    }
    assert_eq!(c.state_fingerprint(), fp);
}

#[test]
fn truncated_component_state_is_a_typed_error() {
    let mut a = MshrFile::with_capacity(16);
    a.insert(LineAddr(0x40), VirtAddr(0x40), RequestKind::Demand, 1, 10);
    let mut enc = Enc::new();
    a.save_state(&mut enc);
    let bytes = enc.into_bytes();
    for n in 0..bytes.len() {
        let mut b = MshrFile::with_capacity(16);
        let mut dec = Dec::new(&bytes[..n]);
        assert!(
            b.restore_state(&mut dec).is_err(),
            "truncation at {n} went undetected"
        );
    }
}
