//! Property check: the flat set-major [`Cache`] is behaviorally identical
//! to the nested-`Vec` reference model it replaced.
//!
//! The reference reimplements the historical per-set `Vec<Entry>` cache —
//! push on fill, `swap_remove` on eviction/invalidate, the same xorshift
//! stream for Random replacement — and the test drives both with the same
//! random operation mix across every replacement policy and a spread of
//! eviction classes, comparing each return value and the full resident
//! state as it goes. Any divergence in slot ordering, stamp handling, or
//! rng consumption shows up as a mismatched eviction.

use cdp_mem::{Cache, EvictClass, EvictedLine};
use cdp_types::rng::Rng;
use cdp_types::ReplacementPolicy;

/// Per-line metadata carrying an eviction-class preference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Meta {
    id: u32,
    class: u8,
}

impl EvictClass for Meta {
    fn evict_class(&self) -> u8 {
        self.class
    }
}

/// One resident line of the reference model.
#[derive(Clone, Debug)]
struct RefEntry {
    line: u32,
    meta: Meta,
    stamp: u64,
}

/// The pre-flattening cache: one `Vec` per set, in push order.
struct RefCache {
    sets: Vec<Vec<RefEntry>>,
    associativity: usize,
    line_mask: u32,
    line_shift: u32,
    policy: ReplacementPolicy,
    rng: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl RefCache {
    fn new(num_sets: usize, associativity: usize, line_size: u32, policy: ReplacementPolicy) -> Self {
        RefCache {
            sets: vec![Vec::new(); num_sets],
            associativity,
            line_mask: !(line_size - 1),
            line_shift: line_size.trailing_zeros(),
            policy,
            rng: 0x9e37_79b9_7f4a_7c15,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, line: u32) -> usize {
        ((line >> self.line_shift) as usize) % self.sets.len()
    }

    fn align(&self, addr: u32) -> u32 {
        addr & self.line_mask
    }

    fn probe(&self, addr: u32) -> bool {
        let line = self.align(addr);
        self.sets[self.set_index(line)].iter().any(|e| e.line == line)
    }

    fn access(&mut self, addr: u32) -> Option<Meta> {
        let line = self.align(addr);
        let set = self.set_index(line);
        self.clock += 1;
        let clock = self.clock;
        let refresh = !matches!(self.policy, ReplacementPolicy::Fifo);
        match self.sets[set].iter_mut().find(|e| e.line == line) {
            Some(e) => {
                self.hits += 1;
                if refresh {
                    e.stamp = clock;
                }
                Some(e.meta)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn peek(&self, addr: u32) -> Option<Meta> {
        let line = self.align(addr);
        self.sets[self.set_index(line)]
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.meta)
    }

    fn fill(&mut self, addr: u32, meta: Meta) -> Option<EvictedLine<Meta>> {
        let line = self.align(addr);
        let set = self.set_index(line);
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.line == line) {
            e.meta = meta;
            e.stamp = clock;
            return None;
        }
        let evicted = if self.sets[set].len() >= self.associativity {
            let ways = &self.sets[set];
            let way = match self.policy {
                ReplacementPolicy::Lru | ReplacementPolicy::Fifo => ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (std::cmp::Reverse(e.meta.evict_class()), e.stamp))
                    .map(|(w, _)| w)
                    .expect("set is non-empty"),
                ReplacementPolicy::Random => {
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    let worst = ways
                        .iter()
                        .map(|e| e.meta.evict_class())
                        .max()
                        .expect("set is non-empty");
                    let candidates: Vec<usize> = ways
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.meta.evict_class() == worst)
                        .map(|(w, _)| w)
                        .collect();
                    candidates[(self.rng as usize) % candidates.len()]
                }
            };
            let e = self.sets[set].swap_remove(way);
            Some(EvictedLine {
                line: e.line,
                meta: e.meta,
            })
        } else {
            None
        };
        self.sets[set].push(RefEntry { line, meta, stamp: clock });
        evicted
    }

    fn invalidate(&mut self, addr: u32) -> Option<Meta> {
        let line = self.align(addr);
        let set = self.set_index(line);
        let way = self.sets[set].iter().position(|e| e.line == line)?;
        Some(self.sets[set].swap_remove(way).meta)
    }

    fn resident(&self) -> Vec<(u32, Meta)> {
        let mut v: Vec<(u32, Meta)> = self
            .sets
            .iter()
            .flat_map(|s| s.iter().map(|e| (e.line, e.meta)))
            .collect();
        v.sort_by_key(|&(line, _)| line);
        v
    }
}

fn resident_flat(cache: &Cache<Meta>) -> Vec<(u32, Meta)> {
    let mut v: Vec<(u32, Meta)> = cache.iter().map(|(&l, &m)| (l, m)).collect();
    v.sort_by_key(|&(line, _)| line);
    v
}

/// Drives both models through the same random op mix and compares every
/// observable result plus full resident state.
fn check_policy(policy: ReplacementPolicy, seed: u64) {
    const NUM_SETS: usize = 4;
    const ASSOC: usize = 4;
    const LINE: u32 = 64;
    // Small address pool so sets fill, conflict, and churn.
    const LINES: u32 = 48;

    let mut rng = Rng::seed_from_u64(seed);
    let mut flat: Cache<Meta> = Cache::new(NUM_SETS, ASSOC, LINE as usize).with_policy(policy);
    let mut reference = RefCache::new(NUM_SETS, ASSOC, LINE, policy);

    for step in 0..6000u32 {
        let addr = (rng.next_u32() % LINES) * LINE + rng.next_u32() % LINE;
        match rng.next_u32() % 10 {
            // Fill dominates so evictions are constantly exercised.
            0..=4 => {
                let meta = Meta {
                    id: step,
                    class: (rng.next_u32() % 3) as u8,
                };
                let got = flat.fill(addr, meta);
                let want = reference.fill(addr, meta);
                assert_eq!(got, want, "fill divergence at step {step} ({policy:?})");
            }
            5..=7 => {
                let got = flat.access(addr).map(|m| *m);
                let want = reference.access(addr);
                assert_eq!(got, want, "access divergence at step {step} ({policy:?})");
            }
            8 => {
                let got = flat.invalidate(addr);
                let want = reference.invalidate(addr);
                assert_eq!(got, want, "invalidate divergence at step {step} ({policy:?})");
            }
            _ => {
                assert_eq!(
                    flat.probe(addr),
                    reference.probe(addr),
                    "probe divergence at step {step} ({policy:?})"
                );
                let got = flat.peek(addr).copied();
                assert_eq!(got, reference.peek(addr), "peek divergence at step {step}");
            }
        }
        if step % 64 == 0 {
            assert_eq!(
                resident_flat(&flat),
                reference.resident(),
                "resident-state divergence at step {step} ({policy:?})"
            );
            assert_eq!(flat.stats(), (reference.hits, reference.misses));
            assert_eq!(flat.resident_lines(), reference.resident().len());
        }
    }
    assert_eq!(resident_flat(&flat), reference.resident());
    assert_eq!(flat.stats(), (reference.hits, reference.misses));
}

#[test]
fn flat_cache_matches_nested_vec_reference_lru() {
    check_policy(ReplacementPolicy::Lru, 0xcafe_0001);
    check_policy(ReplacementPolicy::Lru, 0xcafe_0002);
}

#[test]
fn flat_cache_matches_nested_vec_reference_fifo() {
    check_policy(ReplacementPolicy::Fifo, 0xcafe_0003);
    check_policy(ReplacementPolicy::Fifo, 0xcafe_0004);
}

#[test]
fn flat_cache_matches_nested_vec_reference_random() {
    check_policy(ReplacementPolicy::Random, 0xcafe_0005);
    check_policy(ReplacementPolicy::Random, 0xcafe_0006);
}

/// Single-way degenerate geometry: every fill of a conflicting line must
/// evict, and the Random policy's modulus is always 1 — both models must
/// still agree on the evicted line and the rng stream they consumed.
#[test]
fn flat_cache_matches_reference_direct_mapped() {
    const LINE: u32 = 32;
    let mut rng = Rng::seed_from_u64(0xcafe_0007);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let mut flat: Cache<Meta> = Cache::new(2, 1, LINE as usize).with_policy(policy);
        let mut reference = RefCache::new(2, 1, LINE, policy);
        for step in 0..800u32 {
            let addr = (rng.next_u32() % 8) * LINE;
            let meta = Meta { id: step, class: 0 };
            assert_eq!(flat.fill(addr, meta), reference.fill(addr, meta));
        }
        assert_eq!(resident_flat(&flat), reference.resident());
    }
}
