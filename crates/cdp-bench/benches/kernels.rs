//! Micro-benchmarks of the simulator's hot kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cdp_mem::{AddressSpace, Bus, Cache};
use cdp_prefetch::{scan_line, ContentPrefetcher, StridePrefetcher};
use cdp_types::{BusConfig, ContentConfig, StrideConfig, VamConfig, VirtAddr, LINE_SIZE};

fn bench_vam_scan(c: &mut Criterion) {
    let cfg = VamConfig::tuned();
    let trigger = VirtAddr(0x1040_2468);
    // A line with a realistic mix: two pointers, rest junk.
    let mut data = [0u8; LINE_SIZE];
    data[4..8].copy_from_slice(&0x1023_4560u32.to_le_bytes());
    data[36..40].copy_from_slice(&0x10ab_cd00u32.to_le_bytes());
    for i in (8..32).step_by(4) {
        data[i..i + 4].copy_from_slice(&(i as u32 * 37).to_le_bytes());
    }
    c.bench_function("vam/scan_line_8.4.1.2", |b| {
        b.iter(|| scan_line(black_box(&data), black_box(trigger), black_box(&cfg)))
    });
    let byte_cfg = VamConfig {
        scan_step: 1,
        ..cfg
    };
    c.bench_function("vam/scan_line_byte_step", |b| {
        b.iter(|| scan_line(black_box(&data), black_box(trigger), black_box(&byte_cfg)))
    });
}

fn bench_content_scan_fill(c: &mut Criterion) {
    let mut cdp = ContentPrefetcher::new(ContentConfig::tuned());
    let mut data = [0u8; LINE_SIZE];
    data[4..8].copy_from_slice(&0x1023_4560u32.to_le_bytes());
    let mut out = Vec::with_capacity(16);
    c.bench_function("content/scan_fill", |b| {
        b.iter(|| {
            out.clear();
            cdp.scan_fill(black_box(VirtAddr(0x1000_0040)), black_box(&data), 0, &mut out);
            out.len()
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut cache: Cache<u8> = Cache::new(2048, 8, 64);
    for i in 0..16_384u32 {
        cache.fill(i * 64, 0);
    }
    let mut i = 0u32;
    c.bench_function("cache/access_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 16_384;
            cache.access(black_box(i * 64)).is_some()
        })
    });
    let mut j = 0u32;
    c.bench_function("cache/fill_evict", |b| {
        b.iter(|| {
            j += 1;
            cache.fill(black_box(0x100_0000 + j * 64), 1)
        })
    });
}

fn bench_bus(c: &mut Criterion) {
    let mut bus = Bus::new(&BusConfig::default());
    let mut t = 0u64;
    c.bench_function("bus/schedule", |b| {
        b.iter(|| {
            t += 10;
            bus.schedule(black_box(t), t.is_multiple_of(3))
        })
    });
}

fn bench_stride(c: &mut Criterion) {
    let mut sp = StridePrefetcher::new(&StrideConfig::default());
    let mut out = Vec::with_capacity(8);
    let mut a = 0u32;
    c.bench_function("stride/observe_steady", |b| {
        b.iter(|| {
            a = a.wrapping_add(64);
            out.clear();
            sp.observe(0x40, VirtAddr(0x2000_0000 + a), &mut out);
            out.len()
        })
    });
}

fn bench_page_walk(c: &mut Criterion) {
    let mut space = AddressSpace::new();
    for p in 0..512u32 {
        space.write_u32(VirtAddr(0x1000_0000 + p * 4096), 1);
    }
    let mut p = 0u32;
    c.bench_function("vmem/walk", |b| {
        b.iter(|| {
            p = (p + 1) % 512;
            space.walk(black_box(VirtAddr(0x1000_0000 + p * 4096)))
        })
    });
}

criterion_group!(
    kernels,
    bench_vam_scan,
    bench_content_scan_fill,
    bench_cache,
    bench_bus,
    bench_stride,
    bench_page_walk
);
criterion_main!(kernels);
