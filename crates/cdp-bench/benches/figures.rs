//! One Criterion benchmark per paper table/figure: each measures the cost
//! of regenerating that artifact at smoke scale, so both correctness
//! plumbing and performance regressions in any experiment path surface
//! here. (`cargo run -p cdp-experiments -- <id> --full` produces the
//! actual EXPERIMENTS.md numbers; these benches keep the machinery hot.)

use criterion::{criterion_group, criterion_main, Criterion};

use cdp_bench::{bench_workload, run};
use cdp_experiments::{fig1, fig10, fig11, fig2, fig34, fig7, fig8, fig9, tlb, ExpScale};
use cdp_types::{SystemConfig, VamConfig};
use cdp_workloads::suite::Benchmark;

fn small(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g
}

fn bench_table1_fig2(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("table1", |b| b.iter(cdp_experiments::table1::run));
    g.bench_function("fig2", |b| b.iter(|| fig2::run(VamConfig::tuned())));
    g.finish();
}

fn bench_fig34(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig34_walkthrough", |b| b.iter(fig34::run));
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig1_mptu_trace", |b| b.iter(|| fig1::run(ExpScale::Smoke)));
    g.finish();
}

fn bench_table2_row(c: &mut Criterion) {
    // One Table 2 row (two cache sizes on one benchmark) rather than all
    // fifteen, to keep the bench wall-clock sane.
    let w = bench_workload(Benchmark::Tpcc2);
    let cfg_1mb = SystemConfig::asplos2002();
    let mut cfg_4mb = SystemConfig::asplos2002();
    cfg_4mb.ul2.size_bytes = 4 << 20;
    let mut g = small(c);
    g.bench_function("table2_row_tpcc2", |b| {
        b.iter(|| (run(&cfg_1mb, &w).mptu(), run(&cfg_4mb, &w).mptu()))
    });
    g.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let w = bench_workload(Benchmark::Slsb);
    let mut cfg = SystemConfig::with_content();
    if let Some(cc) = cfg.prefetchers.content.as_mut() {
        cc.vam = VamConfig {
            compare_bits: 8,
            filter_bits: 4,
            ..VamConfig::tuned()
        };
    }
    let mut g = small(c);
    g.bench_function("fig7_point_08_4", |b| b.iter(|| run(&cfg, &w).mem.content.issued));
    g.finish();
}

fn bench_fig8_point(c: &mut Criterion) {
    let w = bench_workload(Benchmark::Slsb);
    let mut cfg = SystemConfig::with_content();
    if let Some(cc) = cfg.prefetchers.content.as_mut() {
        cc.vam = VamConfig {
            align_bits: 1,
            scan_step: 2,
            ..VamConfig::tuned()
        };
    }
    let mut g = small(c);
    g.bench_function("fig8_point_8_4_1_2", |b| b.iter(|| run(&cfg, &w).mem.content.issued));
    g.finish();
}

fn bench_fig9_cell(c: &mut Criterion) {
    // One grid cell: the paper's winning configuration on one benchmark.
    let w = bench_workload(Benchmark::Tpcc3);
    let base = SystemConfig::asplos2002();
    let cdp = SystemConfig::with_content();
    let mut g = small(c);
    g.bench_function("fig9_cell_d3_reinf_p0n3", |b| {
        b.iter(|| {
            let b0 = run(&base, &w);
            let v = run(&cdp, &w);
            b0.cycles as f64 / v.cycles as f64
        })
    });
    g.finish();
}

fn bench_fig10_row(c: &mut Criterion) {
    let w = bench_workload(Benchmark::SpecjbbVsnet);
    let cfg = SystemConfig::with_content();
    let mut g = small(c);
    g.bench_function("fig10_row_specjbb", |b| {
        b.iter(|| run(&cfg, &w).mem.distribution.fractions())
    });
    g.finish();
}

fn bench_fig11_bar(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig11_three_benchmarks", |b| {
        b.iter(|| {
            fig11::run_on(
                ExpScale::Smoke,
                &[Benchmark::Slsb, Benchmark::Tpcc2, Benchmark::B2e],
            )
        })
    });
    g.finish();
}

fn bench_fig7_full_sweep(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig7_sweep_smoke", |b| b.iter(|| fig7::run(ExpScale::Smoke)));
    g.finish();
}

fn bench_fig8_full_sweep(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig8_sweep_smoke", |b| b.iter(|| fig8::run(ExpScale::Smoke)));
    g.finish();
}

fn bench_fig9_grid(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig9_grid_smoke", |b| b.iter(|| fig9::run(ExpScale::Smoke)));
    g.finish();
}

fn bench_fig10_suite(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig10_suite_smoke", |b| b.iter(|| fig10::run(ExpScale::Smoke)));
    g.finish();
}

fn bench_tlb_sweep(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("tlb_sweep_smoke", |b| b.iter(|| tlb::run(ExpScale::Smoke)));
    g.finish();
}

fn bench_pollution(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("pollution_two_benchmarks", |b| {
        b.iter(|| {
            cdp_experiments::pollution::run_on(
                ExpScale::Smoke,
                &[Benchmark::B2e, Benchmark::Tpcc2],
            )
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1_fig2,
    bench_fig34,
    bench_fig1,
    bench_table2_row,
    bench_fig7_point,
    bench_fig8_point,
    bench_fig9_cell,
    bench_fig10_row,
    bench_fig11_bar,
    bench_fig7_full_sweep,
    bench_fig8_full_sweep,
    bench_fig9_grid,
    bench_fig10_suite,
    bench_tlb_sweep,
    bench_pollution
);
criterion_main!(figures);
