//! Ablation benches for the design choices DESIGN.md calls out: each
//! measures one knob's cost/benefit in simulated cycles (reported via
//! Criterion's wall-clock, since run cycles are deterministic the wall
//! clock tracks simulated work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdp_bench::{bench_workload, run};
use cdp_types::{ContentConfig, MarkovConfig, SystemConfig};
use cdp_workloads::suite::Benchmark;

fn cfg_with(content: ContentConfig) -> SystemConfig {
    let mut cfg = SystemConfig::asplos2002();
    cfg.prefetchers.content = Some(content);
    cfg
}

/// Chain-depth ablation (the Figure 9 depth axis at fixed width).
fn ablate_depth(c: &mut Criterion) {
    let w = bench_workload(Benchmark::Slsb);
    let mut g = c.benchmark_group("ablate/depth");
    g.sample_size(10);
    for depth in [1u8, 3, 5, 9] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let cfg = cfg_with(ContentConfig {
                depth_threshold: d,
                ..ContentConfig::tuned()
            });
            b.iter(|| run(&cfg, &w).cycles)
        });
    }
    g.finish();
}

/// Width ablation (next-line count at fixed depth).
fn ablate_width(c: &mut Criterion) {
    let w = bench_workload(Benchmark::Tpcc2);
    let mut g = c.benchmark_group("ablate/width");
    g.sample_size(10);
    for n in [0u32, 1, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = cfg_with(ContentConfig {
                next_lines: n,
                ..ContentConfig::tuned()
            });
            b.iter(|| run(&cfg, &w).cycles)
        });
    }
    g.finish();
}

/// Reinforcement-margin ablation: Figure 4(b) margin 1 vs Figure 4(c)
/// margin 2 (the paper shows (c) halves the rescan traffic).
fn ablate_reinforcement_margin(c: &mut Criterion) {
    let w = bench_workload(Benchmark::VerilogFunc);
    let mut g = c.benchmark_group("ablate/reinf_margin");
    g.sample_size(10);
    for margin in [1u8, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(margin), &margin, |b, &m| {
            let cfg = cfg_with(ContentConfig {
                reinforcement_margin: m,
                ..ContentConfig::tuned()
            });
            b.iter(|| run(&cfg, &w).mem.rescans)
        });
    }
    g.finish();
}

/// Scan-step ablation: 1-byte scans examine 61 words per line, 4-byte
/// scans 16 — the §3.3 hardware-cost argument.
fn ablate_scan_step(c: &mut Criterion) {
    let w = bench_workload(Benchmark::Slsb);
    let mut g = c.benchmark_group("ablate/scan_step");
    g.sample_size(10);
    for step in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(step), &step, |b, &s| {
            let mut content = ContentConfig::tuned();
            content.vam.scan_step = s;
            let cfg = cfg_with(content);
            b.iter(|| run(&cfg, &w).cycles)
        });
    }
    g.finish();
}

/// Markov fan-out ablation (the STAB stores up to N successors).
fn ablate_markov_fanout(c: &mut Criterion) {
    let w = bench_workload(Benchmark::Tpcc3);
    let mut g = c.benchmark_group("ablate/markov_fanout");
    g.sample_size(10);
    for fanout in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, &f| {
            let cfg = SystemConfig::with_markov(
                MarkovConfig {
                    fanout: f,
                    ..MarkovConfig::unbounded()
                },
                1 << 20,
                8,
            );
            b.iter(|| run(&cfg, &w).cycles)
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_depth,
    ablate_width,
    ablate_reinforcement_margin,
    ablate_scan_step,
    ablate_markov_fanout
);
criterion_main!(ablations);
