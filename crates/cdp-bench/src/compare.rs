//! BENCH snapshot comparison: classifies each shared metric of two
//! `BENCH_*.json` files as improved / regressed / unchanged.
//!
//! All tracked metrics are times, so lower is better. When both sides
//! carry sampled statistics (BENCH schema v2), the verdict comes from
//! 95% confidence-interval overlap: a difference only counts when the
//! intervals are disjoint. Legacy v1 snapshots (no
//! `bench_schema_version`, point estimates only) are still comparable —
//! flagged as such, with a ±5% relative-delta threshold standing in for
//! the missing intervals.

use cdp_obs::Json;

use crate::stats::SampleStats;

/// Relative-delta threshold used when one side only has a point
/// estimate: within ±5% is "unchanged".
const POINT_THRESHOLD: f64 = 0.05;

/// Outcome of comparing one metric across two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// New time is lower and the intervals are disjoint.
    Improved,
    /// New time is higher and the intervals are disjoint.
    Regressed,
    /// The intervals overlap (or the point delta is within threshold).
    Unchanged,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Unchanged => "unchanged",
        }
    }
}

/// One metric's value in one snapshot: a full sampled distribution or a
/// legacy point estimate (milliseconds either way).
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// BENCH v2: sampled statistics.
    Stats(SampleStats),
    /// BENCH v1 or an unsampled key: a single number.
    Point(f64),
}

impl Metric {
    fn mean(&self) -> f64 {
        match self {
            Metric::Stats(s) => s.mean,
            Metric::Point(p) => *p,
        }
    }

    fn interval(&self) -> (f64, f64) {
        match self {
            Metric::Stats(s) => (s.ci95_lo, s.ci95_hi),
            Metric::Point(p) => (*p, *p),
        }
    }
}

/// Classifies an old/new metric pair. Point-vs-point comparisons (no
/// intervals on either side) use the ±5% threshold; any degenerate
/// interval otherwise participates in the overlap test as a point.
#[must_use]
pub fn classify(old: &Metric, new: &Metric) -> Verdict {
    if let (Metric::Point(a), Metric::Point(b)) = (old, new) {
        let delta = (b - a) / a.abs().max(f64::MIN_POSITIVE);
        return if delta <= -POINT_THRESHOLD {
            Verdict::Improved
        } else if delta >= POINT_THRESHOLD {
            Verdict::Regressed
        } else {
            Verdict::Unchanged
        };
    }
    let (old_lo, old_hi) = old.interval();
    let (new_lo, new_hi) = new.interval();
    if new_hi < old_lo {
        Verdict::Improved
    } else if new_lo > old_hi {
        Verdict::Regressed
    } else {
        Verdict::Unchanged
    }
}

/// A named metric extracted from one snapshot.
#[derive(Clone, Debug)]
pub struct Extracted {
    /// Metric key (e.g. `suite_wall` or `micro.vam_scan_line`).
    pub key: String,
    /// Its value.
    pub metric: Metric,
}

/// Pulls every comparable metric out of a parsed BENCH document:
/// `suite_wall_stats` (v2) or `suite_wall_ms` (v1), and each sampled
/// `micro.<kernel>_stats` object (v2) or `micro.<kernel>_ns` point
/// (v1, converted to milliseconds).
#[must_use]
pub fn extract_metrics(doc: &Json) -> Vec<Extracted> {
    let mut out = Vec::new();
    if let Some(s) = doc.get("suite_wall_stats").and_then(SampleStats::from_json) {
        out.push(Extracted {
            key: "suite_wall".to_string(),
            metric: Metric::Stats(s),
        });
    } else if let Some(p) = doc.get("suite_wall_ms").and_then(Json::as_f64) {
        out.push(Extracted {
            key: "suite_wall".to_string(),
            metric: Metric::Point(p),
        });
    }
    if let Some(Json::Obj(pairs)) = doc.get("micro") {
        for (k, v) in pairs {
            if let Some(kernel) = k.strip_suffix("_stats") {
                if let Some(s) = SampleStats::from_json(v) {
                    out.push(Extracted {
                        key: format!("micro.{kernel}"),
                        metric: Metric::Stats(s),
                    });
                }
            } else if let Some(kernel) = k.strip_suffix("_ns") {
                // Only use the point key when no stats object shadows it.
                let has_stats = pairs.iter().any(|(k2, _)| k2 == &format!("{kernel}_stats"));
                if !has_stats {
                    if let Some(p) = v.as_f64() {
                        out.push(Extracted {
                            key: format!("micro.{kernel}"),
                            metric: Metric::Point(p / 1.0e6),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The BENCH schema version of a document: explicit
/// `bench_schema_version`, or 1 for legacy snapshots that predate the
/// key.
#[must_use]
pub fn bench_version(doc: &Json) -> u64 {
    doc.get("bench_schema_version")
        .and_then(Json::as_u64)
        .unwrap_or(1)
}

/// A rendered comparison: the report text and whether any metric
/// regressed (the binary's exit status).
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Human-readable per-metric lines plus a summary.
    pub report: String,
    /// True when at least one shared metric classified as regressed.
    pub regressed: bool,
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else if ms >= 1.0e-3 {
        format!("{:.2}us", ms * 1.0e3)
    } else {
        format!("{:.1}ns", ms * 1.0e6)
    }
}

fn fmt_metric(m: &Metric) -> String {
    match m {
        Metric::Stats(s) => format!(
            "{} [{}, {}] (n={})",
            fmt_ms(s.mean),
            fmt_ms(s.ci95_lo),
            fmt_ms(s.ci95_hi),
            s.samples
        ),
        Metric::Point(p) => format!("{} (point)", fmt_ms(*p)),
    }
}

/// Compares two parsed BENCH documents and renders the classification
/// report. Metrics present on only one side are listed but never affect
/// the exit status.
#[must_use]
pub fn compare(old: &Json, new: &Json) -> Comparison {
    let mut report = String::new();
    for (label, doc) in [("old", old), ("new", new)] {
        let v = bench_version(doc);
        if v < 2 {
            report.push_str(&format!(
                "note: {label} file is BENCH schema v{v} (pre-stats); \
                 point-estimate comparison with a +/-5% threshold\n"
            ));
        }
    }
    let old_metrics = extract_metrics(old);
    let new_metrics = extract_metrics(new);
    let mut counts = (0usize, 0usize, 0usize); // improved, regressed, unchanged
    let mut regressed = false;
    for om in &old_metrics {
        let Some(nm) = new_metrics.iter().find(|m| m.key == om.key) else {
            report.push_str(&format!("{}: only in old file (skipped)\n", om.key));
            continue;
        };
        let verdict = classify(&om.metric, &nm.metric);
        let old_mean = om.metric.mean();
        let delta_pct = (nm.metric.mean() - old_mean) / old_mean.abs().max(f64::MIN_POSITIVE) * 100.0;
        report.push_str(&format!(
            "{}: {} -> {}  {} ({:+.1}%)\n",
            om.key,
            fmt_metric(&om.metric),
            fmt_metric(&nm.metric),
            verdict.as_str(),
            delta_pct,
        ));
        match verdict {
            Verdict::Improved => counts.0 += 1,
            Verdict::Regressed => {
                counts.1 += 1;
                regressed = true;
            }
            Verdict::Unchanged => counts.2 += 1,
        }
    }
    for nm in &new_metrics {
        if !old_metrics.iter().any(|m| m.key == nm.key) {
            report.push_str(&format!("{}: only in new file (skipped)\n", nm.key));
        }
    }
    if old_metrics.is_empty() || new_metrics.is_empty() {
        report.push_str("warning: no comparable metrics found\n");
    }
    report.push_str(&format!(
        "summary: {} improved, {} regressed, {} unchanged\n",
        counts.0, counts.1, counts.2
    ));
    Comparison { report, regressed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::sample_stats;

    fn stats(vals: &[f64]) -> Metric {
        Metric::Stats(sample_stats(vals))
    }

    #[test]
    fn disjoint_intervals_classify_by_direction() {
        let slow = stats(&[100.0, 101.0, 99.0, 100.5, 99.5]);
        let fast = stats(&[80.0, 81.0, 79.0, 80.5, 79.5]);
        assert_eq!(classify(&slow, &fast), Verdict::Improved);
        assert_eq!(classify(&fast, &slow), Verdict::Regressed);
    }

    #[test]
    fn overlapping_intervals_are_unchanged() {
        let a = stats(&[100.0, 105.0, 95.0]);
        let b = stats(&[101.0, 106.0, 96.0]);
        assert_eq!(classify(&a, &b), Verdict::Unchanged);
    }

    #[test]
    fn point_comparison_uses_threshold() {
        assert_eq!(
            classify(&Metric::Point(100.0), &Metric::Point(98.0)),
            Verdict::Unchanged
        );
        assert_eq!(
            classify(&Metric::Point(100.0), &Metric::Point(90.0)),
            Verdict::Improved
        );
        assert_eq!(
            classify(&Metric::Point(100.0), &Metric::Point(110.0)),
            Verdict::Regressed
        );
    }

    #[test]
    fn stats_vs_point_uses_interval_overlap() {
        let s = stats(&[100.0, 101.0, 99.0]);
        // A point inside the interval: unchanged; far outside: directional.
        assert_eq!(classify(&s, &Metric::Point(100.2)), Verdict::Unchanged);
        assert_eq!(classify(&s, &Metric::Point(50.0)), Verdict::Improved);
        assert_eq!(classify(&s, &Metric::Point(150.0)), Verdict::Regressed);
    }

    fn bench_doc(version: Option<u64>, suite: &[f64]) -> Json {
        let mut doc = Json::obj();
        if let Some(v) = version {
            doc.set("bench_schema_version", Json::U64(v));
            doc.set("suite_wall_stats", sample_stats(suite).to_json());
        }
        doc.set("suite_wall_ms", Json::U64(suite[0] as u64));
        doc
    }

    #[test]
    fn self_diff_is_all_unchanged() {
        let doc = bench_doc(Some(2), &[974.0, 980.0, 968.0, 975.0, 972.0]);
        let c = compare(&doc, &doc);
        assert!(!c.regressed);
        assert!(c.report.contains("suite_wall"));
        assert!(c.report.contains("unchanged"));
        assert!(c.report.contains("0 regressed"));
    }

    #[test]
    fn legacy_v1_files_are_flagged_and_compared_as_points() {
        let old = bench_doc(None, &[1000.0]);
        let new = bench_doc(None, &[850.0]);
        let c = compare(&old, &new);
        assert!(c.report.contains("schema v1"));
        assert!(c.report.contains("improved"));
        assert!(!c.regressed);
    }

    #[test]
    fn regression_sets_the_flag() {
        let old = bench_doc(Some(2), &[800.0, 801.0, 799.0, 800.5, 799.5]);
        let new = bench_doc(Some(2), &[900.0, 901.0, 899.0, 900.5, 899.5]);
        let c = compare(&old, &new);
        assert!(c.regressed);
        assert!(c.report.contains("regressed"));
    }

    #[test]
    fn micro_kernels_are_extracted_with_and_without_stats() {
        let mut micro = Json::obj();
        micro.set("vam_scan_line_ns", Json::F64(55.0));
        micro.set("vam_scan_line_stats", sample_stats(&[5.5e-5, 5.6e-5]).to_json());
        micro.set("cache_access_hit_ns", Json::F64(7.0));
        let mut doc = Json::obj();
        doc.set("micro", micro);
        let metrics = extract_metrics(&doc);
        let vam = metrics.iter().find(|m| m.key == "micro.vam_scan_line").unwrap();
        assert!(
            matches!(vam.metric, Metric::Stats(_)),
            "stats object must shadow the point key"
        );
        let cah = metrics.iter().find(|m| m.key == "micro.cache_access_hit").unwrap();
        assert_eq!(cah.metric, Metric::Point(7.0 / 1.0e6), "ns converts to ms");
    }

    #[test]
    fn missing_metrics_never_regress() {
        let old = bench_doc(Some(2), &[800.0, 801.0, 799.0]);
        let new = Json::obj();
        let c = compare(&old, &new);
        assert!(!c.regressed);
        assert!(c.report.contains("only in old file"));
    }
}
