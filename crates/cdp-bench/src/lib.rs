//! Shared helpers for the Criterion benchmark suites.
//!
//! Three bench targets live in `benches/`:
//!
//! * `kernels` — micro-benchmarks of the hot simulator kernels (VAM line
//!   scan, cache access, bus scheduling, gshare, full-hierarchy access).
//! * `figures` — one benchmark per paper table/figure, running the
//!   corresponding experiment at smoke scale so regressions in any
//!   reproduced result's cost are visible.
//! * `ablations` — design-choice sweeps called out in DESIGN.md
//!   (chain depth, width, reinforcement margin, Markov fan-out).

#![warn(missing_docs)]

use cdp_sim::{RunStats, Simulator};
use cdp_types::SystemConfig;
use cdp_workloads::suite::{Benchmark, Scale, Workload};

/// The benchmark seed (distinct from the experiment seed so bench results
/// never alias experiment caches).
pub const BENCH_SEED: u64 = 0xbe7c_2002;

/// Builds a smoke-scale workload for benching.
pub fn bench_workload(bench: Benchmark) -> Workload {
    bench.build(Scale::smoke(), BENCH_SEED)
}

/// Runs a configuration over a prebuilt workload (the unit of work most
/// figure benches measure).
pub fn run(cfg: &SystemConfig, w: &Workload) -> RunStats {
    Simulator::new(cfg.clone()).run(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run() {
        let w = bench_workload(Benchmark::B2e);
        let r = run(&SystemConfig::asplos2002(), &w);
        assert!(r.retired > 0);
    }
}
