//! Std-only microbenchmark support for the CDP reproduction.
//!
//! The crate ships three binaries — no registry dependencies, so all of
//! them build inside the offline tier-1 gate:
//!
//! * `microbench` — times the simulator's hot kernels (flat cache
//!   access, physical line reads, VAM scans, MSHR insert/drain,
//!   snapshot encode, streaming uop synthesis, result-cache
//!   contention) with plain
//!   [`std::time::Instant`] loops; `--samples N` repeats each kernel
//!   and attaches [`stats::SampleStats`] objects.
//! * `bench-compare` — diffs two `BENCH_*.json` snapshots and
//!   classifies each shared metric by confidence-interval overlap
//!   (see [`compare`]); exits non-zero on a regression.
//! * `bench-stats` — folds repeated suite-sweep wall times into a
//!   `suite_wall_stats` object inside a snapshot (how
//!   `scripts/bench.sh` upgrades its copies to BENCH schema v2).
//!
//! This module holds the shared pieces: workload helpers and the
//! measurement harness.

#![warn(missing_docs)]

pub mod compare;
pub mod stats;

use std::time::Instant;

use cdp_sim::{RunStats, Simulator};
use cdp_types::SystemConfig;
use cdp_workloads::suite::{Benchmark, Scale, Workload};

/// The benchmark seed (distinct from the experiment seed so bench results
/// never alias experiment caches).
pub const BENCH_SEED: u64 = 0xbe7c_2002;

/// Builds a smoke-scale workload for benching.
pub fn bench_workload(bench: Benchmark) -> Workload {
    bench.build(Scale::smoke(), BENCH_SEED)
}

/// Runs a configuration over a prebuilt workload (the unit of work most
/// figure benches measure).
pub fn run(cfg: &SystemConfig, w: &Workload) -> RunStats {
    Simulator::new(cfg.clone()).run(w)
}

/// Times `op` and reports nanoseconds per iteration.
///
/// The harness runs `iters` warm-up iterations, then takes `takes`
/// timed passes of `iters` iterations each and reports the fastest —
/// the standard min-of-N defense against scheduler noise. `op` receives
/// the iteration index so loops can vary their input without consulting
/// a timer or rng.
pub fn time_ns_per_iter<F: FnMut(usize)>(iters: usize, takes: usize, mut op: F) -> f64 {
    assert!(iters > 0 && takes > 0, "empty measurement");
    for i in 0..iters {
        op(i);
    }
    let mut best = f64::INFINITY;
    for _ in 0..takes {
        let t0 = Instant::now();
        for i in 0..iters {
            op(i);
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run() {
        let w = bench_workload(Benchmark::B2e);
        let r = run(&SystemConfig::asplos2002(), &w);
        assert!(r.retired > 0);
    }

    #[test]
    fn harness_reports_positive_time() {
        let mut acc = 0u64;
        let ns = time_ns_per_iter(1000, 3, |i| acc = acc.wrapping_add(i as u64));
        assert!(ns.is_finite());
        assert!(ns >= 0.0);
        assert!(acc > 0);
    }
}
