//! Repeated-sampling statistics for benchmark results.
//!
//! Single-shot wall times are hostage to scheduler noise; every perf
//! claim in PERF.md therefore rests on N repeated samples reduced to a
//! mean, median, and 95% confidence interval. Outliers (a page-cache
//! miss, a background daemon waking up) are rejected with the modified
//! z-score rule over the median absolute deviation (MAD) before the
//! moments are computed, and the confidence interval uses Student's t
//! critical values so small sample counts widen it honestly.
//!
//! Two results are only called different when their confidence
//! intervals do not overlap — see [`crate::compare`].

/// Scale factor that makes the MAD a consistent estimator of the
/// standard deviation under normality.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Modified z-score threshold beyond which a sample is an outlier
/// (Iglewicz–Hoaglin's recommended 3.5).
const OUTLIER_Z: f64 = 3.5;

/// Two-sided 95% Student's t critical values for 1..=30 degrees of
/// freedom; larger sample counts fall back to the normal 1.96.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary statistics of one repeatedly-sampled measurement.
///
/// All values carry the unit of the input samples (the bench pipeline
/// uses milliseconds everywhere, including for nanosecond-scale micro
/// kernels, so every stats object in a `BENCH_*.json` is comparable by
/// the same code).
#[derive(Clone, Debug, PartialEq)]
pub struct SampleStats {
    /// Mean of the kept (non-outlier) samples.
    pub mean: f64,
    /// Median of the kept samples.
    pub median: f64,
    /// Lower bound of the 95% confidence interval of the mean.
    pub ci95_lo: f64,
    /// Upper bound of the 95% confidence interval of the mean.
    pub ci95_hi: f64,
    /// Number of samples kept after outlier rejection.
    pub samples: usize,
    /// Number of samples rejected as outliers.
    pub rejected: usize,
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Reduces raw samples to [`SampleStats`]: MAD outlier rejection, then
/// mean/median and a Student's-t 95% confidence interval of the mean.
///
/// A zero MAD (more than half the samples identical) disables rejection
/// — with no spread estimate, calling anything an outlier would be
/// arbitrary. A single sample yields a degenerate interval
/// `[mean, mean]`.
///
/// # Panics
///
/// Panics if `raw` is empty or contains a non-finite value.
#[must_use]
pub fn sample_stats(raw: &[f64]) -> SampleStats {
    assert!(!raw.is_empty(), "sample_stats needs at least one sample");
    assert!(raw.iter().all(|x| x.is_finite()), "non-finite sample");
    let mut sorted = raw.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let raw_median = median_of_sorted(&sorted);
    let mut deviations: Vec<f64> = sorted.iter().map(|x| (x - raw_median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite deviations"));
    let mad = median_of_sorted(&deviations);
    let kept: Vec<f64> = if mad > 0.0 {
        let cutoff = OUTLIER_Z * MAD_TO_SIGMA * mad;
        sorted
            .iter()
            .copied()
            .filter(|x| (x - raw_median).abs() <= cutoff)
            .collect()
    } else {
        sorted.clone()
    };
    let rejected = raw.len() - kept.len();
    let n = kept.len();
    let mean = kept.iter().sum::<f64>() / n as f64;
    let median = median_of_sorted(&kept);
    let (ci95_lo, ci95_hi) = if n < 2 {
        (mean, mean)
    } else {
        let var = kept.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let t = T_95.get(n - 2).copied().unwrap_or(1.96);
        let half = t * (var / n as f64).sqrt();
        (mean - half, mean + half)
    };
    SampleStats {
        mean,
        median,
        ci95_lo,
        ci95_hi,
        samples: n,
        rejected,
    }
}

impl SampleStats {
    /// Renders the stats as the `BENCH_*.json` object shape
    /// (`{mean_ms, median_ms, ci95_lo, ci95_hi, samples, rejected}`).
    /// The caller is responsible for feeding millisecond samples in.
    #[must_use]
    pub fn to_json(&self) -> cdp_obs::Json {
        let mut o = cdp_obs::Json::obj();
        o.set("mean_ms", cdp_obs::Json::F64(self.mean));
        o.set("median_ms", cdp_obs::Json::F64(self.median));
        o.set("ci95_lo", cdp_obs::Json::F64(self.ci95_lo));
        o.set("ci95_hi", cdp_obs::Json::F64(self.ci95_hi));
        o.set("samples", cdp_obs::Json::U64(self.samples as u64));
        o.set("rejected", cdp_obs::Json::U64(self.rejected as u64));
        o
    }

    /// Parses a stats object previously written by
    /// [`SampleStats::to_json`]. Returns `None` when any required key is
    /// missing or non-numeric.
    #[must_use]
    pub fn from_json(j: &cdp_obs::Json) -> Option<SampleStats> {
        Some(SampleStats {
            mean: j.get("mean_ms")?.as_f64()?,
            median: j.get("median_ms")?.as_f64()?,
            ci95_lo: j.get("ci95_lo")?.as_f64()?,
            ci95_hi: j.get("ci95_hi")?.as_f64()?,
            samples: j.get("samples")?.as_u64()? as usize,
            rejected: j.get("rejected").and_then(cdp_obs::Json::as_u64).unwrap_or(0) as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_degenerates() {
        let s = sample_stats(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!((s.ci95_lo, s.ci95_hi), (5.0, 5.0));
        assert_eq!(s.samples, 1);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn identical_samples_have_zero_width_interval() {
        let s = sample_stats(&[3.0; 7]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.ci95_lo, 3.0);
        assert_eq!(s.ci95_hi, 3.0);
        assert_eq!(s.rejected, 0, "zero MAD must not reject anything");
    }

    #[test]
    fn mad_rejects_a_gross_outlier() {
        // Nine tight samples and one 100x spike: the spike must go.
        let mut raw = vec![10.0, 10.1, 9.9, 10.2, 9.8, 10.0, 10.1, 9.9, 10.0];
        raw.push(1000.0);
        let s = sample_stats(&raw);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.samples, 9);
        assert!(s.mean < 11.0, "outlier must not drag the mean: {}", s.mean);
        assert!(s.ci95_lo <= s.mean && s.mean <= s.ci95_hi);
    }

    #[test]
    fn interval_brackets_mean_and_narrows_with_more_samples() {
        let wide = sample_stats(&[10.0, 12.0, 11.0]);
        let narrow = sample_stats(&[10.0, 12.0, 11.0, 10.5, 11.5, 10.8, 11.2, 10.9, 11.1, 11.0]);
        assert!(wide.ci95_lo < wide.mean && wide.mean < wide.ci95_hi);
        assert!(
            (narrow.ci95_hi - narrow.ci95_lo) < (wide.ci95_hi - wide.ci95_lo),
            "more samples must narrow the interval"
        );
    }

    #[test]
    fn even_sample_count_median_averages() {
        let s = sample_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn json_round_trip() {
        let s = sample_stats(&[10.0, 10.5, 9.5, 10.2, 9.8]);
        let back = SampleStats::from_json(&s.to_json()).expect("round trip");
        assert_eq!(s, back);
    }

    #[test]
    fn from_json_rejects_missing_keys() {
        let mut o = cdp_obs::Json::obj();
        o.set("mean_ms", cdp_obs::Json::F64(1.0));
        assert!(SampleStats::from_json(&o).is_none());
    }
}
