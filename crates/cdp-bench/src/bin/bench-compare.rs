//! Diffs two `BENCH_*.json` snapshots.
//!
//! ```text
//! bench-compare <old.json> <new.json>
//! ```
//!
//! Every metric present in both files is classified as improved,
//! regressed, or unchanged — by 95% confidence-interval overlap when
//! both sides carry sampled statistics (BENCH schema v2), by a ±5%
//! point threshold for legacy v1 snapshots (flagged in the output).
//! Lower is always better (all tracked metrics are times).
//!
//! Exit codes: `0` no regression, `1` at least one metric regressed,
//! `2` usage or parse error.

use cdp_bench::compare::compare;
use cdp_obs::Json;

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-compare: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench-compare: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench-compare <old.json> <new.json>");
        eprintln!("exit codes: 0 no regression, 1 regression, 2 usage/parse error");
        std::process::exit(2);
    };
    let old = load(old_path);
    let new = load(new_path);
    let c = compare(&old, &new);
    print!("{}", c.report);
    if c.regressed {
        std::process::exit(1);
    }
}
