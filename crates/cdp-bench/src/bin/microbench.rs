//! Std-only microbenchmarks of the simulator's hot kernels.
//!
//! ```text
//! microbench [--samples <N>] [--inject <manifest.json>]
//! ```
//!
//! Times the per-access kernels the hot-path optimization rounds target —
//! cache access/fill, physical line reads, the VAM scan, MSHR
//! insert/drain, snapshot encoding, streaming uop synthesis, and
//! result-cache contention — with
//! plain `Instant` loops, and prints one JSON object to stdout. Each
//! kernel always emits a `<kernel>_ns` point estimate; with
//! `--samples N` (N > 1) the kernel is re-timed N times and additionally
//! emits a `<kernel>_stats` object (`{mean_ms, median_ms, ci95_lo,
//! ci95_hi, samples, rejected}` — MAD outlier rejection plus a
//! Student's-t 95% interval, see `cdp_bench::stats`), with the point
//! estimate set to the per-sample median so legacy consumers see the
//! robust number. With `--inject <file>`, the object is also merged into
//! an existing manifest snapshot under a top-level `micro` key (how
//! `scripts/bench.sh --micro` annotates `BENCH_*.json`).
//!
//! Wall-clock numbers are machine-dependent by nature; everything else
//! about the run (inputs, iteration counts, seeds) is fixed so two runs
//! on the same machine are comparable.

use std::time::Instant;

use cdp_bench::stats::sample_stats;
use cdp_bench::time_ns_per_iter;
use cdp_mem::{Cache, MshrFile, PhysMem};
use cdp_obs::Json;
use cdp_prefetch::scan_line;
use cdp_sim::{ResultCache, RunStats, Simulator};
use cdp_types::{
    LineAddr, PhysAddr, RequestKind, SystemConfig, VamConfig, VirtAddr, LINE_SIZE,
};
use cdp_workloads::suite::Benchmark;

/// Resident-hit access over a 1 MiB-equivalent flat cache.
fn cache_access_hit() -> f64 {
    let mut cache: Cache<u8> = Cache::new(2048, 8, 64);
    for i in 0..16_384u32 {
        cache.fill(i * 64, 0);
    }
    time_ns_per_iter(100_000, 5, |i| {
        let addr = ((i as u32) % 16_384) * 64;
        std::hint::black_box(cache.access(std::hint::black_box(addr)).is_some());
    })
}

/// Streaming fill that evicts on every insertion.
fn cache_fill_evict() -> f64 {
    let mut cache: Cache<u8> = Cache::new(256, 4, 64);
    for i in 0..1024u32 {
        cache.fill(i * 64, 0);
    }
    time_ns_per_iter(100_000, 5, |i| {
        let addr = (i as u32).wrapping_mul(64).wrapping_add(0x10_0000);
        std::hint::black_box(cache.fill(std::hint::black_box(addr), 1));
    })
}

/// One-frame-lookup line read through the open-addressed frame table.
fn phys_read_line_into() -> f64 {
    let mut mem = PhysMem::new();
    const FRAMES: u32 = 256;
    for f in 0..FRAMES {
        for off in (0..4096).step_by(64) {
            mem.write_u32(PhysAddr(f * 4096 + off), f ^ off);
        }
    }
    let mut out = [0u8; LINE_SIZE];
    time_ns_per_iter(100_000, 5, |i| {
        let line = ((i as u32).wrapping_mul(64)) % (FRAMES * 4096);
        mem.read_line_into(LineAddr(std::hint::black_box(line)), &mut out);
        std::hint::black_box(out[0]);
    })
}

/// The §3.2 virtual-address-match scan over one line.
fn vam_scan() -> f64 {
    let cfg = VamConfig::tuned();
    let trigger = VirtAddr(0x1040_2468);
    // A line with a realistic mix: two pointers, rest junk.
    let mut data = [0u8; LINE_SIZE];
    data[4..8].copy_from_slice(&0x1023_4560u32.to_le_bytes());
    data[36..40].copy_from_slice(&0x10ab_cd00u32.to_le_bytes());
    for i in (8..32).step_by(4) {
        data[i..i + 4].copy_from_slice(&(i as u32 * 37).to_le_bytes());
    }
    time_ns_per_iter(100_000, 5, |_| {
        std::hint::black_box(scan_line(
            std::hint::black_box(&data),
            std::hint::black_box(trigger),
            std::hint::black_box(&cfg),
        ));
    })
}

/// A burst of 16 MSHR registrations followed by a full drain into a
/// reused buffer — one simulated tick's worth of miss traffic.
fn mshr_insert_drain() -> f64 {
    let mut mshrs = MshrFile::with_capacity(32);
    let mut buf = Vec::with_capacity(16);
    let ns = time_ns_per_iter(20_000, 5, |i| {
        let base = (i as u32).wrapping_mul(17) & 0x000f_ffc0;
        for k in 0..16u32 {
            let line = base.wrapping_add(k * 64);
            mshrs.insert(
                LineAddr(line),
                VirtAddr(line),
                RequestKind::Demand,
                i as u64,
                i as u64 + 1,
            );
        }
        mshrs.drain_complete_into(u64::MAX, &mut buf);
        std::hint::black_box(buf.len());
    });
    ns / 16.0
}

/// Full-session snapshot encode (core + hierarchy + driver scalars) of a
/// mid-run smoke-scale session — the serialization path the checkpoint
/// subsystem exercises every `--checkpoint-every` window.
fn snapshot_encode() -> f64 {
    let w = cdp_bench::bench_workload(Benchmark::B2e);
    let sim = Simulator::new(SystemConfig::asplos2002());
    let mut session = sim.session(&w, None);
    // Advance past warm-up and one measurement window so the snapshot
    // captures a populated hierarchy, not an empty cold state.
    for _ in 0..2 {
        if session.step().expect("bench workload must not fault") {
            break;
        }
    }
    time_ns_per_iter(300, 3, |_| {
        std::hint::black_box(session.snapshot().len());
    })
}

/// [`snapshot_encode`] through the recycled-arena path the checkpoint
/// loop actually uses: one buffer handed back to
/// [`SimSession::snapshot_into`] every iteration, so steady-state
/// encodes pay zero allocation.
fn snapshot_encode_reuse() -> f64 {
    let w = cdp_bench::bench_workload(Benchmark::B2e);
    let sim = Simulator::new(SystemConfig::asplos2002());
    let mut session = sim.session(&w, None);
    for _ in 0..2 {
        if session.step().expect("bench workload must not fault") {
            break;
        }
    }
    let mut buf = Vec::new();
    time_ns_per_iter(300, 3, |_| {
        buf = session.snapshot_into(std::mem::take(&mut buf));
        std::hint::black_box(buf.len());
    })
}

/// Streaming uop synthesis: `UopSource::fill` bursts from a large-tier
/// pointer-chasing generator — the per-uop cost the streaming engine
/// pays instead of a materialized program's upfront build. Reported as
/// ns per generated uop.
fn uop_gen() -> f64 {
    use cdp_workloads::suite::Scale;
    let w = Benchmark::Tpcc1.build(Scale::large(), cdp_bench::BENCH_SEED);
    let spec = w.stream.as_ref().expect("large tier streams");
    let mut src = spec.make_source();
    let mut buf = std::collections::VecDeque::with_capacity(65_536);
    const BURST: usize = 32_768;
    let ns = time_ns_per_iter(20, 3, |_| {
        let mut n = 0usize;
        while n < BURST {
            let got = src.fill(&mut buf);
            if got == 0 {
                // ~2.6M uops consumed over the whole measurement vs a
                // ~100M-uop target, so this only fires if tier budgets
                // shrink; restart to keep the timing loop honest.
                src = spec.make_source();
                continue;
            }
            n += got;
            buf.clear();
        }
        std::hint::black_box(n);
    });
    ns / BURST as f64
}

/// Eight threads hammering a shared [`ResultCache`] with a small,
/// fully-contended key set — the lock-acquisition pattern a parallel
/// suite sweep with `--jobs 8` produces. Reported as ns per get(+put).
fn result_cache_contention() -> f64 {
    const THREADS: usize = 8;
    const OPS: usize = 4_000;
    const KEYS: u64 = 64;
    let stats = RunStats::default();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let cache = ResultCache::new();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..OPS {
                        let key = (i as u64 + t as u64)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            % KEYS;
                        if cache.get(std::hint::black_box(key)).is_none() {
                            cache.put(key, stats, None);
                        }
                    }
                });
            }
        });
        let ns = t0.elapsed().as_nanos() as f64 / (THREADS * OPS) as f64;
        best = best.min(ns);
    }
    best
}

/// One microbenchmark kernel: stable key prefix plus the measurement
/// function. Keys become `<name>_ns` (and `<name>_stats` under
/// `--samples`).
type Kernel = (&'static str, fn() -> f64);

/// The kernel table.
const KERNELS: &[Kernel] = &[
    ("cache_access_hit", cache_access_hit),
    ("cache_fill_evict", cache_fill_evict),
    ("phys_read_line_into", phys_read_line_into),
    ("vam_scan_line", vam_scan),
    ("mshr_insert_drain", mshr_insert_drain),
    ("snapshot_encode", snapshot_encode),
    ("snapshot_encode_reuse", snapshot_encode_reuse),
    ("uop_gen", uop_gen),
    ("result_cache_contention", result_cache_contention),
];

fn measure(samples: usize) -> Json {
    let mut o = Json::obj();
    for (name, kernel) in KERNELS {
        if samples <= 1 {
            o.set(&format!("{name}_ns"), Json::F64(kernel()));
            continue;
        }
        let ms: Vec<f64> = (0..samples).map(|_| kernel() / 1e6).collect();
        let st = sample_stats(&ms);
        // Point estimate = robust median, in ns, so legacy consumers and
        // v1 comparisons keep working against the same key.
        o.set(&format!("{name}_ns"), Json::F64(st.median * 1e6));
        o.set(&format!("{name}_stats"), st.to_json());
        eprintln!(
            "microbench: {name}: median={:.1}ns ci95=[{:.1}, {:.1}]ns n={} rejected={}",
            st.median * 1e6,
            st.ci95_lo * 1e6,
            st.ci95_hi * 1e6,
            st.samples,
            st.rejected
        );
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!("usage: microbench [--samples <N>] [--inject <manifest.json>]");
        std::process::exit(2);
    };
    let mut inject: Option<std::path::PathBuf> = None;
    let mut samples = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--inject" => inject = Some(it.next().unwrap_or_else(|| usage()).into()),
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    let micro = measure(samples);
    println!("{micro}");
    if let Some(path) = inject {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--inject: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let mut doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("--inject: {} is not valid JSON: {e}", path.display());
                std::process::exit(2);
            }
        };
        doc.set("micro", micro);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("--inject: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("microbench: injected `micro` into {}", path.display());
    }
}
