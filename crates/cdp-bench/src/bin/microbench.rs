//! Std-only microbenchmarks of the simulator's hot kernels.
//!
//! ```text
//! microbench [--inject <manifest.json>]
//! ```
//!
//! Times the per-access kernels the flat-memory refactor targets — cache
//! access/fill, physical line reads, the VAM scan, and MSHR
//! insert/drain — with plain `Instant` loops, and prints one JSON object
//! of `<kernel>_ns` numbers to stdout. With `--inject <file>`, the same
//! object is also merged into an existing manifest snapshot under a
//! top-level `micro` key (how `scripts/bench.sh --micro` annotates
//! `BENCH_*.json`).
//!
//! Wall-clock numbers are machine-dependent by nature; everything else
//! about the run (inputs, iteration counts, seeds) is fixed so two runs
//! on the same machine are comparable.

use cdp_bench::time_ns_per_iter;
use cdp_mem::{Cache, MshrFile, PhysMem};
use cdp_obs::Json;
use cdp_prefetch::scan_line;
use cdp_types::{LineAddr, PhysAddr, RequestKind, VamConfig, VirtAddr, LINE_SIZE};

/// Resident-hit access over a 1 MiB-equivalent flat cache.
fn cache_access_hit() -> f64 {
    let mut cache: Cache<u8> = Cache::new(2048, 8, 64);
    for i in 0..16_384u32 {
        cache.fill(i * 64, 0);
    }
    time_ns_per_iter(100_000, 5, |i| {
        let addr = ((i as u32) % 16_384) * 64;
        std::hint::black_box(cache.access(std::hint::black_box(addr)).is_some());
    })
}

/// Streaming fill that evicts on every insertion.
fn cache_fill_evict() -> f64 {
    let mut cache: Cache<u8> = Cache::new(256, 4, 64);
    for i in 0..1024u32 {
        cache.fill(i * 64, 0);
    }
    time_ns_per_iter(100_000, 5, |i| {
        let addr = (i as u32).wrapping_mul(64).wrapping_add(0x10_0000);
        std::hint::black_box(cache.fill(std::hint::black_box(addr), 1));
    })
}

/// One-frame-lookup line read through the open-addressed frame table.
fn phys_read_line_into() -> f64 {
    let mut mem = PhysMem::new();
    const FRAMES: u32 = 256;
    for f in 0..FRAMES {
        for off in (0..4096).step_by(64) {
            mem.write_u32(PhysAddr(f * 4096 + off), f ^ off);
        }
    }
    let mut out = [0u8; LINE_SIZE];
    time_ns_per_iter(100_000, 5, |i| {
        let line = ((i as u32).wrapping_mul(64)) % (FRAMES * 4096);
        mem.read_line_into(LineAddr(std::hint::black_box(line)), &mut out);
        std::hint::black_box(out[0]);
    })
}

/// The §3.2 virtual-address-match scan over one line.
fn vam_scan() -> f64 {
    let cfg = VamConfig::tuned();
    let trigger = VirtAddr(0x1040_2468);
    // A line with a realistic mix: two pointers, rest junk.
    let mut data = [0u8; LINE_SIZE];
    data[4..8].copy_from_slice(&0x1023_4560u32.to_le_bytes());
    data[36..40].copy_from_slice(&0x10ab_cd00u32.to_le_bytes());
    for i in (8..32).step_by(4) {
        data[i..i + 4].copy_from_slice(&(i as u32 * 37).to_le_bytes());
    }
    time_ns_per_iter(100_000, 5, |_| {
        std::hint::black_box(scan_line(
            std::hint::black_box(&data),
            std::hint::black_box(trigger),
            std::hint::black_box(&cfg),
        ));
    })
}

/// A burst of 16 MSHR registrations followed by a full drain into a
/// reused buffer — one simulated tick's worth of miss traffic.
fn mshr_insert_drain() -> f64 {
    let mut mshrs = MshrFile::with_capacity(32);
    let mut buf = Vec::with_capacity(16);
    let ns = time_ns_per_iter(20_000, 5, |i| {
        let base = (i as u32).wrapping_mul(17) & 0x000f_ffc0;
        for k in 0..16u32 {
            let line = base.wrapping_add(k * 64);
            mshrs.insert(
                LineAddr(line),
                VirtAddr(line),
                RequestKind::Demand,
                i as u64,
                i as u64 + 1,
            );
        }
        mshrs.drain_complete_into(u64::MAX, &mut buf);
        std::hint::black_box(buf.len());
    });
    ns / 16.0
}

fn measure() -> Json {
    let mut o = Json::obj();
    o.set("cache_access_hit_ns", Json::F64(cache_access_hit()));
    o.set("cache_fill_evict_ns", Json::F64(cache_fill_evict()));
    o.set("phys_read_line_into_ns", Json::F64(phys_read_line_into()));
    o.set("vam_scan_line_ns", Json::F64(vam_scan()));
    o.set("mshr_insert_drain_ns", Json::F64(mshr_insert_drain()));
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inject = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--inject" => Some(std::path::PathBuf::from(path)),
        _ => {
            eprintln!("usage: microbench [--inject <manifest.json>]");
            std::process::exit(2);
        }
    };
    let micro = measure();
    println!("{micro}");
    if let Some(path) = inject {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("--inject: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        let mut doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("--inject: {} is not valid JSON: {e}", path.display());
                std::process::exit(2);
            }
        };
        doc.set("micro", micro);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("--inject: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("microbench: injected `micro` into {}", path.display());
    }
}
