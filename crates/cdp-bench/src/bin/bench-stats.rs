//! Upgrades a BENCH snapshot to schema v2 with suite-level statistics.
//!
//! ```text
//! bench-stats --inject <BENCH.json> --suite-wall-ms <ms>,<ms>,...
//! ```
//!
//! `scripts/bench.sh` runs the pinned sweep N times, collects each
//! run's `suite_wall_ms`, and hands the list here. The snapshot gains
//!
//! * `bench_schema_version: 2`
//! * `suite_wall_stats` — `{mean_ms, median_ms, ci95_lo, ci95_hi,
//!   samples, rejected}` over the provided wall times (MAD outlier
//!   rejection, Student's-t 95% interval; see `cdp_bench::stats`)
//! * `suite_wall_samples_ms` — the raw sample list, for re-analysis
//!
//! Exit codes: `0` ok, `2` usage/parse error.

use cdp_bench::stats::sample_stats;
use cdp_obs::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!("usage: bench-stats --inject <BENCH.json> --suite-wall-ms <ms>,<ms>,...");
        std::process::exit(2);
    };
    let (mut path, mut samples): (Option<String>, Option<Vec<f64>>) = (None, None);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--inject" => path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--suite-wall-ms" => {
                let raw = it.next().unwrap_or_else(|| usage());
                let parsed: Result<Vec<f64>, _> =
                    raw.split(',').map(str::trim).map(str::parse::<f64>).collect();
                match parsed {
                    Ok(v) if !v.is_empty() && v.iter().all(|x| x.is_finite() && *x >= 0.0) => {
                        samples = Some(v);
                    }
                    _ => {
                        eprintln!("bench-stats: bad --suite-wall-ms list {raw:?}");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
    }
    let (Some(path), Some(samples)) = (path, samples) else {
        usage();
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-stats: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-stats: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    };
    let stats = sample_stats(&samples);
    doc.set("bench_schema_version", Json::U64(cdp_obs::BENCH_SCHEMA_VERSION));
    doc.set("suite_wall_stats", stats.to_json());
    doc.set(
        "suite_wall_samples_ms",
        Json::Arr(samples.iter().map(|&s| Json::F64(s)).collect()),
    );
    if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
        eprintln!("bench-stats: cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "bench-stats: {path}: suite_wall mean={:.1}ms ci95=[{:.1}, {:.1}] n={} rejected={}",
        stats.mean, stats.ci95_lo, stats.ci95_hi, stats.samples, stats.rejected
    );
}
