//! Stream buffers (Jouppi, ISCA 1990) — the paper's reference \[11\].
//!
//! A small set of sequential prefetch streams: each L1 miss either extends
//! an existing stream (the miss address falls just past a stream's head)
//! or, on repeated nearby misses, allocates a new stream that runs a few
//! lines ahead. Included as a second classical baseline so downstream
//! users can compare the content prefetcher against both PC-indexed
//! stride prediction and address-window streaming.

pub use cdp_types::StreamConfig;
use cdp_types::{VirtAddr, LINE_SIZE};

use crate::{Prefetcher, PrefetchRequest};

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Next expected miss line.
    next_line: u32,
    /// Lines already requested beyond `next_line`.
    prefetched_to: u32,
    /// LRU stamp.
    stamp: u64,
    /// Confirmations (hits on the expected line).
    confidence: u8,
}

/// Cumulative stream-buffer statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// L1 misses observed.
    pub observed: u64,
    /// Misses that confirmed an existing stream.
    pub confirmed: u64,
    /// Streams (re)allocated.
    pub allocated: u64,
    /// Prefetch requests emitted.
    pub emitted: u64,
}

/// The stream-buffer prefetcher.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::{Prefetcher, StreamPrefetcher, StreamConfig};
/// use cdp_types::VirtAddr;
///
/// let mut sb = StreamPrefetcher::new(&StreamConfig::default());
/// let mut out = Vec::new();
/// // Sequential misses confirm a stream, which then runs ahead.
/// for i in 0..4u32 {
///     out.clear();
///     sb.on_l1_miss(0, VirtAddr(0x1000_0000 + i * 64), &mut out);
/// }
/// assert!(!out.is_empty(), "a confirmed stream prefetches ahead");
/// ```
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    depth: u32,
    clock: u64,
    stats: StreamStats,
}

impl StreamPrefetcher {
    /// Creates a stream prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.streams` is zero.
    pub fn new(cfg: &StreamConfig) -> Self {
        assert!(cfg.streams > 0, "need at least one stream");
        StreamPrefetcher {
            streams: Vec::with_capacity(cfg.streams),
            max_streams: cfg.streams,
            depth: cfg.depth.max(1),
            clock: 0,
            stats: StreamStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Active stream count.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Observes one L1 miss; emits stream prefetches.
    pub fn observe(&mut self, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.stats.observed += 1;
        self.clock += 1;
        let clock = self.clock;
        let line = vaddr.line().0 / LINE_SIZE as u32;
        // Confirm an existing stream?
        if let Some(s) = self.streams.iter_mut().find(|s| s.next_line == line) {
            s.stamp = clock;
            s.confidence = s.confidence.saturating_add(1);
            s.next_line = line + 1;
            self.stats.confirmed += 1;
            // Run ahead: request up to `depth` lines past the confirmation
            // (the confirmed line itself is being demand-fetched already).
            let target = line + self.depth;
            s.prefetched_to = s.prefetched_to.max(line);
            let mut emitted = 0;
            while s.prefetched_to < target {
                s.prefetched_to += 1;
                out.push(PrefetchRequest::stride(VirtAddr(
                    s.prefetched_to * LINE_SIZE as u32,
                )));
                emitted += 1;
            }
            self.stats.emitted += emitted;
            return;
        }
        // Near-miss of an existing stream head (line already prefetched):
        // treat as confirmation without extension.
        if self
            .streams
            .iter_mut()
            .any(|s| line > s.next_line.saturating_sub(self.depth) && line <= s.prefetched_to)
        {
            self.stats.confirmed += 1;
            return;
        }
        // Allocate a new stream expecting the sequentially next line.
        self.stats.allocated += 1;
        let stream = Stream {
            next_line: line + 1,
            prefetched_to: line,
            stamp: clock,
            confidence: 0,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(stream);
        } else {
            let victim = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.confidence, s.stamp))
                .map(|(i, _)| i)
                .expect("non-empty");
            self.streams[victim] = stream;
        }
    }

    /// Serializes the stream table in resident order (victim selection
    /// depends on position for ties, so order is preserved verbatim).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.clock);
        enc.u64(self.stats.observed);
        enc.u64(self.stats.confirmed);
        enc.u64(self.stats.allocated);
        enc.u64(self.stats.emitted);
        enc.seq_len(self.streams.len());
        for s in &self.streams {
            enc.u32(s.next_line);
            enc.u32(s.prefetched_to);
            enc.u64(s.stamp);
            enc.u8(s.confidence);
        }
    }

    /// Restores state written by [`StreamPrefetcher::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or more
    /// streams than the configured maximum.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.clock = dec.u64("stream clock")?;
        self.stats.observed = dec.u64("stream stats observed")?;
        self.stats.confirmed = dec.u64("stream stats confirmed")?;
        self.stats.allocated = dec.u64("stream stats allocated")?;
        self.stats.emitted = dec.u64("stream stats emitted")?;
        let n = dec.seq_len(4 + 4 + 8 + 1, "stream count")?;
        if n > self.max_streams {
            return Err(cdp_types::SnapshotError::Corrupt {
                context: "stream count",
            });
        }
        self.streams.clear();
        for _ in 0..n {
            self.streams.push(Stream {
                next_line: dec.u32("stream next_line")?,
                prefetched_to: dec.u32("stream prefetched_to")?,
                stamp: dec.u64("stream stamp")?,
                confidence: dec.u8("stream confidence")?,
            });
        }
        Ok(())
    }
}

impl Prefetcher for StreamPrefetcher {
    fn on_l1_miss(&mut self, _pc: u32, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.observe(vaddr, out);
    }

    /// Per stream: 4-byte expected line, 4-byte prefetched-to line, and
    /// a 1-byte confidence counter.
    fn budget_bytes(&self) -> usize {
        self.max_streams * 9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn misses(sb: &mut StreamPrefetcher, addrs: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        for &a in addrs {
            sb.observe(VirtAddr(a), &mut out);
        }
        out.iter().map(|r| r.vaddr.0).collect()
    }

    #[test]
    fn sequential_misses_spawn_a_running_stream() {
        let mut sb = StreamPrefetcher::new(&StreamConfig::default());
        let reqs = misses(&mut sb, &[0x1000, 0x1040, 0x1080]);
        assert!(!reqs.is_empty());
        // Each prefetch targets a line past the miss that triggered it.
        assert!(reqs.iter().all(|&a| a > 0x1040), "{reqs:?}");
        assert!(reqs.iter().any(|&a| a > 0x1080), "runs ahead: {reqs:?}");
        assert_eq!(sb.stats().confirmed, 2);
    }

    #[test]
    fn stream_runs_depth_lines_ahead() {
        let mut sb = StreamPrefetcher::new(&StreamConfig {
            streams: 2,
            depth: 3,
        });
        let reqs = misses(&mut sb, &[0x0, 0x40]);
        // One confirmation: prefetched through line 1+3 = addresses
        // 0x80, 0xc0, 0x100.
        assert_eq!(reqs, vec![0x80, 0xc0, 0x100]);
        // Next miss at 0x80 is already covered: no duplicates, stream
        // slides forward.
        let reqs2 = misses(&mut sb, &[0x80]);
        assert_eq!(reqs2, vec![0x140]);
    }

    #[test]
    fn random_misses_do_not_stream() {
        let mut sb = StreamPrefetcher::new(&StreamConfig::default());
        let reqs = misses(&mut sb, &[0x0, 0x4000, 0x9000, 0x20000, 0x55000]);
        assert!(reqs.is_empty());
        assert_eq!(sb.stats().confirmed, 0);
    }

    #[test]
    fn stream_capacity_is_bounded_with_lru_replacement() {
        let mut sb = StreamPrefetcher::new(&StreamConfig {
            streams: 2,
            depth: 2,
        });
        // Three distinct regions: only two streams may exist.
        misses(&mut sb, &[0x0, 0x10000, 0x20000]);
        assert_eq!(sb.active_streams(), 2);
        assert_eq!(sb.stats().allocated, 3);
    }

    #[test]
    fn near_miss_within_prefetched_window_confirms_silently() {
        let mut sb = StreamPrefetcher::new(&StreamConfig {
            streams: 2,
            depth: 4,
        });
        // Confirm a stream (prefetched through line 5).
        misses(&mut sb, &[0x0, 0x40]);
        let confirmed_before = sb.stats().confirmed;
        // A miss that skips ahead inside the prefetched window (line 3)
        // confirms without emitting duplicates.
        let reqs = misses(&mut sb, &[0xc0]);
        assert!(reqs.is_empty(), "{reqs:?}");
        assert_eq!(sb.stats().confirmed, confirmed_before + 1);
        assert_eq!(sb.active_streams(), 1, "no spurious allocation");
    }

    #[test]
    fn interleaved_streams_both_progress() {
        let mut sb = StreamPrefetcher::new(&StreamConfig {
            streams: 4,
            depth: 2,
        });
        let reqs = misses(
            &mut sb,
            &[0x0, 0x10000, 0x40, 0x10040, 0x80, 0x10080],
        );
        let low: Vec<u32> = reqs.iter().copied().filter(|&a| a < 0x10000).collect();
        let high: Vec<u32> = reqs.iter().copied().filter(|&a| a >= 0x10000).collect();
        assert!(!low.is_empty() && !high.is_empty(), "{reqs:?}");
    }
}
