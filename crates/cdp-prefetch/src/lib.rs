//! Prefetch engines for the content-directed prefetching simulator.
//!
//! * [`vam`] — the **virtual-address-matching** heuristic of §3.3: the pure
//!   pointer-recognition function (compare bits, filter bits, align bits,
//!   scan step) plus the cache-line scanner of Figure 5.
//! * [`content`] — the **content-directed prefetcher** (§3.4): recursive
//!   prefetch chaining with a depth threshold, feedback-directed path
//!   reinforcement, and deeper-vs-wider next/previous-line expansion.
//! * [`stride`] — a classic PC-indexed reference-prediction-table stride
//!   prefetcher; the paper's baseline includes one and every speedup is
//!   measured relative to it.
//! * [`markov`] — a 1-history Markov prefetcher with a fan-out-4
//!   state-transition table (STAB), the §5 comparator.
//! * [`delta`] — a Pangloss-style delta-space Markov prefetcher with a
//!   compact fixed-size transition table (tournament comparator).
//! * [`jump`] — a pointer-chase/jump-pointer engine for linked data
//!   structures (tournament comparator).
//! * [`perceptron`] — a learned confidence filter that gates any engine's
//!   issue stream on predicted accuracy.
//! * [`stream`] — Jouppi stream buffers (the paper's reference \[11\]), a
//!   second classical baseline.
//! * [`adaptive`] — run-time heuristic adjustment, the paper's stated
//!   future work (§4.1).
//!
//! All engines communicate with the memory hierarchy through
//! [`PrefetchRequest`] values; the hierarchy (in `cdp-sim`) owns
//! translation, arbitration, and cache interaction.

#![warn(missing_docs)]

pub mod adaptive;
pub mod content;
pub mod delta;
pub mod jump;
pub mod markov;
pub mod perceptron;
pub mod stream;
pub mod stride;
pub mod vam;

pub use adaptive::{AdaptiveConfig, AdaptiveVam};
pub use content::{ContentPrefetcher, ContentStats};
pub use delta::{DeltaPrefetcher, DeltaStats};
pub use jump::{JumpPrefetcher, JumpStats};
pub use markov::{MarkovPrefetcher, MarkovStats};
pub use perceptron::{PerceptronFilter, PerceptronStats};
pub use stream::{StreamConfig, StreamPrefetcher, StreamStats};
pub use stride::{StridePrefetcher, StrideStats};
pub use vam::{
    classify, is_candidate, scan_line, scan_line_scalar, LineScan, ScanHits, VamVerdict,
    MAX_SCAN_HITS,
};

use cdp_types::{RequestKind, VirtAddr};

/// A prefetch the engine wants the memory system to issue.
///
/// Addresses are *virtual*: the paper places the content prefetcher
/// on-chip precisely so candidates can be translated by the data TLB
/// (§3.2), and over a third of its prefetches require a page walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Virtual address to prefetch (the hierarchy fetches its whole line).
    pub vaddr: VirtAddr,
    /// Originating engine and chain depth; determines arbiter priority.
    pub kind: RequestKind,
    /// Whether this is a deeper-vs-wider *width* expansion (§3.4.3): a
    /// previous/next-line companion rather than a VAM candidate itself.
    /// Width fills are the most speculative traffic and are inserted into
    /// the L2 as preferred eviction victims until a demand touches them.
    pub width: bool,
}

impl PrefetchRequest {
    /// Convenience constructor for a content prefetch at `depth`.
    pub fn content(vaddr: VirtAddr, depth: u8) -> Self {
        PrefetchRequest {
            vaddr,
            kind: RequestKind::Content { depth },
            width: false,
        }
    }

    /// A width-expansion (previous/next-line) content prefetch at `depth`.
    pub fn content_width(vaddr: VirtAddr, depth: u8) -> Self {
        PrefetchRequest {
            vaddr,
            kind: RequestKind::Content { depth },
            width: true,
        }
    }

    /// Convenience constructor for a stride prefetch.
    pub fn stride(vaddr: VirtAddr) -> Self {
        PrefetchRequest {
            vaddr,
            kind: RequestKind::Stride,
            width: false,
        }
    }

    /// Convenience constructor for a Markov prefetch.
    pub fn markov(vaddr: VirtAddr) -> Self {
        PrefetchRequest {
            vaddr,
            kind: RequestKind::Markov,
            width: false,
        }
    }

    /// Convenience constructor for a delta-Markov prefetch.
    pub fn delta(vaddr: VirtAddr) -> Self {
        PrefetchRequest {
            vaddr,
            kind: RequestKind::Delta,
            width: false,
        }
    }

    /// Convenience constructor for a jump-pointer prefetch.
    pub fn jump(vaddr: VirtAddr) -> Self {
        PrefetchRequest {
            vaddr,
            kind: RequestKind::Jump,
            width: false,
        }
    }
}

/// Common interface over the prefetch engines, for downstream users who
/// want to plug a custom engine into the hierarchy's hook points.
///
/// The default implementations do nothing, so an engine only overrides the
/// hooks it cares about (the stride prefetcher watches L1 misses, the
/// Markov prefetcher watches L2 misses, the content prefetcher watches L2
/// fills).
pub trait Prefetcher {
    /// An L1 data-cache miss by the instruction at `pc` for `vaddr`.
    fn on_l1_miss(&mut self, _pc: u32, _vaddr: VirtAddr, _out: &mut Vec<PrefetchRequest>) {}

    /// An L2 demand miss for `vaddr`.
    fn on_l2_miss(&mut self, _vaddr: VirtAddr, _out: &mut Vec<PrefetchRequest>) {}

    /// A line of data arrived at the L2. `trigger_ea` is the effective
    /// address whose miss (or candidate prediction) caused the fill;
    /// `kind` identifies the requester (and thus the fill's chain depth).
    fn on_l2_fill(
        &mut self,
        _trigger_ea: VirtAddr,
        _vline: VirtAddr,
        _data: &[u8; cdp_types::LINE_SIZE],
        _kind: RequestKind,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    /// Table storage this engine occupies, in bytes — *capacity*, not
    /// residency, so the figure is stable over a run. The equal-silicon
    /// tournament normalizes every entrant to a matched budget through
    /// this method. Stateless engines (the content prefetcher's whole
    /// point) report 0.
    fn budget_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = PrefetchRequest::content(VirtAddr(0x40), 2);
        assert_eq!(r.kind, RequestKind::Content { depth: 2 });
        assert_eq!(PrefetchRequest::stride(VirtAddr(0)).kind, RequestKind::Stride);
        assert_eq!(PrefetchRequest::markov(VirtAddr(0)).kind, RequestKind::Markov);
    }

    #[test]
    fn default_hooks_are_inert() {
        struct Nop;
        impl Prefetcher for Nop {}
        let mut out = Vec::new();
        let mut p = Nop;
        p.on_l1_miss(0, VirtAddr(0), &mut out);
        p.on_l2_miss(VirtAddr(0), &mut out);
        p.on_l2_fill(
            VirtAddr(0),
            VirtAddr(0),
            &[0u8; cdp_types::LINE_SIZE],
            RequestKind::Demand,
            &mut out,
        );
        assert!(out.is_empty());
    }
}
