//! Adaptive (run-time) heuristic control — the paper's stated future
//! work: "One area of research currently being investigated by the
//! authors is adaptive (runtime) heuristics for adjusting these
//! parameters" (§4.1).
//!
//! [`AdaptiveVam`] is a small hill-climbing controller: every
//! `window` issued prefetches it computes the window's accuracy and nudges
//! the content prefetcher's knobs —
//!
//! * accuracy below the low water mark → get *conservative*: shed
//!   next-line width first, then demand more compare bits;
//! * accuracy above the high water mark → get *aggressive*: relax compare
//!   bits back toward the tuned point, then re-grow width.
//!
//! The controller only moves one knob per window (classic one-factor
//! hill climbing), so a misbehaving phase cannot whipsaw the
//! configuration.

pub use cdp_types::AdaptiveConfig;
use cdp_types::ContentConfig;

/// One knob adjustment taken by the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adjustment {
    /// No change this window.
    Hold,
    /// Reduced `next_lines` by one.
    NarrowWidth,
    /// Increased `next_lines` by one.
    WidenWidth,
    /// Increased `compare_bits` by one (stricter matching).
    TightenCompare,
    /// Decreased `compare_bits` by one (looser matching).
    LoosenCompare,
}

/// Cumulative controller statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Windows evaluated.
    pub windows: u64,
    /// Conservative moves taken.
    pub tightened: u64,
    /// Aggressive moves taken.
    pub loosened: u64,
}

/// The run-time controller.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::adaptive::{AdaptiveConfig, AdaptiveVam, Adjustment};
/// use cdp_types::ContentConfig;
///
/// let mut ctl = AdaptiveVam::new(AdaptiveConfig::default());
/// let mut cfg = ContentConfig::tuned();
/// // A dreadful window (5% accuracy): the controller sheds width.
/// let adj = ctl.adjust(&mut cfg, 1000, 50);
/// assert_eq!(adj, Adjustment::NarrowWidth);
/// assert_eq!(cfg.next_lines, 2);
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveVam {
    cfg: AdaptiveConfig,
    last_issued: u64,
    last_useful: u64,
    stats: AdaptiveStats,
}

impl AdaptiveVam {
    /// Creates a controller.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveVam {
            cfg,
            last_issued: 0,
            last_useful: 0,
            stats: AdaptiveStats::default(),
        }
    }

    /// Controller settings.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> AdaptiveStats {
        self.stats
    }

    /// Whether enough new issues have accumulated to evaluate a window.
    pub fn window_ready(&self, issued_total: u64) -> bool {
        issued_total.saturating_sub(self.last_issued) >= self.cfg.window
    }

    /// Evaluates the window ending at (`issued_total`, `useful_total`)
    /// cumulative counters and adjusts `content` in place. Returns the
    /// adjustment taken. Call when [`AdaptiveVam::window_ready`].
    pub fn adjust(
        &mut self,
        content: &mut ContentConfig,
        issued_total: u64,
        useful_total: u64,
    ) -> Adjustment {
        let issued = issued_total.saturating_sub(self.last_issued);
        let useful = useful_total.saturating_sub(self.last_useful);
        self.last_issued = issued_total;
        self.last_useful = useful_total;
        if issued == 0 {
            return Adjustment::Hold;
        }
        self.stats.windows += 1;
        let accuracy = useful as f64 / issued as f64;
        if accuracy < self.cfg.low_water {
            self.stats.tightened += 1;
            if content.next_lines > 0 {
                content.next_lines -= 1;
                return Adjustment::NarrowWidth;
            }
            if content.vam.compare_bits < self.cfg.max_compare_bits {
                content.vam.compare_bits += 1;
                return Adjustment::TightenCompare;
            }
            self.stats.tightened -= 1;
            Adjustment::Hold
        } else if accuracy > self.cfg.high_water {
            self.stats.loosened += 1;
            if content.vam.compare_bits > self.cfg.min_compare_bits {
                content.vam.compare_bits -= 1;
                return Adjustment::LoosenCompare;
            }
            if content.next_lines < self.cfg.max_next_lines {
                content.next_lines += 1;
                return Adjustment::WidenWidth;
            }
            self.stats.loosened -= 1;
            Adjustment::Hold
        } else {
            Adjustment::Hold
        }
    }

    /// Serializes the controller state (window anchors + counters).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.last_issued);
        enc.u64(self.last_useful);
        enc.u64(self.stats.windows);
        enc.u64(self.stats.tightened);
        enc.u64(self.stats.loosened);
    }

    /// Restores state written by [`AdaptiveVam::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.last_issued = dec.u64("adaptive last_issued")?;
        self.last_useful = dec.u64("adaptive last_useful")?;
        self.stats.windows = dec.u64("adaptive stats windows")?;
        self.stats.tightened = dec.u64("adaptive stats tightened")?;
        self.stats.loosened = dec.u64("adaptive stats loosened")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::VamConfig;

    fn tuned() -> ContentConfig {
        ContentConfig::tuned()
    }

    #[test]
    fn low_accuracy_sheds_width_then_tightens_compare() {
        let mut ctl = AdaptiveVam::new(AdaptiveConfig::default());
        let mut cfg = tuned();
        let mut issued = 0u64;
        // Repeated 5%-accuracy windows: n3 -> n2 -> n1 -> n0, then compare
        // bits 8 -> 9 -> ... -> 12, then hold.
        let mut moves = Vec::new();
        for _ in 0..10 {
            issued += 1000;
            moves.push(ctl.adjust(&mut cfg, issued, issued / 20));
        }
        assert_eq!(cfg.next_lines, 0);
        assert_eq!(cfg.vam.compare_bits, 12);
        assert_eq!(moves[0], Adjustment::NarrowWidth);
        assert_eq!(moves[3], Adjustment::TightenCompare);
        assert_eq!(*moves.last().unwrap(), Adjustment::Hold);
    }

    #[test]
    fn high_accuracy_relaxes_back() {
        let mut ctl = AdaptiveVam::new(AdaptiveConfig::default());
        let mut cfg = ContentConfig {
            next_lines: 0,
            vam: VamConfig {
                compare_bits: 12,
                ..VamConfig::tuned()
            },
            ..tuned()
        };
        let mut issued = 0u64;
        let mut useful = 0u64;
        for _ in 0..10 {
            issued += 1000;
            useful += 800; // 80% accuracy
            ctl.adjust(&mut cfg, issued, useful);
        }
        assert_eq!(cfg.vam.compare_bits, 8, "compare relaxed first");
        assert!(cfg.next_lines > 0, "then width regrows");
    }

    #[test]
    fn mid_band_holds() {
        let mut ctl = AdaptiveVam::new(AdaptiveConfig::default());
        let mut cfg = tuned();
        assert_eq!(ctl.adjust(&mut cfg, 1000, 300), Adjustment::Hold);
        assert_eq!(cfg, tuned());
    }

    #[test]
    fn window_gating() {
        let ctl = AdaptiveVam::new(AdaptiveConfig {
            window: 512,
            ..AdaptiveConfig::default()
        });
        assert!(!ctl.window_ready(100));
        assert!(ctl.window_ready(512));
    }

    #[test]
    fn empty_window_is_a_hold() {
        let mut ctl = AdaptiveVam::new(AdaptiveConfig::default());
        let mut cfg = tuned();
        assert_eq!(ctl.adjust(&mut cfg, 0, 0), Adjustment::Hold);
        assert_eq!(ctl.stats().windows, 0);
    }

    #[test]
    fn one_move_per_window() {
        let mut ctl = AdaptiveVam::new(AdaptiveConfig::default());
        let mut cfg = tuned();
        ctl.adjust(&mut cfg, 1000, 0);
        // Only next_lines moved; compare bits untouched.
        assert_eq!(cfg.next_lines, 2);
        assert_eq!(cfg.vam.compare_bits, 8);
    }
}
