//! The content-directed data prefetcher (§3.4, Figures 3–5).
//!
//! The engine is deliberately *stateless*: it holds only its configuration
//! and counters. Everything the paper's mechanism needs at run time lives
//! where the paper puts it — the chain depth travels inside each request
//! ([`cdp_types::RequestKind::Content`]), and the reinforcement depth is
//! stored in the L2 line metadata by the hierarchy. The methods here are
//! the decision procedures:
//!
//! * [`ContentPrefetcher::scan_fill`] — scan a fill's data with the VAM
//!   heuristic and emit child prefetches one depth level down, expanded
//!   "wider" with previous/next-line requests (§3.4.3);
//! * [`ContentPrefetcher::should_rescan`] — the feedback-directed path
//!   reinforcement predicate (§3.4.2, Figure 4(b)/(c));
//! * [`ContentPrefetcher::promoted_depth`] — the stored-depth update rule
//!   ("consistent with maintaining the request depth as the number of
//!   links since a non-speculative request").

use cdp_types::{ContentConfig, VirtAddr, LINE_SIZE};

use crate::vam::scan_line;
use crate::{Prefetcher, PrefetchRequest};

/// Cumulative content-prefetcher statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentStats {
    /// Fill lines scanned (demand and prefetch fills).
    pub fills_scanned: u64,
    /// Lines re-scanned by the reinforcement mechanism.
    pub rescans: u64,
    /// Candidate virtual addresses the VAM heuristic accepted.
    pub candidates: u64,
    /// Prefetch requests emitted (candidates plus width expansion).
    pub emitted: u64,
    /// Scans suppressed because the fill's depth reached the threshold.
    pub depth_terminations: u64,
}

/// The content-directed prefetcher.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::ContentPrefetcher;
/// use cdp_types::{ContentConfig, VirtAddr, LINE_SIZE};
///
/// let mut cdp = ContentPrefetcher::new(ContentConfig::tuned());
/// let mut line = [0u8; LINE_SIZE];
/// // A node whose `next` pointer (offset 4) targets 0x1000_4000.
/// line[4..8].copy_from_slice(&0x1000_4000u32.to_le_bytes());
///
/// let mut out = Vec::new();
/// cdp.scan_fill(VirtAddr(0x1000_0040), &line, 0, &mut out);
/// // Candidate line + 3 next lines (the tuned p0.n3 width).
/// assert_eq!(out.len(), 4);
/// assert_eq!(out[0].vaddr, VirtAddr(0x1000_4000));
/// assert_eq!(out[0].kind.depth(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ContentPrefetcher {
    cfg: ContentConfig,
    stats: ContentStats,
}

impl ContentPrefetcher {
    /// Creates a content prefetcher with the given configuration.
    pub fn new(cfg: ContentConfig) -> Self {
        ContentPrefetcher {
            cfg,
            stats: ContentStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ContentConfig {
        &self.cfg
    }

    /// Replaces the configuration at run time (used by the adaptive
    /// controller of [`crate::adaptive`]).
    pub fn set_config(&mut self, cfg: ContentConfig) {
        self.cfg = cfg;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ContentStats {
        self.stats
    }

    /// Whether a fill of chain depth `fill_depth` may be scanned at all.
    ///
    /// Children would carry `fill_depth + 1`; once the fill itself has
    /// reached the threshold the chain terminates (Figure 3: "Line D is not
    /// scanned" at the threshold).
    #[inline]
    pub fn may_scan(&self, fill_depth: u8) -> bool {
        fill_depth < self.cfg.depth_threshold
    }

    /// Scans a newly arrived line and emits child prefetches.
    ///
    /// * `trigger_ea` — effective address of the request that produced the
    ///   fill (compare-bit reference).
    /// * `fill_depth` — the chain depth of the fill itself (0 for a demand
    ///   fill).
    ///
    /// Returns the number of VAM candidates found (0 also when the depth
    /// threshold suppressed the scan).
    pub fn scan_fill(
        &mut self,
        trigger_ea: VirtAddr,
        data: &[u8; LINE_SIZE],
        fill_depth: u8,
        out: &mut Vec<PrefetchRequest>,
    ) -> usize {
        if !self.may_scan(fill_depth) {
            self.stats.depth_terminations += 1;
            return 0;
        }
        self.stats.fills_scanned += 1;
        let child_depth = fill_depth + 1;
        let hits = scan_line(data, trigger_ea, &self.cfg.vam);
        self.stats.candidates += hits.len() as u64;
        // Dedup against what this scan already emitted by checking the
        // output tail directly (every request this scan pushes targets
        // `vaddr.line() == target`), avoiding a per-fill scratch Vec.
        let scan_start = out.len();
        for hit in &hits {
            let base_line = hit.candidate.line();
            // Candidate line itself, then width expansion: `prev_lines`
            // before and `next_lines` after (§3.4.3 / Figure 9's p/n axes).
            let first = -(self.cfg.prev_lines as i32);
            let last = self.cfg.next_lines as i32;
            for delta in first..=last {
                let target = base_line.add_lines(delta);
                if out[scan_start..]
                    .iter()
                    .any(|r| r.vaddr.line().0 == target.0)
                {
                    continue;
                }
                // The *candidate* address (not the line base) rides along
                // for delta == 0 so the next scan's compare bits reference
                // the true effective address.
                if delta == 0 {
                    out.push(PrefetchRequest::content(hit.candidate, child_depth));
                } else {
                    out.push(PrefetchRequest::content_width(target, child_depth));
                }
                self.stats.emitted += 1;
            }
        }
        hits.len()
    }

    /// Reinforcement predicate (§3.4.2): should a hit by a request of
    /// `incoming_depth` on a line whose stored depth is `stored_depth`
    /// trigger a depth promotion and rescan?
    ///
    /// Figure 4(b) rescans whenever the incoming depth is lower
    /// (margin 1); Figure 4(c) halves the rescan traffic by requiring the
    /// incoming depth to be at least two lower (margin 2).
    #[inline]
    pub fn should_rescan(&self, incoming_depth: u8, stored_depth: u8) -> bool {
        self.cfg.reinforcement
            && incoming_depth < stored_depth
            && stored_depth - incoming_depth >= self.cfg.reinforcement_margin.max(1)
    }

    /// The depth stored into a line after a hit by `incoming_depth`
    /// promotes it: the line is now `incoming_depth` links from a
    /// non-speculative request.
    #[inline]
    pub fn promoted_depth(&self, incoming_depth: u8) -> u8 {
        incoming_depth
    }

    /// Serializes the prefetcher state. The configuration rides along
    /// because the adaptive controller mutates it at run time — a resumed
    /// run must pick up the knobs exactly where the controller left them,
    /// not at the construction-time values.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u32(self.cfg.vam.compare_bits);
        enc.u32(self.cfg.vam.filter_bits);
        enc.u32(self.cfg.vam.align_bits);
        enc.usize(self.cfg.vam.scan_step);
        enc.u8(self.cfg.depth_threshold);
        enc.bool(self.cfg.reinforcement);
        enc.u8(self.cfg.reinforcement_margin);
        enc.u32(self.cfg.prev_lines);
        enc.u32(self.cfg.next_lines);
        enc.u64(self.stats.fills_scanned);
        enc.u64(self.stats.rescans);
        enc.u64(self.stats.candidates);
        enc.u64(self.stats.emitted);
        enc.u64(self.stats.depth_terminations);
    }

    /// Restores state written by [`ContentPrefetcher::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        self.cfg.vam.compare_bits = dec.u32("content vam compare_bits")?;
        self.cfg.vam.filter_bits = dec.u32("content vam filter_bits")?;
        self.cfg.vam.align_bits = dec.u32("content vam align_bits")?;
        self.cfg.vam.scan_step = dec.usize("content vam scan_step")?;
        self.cfg.depth_threshold = dec.u8("content depth_threshold")?;
        self.cfg.reinforcement = dec.bool("content reinforcement")?;
        self.cfg.reinforcement_margin = dec.u8("content reinforcement_margin")?;
        self.cfg.prev_lines = dec.u32("content prev_lines")?;
        self.cfg.next_lines = dec.u32("content next_lines")?;
        self.stats.fills_scanned = dec.u64("content stats fills_scanned")?;
        self.stats.rescans = dec.u64("content stats rescans")?;
        self.stats.candidates = dec.u64("content stats candidates")?;
        self.stats.emitted = dec.u64("content stats emitted")?;
        self.stats.depth_terminations = dec.u64("content stats depth_terminations")?;
        Ok(())
    }

    /// Performs a reinforcement rescan of a resident line (counted
    /// separately from fill scans; the paper notes rescans consume L2
    /// cycles and can flood arbiters, which the hierarchy models).
    pub fn rescan(
        &mut self,
        trigger_ea: VirtAddr,
        data: &[u8; LINE_SIZE],
        new_stored_depth: u8,
        out: &mut Vec<PrefetchRequest>,
    ) -> usize {
        self.stats.rescans += 1;
        // A rescan is a scan of a line whose depth was just promoted.
        self.scan_fill(trigger_ea, data, new_stored_depth, out)
    }
}

impl Prefetcher for ContentPrefetcher {
    fn on_l2_fill(
        &mut self,
        trigger_ea: VirtAddr,
        _vline: VirtAddr,
        data: &[u8; LINE_SIZE],
        kind: cdp_types::RequestKind,
        out: &mut Vec<PrefetchRequest>,
    ) {
        self.scan_fill(trigger_ea, data, kind.depth(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::VamConfig;

    fn line_with_pointers(ptrs: &[(usize, u32)]) -> [u8; LINE_SIZE] {
        let mut data = [0u8; LINE_SIZE];
        for &(off, val) in ptrs {
            data[off..off + 4].copy_from_slice(&val.to_le_bytes());
        }
        data
    }

    fn narrow() -> ContentConfig {
        // No width expansion: easier to reason about chains.
        ContentConfig {
            prev_lines: 0,
            next_lines: 0,
            ..ContentConfig::tuned()
        }
    }

    #[test]
    fn demand_fill_emits_depth_one() {
        let mut cdp = ContentPrefetcher::new(narrow());
        let data = line_with_pointers(&[(0, 0x1000_4000)]);
        let mut out = Vec::new();
        cdp.scan_fill(VirtAddr(0x1000_0040), &data, 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind.depth(), 1);
    }

    #[test]
    fn chained_fill_increments_depth() {
        let mut cdp = ContentPrefetcher::new(narrow());
        let data = line_with_pointers(&[(0, 0x1000_4000)]);
        let mut out = Vec::new();
        cdp.scan_fill(VirtAddr(0x1000_0040), &data, 2, &mut out);
        assert_eq!(out[0].kind.depth(), 3);
    }

    #[test]
    fn depth_threshold_terminates_chain() {
        // Figure 3 left: with threshold 3, a depth-3 fill is not scanned.
        let mut cdp = ContentPrefetcher::new(narrow());
        let data = line_with_pointers(&[(0, 0x1000_4000)]);
        let mut out = Vec::new();
        let found = cdp.scan_fill(VirtAddr(0x1000_0040), &data, 3, &mut out);
        assert_eq!(found, 0);
        assert!(out.is_empty());
        assert_eq!(cdp.stats().depth_terminations, 1);
    }

    #[test]
    fn width_expansion_emits_next_lines() {
        let cfg = ContentConfig {
            prev_lines: 1,
            next_lines: 2,
            ..ContentConfig::tuned()
        };
        let mut cdp = ContentPrefetcher::new(cfg);
        let data = line_with_pointers(&[(8, 0x1000_4010)]);
        let mut out = Vec::new();
        cdp.scan_fill(VirtAddr(0x1000_0040), &data, 0, &mut out);
        let targets: Vec<u32> = out.iter().map(|r| r.vaddr.0).collect();
        assert_eq!(
            targets,
            vec![0x1000_3fc0, 0x1000_4010, 0x1000_4040, 0x1000_4080],
            "p1 + candidate + n2, candidate keeps its exact address"
        );
        // All at the same chain depth.
        assert!(out.iter().all(|r| r.kind.depth() == 1));
    }

    #[test]
    fn overlapping_candidates_do_not_duplicate_lines() {
        // Two pointers into the same target line -> each line prefetched
        // once.
        let cfg = ContentConfig {
            next_lines: 1,
            ..narrow()
        };
        let mut cdp = ContentPrefetcher::new(cfg);
        let data = line_with_pointers(&[(0, 0x1000_4000), (8, 0x1000_4020)]);
        let mut out = Vec::new();
        cdp.scan_fill(VirtAddr(0x1000_0040), &data, 0, &mut out);
        let mut lines: Vec<u32> = out.iter().map(|r| r.vaddr.line().0).collect();
        lines.dedup();
        assert_eq!(lines, vec![0x1000_4000, 0x1000_4040]);
    }

    #[test]
    fn reinforcement_predicate_margins() {
        let cdp = ContentPrefetcher::new(ContentConfig::tuned()); // margin 1
        assert!(cdp.should_rescan(0, 1), "demand hit on depth-1 line");
        assert!(cdp.should_rescan(0, 3));
        assert!(cdp.should_rescan(1, 2));
        assert!(!cdp.should_rescan(1, 1), "equal depth: no rescan");
        assert!(!cdp.should_rescan(2, 1), "deeper hit never rescans");

        let fig4c = ContentPrefetcher::new(ContentConfig {
            reinforcement_margin: 2,
            ..ContentConfig::tuned()
        });
        assert!(!fig4c.should_rescan(0, 1), "margin 2 skips distance-1 hits");
        assert!(fig4c.should_rescan(0, 2));
        assert!(fig4c.should_rescan(1, 3));
    }

    #[test]
    fn no_reinforcement_never_rescans() {
        let cdp = ContentPrefetcher::new(ContentConfig {
            reinforcement: false,
            ..ContentConfig::tuned()
        });
        assert!(!cdp.should_rescan(0, 3));
    }

    #[test]
    fn promoted_depth_is_incoming() {
        let cdp = ContentPrefetcher::new(ContentConfig::tuned());
        assert_eq!(cdp.promoted_depth(0), 0);
        assert_eq!(cdp.promoted_depth(2), 2);
    }

    #[test]
    fn figure3_chain_walkthrough() {
        // Figure 3 left side: A (demand, d0) -> B (d1) -> C (d2) -> D (d3,
        // not scanned). Each line holds one pointer to the next.
        let mut cdp = ContentPrefetcher::new(narrow());
        let lines = [0x1000_0000u32, 0x1000_1000, 0x1000_2000, 0x1000_3000];
        let mut out = Vec::new();
        let mut depth = 0u8;
        for w in 0..3 {
            let data = line_with_pointers(&[(0, lines[w + 1])]);
            let mut step = Vec::new();
            let found = cdp.scan_fill(VirtAddr(lines[w]), &data, depth, &mut step);
            assert_eq!(found, 1, "line {w} scanned");
            depth = step[0].kind.depth();
            out.extend(step);
        }
        assert_eq!(depth, 3);
        // D's fill (depth 3) is not scanned.
        let d_data = line_with_pointers(&[(0, 0x1000_4000)]);
        let mut step = Vec::new();
        assert_eq!(cdp.scan_fill(VirtAddr(lines[3]), &d_data, depth, &mut step), 0);
        assert!(step.is_empty());
    }

    #[test]
    fn rescan_counts_separately() {
        let mut cdp = ContentPrefetcher::new(narrow());
        let data = line_with_pointers(&[(0, 0x1000_4000)]);
        let mut out = Vec::new();
        cdp.rescan(VirtAddr(0x1000_0040), &data, 0, &mut out);
        assert_eq!(cdp.stats().rescans, 1);
        assert_eq!(cdp.stats().fills_scanned, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind.depth(), 1);
    }

    #[test]
    fn junk_line_emits_nothing() {
        let mut cdp = ContentPrefetcher::new(ContentConfig::tuned());
        // Compressed-looking data: odd bytes everywhere, wrong upper bits.
        let mut data = [0u8; LINE_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37) | 1;
        }
        let mut out = Vec::new();
        let found = cdp.scan_fill(VirtAddr(0x1000_0040), &data, 0, &mut out);
        assert_eq!(found, 0);
    }

    #[test]
    fn zero_filter_bits_suppress_low_region() {
        let cfg = ContentConfig {
            vam: VamConfig {
                filter_bits: 0,
                ..VamConfig::tuned()
            },
            ..narrow()
        };
        let mut cdp = ContentPrefetcher::new(cfg);
        // Trigger and pointer both in the 0x00...... region.
        let data = line_with_pointers(&[(0, 0x00ab_cd00)]);
        let mut out = Vec::new();
        assert_eq!(cdp.scan_fill(VirtAddr(0x00aa_0040), &data, 0, &mut out), 0);
    }
}
