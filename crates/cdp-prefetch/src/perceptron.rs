//! A perceptron prefetch-confidence filter (arXiv 1712.00905).
//!
//! Any engine's issue stream can be gated on a learned accuracy estimate:
//! before a prefetch issues, hashed features of the request (its line,
//! its page, its originating engine) each index a table of signed-byte
//! weights, and the request only issues when the weight sum reaches a
//! threshold. Feedback closes the loop:
//!
//! * a prefetched line a demand later touches trains the weights **up**;
//! * a prefetched line evicted untouched trains them **down**;
//! * a demand miss on a line the filter recently *rejected* is a false
//!   negative and trains the weights back up (a small reject buffer of
//!   line tags makes these visible — without it the filter could latch
//!   shut).
//!
//! The filter is an engine-side component, not a [`Prefetcher`]: the
//! hierarchy consults [`PerceptronFilter::accept`] between request
//! generation and issue, and feeds outcomes back from the same
//! accounting sites that maintain the per-engine useful/wasted counters.
//!
//! [`Prefetcher`]: crate::Prefetcher

use cdp_types::{PerceptronConfig, RequestKind, VirtAddr, PERCEPTRON_FEATURES};

use crate::PrefetchRequest;

/// Cumulative filter statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerceptronStats {
    /// Requests presented to the filter.
    pub considered: u64,
    /// Requests allowed through.
    pub accepted: u64,
    /// Requests suppressed.
    pub rejected: u64,
    /// Positive training events (prefetch proved useful).
    pub trained_useful: u64,
    /// Negative training events (prefetch evicted untouched).
    pub trained_wasted: u64,
    /// Rejected lines that a demand missed on anyway (trained back up).
    pub false_negatives: u64,
}

/// The perceptron confidence filter.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::{PerceptronFilter, PrefetchRequest};
/// use cdp_types::{PerceptronConfig, VirtAddr};
///
/// let mut pf = PerceptronFilter::new(&PerceptronConfig::default());
/// let req = PrefetchRequest::stride(VirtAddr(0x1000));
/// // Fresh weights sit at zero: everything at threshold 0 passes.
/// assert!(pf.accept(&req));
/// // Wasted-prefetch feedback drives the weights negative ...
/// for _ in 0..4 {
///     pf.train(req.vaddr, req.kind, false);
/// }
/// // ... and the same request is now suppressed.
/// assert!(!pf.accept(&req));
/// ```
#[derive(Clone, Debug)]
pub struct PerceptronFilter {
    /// `PERCEPTRON_FEATURES` weight tables, concatenated.
    weights: Vec<i8>,
    entries_per_feature: usize,
    threshold: i32,
    /// Direct-mapped recently-rejected line tags (0 = empty; line
    /// addresses always have nonzero upper bits in practice, and a
    /// zero-line false negative merely goes unnoticed).
    reject: Vec<u32>,
    stats: PerceptronStats,
}

/// A stable small code per originating engine, mixed into the hashed
/// features so different engines' accuracy is tracked separately.
fn kind_feature(kind: RequestKind) -> u32 {
    match kind {
        RequestKind::Demand | RequestKind::PageWalk => 0,
        RequestKind::Stride => 1,
        RequestKind::Content { .. } => 2,
        RequestKind::Markov => 3,
        RequestKind::Delta => 4,
        RequestKind::Jump => 5,
    }
}

impl PerceptronFilter {
    /// Creates a filter with zeroed weights.
    pub fn new(cfg: &PerceptronConfig) -> Self {
        PerceptronFilter {
            weights: vec![0i8; PERCEPTRON_FEATURES * cfg.entries_per_feature.max(1)],
            entries_per_feature: cfg.entries_per_feature.max(1),
            threshold: cfg.threshold,
            reject: vec![0u32; cfg.reject_entries],
            stats: PerceptronStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PerceptronStats {
        self.stats
    }

    /// Table storage in bytes: one byte per weight plus a 4-byte tag per
    /// reject-buffer slot.
    pub fn budget_bytes(&self) -> usize {
        self.weights.len() + 4 * self.reject.len()
    }

    /// The three feature indices for a (line, kind) pair, one per table.
    fn feature_indices(&self, vaddr: VirtAddr, kind: RequestKind) -> [usize; PERCEPTRON_FEATURES] {
        let n = self.entries_per_feature;
        let line_units = vaddr.line().0 >> 6;
        let page = vaddr.0 >> 12;
        // Mix the engine code into a hashed third feature so the same
        // line can be trusted from one engine and distrusted from another.
        let mixed = (line_units ^ line_units.rotate_left(13))
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(kind_feature(kind));
        [
            line_units as usize % n,
            n + page as usize % n,
            2 * n + mixed as usize % n,
        ]
    }

    fn sum(&self, vaddr: VirtAddr, kind: RequestKind) -> i32 {
        self.feature_indices(vaddr, kind)
            .iter()
            .map(|&i| i32::from(self.weights[i]))
            .sum()
    }

    /// Decides whether `req` may issue. Rejected requests record their
    /// line in the reject buffer so later demand misses can expose false
    /// negatives.
    pub fn accept(&mut self, req: &PrefetchRequest) -> bool {
        self.stats.considered += 1;
        if self.sum(req.vaddr, req.kind) >= self.threshold {
            self.stats.accepted += 1;
            true
        } else {
            self.stats.rejected += 1;
            if !self.reject.is_empty() {
                let line = req.vaddr.line().0;
                let slot = (line >> 6) as usize % self.reject.len();
                self.reject[slot] = line;
            }
            false
        }
    }

    /// Outcome feedback for an issued prefetch: `useful == true` when a
    /// demand touched the prefetched line, `false` when it was evicted
    /// untouched. Saturating ±1 updates.
    pub fn train(&mut self, vaddr: VirtAddr, kind: RequestKind, useful: bool) {
        if useful {
            self.stats.trained_useful += 1;
        } else {
            self.stats.trained_wasted += 1;
        }
        for i in self.feature_indices(vaddr, kind) {
            let w = &mut self.weights[i];
            *w = if useful {
                w.saturating_add(1)
            } else {
                w.saturating_sub(1)
            };
        }
    }

    /// A demand miss: if the missed line was recently rejected, the
    /// rejection was wrong — train the line's features back up under
    /// `kind` (the engine whose request was suppressed is unknown by
    /// now, so the caller passes `RequestKind::Demand` to hit the shared
    /// line/page features).
    pub fn on_demand_miss(&mut self, vaddr: VirtAddr) {
        if self.reject.is_empty() {
            return;
        }
        let line = vaddr.line().0;
        let slot = (line >> 6) as usize % self.reject.len();
        if self.reject[slot] == line {
            self.reject[slot] = 0;
            self.stats.false_negatives += 1;
            for i in self.feature_indices(vaddr, RequestKind::Demand) {
                let w = &mut self.weights[i];
                *w = w.saturating_add(1);
            }
        }
    }

    /// Serializes the complete filter state.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.stats.considered);
        enc.u64(self.stats.accepted);
        enc.u64(self.stats.rejected);
        enc.u64(self.stats.trained_useful);
        enc.u64(self.stats.trained_wasted);
        enc.u64(self.stats.false_negatives);
        enc.seq_len(self.weights.len());
        for &w in &self.weights {
            enc.u8(w as u8);
        }
        enc.seq_len(self.reject.len());
        for &t in &self.reject {
            enc.u32(t);
        }
    }

    /// Restores state written by [`PerceptronFilter::save_state`] into a
    /// filter of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation or a
    /// table size mismatch.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.stats.considered = dec.u64("perceptron stats considered")?;
        self.stats.accepted = dec.u64("perceptron stats accepted")?;
        self.stats.rejected = dec.u64("perceptron stats rejected")?;
        self.stats.trained_useful = dec.u64("perceptron stats trained_useful")?;
        self.stats.trained_wasted = dec.u64("perceptron stats trained_wasted")?;
        self.stats.false_negatives = dec.u64("perceptron stats false_negatives")?;
        let n = dec.seq_len(1, "perceptron weight count")?;
        if n != self.weights.len() {
            return Err(SnapshotError::Corrupt {
                context: "perceptron weight count",
            });
        }
        for w in self.weights.iter_mut() {
            *w = dec.u8("perceptron weight")? as i8;
        }
        let r = dec.seq_len(4, "perceptron reject count")?;
        if r != self.reject.len() {
            return Err(SnapshotError::Corrupt {
                context: "perceptron reject count",
            });
        }
        for t in self.reject.iter_mut() {
            *t = dec.u32("perceptron reject tag")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> PerceptronFilter {
        PerceptronFilter::new(&PerceptronConfig::default())
    }

    #[test]
    fn fresh_filter_passes_at_zero_threshold() {
        let mut p = pf();
        assert!(p.accept(&PrefetchRequest::stride(VirtAddr(0x1000))));
        assert!(p.accept(&PrefetchRequest::content(VirtAddr(0x2000), 2)));
        assert_eq!(p.stats().accepted, 2);
        assert_eq!(p.stats().rejected, 0);
    }

    #[test]
    fn wasted_feedback_closes_the_gate() {
        let mut p = pf();
        let req = PrefetchRequest::markov(VirtAddr(0x4_2000));
        for _ in 0..4 {
            p.train(req.vaddr, req.kind, false);
        }
        assert!(!p.accept(&req));
        assert_eq!(p.stats().rejected, 1);
    }

    #[test]
    fn useful_feedback_reopens_it() {
        let mut p = pf();
        let req = PrefetchRequest::markov(VirtAddr(0x4_2000));
        for _ in 0..4 {
            p.train(req.vaddr, req.kind, false);
        }
        assert!(!p.accept(&req));
        for _ in 0..8 {
            p.train(req.vaddr, req.kind, true);
        }
        assert!(p.accept(&req));
    }

    #[test]
    fn false_negative_detection_recovers() {
        let mut p = pf();
        let req = PrefetchRequest::stride(VirtAddr(0x4_2000));
        for _ in 0..4 {
            p.train(req.vaddr, req.kind, false);
        }
        assert!(!p.accept(&req));
        // The demand stream wanted that line after all: repeated misses
        // on rejected lines train the shared features back up.
        for _ in 0..8 {
            assert!(!p.accept(&req) || p.sum(req.vaddr, req.kind) >= 0);
            p.on_demand_miss(req.vaddr);
        }
        assert!(p.stats().false_negatives > 0);
        assert!(p.accept(&req), "filter must not latch shut");
    }

    #[test]
    fn engines_are_tracked_separately() {
        let mut p = pf();
        let addr = VirtAddr(0x4_2000);
        // Markov at this address is junk; stride at this address is good.
        for _ in 0..6 {
            p.train(addr, RequestKind::Markov, false);
            p.train(addr, RequestKind::Stride, true);
        }
        // The shared line/page features cancel; the kind-mixed feature
        // decides.
        assert!(p.accept(&PrefetchRequest::stride(addr)));
        assert!(!p.accept(&PrefetchRequest::markov(addr)));
    }

    #[test]
    fn weights_saturate() {
        let mut p = pf();
        let addr = VirtAddr(0x4_2000);
        for _ in 0..300 {
            p.train(addr, RequestKind::Stride, false);
        }
        assert_eq!(p.sum(addr, RequestKind::Stride), -128 * 3);
        for _ in 0..600 {
            p.train(addr, RequestKind::Stride, true);
        }
        assert_eq!(p.sum(addr, RequestKind::Stride), 127 * 3);
    }

    #[test]
    fn budget_bytes_matches_config() {
        let cfg = PerceptronConfig::with_budget(16 * 1024).unwrap();
        let p = PerceptronFilter::new(&cfg);
        assert_eq!(p.budget_bytes(), cfg.table_bytes());
    }

    #[test]
    fn snapshot_roundtrip_resumes_bit_identically() {
        let mut p = pf();
        for i in 0..200u32 {
            let addr = VirtAddr(0x1000 + i * 192);
            let req = PrefetchRequest::stride(addr);
            if !p.accept(&req) {
                p.on_demand_miss(addr);
            }
            p.train(addr, RequestKind::Stride, i % 3 == 0);
        }
        let mut enc = cdp_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = pf();
        let mut dec = cdp_snap::Dec::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        for i in 0..50u32 {
            let req = PrefetchRequest::markov(VirtAddr(0x9000 + i * 64));
            assert_eq!(p.accept(&req), restored.accept(&req));
        }
        assert_eq!(p.stats(), restored.stats());
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let p = pf();
        let mut enc = cdp_snap::Enc::new();
        p.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut other = PerceptronFilter::new(&PerceptronConfig {
            entries_per_feature: 17,
            ..PerceptronConfig::default()
        });
        let mut dec = cdp_snap::Dec::new(&bytes);
        assert!(other.restore_state(&mut dec).is_err());
    }
}
