//! The virtual-address-matching (VAM) pointer-recognition heuristic (§3.3).
//!
//! "The virtual address matching predictor originates from the idea that the
//! base address of a data structure is hinted at via the load of any member
//! of the data structure ... most virtual data addresses tend to share
//! common high-order bits."
//!
//! A 32-bit word from a fill is declared a *candidate virtual address* when
//! (Figure 2, Figure 5):
//!
//! 1. **Align bits** — its low `align_bits` bits are zero (compilers place
//!    pointers on 2/4-byte boundaries);
//! 2. **Compare bits** — its upper `compare_bits` bits equal the upper bits
//!    of the *effective address that triggered the fill*;
//! 3. **Filter bits** — if those shared upper bits are all zeros (or all
//!    ones), the next `filter_bits` bits must contain a non-zero (resp.
//!    non-one) bit, rescuing true pointers in the extreme regions while
//!    rejecting small positive (resp. negative) integers.
//!
//! The scanner walks the 64-byte line in `scan_step`-byte steps, evaluating
//! every in-bounds word — conceptually in parallel in hardware ("such a
//! design can (and does) lead to multiple prefetches being generated per
//! cycle").

use cdp_types::{VamConfig, VirtAddr, LINE_SIZE, WORD_SIZE};

/// The outcome of classifying one word against the VAM heuristic, naming
/// which test rejected it. The observability layer records this per-word;
/// the hot path only cares about [`VamVerdict::Accept`] via
/// [`is_candidate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VamVerdict {
    /// The word looks like a pointer: prefetch it.
    Accept,
    /// Low `align_bits` were not zero.
    RejectAlign,
    /// Upper `compare_bits` did not match the trigger address.
    RejectCompare,
    /// The word sits in an all-zeros/all-ones region and its filter bits
    /// did not discriminate it from a small integer.
    RejectFilter,
}

/// Classifies `word` against the fill's triggering effective address,
/// reporting which VAM test (align, compare, filter) decided its fate.
///
/// This is the single source of truth for the heuristic; [`is_candidate`]
/// is a thin wrapper, so the two can never disagree.
#[inline]
pub fn classify(word: u32, trigger_ea: VirtAddr, cfg: &VamConfig) -> VamVerdict {
    // Alignment test first (cheapest): low `align_bits` must be zero.
    if cfg.align_bits > 0 && word.trailing_zeros() < cfg.align_bits {
        return VamVerdict::RejectAlign;
    }
    let n = cfg.compare_bits;
    if n == 0 || n >= 32 {
        // Degenerate configurations: 0 compare bits matches everything
        // aligned; >=32 requires exact equality with the trigger.
        return if n == 0 || word == trigger_ea.0 {
            VamVerdict::Accept
        } else {
            VamVerdict::RejectCompare
        };
    }
    let shift = 32 - n;
    let upper_word = word >> shift;
    let upper_ea = trigger_ea.0 >> shift;
    if upper_word != upper_ea {
        return VamVerdict::RejectCompare;
    }
    let all_ones_pattern = (1u32 << n) - 1;
    let all_zeros = upper_word == 0;
    let all_ones = upper_word == all_ones_pattern;
    if !all_zeros && !all_ones {
        return VamVerdict::Accept;
    }
    // Extreme regions: consult the filter bits. Zero filter bits means no
    // prediction here at all.
    if cfg.filter_bits == 0 {
        return VamVerdict::RejectFilter;
    }
    let m = cfg.filter_bits.min(32 - n);
    let filter = (word >> (32 - n - m)) & ((1u32 << m) - 1);
    let passes = if all_zeros {
        // A "likely address" must have some non-zero bit just below the
        // compare field, i.e. be large enough to not be a small integer.
        filter != 0
    } else {
        // Upper region: look for a non-one bit (reject small negatives).
        filter != (1u32 << m) - 1
    };
    if passes {
        VamVerdict::Accept
    } else {
        VamVerdict::RejectFilter
    }
}

/// Decides whether `word` looks like a pointer given the fill's triggering
/// effective address.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::is_candidate;
/// use cdp_types::{VamConfig, VirtAddr};
///
/// let cfg = VamConfig::tuned(); // 8 compare, 4 filter, 1 align, step 2
/// let trigger = VirtAddr(0x1040_2000);
/// // Shares the 0x10 upper byte with the trigger: candidate.
/// assert!(is_candidate(0x10ab_cde0, trigger, &cfg));
/// // Upper byte differs: rejected.
/// assert!(!is_candidate(0x20ab_cde0, trigger, &cfg));
/// ```
#[inline]
pub fn is_candidate(word: u32, trigger_ea: VirtAddr, cfg: &VamConfig) -> bool {
    matches!(classify(word, trigger_ea, cfg), VamVerdict::Accept)
}

/// One candidate found while scanning a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineScan {
    /// Byte offset of the word within the scanned line.
    pub offset: usize,
    /// The candidate virtual address (the word's value).
    pub candidate: VirtAddr,
}

/// Maximum candidates a single line scan can yield: the densest scan (a
/// 1-byte step) examines `(LINE_SIZE - WORD_SIZE) + 1 = 61` words.
pub const MAX_SCAN_HITS: usize = LINE_SIZE - WORD_SIZE + 1;

/// Fixed-capacity, stack-allocated result of [`scan_line`].
///
/// The scan runs once per L2 fill — the hottest loop in the simulator — so
/// it must not touch the heap. Dereferences to `&[LineScan]`, so existing
/// slice-style call sites (`.len()`, `.iter()`, indexing) keep working.
#[derive(Clone, Copy, Debug)]
pub struct ScanHits {
    hits: [LineScan; MAX_SCAN_HITS],
    len: usize,
}

impl ScanHits {
    const EMPTY: LineScan = LineScan {
        offset: 0,
        candidate: VirtAddr(0),
    };

    /// An empty hit set.
    #[inline]
    pub fn new() -> Self {
        ScanHits {
            hits: [Self::EMPTY; MAX_SCAN_HITS],
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, hit: LineScan) {
        self.hits[self.len] = hit;
        self.len += 1;
    }

    /// The hits found, in line-offset order.
    #[inline]
    pub fn as_slice(&self) -> &[LineScan] {
        &self.hits[..self.len]
    }
}

impl Default for ScanHits {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for ScanHits {
    type Target = [LineScan];

    #[inline]
    fn deref(&self) -> &[LineScan] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a ScanHits {
    type Item = &'a LineScan;
    type IntoIter = std::slice::Iter<'a, LineScan>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The loop-invariant part of a line scan, precomputed once per fill.
///
/// [`classify`] re-derives masks and shifts from the config for every
/// word; over a 16–61-word line that work is identical each time. The
/// plan folds the three VAM tests into three mask/shift/compare triples
/// so the per-word check is pure straight-line bit arithmetic:
///
/// * align — `word & align_mask == 0` (`align_bits >= 33` can never
///   pass, since `trailing_zeros` is at most 32: planned as reject-all);
/// * compare — `(word as u64) >> cmp_shift == cmp_value`, which unifies
///   the degenerate regimes: `n == 0` shifts everything away
///   (`0 == 0`), `n >= 32` shifts nothing (exact equality);
/// * filter — `(word >> filter_shift) & filter_mask != filter_reject`.
///   The extreme-region test depends only on the *trigger's* upper bits
///   (a word that passes compare shares them), so whether the filter
///   fires at all is known before the scan: outside the extreme regions
///   the mask is 0 and reject is 1, which can never match. A trigger in
///   an extreme region with `filter_bits == 0` rejects every
///   compare-passing word, i.e. the whole scan — planned as reject-all.
struct ScanPlan {
    align_mask: u32,
    cmp_shift: u32,
    cmp_value: u64,
    filter_shift: u32,
    filter_mask: u32,
    filter_reject: u32,
}

impl ScanPlan {
    /// Builds the plan, or `None` when no word can possibly be accepted.
    fn new(trigger_ea: VirtAddr, cfg: &VamConfig) -> Option<ScanPlan> {
        let align_mask = match cfg.align_bits {
            0 => 0,
            a @ 1..=31 => (1u32 << a) - 1,
            32 => u32::MAX,
            _ => return None,
        };
        let n = cfg.compare_bits;
        let (cmp_shift, cmp_value) = if n == 0 {
            (32, 0)
        } else if n >= 32 {
            (0, u64::from(trigger_ea.0))
        } else {
            (32 - n, u64::from(trigger_ea.0 >> (32 - n)))
        };
        let (mut filter_shift, mut filter_mask, mut filter_reject) = (0, 0, 1);
        if (1..32).contains(&n) {
            let upper_ea = trigger_ea.0 >> (32 - n);
            let ones = (1u32 << n) - 1;
            if upper_ea == 0 || upper_ea == ones {
                if cfg.filter_bits == 0 {
                    return None;
                }
                let m = cfg.filter_bits.min(32 - n);
                filter_shift = 32 - n - m;
                filter_mask = (1u32 << m) - 1;
                filter_reject = if upper_ea == 0 { 0 } else { filter_mask };
            }
        }
        Some(ScanPlan {
            align_mask,
            cmp_shift,
            cmp_value,
            filter_shift,
            filter_mask,
            filter_reject,
        })
    }
}

/// Scans a 64-byte fill for candidate virtual addresses (Figure 5).
///
/// `trigger_ea` is the effective address of the memory request that caused
/// the fill. Words are read little-endian at offsets `0, s, 2s, …` while
/// the full word stays in bounds: a 1-byte step examines 61 words, a 4-byte
/// step 16 (§3.3's worked example). The result lives entirely on the stack:
/// no heap allocation per scanned line.
///
/// This is the optimized scanner. The config-dependent mask/shift work is
/// hoisted into a [`ScanPlan`] built once per line (including reject-all
/// short-circuits that skip the loop entirely), words are read with
/// single unaligned little-endian loads, and each word faces one
/// branch-free mask/shift/compare triple per test, most discriminating
/// first. Fully branchless per-word evaluation (accept bitmasks,
/// unconditional stores) measured *slower* than this shape on real fill
/// mixes — see PERF.md for the negative results. [`scan_line_scalar`] is
/// the straight-from-the-paper reference; the differential test suite
/// holds them hit-for-hit identical.
pub fn scan_line(data: &[u8; LINE_SIZE], trigger_ea: VirtAddr, cfg: &VamConfig) -> ScanHits {
    let mut found = ScanHits::new();
    let Some(plan) = ScanPlan::new(trigger_ea, cfg) else {
        return found;
    };
    let step = cfg.scan_step.max(1);
    let mut offset = 0;
    while offset + WORD_SIZE <= LINE_SIZE {
        let word = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap());
        // Compare first: it is the most discriminating test on real fill
        // traffic (most words do not share the trigger's upper bits), so
        // the common case is a single shift-and-compare rejection.
        if (u64::from(word) >> plan.cmp_shift) == plan.cmp_value
            && (word & plan.align_mask) == 0
            && ((word >> plan.filter_shift) & plan.filter_mask) != plan.filter_reject
        {
            found.push(LineScan {
                offset,
                candidate: VirtAddr(word),
            });
        }
        offset += step;
    }
    found
}

/// Scalar reference implementation of [`scan_line`]: one [`classify`]
/// call per word, exactly as §3.3 describes the hardware. Kept as the
/// differential oracle for the optimized scanner (and for readers who
/// want the heuristic without the bit tricks).
pub fn scan_line_scalar(
    data: &[u8; LINE_SIZE],
    trigger_ea: VirtAddr,
    cfg: &VamConfig,
) -> ScanHits {
    let step = cfg.scan_step.max(1);
    let mut found = ScanHits::new();
    let mut offset = 0;
    while offset + WORD_SIZE <= LINE_SIZE {
        let word = u32::from_le_bytes([
            data[offset],
            data[offset + 1],
            data[offset + 2],
            data[offset + 3],
        ]);
        if is_candidate(word, trigger_ea, cfg) {
            found.push(LineScan {
                offset,
                candidate: VirtAddr(word),
            });
        }
        offset += step;
    }
    found
}

/// Number of words examined per line for a given scan step (61 for 1-byte
/// steps, 16 for 4-byte steps — §3.3).
pub fn words_examined(scan_step: usize) -> usize {
    let step = scan_step.max(1);
    (LINE_SIZE - WORD_SIZE) / step + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::rng::Rng;

    fn cfg(n: u32, m: u32, a: u32, s: usize) -> VamConfig {
        VamConfig {
            compare_bits: n,
            filter_bits: m,
            align_bits: a,
            scan_step: s,
        }
    }

    #[test]
    fn classify_names_the_rejecting_test() {
        let c = cfg(8, 4, 1, 2);
        let trigger = VirtAddr(0x1040_2000);
        assert_eq!(classify(0x10ab_cde0, trigger, &c), VamVerdict::Accept);
        // Odd word: align test fires before anything else.
        assert_eq!(classify(0x10ab_cde1, trigger, &c), VamVerdict::RejectAlign);
        // Upper byte differs from the trigger.
        assert_eq!(classify(0x20ab_cde0, trigger, &c), VamVerdict::RejectCompare);
        // All-zeros region trigger + small integer: filter test fires.
        let low_trigger = VirtAddr(0x0000_2000);
        assert_eq!(classify(0x0000_0004, low_trigger, &c), VamVerdict::RejectFilter);
        // Degenerate n >= 32: exact match required.
        let exact = cfg(32, 0, 0, 2);
        assert_eq!(classify(trigger.0, trigger, &exact), VamVerdict::Accept);
        assert_eq!(classify(trigger.0 + 4, trigger, &exact), VamVerdict::RejectCompare);
        // Extreme region with no filter bits: no prediction at all.
        let nofilter = cfg(8, 0, 0, 2);
        assert_eq!(
            classify(0x00ab_cde0, low_trigger, &nofilter),
            VamVerdict::RejectFilter
        );
    }

    #[test]
    fn classify_agrees_with_is_candidate_everywhere() {
        let mut rng = Rng::seed_from_u64(0x0b5e_7ab1e);
        let configs = [cfg(8, 4, 1, 2), cfg(0, 0, 0, 4), cfg(32, 4, 2, 2), cfg(30, 8, 0, 1)];
        for c in &configs {
            for _ in 0..2000 {
                let word = rng.next_u32();
                let trigger = VirtAddr(rng.next_u32());
                let verdict = classify(word, trigger, c);
                assert_eq!(
                    is_candidate(word, trigger, c),
                    verdict == VamVerdict::Accept,
                    "divergence for word {word:#x} trigger {trigger:?} cfg {c:?}"
                );
            }
        }
    }

    const TRIGGER: VirtAddr = VirtAddr(0x1040_2468);

    #[test]
    fn matching_upper_bits_is_candidate() {
        let c = cfg(8, 4, 1, 2);
        assert!(is_candidate(0x10ff_fffe, TRIGGER, &c));
        assert!(is_candidate(0x1000_0000, TRIGGER, &c));
    }

    #[test]
    fn mismatched_upper_bits_rejected() {
        let c = cfg(8, 4, 1, 2);
        assert!(!is_candidate(0x1140_2468, TRIGGER, &c));
        assert!(!is_candidate(0xf040_2468, TRIGGER, &c));
        assert!(!is_candidate(0x0f40_2468, TRIGGER, &c));
    }

    #[test]
    fn align_bits_reject_odd_pointers() {
        let c1 = cfg(8, 4, 1, 2);
        assert!(!is_candidate(0x1040_2469, TRIGGER, &c1), "odd word");
        assert!(is_candidate(0x1040_246a, TRIGGER, &c1), "2-byte aligned");
        let c2 = cfg(8, 4, 2, 2);
        assert!(!is_candidate(0x1040_246a, TRIGGER, &c2), "not 4-byte aligned");
        assert!(is_candidate(0x1040_246c, TRIGGER, &c2));
        let c0 = cfg(8, 4, 0, 2);
        assert!(is_candidate(0x1040_2469, TRIGGER, &c0), "align disabled");
    }

    #[test]
    fn lower_region_requires_nonzero_filter_bit() {
        let c = cfg(8, 4, 0, 2);
        let low_trigger = VirtAddr(0x00ab_cdef);
        // Upper 8 bits all zero; filter bits = bits 23..20.
        assert!(
            !is_candidate(0x0001_2345, low_trigger, &c),
            "small integer: filter bits 0000"
        );
        assert!(
            is_candidate(0x00ab_2345, low_trigger, &c),
            "large-enough value: filter bit set"
        );
        // With zero filter bits, nothing in the region predicts.
        let c0 = cfg(8, 0, 0, 2);
        assert!(!is_candidate(0x00ab_2345, low_trigger, &c0));
    }

    #[test]
    fn upper_region_requires_nonone_filter_bit() {
        let c = cfg(8, 4, 0, 2);
        let hi_trigger = VirtAddr(0xffab_cdef);
        assert!(
            !is_candidate(0xfff1_2345, hi_trigger, &c),
            "small negative: filter bits 1111"
        );
        assert!(
            is_candidate(0xff7b_2345, hi_trigger, &c),
            "true high address: a filter bit is 0"
        );
    }

    #[test]
    fn zero_compare_bits_accepts_all_aligned() {
        let c = cfg(0, 0, 1, 2);
        assert!(is_candidate(0xdead_beee, TRIGGER, &c));
        assert!(!is_candidate(0xdead_beef, TRIGGER, &c), "odd fails align");
    }

    #[test]
    fn scan_counts_match_paper() {
        assert_eq!(words_examined(1), 61);
        assert_eq!(words_examined(2), 31);
        assert_eq!(words_examined(4), 16);
    }

    #[test]
    fn scan_line_finds_embedded_pointers() {
        let c = cfg(8, 4, 1, 2);
        let mut data = [0u8; LINE_SIZE];
        // Pointer at offset 8 and offset 40; junk elsewhere.
        data[8..12].copy_from_slice(&0x1012_3456u32.to_le_bytes());
        data[40..44].copy_from_slice(&0x10ff_0000u32.to_le_bytes());
        data[20..24].copy_from_slice(&0x0000_0007u32.to_le_bytes()); // small int
        let hits = scan_line(&data, TRIGGER, &c);
        let offs: Vec<usize> = hits.iter().map(|h| h.offset).collect();
        assert_eq!(offs, vec![8, 40]);
        assert_eq!(hits[0].candidate, VirtAddr(0x1012_3456));
    }

    #[test]
    fn scan_step_skips_unaligned_offsets() {
        let c = cfg(8, 4, 0, 4);
        let mut data = [0u8; LINE_SIZE];
        // A pointer at odd offset 3 is invisible to a 4-byte-step scan.
        data[3..7].copy_from_slice(&0x1012_3456u32.to_le_bytes());
        assert!(scan_line(&data, TRIGGER, &c).is_empty());
        // Same pointer at offset 4 is found.
        let mut data2 = [0u8; LINE_SIZE];
        data2[4..8].copy_from_slice(&0x1012_3456u32.to_le_bytes());
        assert_eq!(scan_line(&data2, TRIGGER, &c).len(), 1);
    }

    #[test]
    fn all_zero_line_yields_nothing() {
        let c = cfg(8, 4, 1, 2);
        assert!(scan_line(&[0u8; LINE_SIZE], TRIGGER, &c).is_empty());
        // Even with a zero-region trigger: zero words have zero filter bits.
        assert!(scan_line(&[0u8; LINE_SIZE], VirtAddr(0x0000_1000), &c).is_empty());
    }

    #[test]
    fn more_compare_bits_shrink_the_match_set() {
        // Increasing N monotonically restricts candidacy (Figure 7's
        // coverage-vs-accuracy trade-off).
        let trigger = VirtAddr(0x1040_2468);
        for word in [0x1040_0000u32, 0x10ff_0000, 0x1000_0000] {
            let wide = is_candidate(word, trigger, &cfg(8, 4, 0, 2));
            let narrow = is_candidate(word, trigger, &cfg(12, 4, 0, 2));
            assert!(wide || !narrow, "narrow accepts what wide rejects");
        }
    }

    #[test]
    fn boundary_of_the_zero_region() {
        // With 8 compare bits, the zero region is [0, 0x0100_0000): the
        // first address outside it never consults the filter bits.
        let c = cfg(8, 0, 0, 2); // zero filter bits: no extreme-region predictions
        let trig_low = VirtAddr(0x00f0_0000);
        assert!(!is_candidate(0x00f0_0000, trig_low, &c), "inside zero region");
        let trig_out = VirtAddr(0x0100_0000);
        assert!(is_candidate(0x0100_0000, trig_out, &c), "just outside");
    }

    #[test]
    fn boundary_of_the_ones_region() {
        let c = cfg(8, 0, 0, 2);
        let trig_hi = VirtAddr(0xff00_0000);
        assert!(!is_candidate(0xff00_0000, trig_hi, &c), "inside ones region");
        let trig_out = VirtAddr(0xfe00_0000);
        assert!(is_candidate(0xfeff_fffe, trig_out, &c), "just below");
    }

    #[test]
    fn filter_bits_examine_exactly_m_bits() {
        // N=8, M=4: filter bits are bits 23..20. A value whose only set
        // bit is bit 19 (below the filter window) stays rejected.
        let c = cfg(8, 4, 0, 2);
        let low = VirtAddr(0x00ab_0000);
        assert!(!is_candidate(0x0008_0000, low, &c), "bit 19 is below the window");
        assert!(is_candidate(0x0010_0000, low, &c), "bit 20 is in the window");
        assert!(is_candidate(0x0080_0000, low, &c), "bit 23 is in the window");
    }

    #[test]
    fn filter_wider_than_remaining_bits_is_clamped() {
        // N=30 leaves 2 bits; M=8 must clamp without panicking.
        let c = cfg(30, 8, 0, 2);
        let t = VirtAddr(0x0000_0001);
        let _ = is_candidate(0x0000_0002, t, &c);
    }

    #[test]
    fn trigger_in_one_region_word_in_another_never_matches() {
        let c = cfg(8, 8, 0, 2);
        // Upper bytes differ (0x00 vs 0xff): compare bits already fail,
        // regardless of filters.
        assert!(!is_candidate(0xff00_1234, VirtAddr(0x0000_5678), &c));
        assert!(!is_candidate(0x0000_1234, VirtAddr(0xffff_5678), &c));
    }

    #[test]
    fn thirty_two_compare_bits_require_exact_equality() {
        let c = cfg(32, 0, 0, 2);
        assert!(is_candidate(0x1234_5678, VirtAddr(0x1234_5678), &c));
        assert!(!is_candidate(0x1234_567a, VirtAddr(0x1234_5678), &c));
    }

    // Randomized invariant checks (seeded in-repo PRNG; deterministic).

    /// A word equal to the trigger EA (aligned) is always a candidate when
    /// the trigger is outside the extreme regions.
    #[test]
    fn prop_self_pointer_is_candidate() {
        let mut rng = Rng::seed_from_u64(0x7a11);
        let c = cfg(8, 4, 1, 2);
        for _ in 0..2000 {
            let ea = rng.gen_range_u32(0x0100_0000..0xfe00_0000) & !1;
            assert!(is_candidate(ea, VirtAddr(ea), &c), "ea {ea:#x}");
        }
    }

    /// Candidates always share the upper compare bits with the trigger.
    #[test]
    fn prop_candidates_share_upper_bits() {
        let mut rng = Rng::seed_from_u64(0x7a12);
        for _ in 0..4000 {
            let word = rng.next_u32();
            let ea = rng.next_u32();
            let n = rng.gen_range_u32(1..16);
            let c = cfg(n, 4, 0, 2);
            if is_candidate(word, VirtAddr(ea), &c) {
                assert_eq!(word >> (32 - n), ea >> (32 - n), "word {word:#x} ea {ea:#x} n {n}");
            }
        }
    }

    /// The align test never passes a word with a low set bit.
    #[test]
    fn prop_align_enforced() {
        let mut rng = Rng::seed_from_u64(0x7a13);
        for _ in 0..4000 {
            let word = rng.next_u32();
            let a = rng.gen_range_u32(1..3);
            let c = cfg(8, 4, a, 2);
            if is_candidate(word, VirtAddr(word), &c) {
                assert_eq!(word & ((1 << a) - 1), 0, "word {word:#x} a {a}");
            }
        }
    }

    /// scan_line only reports words that individually satisfy is_candidate,
    /// at offsets that are multiples of the step.
    #[test]
    fn prop_scan_agrees_with_predicate() {
        let mut rng = Rng::seed_from_u64(0x7a14);
        for _ in 0..500 {
            let mut data = [0u8; LINE_SIZE];
            for b in data.iter_mut() {
                *b = (rng.next_u32() >> 24) as u8;
            }
            let ea = rng.next_u32();
            let step = rng.gen_range_usize(1..5);
            let c = cfg(8, 4, 1, step);
            for hit in &scan_line(&data, VirtAddr(ea), &c) {
                assert_eq!(hit.offset % step, 0);
                let w = u32::from_le_bytes(data[hit.offset..hit.offset + 4].try_into().unwrap());
                assert!(is_candidate(w, VirtAddr(ea), &c));
                assert_eq!(hit.candidate, VirtAddr(w));
            }
        }
    }

    /// The hit set never exceeds the fixed capacity, even on the densest
    /// possible line (every word a candidate, 1-byte step).
    #[test]
    fn scan_hits_capacity_covers_densest_line() {
        let c = cfg(8, 4, 0, 1);
        let trigger = VirtAddr(0x1040_2468);
        let mut data = [0u8; LINE_SIZE];
        for chunk in data.chunks_exact_mut(4) {
            chunk.copy_from_slice(&0x1040_0000u32.to_le_bytes());
        }
        // Every byte offset decodes to some 0x10..-prefixed word? Not all,
        // but the 4-aligned ones do; a uniform fill of 0x00 0x00 0x40 0x10
        // repeated makes offsets 0,4,8,.. candidates and the scan must
        // stay within capacity regardless.
        let hits = scan_line(&data, trigger, &c);
        assert!(hits.len() <= MAX_SCAN_HITS);
        assert_eq!(words_examined(1), MAX_SCAN_HITS);
    }
}
