//! A pointer-chase / jump-pointer prefetcher for linked data structures.
//!
//! Linked traversals defeat stride tables (no arithmetic regularity) and
//! stress address-Markov tables (one entry per node). Jump-pointer
//! prefetching instead *learns the links themselves*: when a line is
//! filled, the engine harvests the first pointer-looking word (the same
//! VAM heuristic the content prefetcher uses, §3.3) and records
//! `node line -> target line` in a small jump table. A later miss on the
//! node looks the link up and chases it `chase_depth` hops ahead of the
//! demand stream.
//!
//! Against the content prefetcher this is the stateful mirror image: CDP
//! chases pointers *in the fill data* with zero state; the jump engine
//! pays a table to chase links *before* the data arrives, covering the
//! serialized-latency case where each hop's data is needed to find the
//! next.

use cdp_types::{JumpConfig, RequestKind, VamConfig, VirtAddr, LINE_SIZE};

use crate::{vam, Prefetcher, PrefetchRequest};

#[derive(Clone, Copy, Debug)]
struct JumpEntry {
    /// Node line address (low 6 bits zero).
    tag: u32,
    /// Line the node's first pointer referenced.
    target: u32,
    stamp: u64,
}

/// Cumulative jump-prefetcher statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JumpStats {
    /// L2 misses observed (lookup triggers).
    pub observed: u64,
    /// Fills harvested for a jump target.
    pub trained: u64,
    /// Lookups that found a link.
    pub table_hits: u64,
    /// Prefetch requests emitted.
    pub emitted: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

/// The jump-pointer prefetcher.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::{JumpPrefetcher, Prefetcher};
/// use cdp_types::{JumpConfig, RequestKind, VirtAddr, LINE_SIZE};
///
/// let mut jp = JumpPrefetcher::new(&JumpConfig::sized(32 * 1024));
/// let mut out = Vec::new();
/// // A filled node whose first word points at 0x10ab_2000.
/// let mut data = [0u8; LINE_SIZE];
/// data[..4].copy_from_slice(&0x10ab_2000u32.to_le_bytes());
/// jp.on_l2_fill(
///     VirtAddr(0x10ab_1000),
///     VirtAddr(0x10ab_1000),
///     &data,
///     RequestKind::Demand,
///     &mut out,
/// );
/// // A later miss on the node chases the learned link.
/// jp.on_l2_miss(VirtAddr(0x10ab_1008), &mut out);
/// assert_eq!(out[0].vaddr.line().0, 0x10ab_2000 & !63);
/// ```
#[derive(Clone, Debug)]
pub struct JumpPrefetcher {
    sets: Vec<Vec<JumpEntry>>,
    associativity: usize,
    chase_depth: u32,
    vam: VamConfig,
    clock: u64,
    stats: JumpStats,
}

impl JumpPrefetcher {
    /// Creates a jump prefetcher whose table fits in `cfg.table_bytes`.
    pub fn new(cfg: &JumpConfig) -> Self {
        let entries = cfg.num_entries();
        let assoc = cfg.associativity.max(1);
        let sets = (entries / assoc).max(1);
        JumpPrefetcher {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            associativity: assoc,
            chase_depth: cfg.chase_depth.max(1),
            vam: cfg.vam,
            clock: 0,
            stats: JumpStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> JumpStats {
        self.stats
    }

    /// Total table entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.associativity
    }

    /// Table storage budget in bytes (8 bytes per entry at capacity).
    pub fn budget_bytes(&self) -> usize {
        self.capacity() * 8
    }

    #[inline]
    fn set_index(&self, line: u32) -> usize {
        ((line >> 6) as usize) % self.sets.len()
    }

    fn record(&mut self, node_line: u32, target_line: u32) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(node_line);
        let assoc = self.associativity;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.tag == node_line) {
            e.target = target_line;
            e.stamp = clock;
        } else {
            if entries.len() >= assoc {
                let victim = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("set non-empty");
                entries.swap_remove(victim);
                self.stats.evictions += 1;
            }
            entries.push(JumpEntry {
                tag: node_line,
                target: target_line,
                stamp: clock,
            });
        }
        self.stats.trained += 1;
    }

    /// Serializes the complete jump-table state (resident order
    /// preserved, so LRU victim selection resumes bit-identically).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.clock);
        enc.u64(self.stats.observed);
        enc.u64(self.stats.trained);
        enc.u64(self.stats.table_hits);
        enc.u64(self.stats.emitted);
        enc.u64(self.stats.evictions);
        enc.seq_len(self.sets.len());
        for set in &self.sets {
            enc.seq_len(set.len());
            for e in set {
                enc.u32(e.tag);
                enc.u32(e.target);
                enc.u64(e.stamp);
            }
        }
    }

    /// Restores state written by [`JumpPrefetcher::save_state`] into a
    /// prefetcher of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, a set
    /// count mismatch, or a set exceeding its associativity.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.clock = dec.u64("jump clock")?;
        self.stats.observed = dec.u64("jump stats observed")?;
        self.stats.trained = dec.u64("jump stats trained")?;
        self.stats.table_hits = dec.u64("jump stats table_hits")?;
        self.stats.emitted = dec.u64("jump stats emitted")?;
        self.stats.evictions = dec.u64("jump stats evictions")?;
        let sets = dec.seq_len(8, "jump set count")?;
        if sets != self.sets.len() {
            return Err(SnapshotError::Corrupt {
                context: "jump set count",
            });
        }
        for set in self.sets.iter_mut() {
            set.clear();
            let len = dec.seq_len(4 + 4 + 8, "jump set length")?;
            if len > self.associativity {
                return Err(SnapshotError::Corrupt {
                    context: "jump set length",
                });
            }
            for _ in 0..len {
                let tag = dec.u32("jump entry tag")?;
                let target = dec.u32("jump entry target")?;
                let stamp = dec.u64("jump entry stamp")?;
                set.push(JumpEntry { tag, target, stamp });
            }
        }
        Ok(())
    }

    /// Looks `line` up and touches its stamp.
    fn lookup(&mut self, line: u32) -> Option<u32> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(line);
        let e = self.sets[set].iter_mut().find(|e| e.tag == line)?;
        e.stamp = clock;
        self.stats.table_hits += 1;
        Some(e.target)
    }
}

impl Prefetcher for JumpPrefetcher {
    /// An L2 miss triggers a chase: follow recorded links up to
    /// `chase_depth` hops, emitting one prefetch per hop. The chase
    /// stops at an unknown node or a self-link.
    fn on_l2_miss(&mut self, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.stats.observed += 1;
        let mut node = vaddr.line().0;
        for _ in 0..self.chase_depth {
            let Some(target) = self.lookup(node) else {
                break;
            };
            if target == node {
                break;
            }
            out.push(PrefetchRequest::jump(VirtAddr(target)));
            self.stats.emitted += 1;
            node = target;
        }
    }

    /// A fill harvests the node's jump target: the first VAM-accepted
    /// word of the line. Page-walk fills never reach this hook (the
    /// hierarchy filters them, as it does for the content engine).
    fn on_l2_fill(
        &mut self,
        _trigger_ea: VirtAddr,
        vline: VirtAddr,
        data: &[u8; LINE_SIZE],
        _kind: RequestKind,
        _out: &mut Vec<PrefetchRequest>,
    ) {
        let hits = vam::scan_line(data, vline, &self.vam);
        let node = vline.line().0;
        if let Some(hit) = hits.as_slice().iter().find(|h| h.candidate.line().0 != node) {
            self.record(node, hit.candidate.line().0);
        }
    }

    fn budget_bytes(&self) -> usize {
        self.budget_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with_pointer(ptr: u32) -> [u8; LINE_SIZE] {
        let mut data = [0u8; LINE_SIZE];
        data[..4].copy_from_slice(&ptr.to_le_bytes());
        data
    }

    fn fill(jp: &mut JumpPrefetcher, vline: u32, ptr: u32) {
        let mut out = Vec::new();
        jp.on_l2_fill(
            VirtAddr(vline),
            VirtAddr(vline),
            &line_with_pointer(ptr),
            RequestKind::Demand,
            &mut out,
        );
        assert!(out.is_empty(), "fills train, they never issue directly");
    }

    #[test]
    fn learned_link_is_chased_on_miss() {
        let mut jp = JumpPrefetcher::new(&JumpConfig::sized(32 * 1024));
        fill(&mut jp, 0x10ab_1000, 0x10ab_2000);
        let mut out = Vec::new();
        jp.on_l2_miss(VirtAddr(0x10ab_1010), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vaddr.0, 0x10ab_2000);
        assert_eq!(out[0].kind, RequestKind::Jump);
    }

    #[test]
    fn chase_depth_follows_the_chain() {
        let mut jp = JumpPrefetcher::new(&JumpConfig {
            chase_depth: 3,
            ..JumpConfig::sized(32 * 1024)
        });
        // A -> B -> C -> D, all VAM-acceptable (same upper byte).
        fill(&mut jp, 0x10ab_1000, 0x10ab_2000);
        fill(&mut jp, 0x10ab_2000, 0x10ab_3000);
        fill(&mut jp, 0x10ab_3000, 0x10ab_4000);
        let mut out = Vec::new();
        jp.on_l2_miss(VirtAddr(0x10ab_1000), &mut out);
        let targets: Vec<u32> = out.iter().map(|r| r.vaddr.0).collect();
        assert_eq!(targets, vec![0x10ab_2000, 0x10ab_3000, 0x10ab_4000]);
    }

    #[test]
    fn non_pointer_fill_does_not_train() {
        let mut jp = JumpPrefetcher::new(&JumpConfig::sized(32 * 1024));
        let mut out = Vec::new();
        // A line of small integers: nothing shares the trigger's region.
        let mut data = [0u8; LINE_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        jp.on_l2_fill(
            VirtAddr(0x70ab_1000),
            VirtAddr(0x70ab_1000),
            &data,
            RequestKind::Demand,
            &mut out,
        );
        assert_eq!(jp.stats().trained, 0);
        jp.on_l2_miss(VirtAddr(0x70ab_1000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn self_links_never_loop() {
        let mut jp = JumpPrefetcher::new(&JumpConfig {
            chase_depth: 8,
            ..JumpConfig::sized(32 * 1024)
        });
        // The first non-self candidate is recorded, so craft a line whose
        // only candidate is in its own line: nothing should be recorded.
        let mut out = Vec::new();
        jp.on_l2_fill(
            VirtAddr(0x10ab_1000),
            VirtAddr(0x10ab_1000),
            &line_with_pointer(0x10ab_1020),
            RequestKind::Demand,
            &mut out,
        );
        assert_eq!(jp.stats().trained, 0, "self-line pointers are skipped");
        jp.on_l2_miss(VirtAddr(0x10ab_1000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn retrain_updates_the_link() {
        let mut jp = JumpPrefetcher::new(&JumpConfig::sized(32 * 1024));
        fill(&mut jp, 0x10ab_1000, 0x10ab_2000);
        fill(&mut jp, 0x10ab_1000, 0x10ab_5000); // node re-linked
        let mut out = Vec::new();
        jp.on_l2_miss(VirtAddr(0x10ab_1000), &mut out);
        assert_eq!(out[0].vaddr.0, 0x10ab_5000);
    }

    #[test]
    fn capacity_eviction_lru() {
        let tiny = JumpConfig {
            table_bytes: 2 * 8 * 8, // 2 sets x 8 ways
            ..JumpConfig::sized(0)
        };
        let mut jp = JumpPrefetcher::new(&tiny);
        let cap = jp.capacity();
        for i in 0..(cap as u32 + 8) {
            let node = 0x10ab_0000 + i * 64;
            fill(&mut jp, node, 0x10ab_f000);
        }
        assert!(jp.sets.iter().all(|s| s.len() <= jp.associativity));
        assert!(jp.stats().evictions > 0);
    }

    #[test]
    fn budget_bytes_reports_capacity() {
        let jp = JumpPrefetcher::new(&JumpConfig::sized(32 * 1024));
        assert_eq!(Prefetcher::budget_bytes(&jp), 32 * 1024);
    }

    #[test]
    fn snapshot_roundtrip_resumes_bit_identically() {
        let mut jp = JumpPrefetcher::new(&JumpConfig::sized(4 * 1024));
        for i in 0..100u32 {
            fill(&mut jp, 0x10ab_0000 + i * 64, 0x10ab_8000 + (i % 7) * 64);
        }
        let mut out = Vec::new();
        jp.on_l2_miss(VirtAddr(0x10ab_0040), &mut out);
        let mut enc = cdp_snap::Enc::new();
        jp.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = JumpPrefetcher::new(&JumpConfig::sized(4 * 1024));
        let mut dec = cdp_snap::Dec::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..50u32 {
            jp.on_l2_miss(VirtAddr(0x10ab_0000 + i * 64), &mut a);
            restored.on_l2_miss(VirtAddr(0x10ab_0000 + i * 64), &mut b);
        }
        assert_eq!(a, b);
        assert_eq!(jp.stats(), restored.stats());
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let jp = JumpPrefetcher::new(&JumpConfig::sized(4 * 1024));
        let mut enc = cdp_snap::Enc::new();
        jp.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut other = JumpPrefetcher::new(&JumpConfig::sized(8 * 1024));
        let mut dec = cdp_snap::Dec::new(&bytes);
        assert!(other.restore_state(&mut dec).is_err());
    }
}
