//! A PC-indexed stride prefetcher (reference prediction table).
//!
//! The paper's baseline "includes a stride-based hardware prefetcher"
//! (Table 1) that "monitors all the L1 cache miss traffic and issues
//! requests to the L2 arbiter" (§3.5). All the paper's speedups are
//! relative to this baseline, so its quality matters: we implement the
//! classic Chen/Baer reference prediction table with the usual four-state
//! confidence automaton (initial → transient → steady, with a no-prediction
//! recovery state).

use cdp_types::{StrideConfig, VirtAddr};

use crate::{Prefetcher, PrefetchRequest};

/// Confidence automaton states of one RPT entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// First sighting: no stride known yet.
    Initial,
    /// A candidate stride observed once.
    Transient,
    /// Stride confirmed: predict.
    Steady,
    /// Two consecutive mismatches: hold predictions until re-trained.
    NoPred,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u32,
    last_addr: u32,
    stride: i32,
    state: State,
}

/// Cumulative stride-prefetcher statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrideStats {
    /// L1 misses observed (training events).
    pub observed: u64,
    /// Prefetch requests emitted.
    pub emitted: u64,
    /// Entries evicted by tag conflicts.
    pub conflicts: u64,
}

/// The stride prefetcher.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::{Prefetcher, StridePrefetcher};
/// use cdp_types::{StrideConfig, VirtAddr};
///
/// let mut sp = StridePrefetcher::new(&StrideConfig::default());
/// let mut out = Vec::new();
/// // Train a steady +64 stride at one PC.
/// for i in 0..3u32 {
///     sp.on_l1_miss(0x400, VirtAddr(0x1000_0000 + i * 64), &mut out);
/// }
/// assert!(!out.is_empty(), "steady stride should predict");
/// assert_eq!(out[0].vaddr, VirtAddr(0x1000_0000 + 3 * 64));
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: Vec<Option<Entry>>,
    degree: u32,
    stats: StrideStats,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `cfg.entries` direct-mapped RPT
    /// entries issuing `cfg.degree` prefetches ahead once steady.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.entries` is not a power of two.
    pub fn new(cfg: &StrideConfig) -> Self {
        assert!(
            cfg.entries.is_power_of_two(),
            "RPT entries must be a power of two"
        );
        StridePrefetcher {
            table: vec![None; cfg.entries],
            degree: cfg.degree.max(1),
            stats: StrideStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> StrideStats {
        self.stats
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        // Drop the low 2 bits (uop alignment) before indexing.
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    /// Observes one L1 miss and appends any predicted prefetches to `out`.
    pub fn observe(&mut self, pc: u32, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.stats.observed += 1;
        let idx = self.index(pc);
        let entry = &mut self.table[idx];
        match entry {
            Some(e) if e.tag == pc => {
                let new_stride = vaddr.0.wrapping_sub(e.last_addr) as i32;
                let matched = new_stride == e.stride && new_stride != 0;
                e.state = match (e.state, matched) {
                    (State::Initial, true) => State::Steady,
                    (State::Initial, false) => State::Transient,
                    (State::Transient, true) => State::Steady,
                    (State::Transient, false) => State::NoPred,
                    (State::Steady, true) => State::Steady,
                    (State::Steady, false) => State::Initial,
                    (State::NoPred, true) => State::Transient,
                    (State::NoPred, false) => State::NoPred,
                };
                if !matched {
                    e.stride = new_stride;
                }
                e.last_addr = vaddr.0;
                if e.state == State::Steady {
                    for k in 1..=self.degree {
                        let target = VirtAddr(
                            vaddr.0.wrapping_add((e.stride as i64 * k as i64) as u32),
                        );
                        out.push(PrefetchRequest::stride(target));
                        self.stats.emitted += 1;
                    }
                }
            }
            Some(_) => {
                // Tag conflict: steal the entry.
                self.stats.conflicts += 1;
                *entry = Some(Entry {
                    tag: pc,
                    last_addr: vaddr.0,
                    stride: 0,
                    state: State::Initial,
                });
            }
            None => {
                *entry = Some(Entry {
                    tag: pc,
                    last_addr: vaddr.0,
                    stride: 0,
                    state: State::Initial,
                });
            }
        }
    }

    /// Serializes the complete RPT state.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.stats.observed);
        enc.u64(self.stats.emitted);
        enc.u64(self.stats.conflicts);
        enc.seq_len(self.table.len());
        for slot in &self.table {
            match slot {
                Some(e) => {
                    enc.bool(true);
                    enc.u32(e.tag);
                    enc.u32(e.last_addr);
                    enc.i64(i64::from(e.stride));
                    enc.u8(match e.state {
                        State::Initial => 0,
                        State::Transient => 1,
                        State::Steady => 2,
                        State::NoPred => 3,
                    });
                }
                None => enc.bool(false),
            }
        }
    }

    /// Restores state written by [`StridePrefetcher::save_state`] into a
    /// prefetcher of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, a table
    /// size mismatch, or an unknown confidence-state tag.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.stats.observed = dec.u64("stride stats observed")?;
        self.stats.emitted = dec.u64("stride stats emitted")?;
        self.stats.conflicts = dec.u64("stride stats conflicts")?;
        let n = dec.seq_len(1, "stride table size")?;
        if n != self.table.len() {
            return Err(SnapshotError::Corrupt {
                context: "stride table size",
            });
        }
        for slot in self.table.iter_mut() {
            *slot = if dec.bool("stride entry flag")? {
                let tag = dec.u32("stride entry tag")?;
                let last_addr = dec.u32("stride entry last_addr")?;
                let stride = i32::try_from(dec.i64("stride entry stride")?).map_err(|_| {
                    SnapshotError::Corrupt {
                        context: "stride entry stride",
                    }
                })?;
                let state = match dec.u8("stride entry state")? {
                    0 => State::Initial,
                    1 => State::Transient,
                    2 => State::Steady,
                    3 => State::NoPred,
                    _ => {
                        return Err(SnapshotError::Corrupt {
                            context: "stride entry state",
                        })
                    }
                };
                Some(Entry {
                    tag,
                    last_addr,
                    stride,
                    state,
                })
            } else {
                None
            };
        }
        Ok(())
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_l1_miss(&mut self, pc: u32, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.observe(pc, vaddr, out);
    }

    /// RPT storage: per entry a 4-byte tag, 4-byte last address, 4-byte
    /// stride, and a 1-byte state.
    fn budget_bytes(&self) -> usize {
        self.table.len() * 13
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_types::RequestKind;

    fn sp() -> StridePrefetcher {
        StridePrefetcher::new(&StrideConfig {
            entries: 64,
            degree: 1,
        })
    }

    fn drive(sp: &mut StridePrefetcher, pc: u32, addrs: &[u32]) -> Vec<PrefetchRequest> {
        let mut out = Vec::new();
        for &a in addrs {
            sp.observe(pc, VirtAddr(a), &mut out);
        }
        out
    }

    #[test]
    fn needs_three_observations_to_lock() {
        let mut s = sp();
        let out = drive(&mut s, 0x40, &[0x1000, 0x1040]);
        assert!(out.is_empty(), "transient must not predict");
        let out = drive(&mut s, 0x40, &[0x1080]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vaddr, VirtAddr(0x10c0));
        assert_eq!(out[0].kind, RequestKind::Stride);
    }

    #[test]
    fn degree_issues_multiple_ahead() {
        let mut s = StridePrefetcher::new(&StrideConfig {
            entries: 64,
            degree: 3,
        });
        let out = drive(&mut s, 0x40, &[0x1000, 0x1040, 0x1080]);
        let targets: Vec<u32> = out.iter().map(|r| r.vaddr.0).collect();
        assert_eq!(targets, vec![0x10c0, 0x1100, 0x1140]);
    }

    #[test]
    fn negative_strides_predict() {
        let mut s = sp();
        let out = drive(&mut s, 0x40, &[0x2000, 0x1fc0, 0x1f80]);
        assert_eq!(out.last().unwrap().vaddr, VirtAddr(0x1f40));
    }

    #[test]
    fn irregular_pattern_stays_silent() {
        let mut s = sp();
        let out = drive(&mut s, 0x40, &[0x1000, 0x1040, 0x3000, 0x9000, 0x100, 0x7777]);
        assert!(out.is_empty(), "no steady stride, no prediction");
    }

    #[test]
    fn stride_change_retrains() {
        let mut s = sp();
        drive(&mut s, 0x40, &[0x1000, 0x1040, 0x1080]); // steady +0x40
        // Switch to +0x80: one mismatch drops to Initial, then re-locks.
        let out = drive(&mut s, 0x40, &[0x1100, 0x1180, 0x1200, 0x1280]);
        assert_eq!(out.last().unwrap().vaddr, VirtAddr(0x1300));
    }

    #[test]
    fn zero_stride_never_predicts() {
        let mut s = sp();
        let out = drive(&mut s, 0x40, &[0x1000, 0x1000, 0x1000, 0x1000]);
        assert!(out.is_empty(), "repeated same-address misses: no prefetch");
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut s = sp();
        let mut out = Vec::new();
        for i in 0..4u32 {
            s.observe(0x40, VirtAddr(0x1000 + i * 0x40), &mut out);
            s.observe(0x44, VirtAddr(0x8000 + i * 0x100), &mut out);
        }
        let t40: Vec<u32> = out
            .iter()
            .filter(|r| r.vaddr.0 < 0x8000)
            .map(|r| r.vaddr.0)
            .collect();
        let t44: Vec<u32> = out
            .iter()
            .filter(|r| r.vaddr.0 >= 0x8000)
            .map(|r| r.vaddr.0)
            .collect();
        assert_eq!(t40, vec![0x10c0, 0x1100]);
        assert_eq!(t44, vec![0x8300, 0x8400]);
    }

    #[test]
    fn conflict_steals_entry() {
        let mut s = StridePrefetcher::new(&StrideConfig {
            entries: 4,
            degree: 1,
        });
        drive(&mut s, 0x40, &[0x1000, 0x1040, 0x1080]);
        // PC 0x80 maps to a different slot in a 4-entry table ((0x80>>2)&3 = 0
        // vs (0x40>>2)&3 = 0): actually same slot -> conflict.
        drive(&mut s, 0x80, &[0x9000]);
        assert_eq!(s.stats().conflicts, 1);
        // Original PC must retrain from scratch.
        let out = drive(&mut s, 0x40, &[0x10c0, 0x1100]);
        assert!(out.is_empty());
    }

    #[test]
    fn stats_count_observations() {
        let mut s = sp();
        drive(&mut s, 0x40, &[0x1000, 0x1040, 0x1080]);
        assert_eq!(s.stats().observed, 3);
        assert_eq!(s.stats().emitted, 1);
    }
}
