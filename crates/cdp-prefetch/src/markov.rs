//! A 1-history Markov prefetcher (§5, Table 3).
//!
//! "The Markov prefetch mechanism used in this paper is based on the
//! 1-history Markov model prefetcher implementation described in [Joseph &
//! Grunwald 1997]. The prefetcher uses a State Transition Table (STAB) with
//! a fan out of four, and models the transition probabilities using the
//! least recently used (LRU) replacement algorithm."
//!
//! The STAB maps a miss (line) address to up to four successor miss
//! addresses, MRU-ordered. On each observed L2 miss the prefetcher:
//!
//! 1. records the current miss as a successor of the *previous* miss
//!    (training the first-order transition), and
//! 2. looks the current miss up and issues prefetches for its recorded
//!    successors.
//!
//! Unlike the content prefetcher this requires a large table and a training
//! phase — which is exactly the contrast Figure 11 quantifies. The paper
//! blocks the Markov prefetcher when the stride prefetcher already issued
//! for a reference; the hierarchy enforces that ordering.

use cdp_types::{MarkovConfig, VirtAddr, LINE_SIZE};

use crate::{Prefetcher, PrefetchRequest};

#[derive(Clone, Debug)]
struct StabEntry {
    tag: u32,
    /// MRU-first successor line addresses.
    successors: Vec<u32>,
    stamp: u64,
}

/// Cumulative Markov-prefetcher statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MarkovStats {
    /// L2 misses observed.
    pub observed: u64,
    /// STAB lookups that found an entry (predictions possible).
    pub stab_hits: u64,
    /// Prefetch requests emitted.
    pub emitted: u64,
    /// Transitions recorded.
    pub trained: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

/// The Markov prefetcher.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::MarkovPrefetcher;
/// use cdp_types::{MarkovConfig, VirtAddr};
///
/// let mut mk = MarkovPrefetcher::new(&MarkovConfig::half());
/// let mut out = Vec::new();
/// // First pass trains A -> B.
/// mk.observe_miss(VirtAddr(0x1000), &mut out);
/// mk.observe_miss(VirtAddr(0x8000), &mut out);
/// assert!(out.is_empty(), "still training");
/// // Second encounter of A predicts B.
/// mk.observe_miss(VirtAddr(0x1000), &mut out);
/// assert_eq!(out[0].vaddr, VirtAddr(0x8000));
/// ```
#[derive(Clone, Debug)]
pub struct MarkovPrefetcher {
    sets: Vec<Vec<StabEntry>>,
    associativity: usize,
    fanout: usize,
    prev_miss: Option<u32>,
    clock: u64,
    stats: MarkovStats,
}

impl MarkovPrefetcher {
    /// Creates a Markov prefetcher whose STAB fits in `cfg.stab_bytes`.
    pub fn new(cfg: &MarkovConfig) -> Self {
        let entries = cfg.num_entries();
        let assoc = cfg.associativity.max(1);
        let sets = (entries / assoc).max(1);
        MarkovPrefetcher {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            associativity: assoc,
            fanout: cfg.fanout.max(1),
            prev_miss: None,
            clock: 0,
            stats: MarkovStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> MarkovStats {
        self.stats
    }

    /// Total STAB entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.associativity
    }

    /// Entries currently resident (grows during the training phase).
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    #[inline]
    fn set_index(&self, line: u32) -> usize {
        ((line >> 6) as usize) % self.sets.len()
    }

    fn train(&mut self, from: u32, to: u32) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(from);
        let assoc = self.associativity;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.tag == from) {
            e.stamp = clock;
            if let Some(pos) = e.successors.iter().position(|&s| s == to) {
                // Move to MRU.
                e.successors.remove(pos);
            } else if e.successors.len() >= self.fanout {
                // Drop the LRU successor.
                e.successors.pop();
            }
            e.successors.insert(0, to);
        } else {
            if entries.len() >= assoc {
                let victim = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("set non-empty");
                entries.swap_remove(victim);
                self.stats.evictions += 1;
            }
            entries.push(StabEntry {
                tag: from,
                successors: vec![to],
                stamp: clock,
            });
        }
        self.stats.trained += 1;
    }

    /// Observes one L2 miss, trains the previous transition, and emits
    /// prefetches for the recorded successors of this miss address.
    pub fn observe_miss(&mut self, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.stats.observed += 1;
        let line = vaddr.line().0;
        if let Some(prev) = self.prev_miss {
            if prev != line {
                self.train(prev, line);
            }
        }
        self.prev_miss = Some(line);
        // Predict successors of the current miss.
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(line);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.tag == line) {
            e.stamp = clock;
            self.stats.stab_hits += 1;
            for &succ in e.successors.iter().take(self.fanout) {
                out.push(PrefetchRequest::markov(VirtAddr(succ)));
                self.stats.emitted += 1;
            }
        }
    }

    /// Approximate silicon cost of the resident STAB state in bytes
    /// (tag + fan-out successors per entry), for the Figure 11 resource
    /// accounting.
    pub fn state_bytes(&self) -> usize {
        self.resident() * (4 + 4 * self.fanout)
    }

    /// Serializes the complete STAB state. Per-set entry vectors are
    /// written in their resident order (swap_remove leaves them
    /// unsorted), so LRU victim selection and successor MRU order
    /// continue bit-identically after restore.
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.clock);
        match self.prev_miss {
            Some(line) => {
                enc.bool(true);
                enc.u32(line);
            }
            None => enc.bool(false),
        }
        enc.u64(self.stats.observed);
        enc.u64(self.stats.stab_hits);
        enc.u64(self.stats.emitted);
        enc.u64(self.stats.trained);
        enc.u64(self.stats.evictions);
        enc.seq_len(self.sets.len());
        for set in &self.sets {
            enc.seq_len(set.len());
            for e in set {
                enc.u32(e.tag);
                enc.u64(e.stamp);
                enc.seq_len(e.successors.len());
                for &s in &e.successors {
                    enc.u32(s);
                }
            }
        }
    }

    /// Restores state written by [`MarkovPrefetcher::save_state`] into a
    /// prefetcher of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, a set
    /// count mismatch, or a set/successor list exceeding its bound.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.clock = dec.u64("markov clock")?;
        self.prev_miss = if dec.bool("markov prev_miss flag")? {
            Some(dec.u32("markov prev_miss")?)
        } else {
            None
        };
        self.stats.observed = dec.u64("markov stats observed")?;
        self.stats.stab_hits = dec.u64("markov stats stab_hits")?;
        self.stats.emitted = dec.u64("markov stats emitted")?;
        self.stats.trained = dec.u64("markov stats trained")?;
        self.stats.evictions = dec.u64("markov stats evictions")?;
        let sets = dec.seq_len(8, "markov set count")?;
        if sets != self.sets.len() {
            return Err(SnapshotError::Corrupt {
                context: "markov set count",
            });
        }
        for set in self.sets.iter_mut() {
            set.clear();
            let len = dec.seq_len(4 + 8 + 8, "markov set length")?;
            if len > self.associativity {
                return Err(SnapshotError::Corrupt {
                    context: "markov set length",
                });
            }
            for _ in 0..len {
                let tag = dec.u32("markov entry tag")?;
                let stamp = dec.u64("markov entry stamp")?;
                let succ_len = dec.seq_len(4, "markov successor count")?;
                if succ_len > self.fanout {
                    return Err(SnapshotError::Corrupt {
                        context: "markov successor count",
                    });
                }
                let mut successors = Vec::with_capacity(succ_len);
                for _ in 0..succ_len {
                    successors.push(dec.u32("markov successor")?);
                }
                set.push(StabEntry {
                    tag,
                    successors,
                    stamp,
                });
            }
        }
        Ok(())
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn on_l2_miss(&mut self, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.observe_miss(vaddr, out);
    }

    fn on_l2_fill(
        &mut self,
        _trigger_ea: VirtAddr,
        _vline: VirtAddr,
        _data: &[u8; LINE_SIZE],
        _kind: cdp_types::RequestKind,
        _out: &mut Vec<PrefetchRequest>,
    ) {
    }

    /// STAB storage at capacity (tag + fan-out successors per entry).
    fn budget_bytes(&self) -> usize {
        self.capacity() * (4 + 4 * self.fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> MarkovPrefetcher {
        MarkovPrefetcher::new(&MarkovConfig::half())
    }

    fn run(mk: &mut MarkovPrefetcher, misses: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        for &m in misses {
            mk.observe_miss(VirtAddr(m), &mut out);
        }
        out.iter().map(|r| r.vaddr.0).collect()
    }

    #[test]
    fn first_pass_trains_second_predicts() {
        let mut m = mk();
        let seq = [0x1000u32, 0x8000, 0x3000];
        assert!(run(&mut m, &seq).is_empty(), "training pass is silent");
        let preds = run(&mut m, &seq);
        assert!(preds.contains(&0x8000), "A predicts B");
        assert!(preds.contains(&0x3000), "B predicts C");
    }

    #[test]
    fn fanout_limits_successors() {
        let mut m = MarkovPrefetcher::new(&MarkovConfig {
            fanout: 2,
            ..MarkovConfig::half()
        });
        // A alternates among three successors; only two fit.
        run(&mut m, &[0x1000, 0x2000, 0x1000, 0x3000, 0x1000, 0x4000]);
        let mut out = Vec::new();
        m.observe_miss(VirtAddr(0x1000), &mut out);
        assert_eq!(out.len(), 2);
        // MRU first: the most recent transition (to 0x4000) leads.
        assert_eq!(out[0].vaddr.0, 0x4000);
    }

    #[test]
    fn repeated_transition_moves_to_mru() {
        let mut m = mk();
        run(&mut m, &[0x1000, 0x2000, 0x1000, 0x3000, 0x1000, 0x2000]);
        let mut out = Vec::new();
        m.observe_miss(VirtAddr(0x1000), &mut out);
        assert_eq!(out[0].vaddr.0, 0x2000, "0x2000 re-trained to MRU");
    }

    #[test]
    fn same_line_repeat_does_not_self_train() {
        let mut m = mk();
        run(&mut m, &[0x1000, 0x1010, 0x1020]); // all in line 0x1000
        let mut out = Vec::new();
        m.observe_miss(VirtAddr(0x1000), &mut out);
        assert!(out.is_empty(), "no self-loop transitions");
    }

    #[test]
    fn capacity_eviction_lru() {
        let tiny = MarkovConfig {
            stab_bytes: 2 * 20 * 16, // 2 sets x 16 ways... keep it small:
            associativity: 2,
            fanout: 4,
        };
        let mut m = MarkovPrefetcher::new(&tiny);
        let cap = m.capacity();
        // Create cap + 8 distinct transitions.
        let mut seq = Vec::new();
        for i in 0..(cap as u32 + 8) {
            seq.push(0x10_0000 + i * 64);
        }
        run(&mut m, &seq);
        assert!(m.resident() <= cap);
        assert!(m.stats().evictions > 0 || m.resident() < cap);
    }

    #[test]
    fn state_bytes_tracks_residency() {
        let mut m = mk();
        assert_eq!(m.state_bytes(), 0);
        run(&mut m, &[0x1000, 0x2000]);
        assert_eq!(m.state_bytes(), 20, "one entry: 4B tag + 16B successors");
    }

    #[test]
    fn unbounded_config_has_huge_capacity() {
        let m = MarkovPrefetcher::new(&MarkovConfig::unbounded());
        assert!(m.capacity() >= 1 << 24);
    }

    #[test]
    fn stab_hit_rate_grows_with_repetition() {
        let mut m = mk();
        let seq: Vec<u32> = (0..20).map(|i| 0x1000 + i * 4096).collect();
        let mut out = Vec::new();
        // Pass 1: all cold.
        for &a in &seq {
            m.observe_miss(VirtAddr(a), &mut out);
        }
        let hits_after_1 = m.stats().stab_hits;
        // Pass 2: every miss address was trained as a tag.
        for &a in &seq {
            m.observe_miss(VirtAddr(a), &mut out);
        }
        let hits_after_2 = m.stats().stab_hits;
        assert_eq!(hits_after_1, 0);
        assert!(hits_after_2 >= seq.len() as u64 - 2, "{hits_after_2}");
    }

    #[test]
    fn predictions_never_target_the_current_miss() {
        let mut m = mk();
        let mut out = Vec::new();
        for &a in &[0x1000u32, 0x2000, 0x1000, 0x2000, 0x1000] {
            out.clear();
            m.observe_miss(VirtAddr(a), &mut out);
            for r in &out {
                assert_ne!(r.vaddr.line().0, a & !63, "self-prediction at {a:#x}");
            }
        }
    }

    #[test]
    fn training_phase_contrast_with_content() {
        // The paper's key qualitative claim (§5): Markov needs to see a
        // sequence before predicting it; cold sequences yield nothing.
        let mut m = mk();
        let cold: Vec<u32> = (0..50).map(|i| 0x40_0000 + i * 4096).collect();
        assert!(run(&mut m, &cold).is_empty());
        assert_eq!(m.stats().stab_hits, 0);
    }
}
