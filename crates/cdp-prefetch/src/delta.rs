//! A delta-space Markov prefetcher (the Pangloss-style tournament
//! comparator, arXiv 1906.00877).
//!
//! Classic address-keyed Markov tables (our [`markov`]) must dedicate one
//! entry per miss address, so their reach scales linearly with silicon.
//! Pangloss observes that miss *deltas* are heavily reused across the
//! address space: a table keyed by recent delta history and storing next
//! deltas compacts regular and mixed patterns into a few hot entries.
//!
//! The engine runs in one of two key spaces ([`DeltaKeySpace`]):
//!
//! * `Address` — keys are absolute miss-line addresses. With
//!   `history == 1` this is structurally the 1-history Markov STAB and
//!   produces the *exact* prediction stream of [`MarkovPrefetcher`] at
//!   equal geometry (the differential test anchors on this).
//! * `Delta` — keys are a signature of the last `history` line deltas;
//!   successors are next deltas with a saturating confidence byte. A
//!   confident top successor is chased one extra hop through the table
//!   (Pangloss's multi-degree prefetch).
//!
//! [`markov`]: crate::markov
//! [`MarkovPrefetcher`]: crate::MarkovPrefetcher

use cdp_types::{DeltaConfig, DeltaKeySpace, VirtAddr};

use crate::{Prefetcher, PrefetchRequest};

/// Line deltas must fit in the 2-byte slot the budget accounting charges
/// for them; larger jumps break the pattern context instead of training.
const MAX_DELTA_LINES: i64 = i16::MAX as i64;

#[derive(Clone, Copy, Debug)]
struct Succ {
    /// Successor payload: an absolute line address (`Address` mode) or a
    /// line delta reinterpreted as `u32` (`Delta` mode).
    value: u32,
    /// Saturating re-train count; gates the extra chase hop.
    conf: u8,
}

#[derive(Clone, Debug)]
struct DeltaEntry {
    key: u32,
    /// MRU-first successors.
    succ: Vec<Succ>,
    stamp: u64,
}

/// Cumulative delta-prefetcher statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// L2 misses observed.
    pub observed: u64,
    /// Table lookups that found an entry.
    pub table_hits: u64,
    /// Prefetch requests emitted.
    pub emitted: u64,
    /// Transitions recorded.
    pub trained: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

/// The delta-space Markov prefetcher.
///
/// # Examples
///
/// ```
/// use cdp_prefetch::DeltaPrefetcher;
/// use cdp_types::{DeltaConfig, VirtAddr};
///
/// let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(64 * 1024));
/// let mut out = Vec::new();
/// // A +2-line miss pattern: the first pass trains the delta chain.
/// for i in 0..8u32 {
///     dp.observe_miss(VirtAddr(0x1000 + i * 128), &mut out);
/// }
/// assert!(!out.is_empty(), "reused deltas predict without address reuse");
/// ```
#[derive(Clone, Debug)]
pub struct DeltaPrefetcher {
    sets: Vec<Vec<DeltaEntry>>,
    associativity: usize,
    fanout: usize,
    history: usize,
    key_space: DeltaKeySpace,
    entry_bytes: usize,
    /// Last miss line (both modes; raw line address, low 6 bits zero).
    prev_miss: Option<u32>,
    /// Recent line deltas, oldest first (`Delta` mode only).
    hist: Vec<i32>,
    clock: u64,
    stats: DeltaStats,
}

impl DeltaPrefetcher {
    /// Creates a delta prefetcher whose table fits in `cfg.table_bytes`.
    pub fn new(cfg: &DeltaConfig) -> Self {
        let entries = cfg.num_entries();
        let assoc = cfg.associativity.max(1);
        let sets = (entries / assoc).max(1);
        DeltaPrefetcher {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            associativity: assoc,
            fanout: cfg.fanout.max(1),
            history: cfg.history.max(1),
            key_space: cfg.key_space,
            entry_bytes: cfg.entry_bytes(),
            prev_miss: None,
            hist: Vec::new(),
            clock: 0,
            stats: DeltaStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Total table entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.associativity
    }

    /// Table storage budget in bytes (capacity, not residency): the
    /// figure the equal-silicon tournament normalizes on.
    pub fn budget_bytes(&self) -> usize {
        self.capacity() * self.entry_bytes
    }

    #[inline]
    fn set_index(&self, key: u32) -> usize {
        match self.key_space {
            // Address keys are raw line addresses; index like the Markov
            // STAB so equal geometry means equal placement.
            DeltaKeySpace::Address => ((key >> 6) as usize) % self.sets.len(),
            DeltaKeySpace::Delta => (key as usize) % self.sets.len(),
        }
    }

    /// FNV-1a signature of the delta history (`Delta` mode keys).
    fn signature(hist: &[i32]) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for &d in hist {
            h = (h ^ d as u32).wrapping_mul(0x0100_0193);
        }
        h
    }

    fn train(&mut self, key: u32, to: u32) {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(key);
        let assoc = self.associativity;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.key == key) {
            e.stamp = clock;
            let conf = if let Some(pos) = e.succ.iter().position(|s| s.value == to) {
                // Move to MRU, carrying (and bumping) its confidence.
                e.succ.remove(pos).conf.saturating_add(1)
            } else {
                if e.succ.len() >= self.fanout {
                    // Drop the LRU successor.
                    e.succ.pop();
                }
                1
            };
            e.succ.insert(0, Succ { value: to, conf });
        } else {
            if entries.len() >= assoc {
                let victim = entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(i, _)| i)
                    .expect("set non-empty");
                entries.swap_remove(victim);
                self.stats.evictions += 1;
            }
            entries.push(DeltaEntry {
                key,
                succ: vec![Succ { value: to, conf: 1 }],
                stamp: clock,
            });
        }
        self.stats.trained += 1;
    }

    /// Looks `key` up, touches its stamp, and returns a copy of its
    /// successors (MRU-first). Bumps `table_hits` when found.
    fn predict(&mut self, key: u32) -> Option<Vec<Succ>> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(key);
        let fanout = self.fanout;
        let e = self.sets[set].iter_mut().find(|e| e.key == key)?;
        e.stamp = clock;
        self.stats.table_hits += 1;
        Some(e.succ.iter().copied().take(fanout).collect())
    }

    /// Observes one L2 miss: trains the transition out of the previous
    /// context and emits prefetches for the current context's successors.
    pub fn observe_miss(&mut self, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.stats.observed += 1;
        let line = vaddr.line().0;
        match self.key_space {
            DeltaKeySpace::Address => self.observe_address(line, out),
            DeltaKeySpace::Delta => self.observe_delta(line, out),
        }
    }

    /// Address-keyed mode: structurally the 1-history Markov STAB
    /// (train previous-line -> line, then predict successors of line).
    fn observe_address(&mut self, line: u32, out: &mut Vec<PrefetchRequest>) {
        if let Some(prev) = self.prev_miss {
            if prev != line {
                self.train(prev, line);
            }
        }
        self.prev_miss = Some(line);
        if let Some(succ) = self.predict(line) {
            for s in succ {
                out.push(PrefetchRequest::delta(VirtAddr(s.value)));
                self.stats.emitted += 1;
            }
        }
    }

    /// Delta-keyed mode: the key is a signature of the last `history`
    /// line deltas; successors are next deltas applied to the current
    /// miss line. The top successor is chased one extra hop once its
    /// confidence reaches 2.
    fn observe_delta(&mut self, line: u32, out: &mut Vec<PrefetchRequest>) {
        let line_units = line >> 6;
        if let Some(prev) = self.prev_miss {
            let delta = i64::from(line_units) - i64::from(prev >> 6);
            if delta == 0 {
                // Same line re-missed: no transition, context unchanged.
                return;
            }
            if delta.abs() > MAX_DELTA_LINES {
                // A jump too large for the 2-byte delta slots: treat it
                // as a traversal break and rebuild the context.
                self.hist.clear();
                self.prev_miss = Some(line);
                return;
            }
            if self.hist.len() == self.history {
                self.train(Self::signature(&self.hist), delta as u32);
            }
            self.hist.push(delta as i32);
            if self.hist.len() > self.history {
                self.hist.remove(0);
            }
        }
        self.prev_miss = Some(line);
        if self.hist.len() < self.history {
            return;
        }
        let Some(succ) = self.predict(Self::signature(&self.hist)) else {
            return;
        };
        for s in &succ {
            let target = line_units.wrapping_add(s.value) << 6;
            out.push(PrefetchRequest::delta(VirtAddr(target)));
            self.stats.emitted += 1;
        }
        // Chase the confident head one hop: shift its delta into the
        // context and ask the table for the hop after it.
        let head = succ[0];
        if head.conf >= 2 {
            let mut next_hist = self.hist.clone();
            next_hist.push(head.value as i32);
            next_hist.remove(0);
            let chased = self.predict(Self::signature(&next_hist));
            if let Some(chased) = chased {
                let base = line_units.wrapping_add(head.value);
                let target = base.wrapping_add(chased[0].value) << 6;
                out.push(PrefetchRequest::delta(VirtAddr(target)));
                self.stats.emitted += 1;
            }
        }
    }

    /// Serializes the complete table state (resident order preserved, so
    /// LRU victim selection and MRU successor order resume bit-identically).
    pub fn save_state(&self, enc: &mut cdp_snap::Enc) {
        enc.u64(self.clock);
        match self.prev_miss {
            Some(line) => {
                enc.bool(true);
                enc.u32(line);
            }
            None => enc.bool(false),
        }
        enc.seq_len(self.hist.len());
        for &d in &self.hist {
            enc.i64(i64::from(d));
        }
        enc.u64(self.stats.observed);
        enc.u64(self.stats.table_hits);
        enc.u64(self.stats.emitted);
        enc.u64(self.stats.trained);
        enc.u64(self.stats.evictions);
        enc.seq_len(self.sets.len());
        for set in &self.sets {
            enc.seq_len(set.len());
            for e in set {
                enc.u32(e.key);
                enc.u64(e.stamp);
                enc.seq_len(e.succ.len());
                for s in &e.succ {
                    enc.u32(s.value);
                    enc.u8(s.conf);
                }
            }
        }
    }

    /// Restores state written by [`DeltaPrefetcher::save_state`] into a
    /// prefetcher of the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`cdp_types::SnapshotError`] on truncation, a set
    /// count mismatch, or a history/set/successor list exceeding its bound.
    pub fn restore_state(
        &mut self,
        dec: &mut cdp_snap::Dec<'_>,
    ) -> Result<(), cdp_types::SnapshotError> {
        use cdp_types::SnapshotError;
        self.clock = dec.u64("delta clock")?;
        self.prev_miss = if dec.bool("delta prev_miss flag")? {
            Some(dec.u32("delta prev_miss")?)
        } else {
            None
        };
        let hist_len = dec.seq_len(8, "delta history length")?;
        if hist_len > self.history {
            return Err(SnapshotError::Corrupt {
                context: "delta history length",
            });
        }
        self.hist.clear();
        for _ in 0..hist_len {
            let d = i32::try_from(dec.i64("delta history delta")?).map_err(|_| {
                SnapshotError::Corrupt {
                    context: "delta history delta",
                }
            })?;
            self.hist.push(d);
        }
        self.stats.observed = dec.u64("delta stats observed")?;
        self.stats.table_hits = dec.u64("delta stats table_hits")?;
        self.stats.emitted = dec.u64("delta stats emitted")?;
        self.stats.trained = dec.u64("delta stats trained")?;
        self.stats.evictions = dec.u64("delta stats evictions")?;
        let sets = dec.seq_len(8, "delta set count")?;
        if sets != self.sets.len() {
            return Err(SnapshotError::Corrupt {
                context: "delta set count",
            });
        }
        for set in self.sets.iter_mut() {
            set.clear();
            let len = dec.seq_len(4 + 8 + 8, "delta set length")?;
            if len > self.associativity {
                return Err(SnapshotError::Corrupt {
                    context: "delta set length",
                });
            }
            for _ in 0..len {
                let key = dec.u32("delta entry key")?;
                let stamp = dec.u64("delta entry stamp")?;
                let succ_len = dec.seq_len(5, "delta successor count")?;
                if succ_len > self.fanout {
                    return Err(SnapshotError::Corrupt {
                        context: "delta successor count",
                    });
                }
                let mut succ = Vec::with_capacity(succ_len);
                for _ in 0..succ_len {
                    let value = dec.u32("delta successor value")?;
                    let conf = dec.u8("delta successor conf")?;
                    succ.push(Succ { value, conf });
                }
                set.push(DeltaEntry { key, succ, stamp });
            }
        }
        Ok(())
    }
}

impl Prefetcher for DeltaPrefetcher {
    fn on_l2_miss(&mut self, vaddr: VirtAddr, out: &mut Vec<PrefetchRequest>) {
        self.observe_miss(vaddr, out);
    }

    fn budget_bytes(&self) -> usize {
        self.budget_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(dp: &mut DeltaPrefetcher, misses: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        for &m in misses {
            dp.observe_miss(VirtAddr(m), &mut out);
        }
        out.iter().map(|r| r.vaddr.0).collect()
    }

    #[test]
    fn delta_mode_predicts_unseen_addresses() {
        // The defining contrast with address-Markov: a constant +4-line
        // delta predicts lines never missed before.
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(64 * 1024));
        let seq: Vec<u32> = (0..6).map(|i| 0x10_0000 + i * 256).collect();
        let preds = run(&mut dp, &seq);
        assert!(
            preds.contains(&(0x10_0000 + 6 * 256)),
            "must extrapolate the +4-line chain: {preds:x?}"
        );
    }

    #[test]
    fn address_markov_never_predicts_cold(){
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::markov_compat(64 * 1024));
        let seq: Vec<u32> = (0..6).map(|i| 0x10_0000 + i * 256).collect();
        assert!(run(&mut dp, &seq).is_empty(), "address keys need reuse");
    }

    #[test]
    fn address_mode_first_pass_trains_second_predicts() {
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::markov_compat(512 * 1024));
        let seq = [0x1000u32, 0x8000, 0x3000];
        assert!(run(&mut dp, &seq).is_empty(), "training pass is silent");
        let preds = run(&mut dp, &seq);
        assert!(preds.contains(&0x8000));
        assert!(preds.contains(&0x3000));
    }

    #[test]
    fn emitted_requests_carry_delta_kind() {
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(64 * 1024));
        let mut out = Vec::new();
        for i in 0..8u32 {
            dp.observe_miss(VirtAddr(0x2000 + i * 128), &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.kind == cdp_types::RequestKind::Delta));
    }

    #[test]
    fn alternating_deltas_learn_with_history_two() {
        // +1, +3, +1, +3 line deltas: history 2 disambiguates perfectly.
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(64 * 1024));
        let mut addr = 0x40_0000u32;
        let mut seq = Vec::new();
        for i in 0..16 {
            seq.push(addr);
            addr += if i % 2 == 0 { 64 } else { 192 };
        }
        let preds = run(&mut dp, &seq);
        // The last two deltas are (+3, +1); the pattern continues with +3.
        let next = *seq.last().unwrap() + 192;
        assert!(preds.contains(&next), "{preds:x?} missing {next:x}");
    }

    #[test]
    fn huge_jump_breaks_context_instead_of_training() {
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(64 * 1024));
        run(&mut dp, &[0x1000, 0x1040, 0x1080]);
        let trained_before = dp.stats().trained;
        run(&mut dp, &[0xf000_0000]); // ~4M-line jump
        assert_eq!(dp.stats().trained, trained_before, "break, not train");
    }

    #[test]
    fn same_line_repeat_is_inert() {
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(64 * 1024));
        run(&mut dp, &[0x1000, 0x1040, 0x1080]);
        let stats = dp.stats();
        let preds = run(&mut dp, &[0x1080, 0x1090, 0x10a0]); // same line
        assert!(preds.is_empty());
        assert_eq!(dp.stats().trained, stats.trained);
    }

    #[test]
    fn capacity_eviction_counts() {
        let tiny = DeltaConfig {
            table_bytes: 2 * 16 * 16,
            ..DeltaConfig::pangloss(0)
        };
        let mut dp = DeltaPrefetcher::new(&tiny);
        let cap = dp.capacity();
        // Distinct delta contexts: a run of misses with growing deltas.
        let mut addr = 0x10_0000u32;
        let mut seq = Vec::new();
        for i in 1..(cap as u32 * 4) {
            seq.push(addr);
            addr += 64 * (i % 97 + 1);
        }
        run(&mut dp, &seq);
        assert!(dp.sets.iter().all(|s| s.len() <= dp.associativity));
        assert!(dp.stats().evictions > 0);
    }

    #[test]
    fn budget_bytes_matches_config_math() {
        for cfg in [
            DeltaConfig::pangloss(64 * 1024),
            DeltaConfig::markov_compat(128 * 1024),
        ] {
            let dp = DeltaPrefetcher::new(&cfg);
            assert_eq!(
                dp.budget_bytes(),
                (cfg.num_entries() / cfg.associativity) * cfg.associativity * cfg.entry_bytes()
            );
            // Within one set's worth of the requested budget.
            assert!(dp.budget_bytes() <= cfg.table_bytes);
            assert!(dp.budget_bytes() + cfg.associativity * cfg.entry_bytes() > cfg.table_bytes);
        }
    }

    #[test]
    fn snapshot_roundtrip_resumes_bit_identically() {
        let mut dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(4 * 1024));
        let mut addr = 0x20_0000u32;
        let mut seq = Vec::new();
        for i in 0..200u32 {
            seq.push(addr);
            addr = addr.wrapping_add(64 * ((i * 7) % 23 + 1));
        }
        run(&mut dp, &seq);
        let mut enc = cdp_snap::Enc::new();
        dp.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = DeltaPrefetcher::new(&DeltaConfig::pangloss(4 * 1024));
        let mut dec = cdp_snap::Dec::new(&bytes);
        restored.restore_state(&mut dec).unwrap();
        // Same tail drives identical predictions and stats.
        let tail: Vec<u32> = (0..50).map(|i| 0x30_0000 + i * 128).collect();
        assert_eq!(run(&mut dp, &tail), run(&mut restored, &tail));
        assert_eq!(dp.stats(), restored.stats());
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let dp = DeltaPrefetcher::new(&DeltaConfig::pangloss(4 * 1024));
        let mut enc = cdp_snap::Enc::new();
        dp.save_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut other = DeltaPrefetcher::new(&DeltaConfig::pangloss(8 * 1024));
        let mut dec = cdp_snap::Dec::new(&bytes);
        assert!(other.restore_state(&mut dec).is_err());
    }
}
