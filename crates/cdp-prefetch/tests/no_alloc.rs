//! Proves the VAM hot path is allocation-free: `scan_line` runs under a
//! counting global allocator and must not touch the heap.
//!
//! The scanner runs once per L2 fill — millions of times per experiment —
//! so a `Vec` push in here is a measurable fraction of total wall time.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use cdp_prefetch::scan_line;
use cdp_types::{VamConfig, VirtAddr, LINE_SIZE};

/// System allocator wrapper that counts allocations made while the
/// current thread has opted in. The opt-in keeps libtest's harness
/// threads (timers, output capture) from bleeding into the measurement
/// when the machine is loaded — only the measuring loop counts.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn scan_line_never_allocates() {
    let cfg = VamConfig::tuned();
    let trigger = VirtAddr(0x1040_2468);

    // A line dense with candidate pointers (every word shares the upper
    // bits), a line of junk, and a line of zeros: the scanner must stay
    // off the heap whether it finds 0 or dozens of candidates.
    let mut dense = [0u8; LINE_SIZE];
    for w in 0..LINE_SIZE / 4 {
        dense[w * 4..w * 4 + 4].copy_from_slice(&(0x1040_0000u32 + w as u32 * 16).to_le_bytes());
    }
    let mut junk = [0u8; LINE_SIZE];
    for (i, b) in junk.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(37).wrapping_add(11);
    }
    let zeros = [0u8; LINE_SIZE];

    // Warm up (lazy test-harness state must not count against the scan).
    let warm = scan_line(&dense, trigger, &cfg);
    assert!(!warm.is_empty(), "dense line must yield candidates");

    let before = ALLOCS.load(Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let mut found = 0usize;
    for _ in 0..1000 {
        found += scan_line(&dense, trigger, &cfg).len();
        found += scan_line(&junk, trigger, &cfg).len();
        found += scan_line(&zeros, trigger, &cfg).len();
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCS.load(Ordering::SeqCst);

    assert!(found > 0, "the loop did real work");
    assert_eq!(
        after - before,
        0,
        "scan_line must not allocate (hot path: one call per L2 fill)"
    );
}
