//! Property test: every engine in the zoo is deterministic.
//!
//! The tournament's equal-silicon comparison (and the experiments
//! harness's byte-identical-stdout guarantee at any `--jobs` count) rests
//! on each engine being a pure function of its event stream: two fresh
//! instances built from the same (seed, trace, budget) must emit
//! identical prediction streams and finish with identical table stats.
//! No engine may consult wall clocks, addresses-of-allocations, global
//! RNGs, or anything else outside its inputs.

use cdp_prefetch::{
    ContentPrefetcher, DeltaPrefetcher, JumpPrefetcher, MarkovPrefetcher, PerceptronFilter,
    Prefetcher, PrefetchRequest, StridePrefetcher,
};
use cdp_types::rng::Rng;
use cdp_types::{
    ContentConfig, DeltaConfig, DeltaKeySpace, JumpConfig, MarkovConfig, PerceptronConfig,
    RequestKind, SystemConfig, VirtAddr, LINE_SIZE,
};

/// One hierarchy event, pre-generated so both replays see byte-identical
/// inputs (including the fill payloads the content and jump engines scan).
enum Ev {
    L1Miss { pc: u32, vaddr: u32 },
    L2Miss { vaddr: u32 },
    Fill { trigger: u32, vline: u32, data: Box<[u8; LINE_SIZE]>, kind: RequestKind },
}

/// A randomized event stream with enough structure that every engine
/// actually fires: strided L1 misses, pointer-chase L2 misses revisiting
/// hot lines, and fills whose payloads contain plausible heap pointers
/// (same-region word values) for the VAM to accept.
fn random_events(seed: u64, len: usize) -> Vec<Ev> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(len);
    let hot: Vec<u32> = (0..8)
        .map(|_| 0x40_0000 + rng.gen_range_u32(0..0x400) * 64)
        .collect();
    // Per-PC strided streams: each synthetic load walks its own region
    // with a fixed stride, which is what trains a stride table.
    let mut pcs: Vec<(u32, u32, u32)> = (0..4)
        .map(|i| {
            (
                0x1000 + i * 4,
                0x10_0000 + i * 0x1_0000,
                64 * (1 + rng.gen_range_u32(0..3)),
            )
        })
        .collect();
    for _ in 0..len {
        match rng.gen_range_u32(0..10) {
            0..=2 => {
                let (pc, cursor, stride) = &mut pcs[rng.gen_range_usize(0..4)];
                *cursor = cursor.wrapping_add(*stride);
                events.push(Ev::L1Miss { pc: *pc, vaddr: *cursor });
            }
            3..=5 => {
                let vaddr = hot[rng.gen_range_usize(0..hot.len())]
                    .wrapping_add(rng.gen_range_u32(0..4) * 64);
                events.push(Ev::L2Miss { vaddr });
            }
            _ => {
                let trigger = hot[rng.gen_range_usize(0..hot.len())];
                let vline = trigger & !(LINE_SIZE as u32 - 1);
                let mut data = Box::new([0u8; LINE_SIZE]);
                for w in 0..(LINE_SIZE / 4) {
                    // Roughly half the words look like pointers into the
                    // hot region; the rest are small integers.
                    let word = if rng.gen_range_u32(0..2) == 0 {
                        hot[rng.gen_range_usize(0..hot.len())]
                            .wrapping_add(rng.gen_range_u32(0..64) * 4)
                    } else {
                        rng.gen_range_u32(0..4096)
                    };
                    data[w * 4..w * 4 + 4].copy_from_slice(&word.to_le_bytes());
                }
                let kind = if rng.gen_range_u32(0..3) == 0 {
                    RequestKind::Content { depth: rng.gen_range_u32(0..3) as u8 }
                } else {
                    RequestKind::Demand
                };
                events.push(Ev::Fill { trigger, vline, data, kind });
            }
        }
    }
    events
}

/// Replays `events` through `engine`, returning the full prediction
/// stream (order included).
fn drive(engine: &mut dyn Prefetcher, events: &[Ev]) -> Vec<PrefetchRequest> {
    let mut stream = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        out.clear();
        match ev {
            Ev::L1Miss { pc, vaddr } => engine.on_l1_miss(*pc, VirtAddr(*vaddr), &mut out),
            Ev::L2Miss { vaddr } => engine.on_l2_miss(VirtAddr(*vaddr), &mut out),
            Ev::Fill { trigger, vline, data, kind } => {
                engine.on_l2_fill(VirtAddr(*trigger), VirtAddr(*vline), data, *kind, &mut out);
            }
        }
        stream.extend(out.iter().copied());
    }
    stream
}

/// Asserts two fresh, identically-configured instances replay `events`
/// identically, and that the stream is non-trivial when `expect_issue`
/// is set (a determinism test over an engine that never fires proves
/// nothing).
fn check_pair<E: Prefetcher>(
    name: &str,
    events: &[Ev],
    expect_issue: bool,
    mut a: E,
    mut b: E,
    stats: impl Fn(&E) -> String,
) {
    let sa = drive(&mut a, events);
    let sb = drive(&mut b, events);
    assert_eq!(sa, sb, "{name}: prediction streams diverge");
    assert_eq!(stats(&a), stats(&b), "{name}: stats diverge");
    assert_eq!(a.budget_bytes(), b.budget_bytes(), "{name}: budgets diverge");
    if expect_issue {
        assert!(!sa.is_empty(), "{name}: event stream never fired the engine");
    }
}

#[test]
fn every_engine_replays_identically() {
    for seed in [1u64, 0xBEEF, 0x5eed_cafe] {
        let events = random_events(seed, 4000);
        for budget in [4 * 1024usize, 16 * 1024] {
            let ctx = format!("seed {seed:#x} budget {budget}");
            let mk = MarkovConfig { stab_bytes: budget, associativity: 16, fanout: 4 };
            check_pair(
                &format!("markov {ctx}"),
                &events,
                true,
                MarkovPrefetcher::new(&mk),
                MarkovPrefetcher::new(&mk),
                |e| format!("{:?}", e.stats()),
            );
            for key_space in [DeltaKeySpace::Delta, DeltaKeySpace::Address] {
                let dc = DeltaConfig {
                    table_bytes: budget,
                    associativity: 16,
                    fanout: 4,
                    history: 2,
                    key_space,
                };
                check_pair(
                    &format!("delta/{key_space:?} {ctx}"),
                    &events,
                    true,
                    DeltaPrefetcher::new(&dc),
                    DeltaPrefetcher::new(&dc),
                    |e| format!("{:?}", e.stats()),
                );
            }
            let jc = JumpConfig::sized(budget);
            check_pair(
                &format!("jump {ctx}"),
                &events,
                true,
                JumpPrefetcher::new(&jc),
                JumpPrefetcher::new(&jc),
                |e| format!("{:?}", e.stats()),
            );
        }
        // The stateless engines carry no budget axis.
        check_pair(
            &format!("content seed {seed:#x}"),
            &events,
            true,
            ContentPrefetcher::new(ContentConfig::default()),
            ContentPrefetcher::new(ContentConfig::default()),
            |e| format!("{:?}", e.stats()),
        );
        let sc = SystemConfig::asplos2002().prefetchers.stride.expect("baseline stride");
        check_pair(
            &format!("stride seed {seed:#x}"),
            &events,
            true,
            StridePrefetcher::new(&sc),
            StridePrefetcher::new(&sc),
            |e| format!("{:?}", e.stats()),
        );
    }
}

/// The perceptron filter is hierarchy-side (not a [`Prefetcher`]), so it
/// gets its own replay: identical accept/train/demand-miss sequences must
/// produce identical gate decisions and weights-visible state.
#[test]
fn perceptron_filter_replays_identically() {
    for seed in [3u64, 0xF117E6] {
        let mut rng = Rng::seed_from_u64(seed);
        for budget in [2 * 1024usize, 16 * 1024] {
            let cfg = PerceptronConfig::with_budget(budget).expect("budget fits");
            let mut a = PerceptronFilter::new(&cfg);
            let mut b = PerceptronFilter::new(&cfg);
            let mut decisions = (Vec::new(), Vec::new());
            for _ in 0..4000 {
                let vaddr = VirtAddr(0x40_0000 + rng.gen_range_u32(0..0x2000) * 64);
                let kind = match rng.gen_range_u32(0..4) {
                    0 => RequestKind::Stride,
                    1 => RequestKind::Markov,
                    2 => RequestKind::Delta,
                    _ => RequestKind::Content { depth: rng.gen_range_u32(0..3) as u8 },
                };
                match rng.gen_range_u32(0..4) {
                    0 => {
                        let req = PrefetchRequest { vaddr, kind, width: false };
                        decisions.0.push(a.accept(&req));
                        decisions.1.push(b.accept(&req));
                    }
                    1 => {
                        let useful = rng.gen_range_u32(0..2) == 0;
                        a.train(vaddr, kind, useful);
                        b.train(vaddr, kind, useful);
                    }
                    _ => {
                        a.on_demand_miss(vaddr);
                        b.on_demand_miss(vaddr);
                    }
                }
            }
            assert_eq!(decisions.0, decisions.1, "gate decisions diverge");
            assert!(
                decisions.0.iter().any(|&d| d) || !decisions.0.is_empty(),
                "replay exercised the gate"
            );
            assert_eq!(a.stats(), b.stats(), "perceptron stats diverge");
            assert_eq!(a.budget_bytes(), b.budget_bytes());
        }
    }
}
