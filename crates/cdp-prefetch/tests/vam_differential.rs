//! Differential test: the optimized branchless [`scan_line`] against the
//! straight-from-the-paper [`scan_line_scalar`] reference.
//!
//! The optimized scanner precomputes a per-line plan (masks, shifts,
//! reject-all short-circuits) and uses unaligned 8-byte loads with an
//! unconditional-store hit loop; the scalar reference calls
//! [`cdp_prefetch::classify`] per word. The two must agree **hit for
//! hit** — same offsets, same candidate values, same order — over an
//! exhaustive configuration grid crossed with randomized and adversarial
//! line contents, including every degenerate regime the plan folds away
//! (`compare_bits >= 32`, `align_bits >= 32`, steps larger than a word,
//! steps that do not divide the line size, extreme-region triggers with
//! and without filter bits).

use cdp_prefetch::{scan_line, scan_line_scalar, ScanHits};
use cdp_types::{rng::Rng, VamConfig, VirtAddr, LINE_SIZE};

fn assert_hits_identical(fast: &ScanHits, slow: &ScanHits, ctx: &str) {
    assert_eq!(fast.len(), slow.len(), "hit count diverged: {ctx}");
    for (f, s) in fast.iter().zip(slow.iter()) {
        assert_eq!(f, s, "hit diverged: {ctx}");
    }
}

fn check(data: &[u8; LINE_SIZE], trigger: VirtAddr, cfg: &VamConfig) {
    let fast = scan_line(data, trigger, cfg);
    let slow = scan_line_scalar(data, trigger, cfg);
    assert_hits_identical(
        &fast,
        &slow,
        &format!("trigger={trigger:?} cfg={cfg:?} data[0..8]={:?}", &data[..8]),
    );
}

/// The exhaustive knob grid. Degenerate values on purpose:
/// `compare_bits` 32 (exact-equality regime) and 33 (still exact);
/// `filter_bits` 32/40 (clamped to the bits below the compare field);
/// `align_bits` 31/32 (only word 0 passes) and 33 (nothing passes);
/// `scan_step` 3/5 (does not divide 64), 8 (> WORD_SIZE), 61 (one word
/// plus the final in-bounds offset), 64/100 (a single word).
const COMPARE_BITS: &[u32] = &[0, 1, 4, 8, 16, 30, 31, 32, 33];
const FILTER_BITS: &[u32] = &[0, 1, 4, 8, 31, 32, 40];
const ALIGN_BITS: &[u32] = &[0, 1, 2, 31, 32, 33];
const SCAN_STEPS: &[usize] = &[1, 2, 3, 4, 5, 8, 61, 64, 100];

/// Triggers chosen so every compare width sees a mid-range, an
/// all-zeros-region, and an all-ones-region upper field.
const TRIGGERS: &[u32] = &[0x1040_2468, 0x0000_0123, 0xffff_fde8, 0x8000_0000, 0x0000_0000];

fn line_variants(rng: &mut Rng) -> Vec<[u8; LINE_SIZE]> {
    let mut lines = Vec::new();
    // All zeros and all ones: the extreme-region filter's home turf.
    lines.push([0u8; LINE_SIZE]);
    lines.push([0xffu8; LINE_SIZE]);
    // Uniform random bytes.
    for _ in 0..3 {
        let mut l = [0u8; LINE_SIZE];
        for b in l.iter_mut() {
            *b = (rng.next_u32() >> 24) as u8;
        }
        lines.push(l);
    }
    // Pointer-dense: words near each trigger at misaligned offsets, so
    // the tail loads (offsets 57..=60) see realistic candidates.
    let mut dense = [0u8; LINE_SIZE];
    for (i, chunk) in dense.chunks_exact_mut(4).enumerate() {
        let near = TRIGGERS[i % TRIGGERS.len()].wrapping_add((i as u32) << 3);
        chunk.copy_from_slice(&near.to_le_bytes());
    }
    lines.push(dense);
    let mut shifted = [0u8; LINE_SIZE];
    shifted[1..].copy_from_slice(&dense[..LINE_SIZE - 1]);
    lines.push(shifted);
    lines
}

#[test]
fn exhaustive_grid_matches_scalar_reference() {
    let mut rng = Rng::seed_from_u64(0xd1ff_5ca9);
    let lines = line_variants(&mut rng);
    for &compare_bits in COMPARE_BITS {
        for &filter_bits in FILTER_BITS {
            for &align_bits in ALIGN_BITS {
                for &scan_step in SCAN_STEPS {
                    let cfg = VamConfig {
                        compare_bits,
                        filter_bits,
                        align_bits,
                        scan_step,
                    };
                    for &t in TRIGGERS {
                        for data in &lines {
                            check(data, VirtAddr(t), &cfg);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn randomized_configs_and_lines_match_scalar_reference() {
    let mut rng = Rng::seed_from_u64(0xd1ff_5caa);
    for _ in 0..2000 {
        let cfg = VamConfig {
            compare_bits: rng.gen_range_u32(0..36),
            filter_bits: rng.gen_range_u32(0..36),
            align_bits: rng.gen_range_u32(0..34),
            scan_step: rng.gen_range_usize(1..70),
        };
        let trigger = VirtAddr(rng.next_u32());
        let mut data = [0u8; LINE_SIZE];
        for b in data.iter_mut() {
            *b = (rng.next_u32() >> 24) as u8;
        }
        // Seed a few trigger-sharing words at random (possibly odd) offsets
        // so accepts are common enough to exercise the hit-store path.
        for _ in 0..4 {
            let off = rng.gen_range_usize(0..LINE_SIZE - 4);
            let w = (trigger.0 & 0xffff_0000) | (rng.next_u32() & 0xfffe);
            data[off..off + 4].copy_from_slice(&w.to_le_bytes());
        }
        check(&data, trigger, &cfg);
    }
}

#[test]
fn densest_line_fills_capacity_identically() {
    // step 1 over a line where every offset decodes to an accepted word:
    // both scanners must report all 61 in-bounds offsets.
    let cfg = VamConfig {
        compare_bits: 0,
        filter_bits: 0,
        align_bits: 0,
        scan_step: 1,
    };
    let data = [0xabu8; LINE_SIZE];
    let fast = scan_line(&data, VirtAddr(0), &cfg);
    let slow = scan_line_scalar(&data, VirtAddr(0), &cfg);
    assert_eq!(fast.len(), 61);
    assert_hits_identical(&fast, &slow, "densest line");
}

#[test]
fn tail_offsets_use_the_shifted_chunk_load() {
    // A candidate visible only at offsets 57..=60 — the region where the
    // optimized scanner shifts out of the final 8-byte chunk.
    let trigger = VirtAddr(0x1040_2468);
    for off in 57..=60usize {
        let mut data = [0u8; LINE_SIZE];
        data[off..off + 4].copy_from_slice(&0x1040_aaa0u32.to_le_bytes());
        let cfg = VamConfig {
            compare_bits: 8,
            filter_bits: 4,
            align_bits: 1,
            scan_step: 1,
        };
        let fast = scan_line(&data, trigger, &cfg);
        assert!(
            fast.iter().any(|h| h.offset == off),
            "tail candidate at {off} missed"
        );
        check(&data, trigger, &cfg);
    }
}
