//! Differential test: the delta-space Markov engine in its address-keyed,
//! history-1 compatibility configuration must produce a prediction stream
//! *equivalent to the existing Markov STAB* on randomized miss traces.
//!
//! This is the anchor that lets the tournament treat the two engines as
//! points on one axis (key space) rather than unrelated mechanisms: at
//! equal geometry, `DeltaKeySpace::Address` with `history == 1` *is* the
//! 1-history STAB — same set indexing, same MRU successor order, same
//! LRU victim selection — so any divergence is a bug in one of them.
//! Same pattern as the `vam::classify` differential fuzz.

use cdp_prefetch::{DeltaPrefetcher, MarkovPrefetcher};
use cdp_types::rng::Rng;
use cdp_types::{DeltaConfig, DeltaKeySpace, MarkovConfig, VirtAddr};

/// Drives both engines over `trace` and asserts hit-for-hit equivalent
/// prediction streams (addresses, in order) plus matching table stats.
fn check(markov_cfg: &MarkovConfig, trace: &[u32], ctx: &str) {
    let delta_cfg = DeltaConfig {
        table_bytes: markov_cfg.stab_bytes,
        associativity: markov_cfg.associativity,
        fanout: markov_cfg.fanout,
        history: 1,
        key_space: DeltaKeySpace::Address,
    };
    assert_eq!(
        delta_cfg.entry_bytes(),
        markov_cfg.entry_bytes(),
        "{ctx}: equal byte budgets must mean equal entry counts"
    );
    let mut mk = MarkovPrefetcher::new(markov_cfg);
    let mut dp = DeltaPrefetcher::new(&delta_cfg);
    let mut mk_out = Vec::new();
    let mut dp_out = Vec::new();
    for (i, &addr) in trace.iter().enumerate() {
        mk_out.clear();
        dp_out.clear();
        mk.observe_miss(VirtAddr(addr), &mut mk_out);
        dp.observe_miss(VirtAddr(addr), &mut dp_out);
        let mk_preds: Vec<u32> = mk_out.iter().map(|r| r.vaddr.0).collect();
        let dp_preds: Vec<u32> = dp_out.iter().map(|r| r.vaddr.0).collect();
        assert_eq!(
            mk_preds, dp_preds,
            "{ctx}: prediction streams diverge at miss {i} ({addr:#x})"
        );
    }
    let (ms, ds) = (mk.stats(), dp.stats());
    assert_eq!(ms.observed, ds.observed, "{ctx}: observed");
    assert_eq!(ms.stab_hits, ds.table_hits, "{ctx}: table hits");
    assert_eq!(ms.emitted, ds.emitted, "{ctx}: emitted");
    assert_eq!(ms.trained, ds.trained, "{ctx}: trained");
    assert_eq!(ms.evictions, ds.evictions, "{ctx}: evictions");
}

/// A randomized miss trace mixing the patterns the suite's benchmarks
/// produce: sequential runs, pointer-chase hops within a region, revisits
/// of hot lines, and occasional far jumps.
fn random_trace(rng: &mut Rng, len: usize) -> Vec<u32> {
    let mut trace = Vec::with_capacity(len);
    let mut cursor: u32 = 0x10_0000 + rng.gen_range_u32(0..0x1000) * 64;
    let mut hot: Vec<u32> = (0..8)
        .map(|_| 0x40_0000 + rng.gen_range_u32(0..0x400) * 64)
        .collect();
    while trace.len() < len {
        match rng.gen_range_u32(0..10) {
            // Sequential run of 2..10 lines.
            0..=3 => {
                let run = rng.gen_range_usize(2..10);
                for _ in 0..run {
                    trace.push(cursor);
                    cursor = cursor.wrapping_add(64);
                }
            }
            // Hot-line revisit (creates trainable transitions).
            4..=6 => {
                let i = rng.gen_range_usize(0..hot.len());
                trace.push(hot[i]);
            }
            // Local pointer-chase hop.
            7..=8 => {
                cursor = cursor.wrapping_add(rng.gen_range_u32(1..64) * 64);
                trace.push(cursor);
            }
            // Far jump; occasionally rotate a hot line.
            _ => {
                cursor = 0x10_0000 + rng.gen_range_u32(0..0x8000) * 64;
                trace.push(cursor);
                let i = rng.gen_range_usize(0..hot.len());
                hot[i] = cursor;
            }
        }
    }
    trace.truncate(len);
    trace
}

#[test]
fn equivalent_on_randomized_traces() {
    let mut rng = Rng::seed_from_u64(0xD1FF);
    for round in 0..200 {
        // Small tables force evictions; large ones exercise pure MRU.
        let stab_bytes = [640, 2048, 16 * 1024, 512 * 1024][round % 4];
        let cfg = MarkovConfig {
            stab_bytes,
            associativity: [2, 4, 16][round % 3],
            fanout: [1, 2, 4][round % 3],
        };
        let trace = random_trace(&mut rng, 2000);
        check(&cfg, &trace, &format!("round {round} cfg {cfg:?}"));
    }
}

#[test]
fn equivalent_on_knob_grid() {
    // Exhaustive small grid over the geometry knobs with a fixed
    // adversarial trace (dense revisits + conflict-heavy footprint).
    let mut rng = Rng::seed_from_u64(42);
    let trace: Vec<u32> = (0..3000)
        .map(|_| 0x20_0000 + rng.gen_range_u32(0..96) * 64)
        .collect();
    for assoc in [1, 2, 8, 16] {
        for fanout in [1, 2, 4, 8] {
            for stab_bytes in [320, 4096, 64 * 1024] {
                let cfg = MarkovConfig {
                    stab_bytes,
                    associativity: assoc,
                    fanout,
                };
                check(&cfg, &trace, &format!("grid {cfg:?}"));
            }
        }
    }
}

#[test]
fn equivalent_on_adversarial_patterns() {
    let cfg = MarkovConfig::eighth();
    // Same-line repeats (no self-training), strict alternation (MRU
    // churn), and a rotating set exactly at the fan-out boundary.
    let mut alternate = Vec::new();
    for _ in 0..100 {
        alternate.extend_from_slice(&[0x1000, 0x1010, 0x2000, 0x1000, 0x3000]);
    }
    check(&cfg, &alternate, "alternation");
    let mut rotate = Vec::new();
    for i in 0..400u32 {
        rotate.push(0x8000 + (i % 5) * 4096);
    }
    check(&cfg, &rotate, "fanout-boundary rotation");
}

#[test]
fn shipped_compat_preset_matches_table3_markov() {
    // The preset the tournament actually uses.
    let mut rng = Rng::seed_from_u64(7);
    let trace = random_trace(&mut rng, 5000);
    for bytes in [128 * 1024, 512 * 1024] {
        let compat = DeltaConfig::markov_compat(bytes);
        let markov = MarkovConfig {
            stab_bytes: bytes,
            associativity: compat.associativity,
            fanout: compat.fanout,
        };
        check(&markov, &trace, &format!("preset {bytes}"));
    }
}
