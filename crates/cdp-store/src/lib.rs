//! Crash-safe, content-addressed on-disk result store for the CDP
//! simulator.
//!
//! Sweep cells are keyed by FNV-1a config fingerprints (`cdp-obs`), so a
//! cell's result is a pure function of its key. This crate persists those
//! results across processes with the same defensive discipline as the
//! checkpoint codec (`cdp-snap`): every entry is a versioned, checksummed
//! container; damage of any kind — torn writes, flipped bits, truncation,
//! entries from a different cell or a future format — surfaces as a typed
//! [`cdp_types::SnapshotError`], quarantines the entry, and falls back to
//! recomputation. The store never panics on file contents and never
//! replays corrupt data.
//!
//! The store is *payload-agnostic*: it moves opaque bytes. The codec that
//! turns a simulation result into bytes lives with the simulator
//! (`cdp-sim`), keeping the dependency graph acyclic.
//!
//! Two layers:
//!
//! * [`io`] — the [`StoreIo`] filesystem trait, its real implementation,
//!   and a seeded deterministic fault injector ([`FaultyIo`]) used by the
//!   chaos tests to prove the crash-safety story instead of asserting it.
//! * [`store`] — the [`ResultStore`] itself: atomic publication,
//!   corruption quarantine, generation-based GC, a maintenance lock, and
//!   an `fsck` pass exposed through the `store-fsck` binary.
//!
//! # Examples
//!
//! ```
//! use cdp_store::ResultStore;
//!
//! let dir = std::env::temp_dir().join(format!("cdp-store-doc-{}", std::process::id()));
//! let store = ResultStore::open(&dir).unwrap();
//! store.put(0xFEED, b"encoded result");
//! assert_eq!(store.get(0xFEED).as_deref(), Some(&b"encoded result"[..]));
//! assert_eq!(store.get(0xBEEF), None); // miss: caller recomputes
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

pub mod io;
pub mod store;

pub use io::{FaultConfig, FaultCounts, FaultyIo, RealIo, StoreIo};
pub use store::{
    clean_stale_parts, FsckReport, ResultStore, StoreStats, ENTRY_VERSION, TAG_META, TAG_PAYLOAD,
};
