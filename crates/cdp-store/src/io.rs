//! Filesystem abstraction + deterministic fault injection.
//!
//! Everything the store (and the checkpoint writer in `cdp-sim`) does to
//! disk goes through the [`StoreIo`] trait, so crash-safety claims can be
//! *tested* instead of asserted: [`FaultyIo`] wraps any implementation
//! and injects short writes, ENOSPC, failed renames, and read-side
//! bit-flips/truncation on a seeded deterministic schedule. The durable
//! code must survive every schedule — a failed write degrades to a
//! counted no-op, a damaged read quarantines and recomputes, and nothing
//! ever panics or replays corrupt data.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cdp_types::rng::Rng;

/// The filesystem operations durable code is allowed to use.
///
/// Implementations must be shareable across threads; the store calls
/// these concurrently from pool workers.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) `path` with `bytes`, flushed to disk
    /// (`fsync`) before returning.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Reads the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// The entries directly inside directory `path` (files only or not —
    /// callers filter by name; order is unspecified).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Creates `path` exclusively with `bytes` (fails if it exists).
    /// Returns `Ok(false)` when the file already existed. Lock-protocol
    /// primitive; never faulted by the injection layer.
    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool>;
}

/// The real filesystem, with fsync discipline on writes.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut f) => {
                f.write_all(bytes)?;
                f.sync_all()?;
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// Fault-injection schedule for [`FaultyIo`]: each period `p` makes
/// roughly one in `p` operations of that class fail (0 disables the
/// class). The draw sequence is a seeded xoshiro stream, so a given
/// `(seed, operation order)` always injects the identical faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Writes that fail outright (injected ENOSPC).
    pub write_error_period: u64,
    /// Writes that silently land short (torn write: only a prefix
    /// reaches disk, the call still reports success).
    pub write_short_period: u64,
    /// Renames that fail (publication lost, temp file left behind —
    /// exactly what a kill between write and rename leaves).
    pub rename_error_period: u64,
    /// Reads whose returned bytes have one bit flipped.
    pub read_flip_period: u64,
    /// Reads whose returned bytes are truncated.
    pub read_truncate_period: u64,
}

impl FaultConfig {
    /// An aggressive schedule for soak tests: every class enabled with
    /// small periods.
    #[must_use]
    pub fn aggressive(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            write_error_period: 5,
            write_short_period: 6,
            rename_error_period: 7,
            read_flip_period: 4,
            read_truncate_period: 9,
        }
    }

    /// A schedule with every fault class disabled (pass-through).
    #[must_use]
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            write_error_period: 0,
            write_short_period: 0,
            rename_error_period: 0,
            read_flip_period: 0,
            read_truncate_period: 0,
        }
    }
}

/// Counts of faults actually injected, per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Writes failed with injected ENOSPC.
    pub write_errors: u64,
    /// Writes silently truncated.
    pub short_writes: u64,
    /// Renames failed.
    pub rename_errors: u64,
    /// Reads with a flipped bit.
    pub read_flips: u64,
    /// Reads truncated.
    pub read_truncations: u64,
}

impl FaultCounts {
    /// Total faults injected across every class.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.write_errors
            + self.short_writes
            + self.rename_errors
            + self.read_flips
            + self.read_truncations
    }
}

/// A [`StoreIo`] wrapper that injects faults on a seeded deterministic
/// schedule (see [`FaultConfig`]).
///
/// Injection decisions come from one shared RNG stream, so the fault
/// placement depends on the global operation order — under a
/// multi-threaded pool that order is scheduling-dependent, which is the
/// point: durable code must produce identical *results* under any fault
/// placement, and the seed makes any single-threaded schedule exactly
/// reproducible.
#[derive(Debug)]
pub struct FaultyIo<I: StoreIo> {
    inner: I,
    cfg: FaultConfig,
    rng: Mutex<Rng>,
    write_errors: AtomicU64,
    short_writes: AtomicU64,
    rename_errors: AtomicU64,
    read_flips: AtomicU64,
    read_truncations: AtomicU64,
}

impl<I: StoreIo> FaultyIo<I> {
    /// Wraps `inner` with the fault schedule `cfg`.
    pub fn new(inner: I, cfg: FaultConfig) -> FaultyIo<I> {
        FaultyIo {
            inner,
            cfg,
            rng: Mutex::new(Rng::seed_from_u64(cfg.seed)),
            write_errors: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            rename_errors: AtomicU64::new(0),
            read_flips: AtomicU64::new(0),
            read_truncations: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            write_errors: self.write_errors.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            rename_errors: self.rename_errors.load(Ordering::Relaxed),
            read_flips: self.read_flips.load(Ordering::Relaxed),
            read_truncations: self.read_truncations.load(Ordering::Relaxed),
        }
    }

    /// One draw: whether a class with period `p` fires, plus a raw value
    /// for positioning damage.
    fn draw(&self, period: u64) -> (bool, u64) {
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        let v = rng.next_u64();
        (period > 0 && v.is_multiple_of(period), rng.next_u64())
    }

    fn injected(op: &'static str) -> io::Error {
        io::Error::new(
            io::ErrorKind::StorageFull,
            format!("injected fault: {op}"),
        )
    }
}

impl<I: StoreIo> StoreIo for FaultyIo<I> {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let (fail, _) = self.draw(self.cfg.write_error_period);
        if fail {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Self::injected("write (ENOSPC)"));
        }
        let (short, pos) = self.draw(self.cfg.write_short_period);
        if short && !bytes.is_empty() {
            self.short_writes.fetch_add(1, Ordering::Relaxed);
            // A torn write: a prefix lands and the call still "succeeds",
            // as a kill after a pagecache write and before fsync would
            // leave it. The damage must be caught at read time.
            let keep = (pos % bytes.len() as u64) as usize;
            return self.inner.write(path, &bytes[..keep]);
        }
        self.inner.write(path, bytes)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = self.inner.read(path)?;
        let (flip, pos) = self.draw(self.cfg.read_flip_period);
        if flip && !data.is_empty() {
            self.read_flips.fetch_add(1, Ordering::Relaxed);
            let byte = (pos % data.len() as u64) as usize;
            data[byte] ^= 1 << (pos % 8);
        }
        let (trunc, pos) = self.draw(self.cfg.read_truncate_period);
        if trunc && !data.is_empty() {
            self.read_truncations.fetch_add(1, Ordering::Relaxed);
            let keep = (pos % data.len() as u64) as usize;
            data.truncate(keep);
        }
        Ok(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (fail, _) = self.draw(self.cfg.rename_error_period);
        if fail {
            self.rename_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Self::injected("rename"));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn create_new(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        // Lock-file ops are never faulted: the lock protocol is not the
        // system under test, and a faulted lock would just abort the
        // maintenance op instead of exercising durability.
        self.inner.create_new(path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cdp-store-io-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn real_io_round_trips() {
        let dir = scratch("real");
        let p = dir.join("a.bin");
        RealIo.write(&p, b"hello").unwrap();
        assert_eq!(RealIo.read(&p).unwrap(), b"hello");
        let q = dir.join("b.bin");
        RealIo.rename(&p, &q).unwrap();
        assert!(RealIo.read(&p).is_err());
        assert_eq!(RealIo.read(&q).unwrap(), b"hello");
        assert!(!RealIo.create_new(&q, b"x").unwrap());
        assert!(RealIo.create_new(&dir.join("c.bin"), b"x").unwrap());
        let names = RealIo.read_dir(&dir).unwrap();
        assert_eq!(names.len(), 2);
        RealIo.remove_file(&q).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_io_is_deterministic_for_a_seed() {
        let dir = scratch("det");
        let run = |seed: u64| -> (Vec<bool>, FaultCounts) {
            let io = FaultyIo::new(RealIo, FaultConfig::aggressive(seed));
            let mut oks = Vec::new();
            for i in 0..64 {
                let p = dir.join(format!("f{i}.bin"));
                oks.push(io.write(&p, &[0xAB; 64]).is_ok());
            }
            (oks, io.counts())
        };
        let (a_oks, a_counts) = run(42);
        let (b_oks, b_counts) = run(42);
        assert_eq!(a_oks, b_oks, "same seed, same schedule");
        assert_eq!(a_counts, b_counts);
        let (c_oks, _) = run(43);
        assert_ne!(a_oks, c_oks, "different seed, different schedule");
        assert!(a_counts.total() > 0, "aggressive schedule injects faults");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_classes_never_fire() {
        let dir = scratch("off");
        let io = FaultyIo::new(RealIo, FaultConfig::none(7));
        for i in 0..32 {
            let p = dir.join(format!("f{i}.bin"));
            io.write(&p, b"payload").unwrap();
            assert_eq!(io.read(&p).unwrap(), b"payload");
        }
        assert_eq!(io.counts().total(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_writes_land_a_prefix() {
        let dir = scratch("short");
        let cfg = FaultConfig {
            seed: 9,
            write_error_period: 0,
            write_short_period: 1, // every write is short
            rename_error_period: 0,
            read_flip_period: 0,
            read_truncate_period: 0,
        };
        let io = FaultyIo::new(RealIo, cfg);
        let p = dir.join("torn.bin");
        io.write(&p, &[0xCD; 100]).unwrap();
        let got = RealIo.read(&p).unwrap();
        assert!(got.len() < 100, "write was torn: {} bytes", got.len());
        assert!(got.iter().all(|&b| b == 0xCD));
        assert_eq!(io.counts().short_writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
